#!/usr/bin/env python3
"""Check that every relative markdown link in the docs resolves.

Scans the repo-root ``*.md`` files (minus SNIPPETS.md, which quotes
third-party code) and everything under ``docs/``, extracts inline links
(``[text](target)``), and verifies that each relative target exists on
disk.  External links (``http(s)://``, ``mailto:``) and pure in-page
anchors (``#...``) are skipped; anchors on relative links are stripped
before the existence check (heading names are not validated).

Usage::

    python tools/check_links.py [repo-root]

Exit status 0 when every link resolves, 1 otherwise (each broken link is
printed as ``file: broken link -> target``).  Run by the CI docs job and
by ``tests/docs/test_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link: [text](target) — target without spaces.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Root-level files excluded from the scan.
EXCLUDE = {"SNIPPETS.md"}

#: Targets that are not filesystem paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files(root: Path) -> list[Path]:
    """Every checked markdown file: root ``*.md`` minus excludes + docs/."""
    files = [p for p in sorted(root.glob("*.md")) if p.name not in EXCLUDE]
    files += sorted((root / "docs").glob("*.md"))
    return files


def broken_links(root: Path) -> list[str]:
    """All unresolvable relative links, as ``file: broken link -> target``."""
    errors = []
    for md_file in markdown_files(root):
        for match in LINK_RE.finditer(md_file.read_text()):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md_file.relative_to(root)}: broken link -> {target}"
                )
    return errors


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parents[1]
    errors = broken_links(root)
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(markdown_files(root))
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"all relative links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
