#!/usr/bin/env python
"""Quickstart: HiRISE vs a conventional pipeline on one crowded scene.

Recreates the paper's Fig. 1 story: a crowded 1280x960 scene is processed
two ways —

* **conventional**: the whole frame is converted and shipped; a face crop
  then has to come from a *digitally downscaled* image;
* **HiRISE**: the sensor ships an 8x-pooled stage-1 frame, receives the
  head boxes back, and reads only those pixels at full resolution.

The script prints the cost comparison (data transfer, energy, memory, ADC
conversions) and renders the same head ROI from both paths as ASCII art so
the resolution difference is visible in a terminal.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ConventionalPipeline,
    HiRISEConfig,
    HiRISEPipeline,
    ROI,
    comparison_report,
)
from repro.datasets import crowdhuman_like
from repro.ml.image import downscale_antialiased, resize_bilinear, to_gray

ASCII_RAMP = " .:-=+*#%@"


def ascii_render(image: np.ndarray, width: int = 48) -> str:
    """Crude luminance -> character rendering of an image crop."""
    gray = to_gray(image)
    height = max(int(width * gray.shape[0] / gray.shape[1] * 0.5), 1)
    small = resize_bilinear(gray, (height, width))
    idx = np.clip((small * (len(ASCII_RAMP) - 1)).astype(int), 0, len(ASCII_RAMP) - 1)
    return "\n".join("".join(ASCII_RAMP[v] for v in row) for row in idx)


def main() -> None:
    print("generating a CrowdHuman-like 1280x960 scene ...")
    scene = crowdhuman_like(1, resolution=(1280, 960), seed=11)[0]
    heads = [
        ROI(int(b.x), int(b.y), max(int(b.w), 2), max(int(b.h), 2), 0.9, "head")
        for b in scene.boxes_for("head")
    ]
    print(f"scene contains {len(heads)} heads")

    config = HiRISEConfig.for_stage1_resolution((1280, 960), (320, 240))
    hirise = HiRISEPipeline(config=config).run(scene.image, rois=heads)
    baseline = ConventionalPipeline().run(scene.image, rois=heads)

    print()
    print(comparison_report(hirise, baseline))

    # Fig. 1: the same head, from the pooled frame vs the HiRISE ROI.
    roi = max(hirise.rois, key=lambda r: r.area)
    crop_hirise = next(
        c for r, c in zip(hirise.rois, hirise.roi_crops) if r == roi
    )
    # What the conventional low-res path sees: the head inside the frame
    # that was pooled down to stage-1 resolution (320x240).
    pooled_crop = downscale_antialiased(
        scene.image[roi.y : roi.y2, roi.x : roi.x2], 1.0 / config.pool_k
    )

    print(f"\n(a) head from the {320}x{240} pooled frame "
          f"({pooled_crop.shape[1]}x{pooled_crop.shape[0]} px):\n")
    print(ascii_render(pooled_crop))
    print(f"\n(b) the same head via HiRISE selective ROI "
          f"({roi.w}x{roi.h} px at full resolution):\n")
    print(ascii_render(crop_hirise))
    print(
        "\nHiRISE keeps the full-resolution detail while moving "
        f"{baseline.ledger.total_bytes / hirise.ledger.total_bytes:.1f}x "
        "less data off the sensor."
    )


if __name__ == "__main__":
    main()
