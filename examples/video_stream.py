#!/usr/bin/env python
"""Streaming HiRISE through the service Engine, one spec per policy.

The paper evaluates single frames; real deployments stream video.  This
script declares the same pedestrian clip under four policies as *specs* —
plain data, no hand-wired pipelines — and serves them all through one
:class:`repro.service.Engine` call:

* **conventional**   — ship every full frame (Fig. 2a, streamed);
* **hirise/frame**   — the two-stage HiRISE flow on every frame;
* **hirise/window**  — same results bit-for-bit, but stage-1 exposure +
  analog pooling + ADC vectorized over 12-frame windows into a
  preallocated exposure buffer (``window=12``);
* **hirise/reuse**   — temporal ROI reuse: frames whose stage-1 results
  proved stable (IoU-gated) skip the pooled conversion *and* the detector,
  reading only tracker-predicted windows (composes with ``window=``).

Run:  python examples/video_stream.py
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import HiRISEConfig
from repro.service import ComponentRef, Engine, ScenarioSpec, SystemSpec

N_FRAMES = 32
RESOLUTION = (256, 192)


def scenario(name: str, **kwargs) -> ScenarioSpec:
    """One request against the shared pedestrian clip."""
    return ScenarioSpec(
        name=name,
        source=ComponentRef("pedestrian", {"resolution": list(RESOLUTION)}),
        n_frames=N_FRAMES,
        seed=4,
        **kwargs,
    )


def main() -> None:
    hirise = Engine(
        SystemSpec(
            system="hirise",
            config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
            detector=ComponentRef("ground-truth", {"label": "person"}),
        )
    )
    conventional = Engine(
        SystemSpec(
            system="conventional",
            detector=ComponentRef("ground-truth", {"label": "person"}),
        )
    )

    policies = {"conventional": conventional.run(scenario("conventional")).outcome}
    batch = hirise.run_batch(
        [
            scenario("hirise/frame"),
            scenario("hirise/window", window=12),
            scenario(
                "hirise/reuse",
                policy=ComponentRef("temporal-reuse", {"max_reuse": 3}),
            ),
        ],
        workers=2,
    )
    policies.update({r.label: r.outcome for r in batch})

    table = Table(
        f"stream policies: {N_FRAMES} frames at {RESOLUTION[0]}x{RESOLUTION[1]}",
        ["policy", "stage-1 runs", "reused", "kB/frame", "uJ/frame", "frames/s"],
        aligns=["l", "r", "r", "r", "r", "r"],
    )
    for name, outcome in policies.items():
        table.add_row(
            name,
            outcome.stage1_frames if outcome.system == "hirise" else "-",
            outcome.reused_frames,
            f"{outcome.mean_bytes_per_frame / 1024:.1f}",
            f"{outcome.mean_energy_per_frame_j * 1e6:.2f}",
            f"{outcome.frames_per_second:.0f}",
        )
    table.print()

    reuse = policies["hirise/reuse"]
    print()
    print(reuse.report())
    print()
    print("reused frames pay zero stage-1 bytes/conversions — the pooled\n"
          "readout and the detector are skipped outright; the reuse policy\n"
          "revalidates with a full stage-1 run whenever stability decays.\n"
          "The same scenarios, as data: examples/specs/pedestrian_reuse.json\n"
          "(python -m repro run examples/specs/pedestrian_reuse.json).")


if __name__ == "__main__":
    main()
