#!/usr/bin/env python
"""Video extension: amortizing stage 1 over a clip with ROI tracking.

The paper evaluates single frames; real deployments stream video.  Running
the pooled-frame conversion + detector on *every* frame wastes most of what
HiRISE saves, so :class:`repro.core.VideoHiRISEPipeline` runs stage 1 only
on keyframes and extrapolates the ROIs in between (constant-velocity
tracking with a safety margin).  This script synthesizes a clip of moving
pedestrians and reports the per-frame energy under three policies.

Run:  python examples/video_stream.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table
from repro.core import HiRISEConfig, HiRISEPipeline, VideoHiRISEPipeline
from repro.datasets.shapes import draw_person
from repro.datasets.textures import colorize, value_noise
from repro.ml import Detection

ARRAY_W, ARRAY_H = 640, 480
N_FRAMES = 12


def synthesize_clip(seed: int = 4):
    """Pedestrians walking horizontally over a textured plaza."""
    rng = np.random.default_rng(seed)
    backdrop = colorize(
        value_noise((ARRAY_H, ARRAY_W), rng, octaves=4), (0.5, 0.49, 0.47),
        (0.66, 0.64, 0.61),
    )
    walkers = [
        # (start x, y, height, velocity px/frame)
        (60.0, 120.0, 140.0, 9.0),
        (420.0, 260.0, 110.0, -7.0),
        (250.0, 80.0, 90.0, 5.0),
    ]
    frames, gt = [], []
    for t in range(N_FRAMES):
        canvas = backdrop.copy()
        boxes = []
        for i, (x0, y, h, v) in enumerate(walkers):
            cx = x0 + v * t
            body, _ = draw_person(
                canvas, np.random.default_rng((seed, i)), cx, y, h, 0.3, 0.55
            )
            boxes.append(body)
        frames.append(np.clip(canvas, 0, 1))
        gt.append(boxes)
    return frames, gt


def gt_detector_factory(gt_per_frame):
    """A stand-in stage-1 model that reads ground truth (pooled coords).

    Keeps the demo focused on the *amortization* accounting rather than
    detector quality; swap in ``CorrelationDetector`` for the real thing.
    """
    state = {"frame": 0}

    def detect(pooled_frame):
        k = ARRAY_W // pooled_frame.shape[1]
        boxes = gt_per_frame[min(state["frame"], len(gt_per_frame) - 1)]
        return [
            Detection("person", 0.9, x / k, y / k, w / k, h / k)
            for x, y, w, h in boxes
        ]

    return detect, state


def main() -> None:
    frames, gt = synthesize_clip()
    table = Table(
        "video policies: per-clip sensor energy and transfer",
        ["policy", "keyframes", "energy uJ/frame", "transfer kB/frame"],
        aligns=["l", "r", "r", "r"],
    )

    for interval, label in ((1, "stage 1 every frame"),
                            (3, "keyframe every 3"),
                            (6, "keyframe every 6")):
        detect, state = gt_detector_factory(gt)
        pipeline = HiRISEPipeline(
            detector=detect,
            config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
        )
        video = VideoHiRISEPipeline(pipeline, keyframe_interval=interval)
        results = video.run(
            frames, on_frame=lambda i: state.update(frame=i)
        )
        energy = np.mean([r.energy for r in results]) * 1e6
        transfer = np.mean([r.transfer_bytes for r in results]) / 1000
        n_keys = sum(r.is_keyframe for r in results)
        table.add_row(label, n_keys, f"{energy:.2f}", f"{transfer:.1f}")

    table.print()
    print("tracked frames skip the pooled-frame conversion entirely; the\n"
          "keyframe interval trades stage-1 energy against ROI-window slack.")


if __name__ == "__main__":
    main()
