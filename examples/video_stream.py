#!/usr/bin/env python
"""Streaming HiRISE: the `repro.stream` subsystem on a synthetic clip.

The paper evaluates single frames; real deployments stream video.  This
script runs the same pedestrian clip under four policies and prints the
cumulative stream ledger for each:

* **conventional**   — ship every full frame (Fig. 2a, streamed);
* **hirise/frame**   — the two-stage HiRISE flow on every frame;
* **hirise/batch**   — same results bit-for-bit, but stage-1 exposure +
  analog pooling vectorized over 12-frame windows;
* **hirise/reuse**   — temporal ROI reuse: frames whose stage-1 results
  proved stable (IoU-gated) skip the pooled conversion *and* the detector,
  reading only tracker-predicted windows.

Run:  python examples/video_stream.py
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import ConventionalPipeline, HiRISEConfig, HiRISEPipeline
from repro.stream import (
    StreamRunner,
    TemporalROIReuse,
    ground_truth_detector,
    pedestrian_clip,
)

N_FRAMES = 32
RESOLUTION = (256, 192)


def hirise_runner(clip, **runner_kwargs):
    """A fresh HiRISE pipeline + runner (stand-in stage-1 model)."""
    detect, on_frame = ground_truth_detector(clip, label="person")
    pipeline = HiRISEPipeline(
        detector=detect,
        config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    )
    return StreamRunner(pipeline, **runner_kwargs), on_frame


def main() -> None:
    clip = pedestrian_clip(n_frames=N_FRAMES, resolution=RESOLUTION, seed=4)

    policies = {}
    detect, on_frame = ground_truth_detector(clip, label="person")
    runner = StreamRunner(ConventionalPipeline(detector=detect))
    policies["conventional"] = runner.run(clip.frames, on_frame=on_frame)

    runner, on_frame = hirise_runner(clip)
    policies["hirise/frame"] = runner.run(clip.frames, on_frame=on_frame)

    runner, on_frame = hirise_runner(clip, batch_size=12)
    policies["hirise/batch"] = runner.run(clip.frames, on_frame=on_frame)

    runner, on_frame = hirise_runner(clip, reuse=TemporalROIReuse(max_reuse=3))
    policies["hirise/reuse"] = runner.run(clip.frames, on_frame=on_frame)

    table = Table(
        f"stream policies: {N_FRAMES} frames at {RESOLUTION[0]}x{RESOLUTION[1]}",
        ["policy", "stage-1 runs", "reused", "kB/frame", "uJ/frame", "frames/s"],
        aligns=["l", "r", "r", "r", "r", "r"],
    )
    for name, outcome in policies.items():
        table.add_row(
            name,
            outcome.stage1_frames if outcome.system == "hirise" else "-",
            outcome.reused_frames,
            f"{outcome.mean_bytes_per_frame / 1024:.1f}",
            f"{outcome.mean_energy_per_frame_j * 1e6:.2f}",
            f"{outcome.frames_per_second:.0f}",
        )
    table.print()

    reuse = policies["hirise/reuse"]
    print()
    print(reuse.report())
    print()
    print("reused frames pay zero stage-1 bytes/conversions — the pooled\n"
          "readout and the detector are skipped outright; the reuse policy\n"
          "revalidates with a full stage-1 run whenever stability decays.")


if __name__ == "__main__":
    main()
