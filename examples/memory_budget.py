#!/usr/bin/env python
"""Memory budget planner: which MCUs can host which camera, with and
without HiRISE?

For a portfolio of real microcontrollers this script computes, per pixel
-array size, the peak SRAM a two-stage system needs under (a) in-processor
scaling (the full frame must be resident) and (b) HiRISE in-sensor scaling
(only the 320x240 stage-1 frame plus one ROI), and reports the largest
camera each device can host — the practical version of the paper's Fig. 6.

Run:  python examples/memory_budget.py
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import format_bytes
from repro.memory import (
    ALL_MCUS,
    MCUNETV2_PATCH_OPS,
    analyze,
    analyze_patched,
    mcunetv2_classifier,
    mcunetv2_detector,
)

ARRAYS = [
    (320, 240), (640, 480), (960, 720), (1280, 960),
    (1600, 1200), (1920, 1440), (2240, 1680), (2560, 1920),
]
STAGE1_FRAME = 320 * 240 * 3


def roi_side(width: int) -> int:
    return max(round(14 * width / 320), 8)


def main() -> None:
    det = analyze_patched(mcunetv2_detector((240, 320)), MCUNETV2_PATCH_OPS)
    print(f"stage-1 detector: peak {format_bytes(det.peak_sram_bytes)} "
          f"(patch-based), flash {format_bytes(det.flash_bytes)}\n")

    table = Table(
        "peak SRAM demand per pixel array (stage-2 MCUNetV2-like)",
        ["array", "ROI", "in-proc SRAM", "HiRISE SRAM"]
        + [m.name for m in ALL_MCUS],
        aligns=["l", "l", "r", "r"] + ["l"] * len(ALL_MCUS),
    )
    best: dict[str, dict[str, str]] = {
        m.name: {"in-proc": "none", "hirise": "none"} for m in ALL_MCUS
    }
    for w, h in ARRAYS:
        side = roi_side(w)
        cls_report = analyze(mcunetv2_classifier((side, side)))
        inproc = w * h * 3 + cls_report.peak_sram_bytes
        hirise = max(STAGE1_FRAME, side * side * 3) + cls_report.peak_sram_bytes
        verdicts = []
        for mcu in ALL_MCUS:
            ip = "P" if inproc <= mcu.sram_bytes else "-"
            hr = "H" if hirise <= mcu.sram_bytes else "-"
            verdicts.append(f"{ip}{hr}")
            if inproc <= mcu.sram_bytes:
                best[mcu.name]["in-proc"] = f"{w}x{h}"
            if hirise <= mcu.sram_bytes:
                best[mcu.name]["hirise"] = f"{w}x{h}"
        table.add_row(
            f"{w}x{h}", f"{side}x{side}",
            format_bytes(inproc), format_bytes(hirise), *verdicts,
        )
    table.print()
    print("legend: P = fits with in-processor scaling, H = fits with HiRISE\n")

    summary = Table(
        "largest camera each MCU can host",
        ["MCU", "SRAM", "in-processor scaling", "with HiRISE"],
        aligns=["l", "r", "r", "r"],
    )
    for mcu in ALL_MCUS:
        summary.add_row(
            mcu.name, f"{mcu.sram_kb:.0f} kB",
            best[mcu.name]["in-proc"], best[mcu.name]["hirise"],
        )
    summary.print()


if __name__ == "__main__":
    main()
