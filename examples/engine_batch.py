#!/usr/bin/env python
"""Concurrent batch serving: one Engine, a fleet of specs, three executors.

Loads ``examples/specs/fleet.json`` — seven scenarios (pedestrian + drone
clips under per-frame, batched, and temporal-reuse policies, plus a scene
sweep) — and serves it through every executor: sequentially (``run`` per
request), on the thread pool, and on the spawn-safe process pool the spec
itself selects.  Prints the per-request ledgers, the cross-request
aggregate with cache stats, and the wall-clock comparison, then verifies
all paths are bit-identical and serves the fleet a second time straight
from the result cache.

Run:  python examples/engine_batch.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench import Table
from repro.service import Engine, EngineCache, make_executor

SPEC = Path(__file__).parent / "specs" / "fleet.json"


def main() -> None:
    engine = Engine.from_spec(SPEC)
    print(f"{SPEC.name}: {len(engine.scenarios)} scenarios, "
          f"{engine.executor} executor x {engine.workers} workers\n")

    # Reference: sequential, cache-free — what every executor must match.
    reference = Engine.from_spec(SPEC)
    reference.cache = EngineCache.disabled()
    start = time.perf_counter()
    sequential = [reference.run(s) for s in reference.scenarios]
    seq_time = time.perf_counter() - start

    timings = {}
    batch = None
    for name in ("serial", "thread", "process"):
        # Fresh engine per path: timings measure compute, not memoization.
        contender = Engine.from_spec(SPEC)
        contender.cache = EngineCache(clip_capacity=8, result_capacity=0)
        with make_executor(name, engine.workers) as pool:
            best = None
            for _ in range(2):  # second round amortizes pool spawn
                batch = contender.run_batch(executor=pool)
                best = (batch.wall_time_s if best is None
                        else min(best, batch.wall_time_s))
        timings[name] = best

    table = Table(
        "fleet of scenarios through one engine",
        ["scenario", "frames", "stage-1", "reused", "kB", "uJ"],
        aligns=["l", "r", "r", "r", "r", "r"],
    )
    for result in batch:
        o = result.outcome
        table.add_row(
            result.label, o.n_frames, o.stage1_frames, o.reused_frames,
            f"{o.total_bytes / 1024:.1f}", f"{o.total_energy_j * 1e6:.1f}",
        )
    table.print()

    print()
    print(batch.report())

    identical = all(
        a.outcome.frames == b.outcome.frames
        for a, b in zip(sequential, batch)
    )
    print(f"\nsequential: {seq_time * 1e3:.0f} ms", end="")
    for name, best in timings.items():
        print(f"   {name}: {best * 1e3:.0f} ms ({seq_time / best:.2f}x)", end="")
    print(f"\nall executors bit-identical to sequential: {identical}")

    # Served fleets memoize: the same workload again is pure cache hits.
    warm_engine = Engine.from_spec(SPEC)
    cold = warm_engine.run_batch()
    warm = warm_engine.run_batch()
    print(f"repeat fleet through the result cache: "
          f"{warm.wall_time_s * 1e3:.0f} ms "
          f"(cold {cold.wall_time_s * 1e3:.0f} ms) — {warm.cache.describe()}")


if __name__ == "__main__":
    main()
