#!/usr/bin/env python
"""Concurrent batch serving: one Engine, a fleet of scenario specs.

Loads ``examples/specs/fleet.json`` — six scenarios (pedestrian + drone
clips under per-frame, batched, and temporal-reuse policies) — and serves
it twice: sequentially (``run`` per request) and as one concurrent batch
(``run_batch``).  Prints the per-request ledgers, the cross-request
aggregate, and the wall-clock comparison, then verifies the batch results
are bit-identical to the sequential ones.

Run:  python examples/engine_batch.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench import Table
from repro.service import Engine

SPEC = Path(__file__).parent / "specs" / "fleet.json"


def main() -> None:
    engine = Engine.from_spec(SPEC)
    print(f"{SPEC.name}: {len(engine.scenarios)} scenarios, "
          f"{engine.workers} workers\n")

    start = time.perf_counter()
    sequential = [engine.run(s) for s in engine.scenarios]
    seq_time = time.perf_counter() - start

    batch = engine.run_batch()

    table = Table(
        "fleet of scenarios through one engine",
        ["scenario", "frames", "stage-1", "reused", "kB", "uJ"],
        aligns=["l", "r", "r", "r", "r", "r"],
    )
    for result in batch:
        o = result.outcome
        table.add_row(
            result.label, o.n_frames, o.stage1_frames, o.reused_frames,
            f"{o.total_bytes / 1024:.1f}", f"{o.total_energy_j * 1e6:.1f}",
        )
    table.print()

    print()
    print(batch.report())

    identical = all(
        a.outcome.frames == b.outcome.frames
        for a, b in zip(sequential, batch)
    )
    print(f"\nsequential: {seq_time * 1e3:.0f} ms   "
          f"batched ({batch.workers} workers): {batch.wall_time_s * 1e3:.0f} ms   "
          f"speedup: {seq_time / batch.wall_time_s:.2f}x")
    print(f"batch results bit-identical to sequential: {identical}")


if __name__ == "__main__":
    main()
