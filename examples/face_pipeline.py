#!/usr/bin/env python
"""Two-stage facial-expression pipeline — the paper's end-to-end scenario.

Stage 1: a correlation detector, trained on analog-pooled frames, finds
head ROIs in a crowded scene.  Stage 2: a HOG expression classifier,
trained on RAF-DB-like faces at the ROI resolution, labels every crop the
sensor reads out.  Faces with known expressions are planted into the scene
so the script can score the end-to-end result.

Run:  python examples/face_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HiRISEConfig, HiRISEPipeline
from repro.datasets import EXPRESSIONS, SceneGenerator, CROWDHUMAN_LIKE, rafdb_like
from repro.ml import CorrelationDetector, HOGClassifier
from repro.ml.image import downscale_antialiased, resize_bilinear
from repro.sensor import AnalogPoolingModel, NoiseModel, PixelArray, SensorReadout

ARRAY = (1280, 960)
POOL_K = 4
FACE_SIZE = 112  # planted face resolution (full-res pixels)
CLASSIFIER_SIZE = 28


def plant_faces(scene_image: np.ndarray, n_faces: int, seed: int):
    """Paste known-expression faces on a grid; returns (image, placements)."""
    rng = np.random.default_rng(seed)
    faces, labels = rafdb_like(n_faces, size=FACE_SIZE, seed=seed)
    image = scene_image.copy()
    placements = []
    h, w = image.shape[:2]
    for i in range(n_faces):
        x = int(rng.uniform(0, w - FACE_SIZE))
        y = int(rng.uniform(0, h - FACE_SIZE))
        image[y : y + FACE_SIZE, x : x + FACE_SIZE] = faces[i]
        placements.append((x, y, int(labels[i])))
    return image, placements


def train_stage1() -> CorrelationDetector:
    print("stage 1: fitting the head detector on pooled frames ...")
    scenes = SceneGenerator(CROWDHUMAN_LIKE, ARRAY, seed=42).generate(5)
    frames, boxes = [], []
    for scene in scenes:
        arr = PixelArray.from_image(scene.image, noise=NoiseModel())
        readout = SensorReadout(arr, pooling=AnalogPoolingModel())
        frames.append(readout.read_compressed(POOL_K).images)
        boxes.append([b.scaled(1 / POOL_K, 1 / POOL_K) for b in scene.boxes])
    detector = CorrelationDetector(classes=("head",))
    detector.fit(frames, boxes)
    return detector


def train_stage2() -> HOGClassifier:
    """Expression classifier trained with crop/scale augmentation.

    Stage-1 boxes never frame a face exactly — they come from a *head*
    detector — so the training distribution includes randomly shifted and
    scaled sub-crops of each face, mimicking detector framing error.
    """
    from repro.datasets import render_face

    print("stage 2: training the expression classifier (with crop augmentation) ...")
    rng = np.random.default_rng(0)
    images, labels = [], []
    n_ids = 140
    for i in range(n_ids):
        label = i % len(EXPRESSIONS)
        face = render_face(EXPRESSIONS[label], np.random.default_rng((3, i)), 224)
        variants = [face]
        for _ in range(2):
            scale = rng.uniform(0.62, 0.95)
            side = int(224 * scale)
            x = rng.integers(0, 224 - side + 1)
            y = rng.integers(0, 224 - side + 1)
            variants.append(face[y : y + side, x : x + side])
        for v in variants:
            small = downscale_antialiased(v, CLASSIFIER_SIZE / v.shape[0])
            images.append(resize_bilinear(small, (CLASSIFIER_SIZE, CLASSIFIER_SIZE)))
            labels.append(label)
    return HOGClassifier("mobilenetv2-like", n_classes=len(EXPRESSIONS)).fit(
        np.stack(images), np.asarray(labels)
    )


def main() -> None:
    detector = train_stage1()
    classifier = train_stage2()

    def classify(crop: np.ndarray) -> int:
        if crop.shape[0] >= CLASSIFIER_SIZE:
            small = downscale_antialiased(crop, CLASSIFIER_SIZE / crop.shape[0])
        else:
            small = crop
        small = resize_bilinear(small, (CLASSIFIER_SIZE, CLASSIFIER_SIZE))
        return int(classifier.predict(small[None])[0])

    pipeline = HiRISEPipeline(
        detector=detector.detect,
        classifier=classify,
        # Generous ROI padding: head boxes are expanded toward full faces.
        config=HiRISEConfig(pool_k=POOL_K, roi_pad_fraction=0.3, max_rois=24),
        noise=NoiseModel(),
    )

    scene = SceneGenerator(CROWDHUMAN_LIKE, ARRAY, seed=2024).scene(0)
    image, placements = plant_faces(scene.image, n_faces=5, seed=9)
    print(f"\nscene: {ARRAY[0]}x{ARRAY[1]}, {len(placements)} planted faces")

    outcome = pipeline.run(image)
    print(outcome.report())

    # Score the planted faces that an ROI covered.
    hits, correct = 0, 0
    for x, y, label in placements:
        for roi, pred in zip(outcome.rois, outcome.predictions):
            cx, cy = x + FACE_SIZE / 2, y + FACE_SIZE / 2
            if roi.x <= cx <= roi.x2 and roi.y <= cy <= roi.y2:
                hits += 1
                correct += int(pred == label)
                print(
                    f"  face at ({x},{y}): true={EXPRESSIONS[label]:<9} "
                    f"predicted={EXPRESSIONS[pred]}"
                )
                break
        else:
            print(f"  face at ({x},{y}): not covered by any ROI")
    if hits:
        print(f"\ncovered {hits}/{len(placements)} faces, "
              f"expression accuracy on covered faces: {correct / hits:.0%}")


if __name__ == "__main__":
    main()
