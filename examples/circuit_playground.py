#!/usr/bin/env python
"""Circuit playground: simulate the HiRISE analog averaging circuit.

Builds the paper's Fig. 4 charge-sharing circuit at transistor level (MNA
simulation, level-1 MOSFETs), runs the Fig. 5 test benches, and prints the
waveforms and tracking fits.  Also sweeps the DC transfer curve used to
calibrate the behavioral sensor model.

Run:  python examples/circuit_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.analog import (
    AVG_NODE,
    DC,
    MNASolver,
    build_pooling_circuit,
    dc_sweep_bench,
    four_input_bench,
    pixels_per_pool,
    two_input_bench,
)
from repro.bench import Table, ascii_line_chart


def main() -> None:
    # -- DC: a single 2x2 RGB pooling group (12 pixels) ---------------------
    n = pixels_per_pool(2)
    print(f"2x2 RGB pooling merges {n} pixels; solving the DC operating point")
    circuit = build_pooling_circuit([DC(0.6)] * n, title="2x2-rgb-pool")
    solution = MNASolver(circuit).dc()
    print(f"  all pixels at 0.6 V -> shared node at {solution[AVG_NODE]:+.4f} V "
          "(below 0, as the paper's Eq. 4 condition requires)\n")

    # -- Fig. 5(a): two analog inputs ------------------------------------------
    print("running Fig. 5(a): two analog inputs ...")
    fig5a = two_input_bench()
    inputs = fig5a.input_matrix()
    stride = max(len(fig5a.time) // 60, 1)
    print(ascii_line_chart(
        {
            "Inp1": inputs[0][::stride],
            "Inp2": inputs[1][::stride],
            "Avg": fig5a.avg[::stride],
        },
        x_labels=["0", f"{fig5a.time[-1] * 1e3:.1f} ms"],
        title="Fig. 5(a): regions 1 (ramp), 2 (opposing slopes), 3 (Inp1 alone)",
    ))
    print(f"tracking fit: gain={fig5a.fit.gain:.3f} (ideal 0.5), "
          f"rmse={fig5a.fit.rmse * 1e3:.2f} mV\n")

    # -- Fig. 5(b): four digital inputs ---------------------------------------
    print("running Fig. 5(b): four digital inputs ...")
    fig5b = four_input_bench()
    stride = max(len(fig5b.time) // 60, 1)
    print(ascii_line_chart(
        {"Avg": fig5b.avg[::stride]},
        x_labels=["0", f"{fig5b.time[-1] * 1e3:.1f} ms"],
        title="Fig. 5(b): Avg steps through the quantized mean levels",
    ))
    levels = np.unique(np.round(fig5b.avg, 2))
    print(f"distinct average plateaus observed: {len(levels)}\n")

    # -- DC transfer sweep (behavioral-model calibration) ---------------------
    print("DC transfer sweep of a 4-input group (0 .. VDD):")
    sweep_in, sweep_out = dc_sweep_bench(n_inputs=4, n_points=9)
    table = Table("shared-node DC transfer", ["input V", "avg node V"])
    for vin, vout in zip(sweep_in, sweep_out):
        table.add_row(f"{vin:.3f}", f"{vout:+.4f}")
    table.print()
    gain, offset = np.polyfit(sweep_in, sweep_out, 1)
    print(f"affine fit: avg = {gain:.3f} * mean + ({offset:+.3f}) V — the "
          "behavioral AnalogPoolingModel inverts exactly this map at readout.")


if __name__ == "__main__":
    main()
