#!/usr/bin/env python
"""Drone surveillance: the pooling-level accuracy/energy trade-off.

VisDrone-like aerial scenes contain tiny objects, making them the most
resolution-sensitive workload in the paper (Table 2's accuracy more than
doubles from 320x240 to 1280x960).  This script sweeps the pooling level
on one pixel array and reports, for each setting, the stage-1 detection
mAP together with the sensor-side cost of that accuracy — the ablation a
system designer actually runs when picking k.

Run:  python examples/drone_surveillance.py
"""

from __future__ import annotations

from repro.bench import Table, ascii_bar_chart
from repro.core import ROI, EnergyModel, hirise_costs
from repro.datasets import SceneGenerator, VISDRONE_LIKE
from repro.ml import CorrelationDetector, evaluate_detections
from repro.sensor import AnalogPoolingModel, NoiseModel, PixelArray, SensorReadout

ARRAY = (1280, 960)
POOLINGS = (8, 4, 2)
N_TRAIN, N_EVAL = 5, 3


def pooled_frames(scenes, k):
    frames = []
    for scene in scenes:
        arr = PixelArray.from_image(scene.image, noise=NoiseModel())
        readout = SensorReadout(arr, pooling=AnalogPoolingModel())
        frames.append(readout.read_compressed(k).images)
    return frames


def main() -> None:
    print(f"generating VisDrone-like scenes at {ARRAY[0]}x{ARRAY[1]} ...")
    train = SceneGenerator(VISDRONE_LIKE, ARRAY, seed=100).generate(N_TRAIN)
    evals = SceneGenerator(VISDRONE_LIKE, ARRAY, seed=555).generate(N_EVAL)
    energy_model = EnergyModel()

    table = Table(
        "pooling-level ablation: stage-1 accuracy vs sensor cost",
        ["k", "stage-1 res", "mAP@0.5", "stage-1 kB", "HiRISE energy mJ",
         "baseline energy mJ", "energy reduction"],
    )
    map_bars = {}
    for k in POOLINGS:
        print(f"  pooling {k}x{k}: fitting and evaluating ...")
        detector = CorrelationDetector(classes=VISDRONE_LIKE.eval_classes)
        detector.fit(
            pooled_frames(train, k),
            [[b.scaled(1 / k, 1 / k) for b in s.boxes] for s in train],
        )
        preds = detector.detect_batch(pooled_frames(evals, k))
        result = evaluate_detections(
            preds,
            [[b.scaled(1 / k, 1 / k) for b in s.boxes] for s in evals],
            VISDRONE_LIKE.eval_classes,
        )

        # Sensor cost with the ground-truth object load.
        rois = [
            ROI(int(b.x), int(b.y), max(int(b.w), 1), max(int(b.h), 1))
            for b in evals[0].boxes
        ]
        costs = hirise_costs(*ARRAY, k, rois, grayscale=False)
        energy = energy_model.hirise_frame(*ARRAY, k, rois)
        base = energy_model.conventional_frame(*ARRAY)

        table.add_row(
            k, f"{ARRAY[0] // k}x{ARRAY[1] // k}", f"{result.map * 100:.1f}%",
            costs.stage1.data_transfer_bytes / 1000,
            f"{energy.total_mj:.4f}", f"{base.total_mj:.4f}",
            f"{base.total / energy.total:.1f}x",
        )
        map_bars[f"k={k} ({ARRAY[0] // k}x{ARRAY[1] // k})"] = result.map * 100

    table.print()
    print(ascii_bar_chart(map_bars, unit="% mAP",
                          title="accuracy vs pooling level:"))
    print(
        "\ntakeaway: 8x pooling maximizes energy savings but loses the tiny\n"
        "objects; 4x is the knee where accuracy recovers at ~half the cost\n"
        "of 2x — exactly the trade-off HiRISE lets a deployment tune."
    )


if __name__ == "__main__":
    main()
