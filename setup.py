"""Setup shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables the legacy
``pip install -e .`` editable path (PEP 660 editable builds require the
``wheel`` package, which offline deployments may lack).
"""

from setuptools import setup

setup()
