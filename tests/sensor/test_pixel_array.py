"""Tests for the analog pixel array."""

import numpy as np
import pytest

from repro.sensor import NoiseModel, PixelArray


class TestFromImage:
    def test_uint8_scaling(self):
        img = np.full((4, 6, 3), 255, dtype=np.uint8)
        arr = PixelArray.from_image(img, vdd=1.2)
        assert np.allclose(arr.voltages, 1.2)

    def test_float_passthrough(self):
        img = np.full((4, 6, 3), 0.5)
        arr = PixelArray.from_image(img)
        assert np.allclose(arr.voltages, 0.5)

    def test_gray_image_broadcast_to_rgb(self):
        img = np.full((4, 6), 0.25)
        arr = PixelArray.from_image(img)
        assert arr.voltages.shape == (4, 6, 3)
        assert np.allclose(arr.voltages, 0.25)

    def test_rejects_out_of_range_floats(self):
        with pytest.raises(ValueError):
            PixelArray.from_image(np.full((2, 2, 3), 1.5))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            PixelArray.from_image(np.zeros((2, 2, 4)))

    def test_rejects_bad_vdd(self):
        with pytest.raises(ValueError):
            PixelArray.from_image(np.zeros((2, 2, 3)), vdd=0.0)

    def test_fpn_applied_at_exposure(self):
        img = np.full((8, 8, 3), 0.5)
        clean = PixelArray.from_image(img, noise=NoiseModel.noiseless())
        noisy = PixelArray.from_image(img, noise=NoiseModel(prnu=0.05, seed=1))
        assert np.allclose(clean.voltages, 0.5)
        assert not np.allclose(noisy.voltages, 0.5)

    def test_fpn_deterministic_per_seed(self):
        img = np.full((8, 8, 3), 0.5)
        a = PixelArray.from_image(img, noise=NoiseModel(seed=9))
        b = PixelArray.from_image(img, noise=NoiseModel(seed=9))
        assert np.array_equal(a.voltages, b.voltages)

    def test_voltages_clipped_to_rails(self):
        img = np.ones((8, 8, 3))
        arr = PixelArray.from_image(img, noise=NoiseModel(dsnu=0.1, seed=2))
        assert arr.voltages.max() <= 1.0
        assert arr.voltages.min() >= 0.0


class TestGeometry:
    def test_resolution_is_width_height(self, noiseless_array):
        assert noiseless_array.resolution == (48, 32)

    def test_n_sites_counts_channels(self, noiseless_array):
        assert noiseless_array.n_sites == 32 * 48 * 3

    def test_region_extraction(self, noiseless_array):
        region = noiseless_array.region(10, 5, 8, 4)
        assert region.shape == (4, 8, 3)
        assert np.array_equal(region, noiseless_array.voltages[5:9, 10:18, :])

    def test_region_out_of_bounds_rejected(self, noiseless_array):
        with pytest.raises(ValueError):
            noiseless_array.region(45, 0, 10, 4)

    def test_region_empty_rejected(self, noiseless_array):
        with pytest.raises(ValueError):
            noiseless_array.region(0, 0, 0, 4)
