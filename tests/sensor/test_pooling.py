"""Tests for analog and digital average pooling."""

import numpy as np
import pytest

from repro.sensor import AnalogPoolingModel, block_reduce_mean, digital_avg_pool


class TestBlockReduce:
    def test_constant_image_preserved(self):
        img = np.full((8, 8), 0.3)
        assert np.allclose(block_reduce_mean(img, 2), 0.3)

    def test_known_blocks(self):
        img = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert block_reduce_mean(img, 2)[0, 0] == pytest.approx(0.5)

    def test_channelwise(self):
        img = np.zeros((4, 4, 3))
        img[:, :, 1] = 1.0
        out = block_reduce_mean(img, 2)
        assert out.shape == (2, 2, 3)
        assert np.allclose(out[:, :, 0], 0.0)
        assert np.allclose(out[:, :, 1], 1.0)

    def test_non_divisible_crops_remainder(self):
        img = np.arange(5 * 7, dtype=float).reshape(5, 7)
        out = block_reduce_mean(img, 2)
        assert out.shape == (2, 3)
        assert out[0, 0] == pytest.approx(np.mean(img[:2, :2]))

    def test_k1_identity(self):
        img = np.random.default_rng(0).random((4, 4))
        assert np.array_equal(block_reduce_mean(img, 1), img)

    def test_rejects_oversized_k(self):
        with pytest.raises(ValueError):
            block_reduce_mean(np.zeros((4, 4)), 8)


class TestAnalogPoolingModel:
    def test_ideal_matches_digital(self):
        rng = np.random.default_rng(5)
        img = rng.random((16, 16, 3))
        ideal = AnalogPoolingModel.ideal()
        analog = ideal.pool(img, 4, vdd=1.0)
        digital = digital_avg_pool(img, 4)
        assert np.allclose(analog, digital, atol=1e-12)

    def test_grayscale_merges_channels(self):
        img = np.zeros((4, 4, 3))
        img[:, :, 0] = 0.9  # only red lit
        out = AnalogPoolingModel.ideal().pool(img, 2, vdd=1.0, grayscale=True)
        assert out.shape == (2, 2)
        assert np.allclose(out, 0.3)

    def test_default_nonidealities_small(self):
        rng = np.random.default_rng(6)
        img = rng.random((32, 32, 3))
        out = AnalogPoolingModel().pool(img, 4, vdd=1.0)
        ref = digital_avg_pool(img, 4)
        assert np.max(np.abs(out - ref)) < 0.02  # < 2% of full scale

    def test_mismatch_is_fixed_pattern(self):
        img = np.full((8, 8, 3), 0.5)
        model = AnalogPoolingModel(seed=3)
        a = model.pool(img, 2, vdd=1.0)
        b = model.pool(img, 2, vdd=1.0)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        img = np.full((8, 8, 3), 0.5)
        a = AnalogPoolingModel(seed=1).pool(img, 2, vdd=1.0)
        b = AnalogPoolingModel(seed=2).pool(img, 2, vdd=1.0)
        assert not np.array_equal(a, b)

    def test_output_clipped_to_rails(self):
        img = np.ones((8, 8, 3))
        model = AnalogPoolingModel(offset_error_sigma_per_vdd=0.2, seed=0)
        out = model.pool(img, 2, vdd=1.0)
        assert out.max() <= 1.0
        assert out.min() >= 0.0

    def test_from_tracking_fit_roundtrip(self):
        model = AnalogPoolingModel.from_tracking_fit(gain=0.49, offset=-0.51, vdd=1.0)
        assert model.gain == pytest.approx(0.49)
        assert model.offset_per_vdd == pytest.approx(-0.51)

    def test_compression_bows_midscale(self):
        """The SF nonlinearity pulls mid-scale down, leaves rails alone."""
        model = AnalogPoolingModel(
            gain_error_sigma=0.0, offset_error_sigma_per_vdd=0.0, compression=0.05
        )
        mid = model.pool(np.full((2, 2, 3), 0.5), 2, vdd=1.0)
        hi = model.pool(np.ones((2, 2, 3)), 2, vdd=1.0)
        assert mid[0, 0, 0] < 0.5
        assert hi[0, 0, 0] == pytest.approx(1.0, abs=1e-9)

    def test_rejects_bad_input_shape(self):
        with pytest.raises(ValueError):
            AnalogPoolingModel().pool(np.zeros((4, 4)), 2, vdd=1.0)
