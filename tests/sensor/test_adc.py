"""Tests for the ADC model."""

import numpy as np
import pytest

from repro.sensor import ADC_ENERGY_45NM_8BIT, ADCModel


class TestQuantization:
    def test_full_scale_maps_to_max_code(self):
        adc = ADCModel(bits=8)
        assert adc.convert(np.array([1.0]))[0] == 255

    def test_zero_maps_to_zero(self):
        assert ADCModel().convert(np.array([0.0]))[0] == 0

    def test_clipping_above_vref(self):
        assert ADCModel().convert(np.array([2.0]))[0] == 255

    def test_clipping_below_zero(self):
        assert ADCModel().convert(np.array([-0.5]))[0] == 0

    def test_roundtrip_error_within_half_lsb(self):
        adc = ADCModel(bits=8)
        v = np.linspace(0.0, 1.0, 1001)
        recon = adc.to_float(adc.convert(v))
        assert np.max(np.abs(recon - v)) <= adc.lsb / 2 + 1e-12

    def test_more_bits_less_error(self):
        v = np.linspace(0.0, 1.0, 997)
        err8 = np.abs(ADCModel(bits=8).digitize(v) - v).max()
        err12 = np.abs(ADCModel(bits=12).digitize(v) - v).max()
        assert err12 < err8

    def test_1bit_adc(self):
        adc = ADCModel(bits=1)
        codes = adc.convert(np.array([0.0, 0.4, 0.6, 1.0]))
        assert list(codes) == [0, 0, 1, 1]

    def test_noise_is_deterministic_given_seed(self):
        # two converters with one seed replay the same noise *stream*...
        a = ADCModel(noise_lsb=0.5, seed=11)
        b = ADCModel(noise_lsb=0.5, seed=11)
        v = np.full(100, 0.5)
        assert np.array_equal(a.convert(v), b.convert(v))
        assert np.array_equal(a.convert(v), b.convert(v))

    def test_consecutive_conversions_draw_fresh_noise(self):
        # regression: the fallback rng used to be re-seeded per call, so
        # every noisy frame in a stream got the identical realization
        adc = ADCModel(noise_lsb=0.5, seed=11)
        v = np.full(100, 0.5)
        first, second = adc.convert(v), adc.convert(v)
        assert not np.array_equal(first, second)
        # same through the normalized readout path
        assert not np.array_equal(adc.digitize(v), adc.digitize(v))

    def test_explicit_rng_still_wins(self):
        adc = ADCModel(noise_lsb=0.5, seed=11)
        v = np.full(64, 0.5)
        one = adc.convert(v, rng=np.random.default_rng(3))
        two = adc.convert(v, rng=np.random.default_rng(3))
        assert np.array_equal(one, two)

    def test_concurrent_fallback_draws_are_distinct(self):
        # the lazily-created fallback stream is shared state: racing
        # threads must neither duplicate a realization nor crash the rng
        import threading

        adc = ADCModel(noise_lsb=0.5, seed=11)
        v = np.full(256, 0.5)
        gate = threading.Barrier(4)
        outputs = []
        lock = threading.Lock()

        def draw():
            gate.wait(timeout=5)
            codes = adc.convert(v)
            with lock:
                outputs.append(codes)

        threads = [threading.Thread(target=draw) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(len(outputs)):
            for j in range(i + 1, len(outputs)):
                assert not np.array_equal(outputs[i], outputs[j])

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            ADCModel(bits=0)
        with pytest.raises(ValueError):
            ADCModel(bits=17)


class TestEnergy:
    def test_paper_constant(self):
        """250 mW / 2 GS/s = 125 pJ per conversion."""
        assert ADC_ENERGY_45NM_8BIT == pytest.approx(125e-12)

    def test_paper_baseline_energy(self):
        """2560x1920 RGB full conversion = 1.843 mJ (paper Table 3)."""
        adc = ADCModel()
        energy = adc.energy(2560 * 1920 * 3)
        assert energy == pytest.approx(1.843e-3, rel=0.001)

    def test_energy_linear(self):
        adc = ADCModel()
        assert adc.energy(1000) == pytest.approx(10 * adc.energy(100))

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            ADCModel().energy(-1)

    def test_bytes_per_sample(self):
        assert ADCModel(bits=8).bytes_per_sample() == 1
        assert ADCModel(bits=12).bytes_per_sample() == 2
