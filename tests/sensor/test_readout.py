"""Tests for the sensor readout paths (full / compressed / selective ROI)."""

import numpy as np
import pytest

from repro.sensor import (
    ADCModel,
    AnalogPoolingModel,
    NoiseModel,
    PixelArray,
    SensorReadout,
    clip_box,
    merge_covered_boxes,
)


@pytest.fixture()
def readout(noiseless_array):
    return SensorReadout(noiseless_array, pooling=AnalogPoolingModel.ideal())


class TestFullRead:
    def test_conversion_count(self, readout, noiseless_array):
        result = readout.read_full()
        assert result.conversions == noiseless_array.n_sites

    def test_image_matches_scene(self, readout, gradient_image):
        result = readout.read_full()
        assert np.max(np.abs(result.images - gradient_image)) < 1 / 255.0

    def test_energy_consistent_with_adc(self, readout):
        result = readout.read_full()
        assert result.adc_energy == pytest.approx(
            result.conversions * readout.adc.energy_per_conversion
        )

    def test_bytes_equal_conversions_for_8bit(self, readout):
        result = readout.read_full()
        assert result.data_bytes == result.conversions


class TestCompressedRead:
    def test_rgb_pooled_shape_and_count(self, readout):
        result = readout.read_compressed(4)
        assert result.images.shape == (8, 12, 3)
        assert result.conversions == 8 * 12 * 3

    def test_grayscale_pooled_shape_and_count(self, readout):
        result = readout.read_compressed(4, grayscale=True)
        assert result.images.shape == (8, 12)
        assert result.conversions == 8 * 12

    def test_k2_reduction_factor(self, readout, noiseless_array):
        """RGB pooled read converts k^2 x fewer samples."""
        full = readout.read_full()
        pooled = readout.read_compressed(4)
        assert full.conversions == pooled.conversions * 16

    def test_pooled_matches_digital_pooling(self, readout, gradient_image):
        from repro.sensor import digital_avg_pool

        result = readout.read_compressed(2)
        expected = digital_avg_pool(gradient_image, 2)
        assert np.max(np.abs(result.images - expected)) < 1 / 255.0

    def test_pooling_energy_accounted(self, readout):
        result = readout.read_compressed(2)
        assert result.pooling_energy > 0.0
        assert result.pooling_energy < result.adc_energy


class TestROIRead:
    def test_single_roi_crop(self, readout, gradient_image):
        result = readout.read_rois([(4, 2, 10, 6)])
        assert len(result.images) == 1
        assert result.images[0].shape == (6, 10, 3)
        expected = gradient_image[2:8, 4:14, :]
        assert np.max(np.abs(result.images[0] - expected)) < 1 / 255.0

    def test_conversions_sum_roi_areas(self, readout):
        result = readout.read_rois([(0, 0, 5, 4), (10, 10, 8, 8)])
        assert result.conversions == (5 * 4 + 8 * 8) * 3

    def test_out_of_bounds_roi_clipped(self, readout):
        result = readout.read_rois([(44, 28, 10, 10)])
        assert result.boxes == [(44, 28, 4, 4)]

    def test_fully_outside_roi_dropped(self, readout):
        result = readout.read_rois([(100, 100, 5, 5)])
        assert result.images == []
        assert result.conversions == 0

    def test_contained_roi_deduplicated(self, readout):
        result = readout.read_rois([(0, 0, 20, 20), (5, 5, 4, 4)])
        assert len(result.boxes) == 1
        assert result.boxes[0] == (0, 0, 20, 20)

    def test_dedup_can_be_disabled(self, readout):
        result = readout.read_rois(
            [(0, 0, 20, 20), (5, 5, 4, 4)], dedup_contained=False
        )
        assert len(result.boxes) == 2

    def test_accepts_roi_objects(self, readout):
        from repro.core import ROI

        result = readout.read_rois([ROI(1, 1, 6, 5)])
        assert result.boxes == [(1, 1, 6, 5)]


class TestHelpers:
    def test_clip_box_inside(self):
        assert clip_box((2, 3, 4, 5), 100, 100) == (2, 3, 4, 5)

    def test_clip_box_negative_origin(self):
        assert clip_box((-3, -2, 10, 10), 100, 100) == (0, 0, 7, 8)

    def test_clip_box_gone(self):
        assert clip_box((200, 0, 5, 5), 100, 100) is None

    def test_merge_covered_keeps_disjoint(self):
        boxes = [(0, 0, 5, 5), (10, 10, 5, 5)]
        assert sorted(merge_covered_boxes(boxes)) == sorted(boxes)

    def test_merge_covered_drops_nested(self):
        boxes = [(0, 0, 10, 10), (2, 2, 3, 3), (20, 0, 4, 4)]
        kept = merge_covered_boxes(boxes)
        assert (2, 2, 3, 3) not in kept
        assert len(kept) == 2


class TestNoiseAndMismatch:
    def test_adc_vref_mismatch_rejected(self, noiseless_array):
        with pytest.raises(ValueError):
            SensorReadout(noiseless_array, adc=ADCModel(v_ref=3.3))

    def test_temporal_noise_varies_per_read(self, gradient_image):
        arr = PixelArray.from_image(gradient_image, noise=NoiseModel(read_noise=5e-3))
        ro = SensorReadout(arr)
        a = ro.read_full().images
        b = ro.read_full().images
        assert not np.array_equal(a, b)

    def test_frame_seed_reproducible(self, gradient_image):
        arr = PixelArray.from_image(gradient_image, noise=NoiseModel(read_noise=5e-3))
        a = SensorReadout(arr, frame_seed=4).read_full().images
        b = SensorReadout(arr, frame_seed=4).read_full().images
        assert np.array_equal(a, b)
