"""Tests for grayscale conversion and the noise model."""

import numpy as np
import pytest

from repro.sensor import (
    LUMA_WEIGHTS,
    NoiseModel,
    analog_grayscale,
    digital_grayscale,
)


class TestGrayscale:
    def test_analog_is_unweighted_mean(self):
        img = np.zeros((2, 2, 3))
        img[:, :, 0] = 0.9
        assert np.allclose(analog_grayscale(img), 0.3)

    def test_digital_uses_luma_weights(self):
        img = np.zeros((2, 2, 3))
        img[:, :, 1] = 1.0  # pure green
        assert np.allclose(digital_grayscale(img), LUMA_WEIGHTS[1])

    def test_paths_agree_on_gray_input(self):
        img = np.full((3, 3, 3), 0.42)
        assert np.allclose(analog_grayscale(img), digital_grayscale(img))

    def test_paths_differ_on_chromatic_input(self):
        """The analog/digital grayscale gap the paper retrains around."""
        img = np.zeros((2, 2, 3))
        img[:, :, 2] = 1.0  # pure blue: mean=1/3, luma=0.114
        assert not np.allclose(analog_grayscale(img), digital_grayscale(img))

    def test_luma_weights_sum_to_one(self):
        assert LUMA_WEIGHTS.sum() == pytest.approx(1.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            analog_grayscale(np.zeros((4, 4)))


class TestNoiseModel:
    def test_noiseless_is_noiseless(self):
        model = NoiseModel.noiseless()
        assert model.is_noiseless()
        rng = np.random.default_rng(0)
        noise = model.temporal_noise(np.full((5, 5), 0.5), 1.0, rng)
        assert np.all(noise == 0.0)

    def test_fixed_pattern_deterministic(self):
        model = NoiseModel(seed=7)
        g1, o1 = model.fixed_pattern_maps((4, 4, 3))
        g2, o2 = model.fixed_pattern_maps((4, 4, 3))
        assert np.array_equal(g1, g2)
        assert np.array_equal(o1, o2)

    def test_gain_map_centered_at_one(self):
        model = NoiseModel(prnu=0.01, seed=3)
        gain, _ = model.fixed_pattern_maps((100, 100))
        assert abs(gain.mean() - 1.0) < 0.01

    def test_shot_noise_grows_with_signal(self):
        model = NoiseModel(read_noise=0.0, shot_noise_scale=1e-2, dsnu=0, prnu=0)
        rng = np.random.default_rng(1)
        dark = model.temporal_noise(np.full(20000, 0.01), 1.0, rng)
        bright = model.temporal_noise(np.full(20000, 1.0), 1.0, rng)
        assert bright.std() > 3 * dark.std()

    def test_read_noise_magnitude(self):
        model = NoiseModel(read_noise=1e-3, shot_noise_scale=0.0, dsnu=0, prnu=0)
        rng = np.random.default_rng(2)
        noise = model.temporal_noise(np.zeros(50000), 1.0, rng)
        assert noise.std() == pytest.approx(1e-3, rel=0.05)
