"""SweepSpec: round-trips, validation, grid expansion, tiny mode."""

import json

import pytest

from repro.experiments import (
    PAPER_SWEEPS,
    REPORT_KEYS,
    SweepAxis,
    SweepSpec,
    load_sweep,
)
from repro.experiments.sweep import TINY_FRAMES, TINY_RESOLUTION
from repro.service import ComponentRef, ScenarioSpec, SpecError, SystemSpec


def small_sweep(**kwargs) -> SweepSpec:
    defaults = dict(
        name="unit",
        system=SystemSpec(detector=ComponentRef("ground-truth")),
        scenario=ScenarioSpec(
            source=ComponentRef("pedestrian", {"resolution": [160, 120]}),
            n_frames=2,
            seed=3,
        ),
        axes=(SweepAxis("system.config.pool_k", (2, 4)),),
        executor="serial",
        workers=1,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestRoundTrip:
    def test_exact_dict_round_trip(self):
        spec = small_sweep(
            baseline=SystemSpec(system="conventional"),
            replicates=3,
            report="fig7_transfer",
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_exact_json_round_trip(self):
        spec = small_sweep()
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_every_paper_preset_round_trips(self):
        for factory in PAPER_SWEEPS.values():
            spec = factory()
            assert SweepSpec.from_json(spec.to_json()) == spec

    def test_list_valued_axis_round_trips(self):
        spec = small_sweep(
            axes=(
                SweepAxis(
                    "scenario.source.params.resolution",
                    ([160, 120], [320, 240]),
                ),
            )
        )
        again = SweepSpec.from_dict(spec.to_dict())
        assert again == spec
        assert hash(again.axes[0]) == hash(spec.axes[0])

    def test_load_sweep_from_file(self, tmp_path):
        spec = small_sweep()
        path = tmp_path / "sweep.json"
        path.write_text(spec.to_json())
        assert load_sweep(path) == spec


class TestValidation:
    def test_unknown_field_named(self):
        with pytest.raises(SpecError, match="sweep: unknown field"):
            SweepSpec.from_dict({"grid": []})

    def test_axis_path_must_be_dotted(self):
        with pytest.raises(SpecError, match="axis.path"):
            SweepAxis("pool_k", (2,))

    def test_axis_path_must_root_at_system_or_scenario(self):
        with pytest.raises(SpecError, match="rooted"):
            SweepAxis("service.workers", (1,))

    def test_axis_values_must_be_non_empty(self):
        with pytest.raises(SpecError, match="non-empty"):
            SweepAxis("system.config.pool_k", ())

    def test_scenario_name_cannot_be_swept(self):
        with pytest.raises(SpecError, match="scenario.name"):
            SweepAxis("scenario.name", ("a", "b"))

    def test_duplicate_axis_paths_rejected(self):
        axis = SweepAxis("system.config.pool_k", (2,))
        with pytest.raises(SpecError, match="duplicate axis path"):
            small_sweep(axes=(axis, SweepAxis("system.config.pool_k", (4,))))

    def test_bad_replicates_and_workers(self):
        with pytest.raises(SpecError, match="replicates"):
            small_sweep(replicates=0)
        with pytest.raises(SpecError, match="workers"):
            small_sweep(workers=0)

    def test_unknown_executor_and_report(self):
        with pytest.raises(SpecError, match="executor"):
            small_sweep(executor="gpu")
        with pytest.raises(SpecError, match="report"):
            small_sweep(report="fig99")

    def test_report_keys_cover_paper_reports(self):
        from repro.experiments import PAPER_REPORTS

        assert set(PAPER_REPORTS) == set(REPORT_KEYS)

    def test_bad_axis_value_names_cell(self):
        spec = small_sweep(axes=(SweepAxis("system.config.pool_k", (2, 0)),))
        with pytest.raises(SpecError, match=r"sweep cell \[system.config.pool_k=0\]"):
            spec.cells()

    def test_axis_through_non_dict_segment_named(self):
        spec = small_sweep(axes=(SweepAxis("scenario.seed.low", (1,)),))
        with pytest.raises(SpecError, match="not a nested object"):
            spec.cells()

    def test_load_sweep_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="not valid JSON"):
            load_sweep(path)

    def test_load_sweep_missing_file_raises_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read sweep file"):
            load_sweep(tmp_path / "absent.json")

    def test_name_must_be_filename_safe(self):
        for name in ("../evil", "a/b", "a\\b", "..", "has space"):
            with pytest.raises(SpecError, match="sweep.name"):
                small_sweep(name=name)

    def test_seed_axis_values_strictly_validated(self):
        # int() truncation must never silently change the experiment:
        # non-int axis values fail with the cell and field named.
        for bad in (1.5, "7", True):
            spec = small_sweep(axes=(SweepAxis("scenario.seed", (bad,)),))
            with pytest.raises(SpecError, match="scenario.seed"):
                spec.cells()


class TestExpansion:
    def test_grid_size_is_axes_product_times_replicates(self):
        spec = small_sweep(
            axes=(
                SweepAxis("system.config.pool_k", (2, 4, 8)),
                SweepAxis("system.config.grayscale_stage1", (False, True)),
            ),
            replicates=2,
        )
        assert spec.grid_size == 12
        assert len(spec.cells()) == 12

    def test_overrides_applied_to_cell_specs(self):
        spec = small_sweep(axes=(SweepAxis("system.config.pool_k", (2, 4)),))
        cells = spec.cells()
        assert [c.system.config.pool_k for c in cells] == [2, 4]
        # untouched fields come from the base
        assert all(c.scenario.n_frames == 2 for c in cells)
        assert [c.label for c in cells] == ["pool_k=2", "pool_k=4"]

    def test_component_slot_axis(self):
        spec = small_sweep(
            axes=(
                SweepAxis(
                    "scenario.policy",
                    ("none", {"name": "temporal-reuse", "params": {"max_reuse": 3}}),
                ),
            )
        )
        cells = spec.cells()
        assert cells[0].scenario.policy.name == "none"
        assert cells[1].scenario.policy.name == "temporal-reuse"
        assert cells[1].scenario.policy.params == {"max_reuse": 3}

    def test_replicates_offset_scenario_seed(self):
        spec = small_sweep(replicates=3, axes=())
        cells = spec.cells()
        assert [c.scenario.seed for c in cells] == [3, 4, 5]
        assert [c.replicate for c in cells] == [0, 1, 2]
        assert [c.label for c in cells] == ["base/r0", "base/r1", "base/r2"]

    def test_cells_do_not_alias_list_values(self):
        resolution = [160, 120]
        spec = small_sweep(
            axes=(SweepAxis("scenario.source.params.resolution", (resolution,)),)
        )
        cell = spec.cells()[0]
        cell.scenario.source.params["resolution"].append(999)
        # the spec's own axis values are untouched
        assert spec.axes[0].values[0] == [160, 120]
        assert spec.cells()[0].scenario.source.params["resolution"] == [160, 120]

    def test_coordinate_lookup(self):
        spec = small_sweep()
        cell = spec.cells()[1]
        assert cell.coordinate("system.config.pool_k") == 4
        assert cell.coordinate("no.such.path", "absent") == "absent"

    def test_baseline_scenario_strips_policy_and_batching(self):
        spec = small_sweep()
        scenario = ScenarioSpec(
            name="cell",
            source=ComponentRef("pedestrian", {"resolution": [160, 120]}),
            n_frames=2,
            seed=5,
            policy=ComponentRef("temporal-reuse", {"max_reuse": 3}),
            keep_outcomes=True,
        )
        base = spec.baseline_scenario(scenario)
        assert base.policy.name == "none"
        assert base.batch_size == 1
        assert not base.keep_outcomes
        assert base.name == ""
        # the clip identity is preserved
        assert (base.source, base.n_frames, base.seed) == (
            scenario.source, scenario.n_frames, scenario.seed,
        )


class TestTiny:
    def test_tiny_caps_frames_resolution_replicates(self):
        spec = PAPER_SWEEPS["paper_fig7_transfer"]()
        tiny = spec.tiny()
        assert tiny.name == "paper_fig7_transfer-tiny"
        assert tiny.replicates == 1
        assert tiny.scenario.n_frames <= TINY_FRAMES
        assert tiny.scenario.source.params["resolution"] == list(TINY_RESOLUTION)
        # still a valid, round-tripping spec
        assert SweepSpec.from_json(tiny.to_json()) == tiny

    def test_tiny_dedupes_collapsed_resolution_axis(self):
        spec = PAPER_SWEEPS["paper_fig6_memory"]()
        tiny = spec.tiny()
        axis = next(
            a for a in tiny.axes if a.path == "scenario.source.params.resolution"
        )
        assert list(axis.values) == [[160, 120]]
        assert tiny.grid_size < spec.grid_size

    def test_tiny_is_idempotent(self):
        spec = PAPER_SWEEPS["paper_fig8_energy"]()
        assert spec.tiny().tiny() == spec.tiny()

    def test_tiny_truncates_frame_seeds_axis_values(self):
        spec = small_sweep(
            scenario=ScenarioSpec(
                source=ComponentRef("pedestrian", {"resolution": [160, 120]}),
                n_frames=8,
                seed=3,
            ),
            axes=(
                SweepAxis(
                    "scenario.frame_seeds",
                    (list(range(8)), list(range(100, 108))),
                ),
            ),
        )
        tiny = spec.tiny()
        assert tiny.scenario.n_frames == TINY_FRAMES
        assert [list(v) for v in tiny.axes[0].values] == [
            [0, 1, 2, 3], [100, 101, 102, 103],
        ]
        # valid full-size sweeps stay valid under --tiny
        assert len(tiny.cells()) == 2


class TestShippedExamples:
    def test_examples_match_presets(self):
        """examples/sweeps/*.json are exactly the serialized presets."""
        from pathlib import Path

        sweeps_dir = Path(__file__).resolve().parents[2] / "examples" / "sweeps"
        files = sorted(p.stem for p in sweeps_dir.glob("*.json"))
        assert files == sorted(PAPER_SWEEPS)
        for name, factory in PAPER_SWEEPS.items():
            shipped = json.loads((sweeps_dir / f"{name}.json").read_text())
            assert shipped == factory().to_dict(), (
                f"{name}: regenerate with "
                "`python -m repro.experiments.presets examples/sweeps`"
            )

    def test_shipped_examples_expand(self):
        from pathlib import Path

        sweeps_dir = Path(__file__).resolve().parents[2] / "examples" / "sweeps"
        for path in sweeps_dir.glob("*.json"):
            spec = load_sweep(path)
            assert spec.grid_size >= 2
            for cell in spec.cells():
                cell.scenario.validate_components()
