"""Report builders: paper trends, markdown/JSON artifacts, determinism."""

import json

import pytest

from repro.bench import Table
from repro.experiments import (
    PAPER_SWEEPS,
    SweepRunner,
    assert_trends,
    build_report,
    write_report,
)
from repro.experiments.report import TrendCheck
from repro.experiments.runner import SweepResult


def run_tiny(name: str):
    spec = PAPER_SWEEPS[name]().tiny()
    return SweepRunner(spec, executor="serial", workers=1).run()


@pytest.fixture(scope="module")
def fig7_result():
    return run_tiny("paper_fig7_transfer")


class TestPaperReports:
    def test_fig7_trends_pass(self, fig7_result):
        report = build_report(fig7_result)
        assert report.name == "paper_fig7_transfer-tiny"
        names = [t.name for t in report.trends]
        assert "transfer_monotone_in_k" in names
        assert "reduction_monotone_in_k" in names
        assert_trends(report)

    def test_fig8_trends_pass(self):
        report = build_report(run_tiny("paper_fig8_energy"))
        names = [t.name for t in report.trends]
        assert "energy_monotone_in_k" in names
        assert "grayscale_cheaper_than_rgb" in names
        assert_trends(report)

    def test_fig6_trends_pass(self):
        report = build_report(run_tiny("paper_fig6_memory"))
        names = [t.name for t in report.trends]
        assert "memory_monotone_in_k" in names
        assert "baseline_dominates_every_cell" in names
        assert_trends(report)

    def test_table2_parity_passes(self):
        report = build_report(run_tiny("paper_table2_accuracy"))
        parity = next(t for t in report.trends if t.name == "dtype_argmax_parity")
        assert parity.passed
        assert report.payload["aggregates"]["compared_predictions"] > 0

    def test_markdown_structure(self, fig7_result):
        report = build_report(fig7_result)
        assert report.markdown.startswith("# Fig. 7")
        assert "## Trend checks" in report.markdown
        assert "## Per-cell records" in report.markdown
        assert "- [x] `transfer_monotone_in_k`" in report.markdown

    def test_payload_embeds_spec_and_records(self, fig7_result):
        report = build_report(fig7_result)
        assert report.payload["sweep"] == fig7_result.spec.to_dict()
        assert len(report.payload["records"]) == len(fig7_result.records)
        assert report.payload["aggregates"]["median_transfer_bytes_by_k"]

    def test_generic_report_when_no_key(self):
        import dataclasses

        result = run_tiny("paper_fig7_transfer")
        generic_spec = dataclasses.replace(result.spec, report="")
        generic = build_report(
            SweepResult(spec=generic_spec, records=result.records)
        )
        assert generic.trends == ()
        assert "## Per-cell records" in generic.markdown

    def test_report_requires_its_axis(self, fig7_result):
        import dataclasses

        bad_spec = PAPER_SWEEPS["paper_table2_accuracy"]().tiny()
        mismatched = SweepResult(
            spec=dataclasses.replace(bad_spec, report="fig7_transfer"),
            records=(),
        )
        with pytest.raises(ValueError, match="needs an axis"):
            build_report(mismatched)

    def test_single_k_monotone_check_fails_not_vacuously_passes(self):
        import dataclasses

        from repro.experiments import SweepAxis, SweepRunner

        spec = PAPER_SWEEPS["paper_fig7_transfer"]().tiny()
        one_k = dataclasses.replace(
            spec, axes=(SweepAxis("system.config.pool_k", (4,)),)
        )
        report = build_report(SweepRunner(one_k, executor="serial", workers=1).run())
        check = next(
            t for t in report.trends if t.name == "transfer_monotone_in_k"
        )
        assert not check.passed
        assert "nothing to compare" in check.detail

    def test_fig8_grayscale_check_fails_without_a_pair(self):
        # a grayscale axis with only one mode compares nothing: the
        # check must fail loudly, never pass vacuously
        import dataclasses

        from repro.experiments import SweepAxis, SweepRunner

        spec = PAPER_SWEEPS["paper_fig8_energy"]().tiny()
        axes = tuple(
            dataclasses.replace(a, values=(True,))
            if a.path == "system.config.grayscale_stage1" else a
            for a in spec.axes
        )
        lone = dataclasses.replace(spec, axes=axes)
        report = build_report(SweepRunner(lone, executor="serial", workers=1).run())
        check = next(
            t for t in report.trends if t.name == "grayscale_cheaper_than_rgb"
        )
        assert not check.passed
        assert "no grayscale/RGB pair" in check.detail

    def test_table2_requires_float64_reference(self):
        import dataclasses

        from repro.experiments import SweepAxis

        result = run_tiny("paper_table2_accuracy")
        no_ref = dataclasses.replace(
            result.spec,
            axes=(SweepAxis("system.compute_dtype", ("float32",)),),
        )
        with pytest.raises(ValueError, match="float64"):
            build_report(SweepResult(spec=no_ref, records=result.records))

    def test_trend_check_round_trips_through_to_dict(self):
        check = TrendCheck("transfer_monotone_in_k", True, "430 > 187 kB")
        assert TrendCheck.from_dict(check.to_dict()) == check

    def test_assert_trends_raises_listing_failures(self):
        report_like = build_report(run_tiny("paper_fig7_transfer"))
        broken = type(report_like)(
            name=report_like.name,
            title=report_like.title,
            payload=report_like.payload,
            markdown=report_like.markdown,
            trends=(TrendCheck("made_up", False, "evidence"),),
        )
        with pytest.raises(AssertionError, match="made_up"):
            assert_trends(broken)


class TestArtifacts:
    def test_write_report_emits_json_and_markdown(self, fig7_result, tmp_path):
        report = build_report(fig7_result)
        json_path, md_path = write_report(report, tmp_path / "out")
        assert json_path.name == "paper_fig7_transfer-tiny.json"
        assert md_path.name == "paper_fig7_transfer-tiny.md"
        payload = json.loads(json_path.read_text())
        assert payload == report.payload
        assert md_path.read_text().rstrip("\n") == report.markdown

    def test_artifacts_deterministic_across_runs(self, fig7_result):
        again = run_tiny("paper_fig7_transfer")
        a, b = build_report(fig7_result), build_report(again)
        assert a.markdown == b.markdown
        assert json.dumps(a.payload, sort_keys=True) == json.dumps(
            b.payload, sort_keys=True
        )


class TestMarkdownTable:
    def test_to_markdown_shape_and_alignment(self):
        table = Table("t", ["name", "value"], aligns=["l", "r"])
        table.add_row("a", 1)
        table.add_row("b", 2.5)
        lines = table.to_markdown().splitlines()
        assert lines[0] == "| name | value |"
        assert lines[1] == "| :--- | ---: |"
        assert lines[2] == "| a | 1 |"
        assert lines[3] == "| b | 2.5 |"
