"""SweepRunner: records, baselines, caching, executor bit-identity."""

import pytest

from repro.experiments import SweepAxis, SweepRunner, SweepSpec, run_sweep
from repro.experiments.runner import METRIC_NAMES
from repro.service import (
    ComponentRef,
    EngineCache,
    Engine,
    ScenarioSpec,
    SystemSpec,
    ThreadExecutor,
)


def transfer_sweep(replicates: int = 1, baseline: bool = True) -> SweepSpec:
    return SweepSpec(
        name="unit_transfer",
        system=SystemSpec(detector=ComponentRef("ground-truth")),
        scenario=ScenarioSpec(
            source=ComponentRef("pedestrian", {"resolution": [160, 120]}),
            n_frames=3,
            seed=5,
        ),
        axes=(SweepAxis("system.config.pool_k", (2, 4, 8)),),
        baseline=(
            SystemSpec(system="conventional", detector=ComponentRef("ground-truth"))
            if baseline
            else None
        ),
        replicates=replicates,
        executor="serial",
        workers=1,
    )


class TestRecords:
    def test_records_in_grid_order_with_metrics(self):
        result = run_sweep(transfer_sweep())
        assert len(result.records) == 3
        for record in result.records:
            assert set(record.metrics) == set(METRIC_NAMES)
            assert record.metrics["n_frames"] == 3
        ks = [r.cell.coordinate("system.config.pool_k") for r in result.records]
        assert ks == [2, 4, 8]

    def test_transfer_decreases_with_k(self):
        result = run_sweep(transfer_sweep())
        transfer = [r.metrics["total_bytes"] for r in result.records]
        assert transfer[0] > transfer[1] > transfer[2]

    def test_baseline_and_reductions(self):
        result = run_sweep(transfer_sweep())
        for record in result.records:
            assert record.baseline is not None
            # one shared clip: the baseline saw the very same frames
            assert record.baseline["n_frames"] == record.metrics["n_frames"]
            reductions = record.reductions
            assert reductions["transfer_reduction"] > 1.0
            assert reductions["memory_reduction"] > 1.0

    def test_no_baseline_means_no_reductions(self):
        result = run_sweep(transfer_sweep(baseline=False))
        for record in result.records:
            assert record.baseline is None
            assert record.reductions == {}

    def test_replicates_differ_but_are_deterministic(self):
        result = run_sweep(transfer_sweep(replicates=2))
        assert len(result.records) == 6
        by_label = {r.cell.label: r.metrics for r in result.records}
        # replicate 1 re-seeds the clip: genuinely different frames
        assert by_label["pool_k=2/r0"] != by_label["pool_k=2/r1"]
        again = run_sweep(transfer_sweep(replicates=2))
        assert [r.metrics for r in again] == [r.metrics for r in result]

    def test_to_dict_is_deterministic_plain_data(self):
        import json

        result = run_sweep(transfer_sweep())
        data = result.to_dict()
        assert json.loads(json.dumps(data)) == data
        assert "wall_time_s" not in json.dumps(data)

    def test_labels_captured_when_outcomes_kept(self):
        spec = SweepSpec(
            name="unit_labels",
            system=SystemSpec(
                detector=ComponentRef("ground-truth"),
                classifier=ComponentRef("tiny-cnn", {"input_size": 16}),
            ),
            scenario=ScenarioSpec(
                source=ComponentRef("pedestrian", {"resolution": [160, 120]}),
                n_frames=2,
                seed=5,
                keep_outcomes=True,
            ),
            axes=(SweepAxis("system.compute_dtype", ("float64", "float32")),),
            executor="serial",
            workers=1,
        )
        result = run_sweep(spec)
        f64, f32 = result.records
        assert f64.labels is not None and len(f64.labels) > 0
        # Table 2 parity: identical argmax across compute dtypes
        assert f64.labels == f32.labels


class TestExecutionEquivalence:
    def test_thread_executor_bit_identical_to_serial(self):
        spec = transfer_sweep(replicates=2)
        serial = run_sweep(spec, cache=EngineCache.disabled())
        threaded = run_sweep(spec, executor="thread", workers=4)
        assert [r.metrics for r in threaded] == [r.metrics for r in serial]
        assert [r.baseline for r in threaded] == [r.baseline for r in serial]

    def test_warm_cache_repeat_is_pure_hits_and_identical(self):
        spec = transfer_sweep()
        cache = EngineCache()
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert [r.metrics for r in second] == [r.metrics for r in first]
        assert second.cache.results.misses == 0
        assert second.cache.results.hits > 0

    def test_borrowed_executor_stays_open(self):
        spec = transfer_sweep()
        pool = ThreadExecutor(workers=2)
        try:
            first = run_sweep(spec, executor=pool)
            second = run_sweep(spec, executor=pool)
            assert pool._pool is not None or pool.workers == 2
            assert [r.metrics for r in first] == [r.metrics for r in second]
            assert first.executor == "thread"
        finally:
            pool.close()

    def test_cells_match_engine_run_exactly(self):
        """A sweep cell is exactly Engine.run on the cell's specs."""
        spec = transfer_sweep()
        result = run_sweep(spec, cache=EngineCache.disabled())
        for cell, record in zip(spec.cells(), result.records):
            fresh = Engine(cell.system, cache=EngineCache.disabled()).run(
                cell.scenario
            )
            for name in METRIC_NAMES:
                assert record.metrics[name] == getattr(fresh.outcome, name)

    def test_shared_clip_rendered_once_across_systems(self):
        """The clip tier is system-agnostic: one render serves every k."""
        spec = transfer_sweep()
        cache = EngineCache()
        run_sweep(spec, cache=cache)
        stats = cache.stats().clips
        # 3 hirise cells + 1 baseline batch over one distinct clip
        assert stats.misses == 1
        assert stats.hits >= 3

    def test_profile_attaches_phase_breakdowns(self):
        result = run_sweep(transfer_sweep(baseline=False), profile=True)
        assert result.profile is not None
        for record in result.records:
            assert record.profile is not None
            assert record.profile.get("stage1.read") is not None

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(transfer_sweep(), workers=0)
