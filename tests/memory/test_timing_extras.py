"""Extra coverage: MACs accounting and graph summaries for the model zoo."""

import pytest

from repro.memory import (
    Conv,
    Dense,
    DepthwiseConv,
    ModelGraph,
    TensorShape,
    analyze,
    mcunetv2_classifier,
    mcunetv2_detector,
    mobilenetv2,
)


class TestMACAccounting:
    def test_depthwise_cheaper_than_full_conv(self):
        shape = [TensorShape(32, 32, 64)]
        full = Conv(64, kernel=3).macs(shape)
        depthwise = DepthwiseConv(kernel=3).macs(shape)
        assert depthwise * 32 < full  # 64x fewer MACs per output channel

    def test_total_macs_positive_and_ordered(self):
        small = mcunetv2_classifier((56, 56)).total_macs()
        large = mobilenetv2((56, 56)).total_macs()
        assert 0 < small < large

    def test_macs_scale_quadratically_with_input(self):
        m1 = mobilenetv2((28, 28)).total_macs()
        m2 = mobilenetv2((56, 56)).total_macs()
        assert 3.0 < m2 / m1 < 5.0  # ~4x for 2x the side

    def test_dense_macs(self):
        assert Dense(10).macs([TensorShape(1, 1, 64)]) == 640


class TestZooStructure:
    def test_mobilenet_block_count(self):
        """MobileNetV2 has 17 inverted-residual blocks + stem + head."""
        g = mobilenetv2((112, 112))
        projects = [n for n in g.nodes if n.name.endswith("_project")]
        assert len(projects) == 17

    def test_residual_adds_only_on_matching_shapes(self):
        g = mobilenetv2((112, 112))
        adds = [n for n in g.nodes if n.name.endswith("_add")]
        for node in adds:
            a, b = (g.shape(t) for t in node.inputs)
            assert (a.h, a.w, a.c) == (b.h, b.w, b.c)

    def test_detector_head_channels(self):
        g = mcunetv2_detector((240, 320), n_classes=1)
        assert g.output_shape.c == 6  # 5 + 1 class

    def test_classifier_logits(self):
        g = mcunetv2_classifier((112, 112), n_classes=7)
        assert g.output_shape.c == 7
        assert (g.output_shape.h, g.output_shape.w) == (1, 1)

    def test_reports_have_peak_node(self):
        report = analyze(mcunetv2_classifier((56, 56)))
        assert report.peak_node
        assert report.per_node_bytes
        peak_from_trace = max(v for _, v in report.per_node_bytes)
        assert peak_from_trace == report.peak_sram_bytes
