"""Tests for the op-graph memory analyzer and model zoo."""

import pytest

from repro.memory import (
    Activation,
    Add,
    Conv,
    Dense,
    DepthwiseConv,
    GlobalPool,
    GraphError,
    INPUT,
    MCUNETV2_PATCH_OPS,
    ModelGraph,
    Pool,
    STM32H743,
    TensorShape,
    analyze,
    analyze_patched,
    mcunetv2_classifier,
    mcunetv2_detector,
    mobilenetv2,
)


class TestTensorShape:
    def test_elems_and_bytes(self):
        t = TensorShape(4, 5, 3)
        assert t.elems == 60
        assert t.bytes(1) == 60
        assert t.bytes(4) == 240

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            TensorShape(0, 5, 3)


class TestOps:
    def test_conv_same_stride2(self):
        out = Conv(16, kernel=3, stride=2).output_shape([TensorShape(33, 33, 3)])
        assert (out.h, out.w, out.c) == (17, 17, 16)

    def test_conv_params(self):
        conv = Conv(8, kernel=3)
        assert conv.weight_params([TensorShape(10, 10, 4)]) == 3 * 3 * 4 * 8 + 8

    def test_conv_macs(self):
        conv = Conv(2, kernel=3, stride=1)
        macs = conv.macs([TensorShape(4, 4, 3)])
        assert macs == 4 * 4 * 2 * 9 * 3

    def test_depthwise_preserves_channels(self):
        out = DepthwiseConv(kernel=3, stride=2).output_shape([TensorShape(10, 10, 7)])
        assert out.c == 7

    def test_pool_valid_semantics(self):
        out = Pool(kernel=2).output_shape([TensorShape(9, 9, 4)])
        assert (out.h, out.w) == (4, 4)

    def test_global_pool(self):
        out = GlobalPool().output_shape([TensorShape(7, 7, 64)])
        assert (out.h, out.w, out.c) == (1, 1, 64)

    def test_dense_params(self):
        dense = Dense(10)
        assert dense.weight_params([TensorShape(1, 1, 64)]) == 64 * 10 + 10

    def test_add_shape_check(self):
        with pytest.raises(ValueError):
            Add().output_shape([TensorShape(2, 2, 3), TensorShape(2, 2, 4)])


class TestModelGraph:
    def test_default_chaining(self):
        g = ModelGraph("t", TensorShape(8, 8, 3))
        g.add("c1", Conv(4, 3, 2))
        g.add("c2", Conv(8, 3, 2))
        assert g.output == "c2"
        assert g.output_shape.c == 8

    def test_duplicate_node_rejected(self):
        g = ModelGraph("t", TensorShape(8, 8, 3))
        g.add("c1", Conv(4))
        with pytest.raises(GraphError):
            g.add("c1", Conv(4))

    def test_unknown_tensor_rejected(self):
        g = ModelGraph("t", TensorShape(8, 8, 3))
        with pytest.raises(GraphError):
            g.add("c1", Conv(4), ["missing"])

    def test_residual_wiring(self):
        g = ModelGraph("t", TensorShape(8, 8, 4))
        t1 = g.add("c1", Conv(4))
        t2 = g.add("c2", Conv(4), [t1])
        g.add("add", Add(), [t1, t2])
        assert g.output_shape.c == 4

    def test_summary_mentions_nodes(self):
        g = ModelGraph("demo", TensorShape(8, 8, 3))
        g.add("c1", Conv(4))
        assert "c1" in g.summary()
        assert "total params" in g.summary()


class TestAnalyzer:
    def test_linear_chain_peak(self):
        """Peak = input + largest single output for a simple chain."""
        g = ModelGraph("chain", TensorShape(10, 10, 3))  # input 300 B
        g.add("c1", Conv(8, 3, 1))  # 800 B
        g.add("c2", Conv(2, 3, 1))  # 200 B
        report = analyze(g)
        # c1 executes with input (300) + output (800) live = 1100.
        assert report.peak_sram_bytes == 1100
        assert report.peak_node == "c1"

    def test_residual_extends_lifetime(self):
        """A skip connection keeps its tensor alive across the block."""
        g = ModelGraph("res", TensorShape(10, 10, 4))  # 400 B
        t_in = g.add("c1", Conv(4))  # 400
        g.add("c2", Conv(4), [t_in])  # 400
        g.add("add", Add(), [t_in, "c2"])  # 400
        report = analyze(g)
        # During c2: c1 (400, still needed by add) + c2 out (400) + input gone.
        assert report.peak_sram_bytes >= 1200

    def test_activation_fused_in_place(self):
        g1 = ModelGraph("with-act", TensorShape(10, 10, 4))
        g1.add("c1", Conv(8))
        g1.add("relu", Activation(), ["c1"])
        g2 = ModelGraph("no-act", TensorShape(10, 10, 4))
        g2.add("c1", Conv(8))
        assert analyze(g1).peak_sram_bytes == analyze(g2).peak_sram_bytes

    def test_exclude_input_option(self):
        g = ModelGraph("t", TensorShape(10, 10, 3))
        g.add("c1", Conv(4))
        with_input = analyze(g, include_input=True)
        without = analyze(g, include_input=False)
        assert with_input.peak_sram_bytes - without.peak_sram_bytes == 300

    def test_dtype_scaling(self):
        g = ModelGraph("t", TensorShape(10, 10, 3))
        g.add("c1", Conv(4))
        assert analyze(g, dtype_bytes=4).peak_sram_bytes == 4 * analyze(g).peak_sram_bytes

    def test_flash_is_param_bytes(self):
        g = ModelGraph("t", TensorShape(10, 10, 3))
        g.add("c1", Conv(4, kernel=3))
        assert analyze(g).flash_bytes == 3 * 3 * 3 * 4 + 4


class TestPatchedAnalysis:
    def test_patching_reduces_detector_peak(self):
        graph = mcunetv2_detector((240, 320))
        full = analyze(graph)
        patched = analyze_patched(mcunetv2_detector((240, 320)), MCUNETV2_PATCH_OPS)
        assert patched.peak_sram_bytes < full.peak_sram_bytes / 2

    def test_patch_bounds_validation(self):
        graph = mcunetv2_detector((240, 320))
        with pytest.raises(ValueError):
            analyze_patched(graph, 0)
        with pytest.raises(ValueError):
            analyze_patched(graph, 10_000)


class TestZoo:
    def test_mobilenetv2_params_near_reference(self):
        """~2.2M backbone params at width 1.0 with a 7-class head."""
        g = mobilenetv2((112, 112), n_classes=7)
        assert 1.8e6 < g.total_params() < 3.0e6

    def test_peak_grows_with_resolution(self):
        peaks = [
            analyze(mobilenetv2((s, s))).peak_sram_bytes for s in (14, 28, 56, 112)
        ]
        assert peaks == sorted(peaks)
        # Roughly quadratic growth: x64 pixels -> >x16 memory.
        assert peaks[-1] > peaks[0] * 16

    def test_mcunet_smaller_than_mobilenet(self):
        for size in (28, 112):
            mcu = analyze(mcunetv2_classifier((size, size))).peak_sram_bytes
            mob = analyze(mobilenetv2((size, size))).peak_sram_bytes
            assert mcu < mob

    def test_detector_patched_fits_stm32_with_image(self):
        """Paper Sec 4.2: stage-1 (337 kB) + pooled image fit in 512 kB."""
        patched = analyze_patched(mcunetv2_detector((240, 320)), MCUNETV2_PATCH_OPS)
        assert STM32H743.fits([patched])

    def test_width_multiplier_scales_params(self):
        narrow = mobilenetv2((56, 56), width_mult=0.5).total_params()
        wide = mobilenetv2((56, 56), width_mult=1.0).total_params()
        assert narrow < wide


class TestMCUProfiles:
    def test_fits_respects_sram(self):
        g = ModelGraph("big", TensorShape(512, 512, 3))
        g.add("c1", Conv(16))
        report = analyze(g)
        assert not STM32H743.fits([report])

    def test_extra_sram_counted(self):
        g = ModelGraph("small", TensorShape(8, 8, 3))
        g.add("c1", Conv(4))
        report = analyze(g)
        assert STM32H743.fits([report])
        assert not STM32H743.fits([report], extra_sram_bytes=600 * 1024)

    def test_headroom(self):
        g = ModelGraph("small", TensorShape(8, 8, 3))
        g.add("c1", Conv(4))
        report = analyze(g)
        assert STM32H743.sram_headroom([report]) > 500 * 1024
