"""Property-based tests for the signal chain: pooling, ADC, grayscale, boxes."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.eval.boxes import iou_matrix
from repro.sensor import ADCModel, AnalogPoolingModel, analog_grayscale, block_reduce_mean

images = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(4, 24), st.integers(4, 24), st.just(3)
    ),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


class TestPoolingProperties:
    @given(images, st.sampled_from([1, 2, 4]))
    @settings(max_examples=50, deadline=None)
    def test_block_mean_preserves_range(self, img, k):
        out = block_reduce_mean(img, k)
        assert out.min() >= img.min() - 1e-12
        assert out.max() <= img.max() + 1e-12

    @given(images, st.sampled_from([2, 4]))
    @settings(max_examples=50, deadline=None)
    def test_block_mean_preserves_mean_when_divisible(self, img, k):
        h = (img.shape[0] // k) * k
        w = (img.shape[1] // k) * k
        cropped = img[:h, :w]
        out = block_reduce_mean(cropped, k)
        assert np.isclose(out.mean(), cropped.mean())

    @given(images, st.sampled_from([1, 2, 4]))
    @settings(max_examples=50, deadline=None)
    def test_pooling_linearity(self, img, k):
        """Ideal analog pooling is linear: pool(a*x) = a*pool(x)."""
        model = AnalogPoolingModel.ideal()
        a = 0.5
        lhs = model.pool(a * img, k, vdd=1.0)
        rhs = a * model.pool(img, k, vdd=1.0)
        assert np.allclose(lhs, rhs, atol=1e-12)

    @given(images)
    @settings(max_examples=50, deadline=None)
    def test_grayscale_bounded_by_channel_extremes(self, img):
        gray = analog_grayscale(img)
        assert np.all(gray >= img.min(axis=2) - 1e-12)
        assert np.all(gray <= img.max(axis=2) + 1e-12)

    @given(images, st.sampled_from([1, 2]))
    @settings(max_examples=30, deadline=None)
    def test_grayscale_pool_commutes_for_ideal_circuit(self, img, k):
        """Channel-merge then pool == pool then channel-merge (both are means)."""
        model = AnalogPoolingModel.ideal()
        merged_first = model.pool(img, k, vdd=1.0, grayscale=True)
        pooled_first = model.pool(img, k, vdd=1.0, grayscale=False).mean(axis=2)
        assert np.allclose(merged_first, pooled_first, atol=1e-12)


class TestADCProperties:
    @given(
        hnp.arrays(np.float64, st.integers(1, 64), elements=st.floats(0.0, 1.0)),
        st.integers(2, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantization_error_bounded(self, v, bits):
        adc = ADCModel(bits=bits)
        err = np.abs(adc.digitize(v) - v)
        assert np.all(err <= adc.lsb / 2 + 1e-12)

    @given(
        hnp.arrays(np.float64, st.integers(2, 32), elements=st.floats(0.0, 1.0)),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantization_monotone(self, v):
        """Sorting order is preserved by the quantizer."""
        adc = ADCModel(bits=8)
        order = np.argsort(v, kind="stable")
        codes = adc.convert(v).astype(int)
        assert np.all(np.diff(codes[order]) >= 0)

    @given(st.integers(0, 10_000_000))
    @settings(max_examples=30, deadline=None)
    def test_energy_nonnegative_and_linear(self, n):
        adc = ADCModel()
        assert adc.energy(n) >= 0
        assert np.isclose(adc.energy(2 * n), 2 * adc.energy(n))


# Box coordinates/sizes well away from float underflow: a 1e-269-sized box
# has area 0 in float64, which is degenerate by definition.
boxes_arrays = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 8), st.just(4)),
    elements=st.floats(0.001, 100.0, allow_nan=False),
)


class TestIoUProperties:
    @given(boxes_arrays)
    @settings(max_examples=50, deadline=None)
    def test_iou_matrix_symmetric_on_self(self, boxes):
        m = iou_matrix(boxes, boxes)
        assert np.allclose(m, m.T)

    @given(boxes_arrays)
    @settings(max_examples=50, deadline=None)
    def test_iou_diagonal_is_one_for_valid_boxes(self, boxes):
        m = iou_matrix(boxes, boxes)
        valid = (boxes[:, 2] > 0) & (boxes[:, 3] > 0)
        assert np.allclose(np.diag(m)[valid], 1.0)

    @given(boxes_arrays, boxes_arrays)
    @settings(max_examples=50, deadline=None)
    def test_iou_bounded(self, a, b):
        m = iou_matrix(a, b)
        assert np.all(m >= 0.0)
        # Tiny boxes can push inter/union a few ulps above 1.0.
        assert np.all(m <= 1.0 + 1e-9)
