"""The windowed-streaming bit-identity contract, stated once as a property.

Every performance mode the stream runner has grown — windowed stage-1
(``window > 1``), temporal ROI reuse, their composition, batch executors —
carries the same promise: the :class:`~repro.stream.StreamOutcome` is
**exactly equal** to the one the per-frame reference loop (``window=1``,
serial) produces.  Prior PRs asserted that promise as scattered point
checks; this suite states it as a property and sweeps the whole grid:

    (window size x reuse policy x source x seed x executor)

Equality is exact — frozen-dataclass ``FrameStats`` rows compare field by
field, kept :class:`PipelineOutcome`\\ s compare array by array with
``np.array_equal`` — never tolerance-based.  Noise is enabled throughout
so the per-frame temporal-noise seeds are observable: any mode that
perturbed a frame's random stream (e.g. by drawing ROI noise from a
readout whose counter a speculative window pass already advanced) fails
loudly here.
"""

import dataclasses
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HiRISEConfig, HiRISEPipeline
from repro.sensor import NoiseModel
from repro.service import (
    ComponentRef,
    Engine,
    EngineCache,
    ScenarioSpec,
    SystemSpec,
)
from repro.stream import (
    StreamRunner,
    TemporalROIReuse,
    ground_truth_detector,
    pedestrian_clip,
)

NOISE = NoiseModel(read_noise=0.002, prnu=0.01, dsnu=0.001, seed=7)


def assert_streams_equal(got, oracle) -> None:
    """Exact StreamOutcome equality, arrays included (wall time excluded)."""
    assert got.system == oracle.system
    # The cumulative totals are derived from the rows, so frame equality
    # (frozen dataclasses, field-by-field) covers the whole ledger.
    assert got.frames == oracle.frames
    assert len(got.outcomes) == len(oracle.outcomes)
    for a, b in zip(got.outcomes, oracle.outcomes):
        assert np.array_equal(a.stage1_image, b.stage1_image)
        assert a.rois == b.rois
        assert len(a.roi_crops) == len(b.roi_crops)
        assert all(
            np.array_equal(x, y) for x, y in zip(a.roi_crops, b.roi_crops)
        )
        assert a.stage1_conversions == b.stage1_conversions
        assert a.stage2_conversions == b.stage2_conversions
        assert a.ledger.total_bytes == b.ledger.total_bytes


# -- runner level: hypothesis drives the (window, policy, clip, seeds) grid --------


@lru_cache(maxsize=16)
def _clip(n_frames: int, seed: int, speed: float = 2.0):
    # speed=0.0 holds the walkers still, the friendliest case for reuse —
    # on tiny clips it is what lets grants actually fire inside a window
    # (moving walkers stay "unstable" for longer than the clip).
    return pedestrian_clip(
        n_frames=n_frames, resolution=(64, 48), seed=seed, speed=speed
    )


def _run(clip, *, window: int, reuse: bool, frame_seeds) -> object:
    detect, on_frame = ground_truth_detector(clip)
    pipeline = HiRISEPipeline(
        detector=detect,
        config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05),
        noise=NOISE,
    )
    runner = StreamRunner(
        pipeline,
        reuse=TemporalROIReuse() if reuse else None,
        window=window,
        keep_outcomes=True,
    )
    return runner.run(clip.frames, frame_seeds=frame_seeds, on_frame=on_frame)


class TestRunnerWindowEquivalence:
    @given(
        n_frames=st.integers(1, 7),
        window=st.integers(2, 9),
        clip_seed=st.integers(0, 3),
        reuse=st.booleans(),
        speed=st.sampled_from([0.0, 2.0]),
        seed_base=st.none() | st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_window_matches_per_frame_oracle(
        self, n_frames, window, clip_seed, reuse, speed, seed_base
    ):
        """For any (clip, seeds, policy, window): windowed == per-frame."""
        clip = _clip(n_frames, clip_seed, speed)
        frame_seeds = (
            None
            if seed_base is None
            else [seed_base + 13 * i for i in range(n_frames)]
        )
        oracle = _run(clip, window=1, reuse=reuse, frame_seeds=frame_seeds)
        got = _run(clip, window=window, reuse=reuse, frame_seeds=frame_seeds)
        assert_streams_equal(got, oracle)

    def test_reuse_actually_exercised(self):
        """The grid is non-vacuous: reuse grants fire on the static clip."""
        outcome = _run(
            _clip(7, 0, 0.0), window=4, reuse=True, frame_seeds=None
        )
        assert sum(f.reused_rois for f in outcome.frames) > 0
        assert sum(f.ran_stage1 for f in outcome.frames) < len(outcome.frames)

    def test_partial_tail_window(self):
        """A stream whose length is not a window multiple flushes a short
        tail through the same preallocated buffer."""
        clip = _clip(7, 1)
        oracle = _run(clip, window=1, reuse=False, frame_seeds=None)
        got = _run(clip, window=5, reuse=False, frame_seeds=None)
        assert_streams_equal(got, oracle)

    def test_buffer_reuse_across_runs(self):
        """Back-to-back runs on one runner (buffer already warm) stay
        bit-identical to a fresh runner."""
        clip = _clip(6, 2)
        detect, on_frame = ground_truth_detector(clip)
        pipeline = HiRISEPipeline(
            detector=detect,
            config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05),
            noise=NOISE,
        )
        runner = StreamRunner(pipeline, window=4, keep_outcomes=True)
        first = runner.run(clip.frames, on_frame=on_frame)
        second = runner.run(clip.frames, on_frame=on_frame)
        assert_streams_equal(second, first)


# -- engine level: (window x policy x source x executor), specs end to end ---------

SYSTEM = SystemSpec.from_dict(
    {
        "system": "hirise",
        "detector": {"name": "ground-truth", "params": {"label": "person"}},
        "noise": {"read_noise": 0.002, "prnu": 0.01, "dsnu": 0.001, "seed": 7},
    }
)
N_FRAMES = 6
SOURCES = {
    "pedestrian": ComponentRef("pedestrian", {"resolution": [96, 64]}),
    "drone": ComponentRef("drone", {"resolution": [96, 64]}),
}


def scenario(source: str, policy: str, window: int, seed: int = 3) -> ScenarioSpec:
    return ScenarioSpec(
        source=SOURCES[source],
        n_frames=N_FRAMES,
        seed=seed,
        policy=ComponentRef(policy),
        window=window,
        keep_outcomes=False,
    )


@pytest.fixture(scope="module")
def engine():
    return Engine(SYSTEM, cache=EngineCache.disabled())


@pytest.fixture(scope="module")
def oracles(engine):
    """Per-frame serial references, one per (source, policy, seed) cell."""
    cells = {}
    for source in SOURCES:
        for policy in ("none", "temporal-reuse"):
            for seed in (3, 11):
                cells[source, policy, seed] = engine.run(
                    scenario(source, policy, 1, seed)
                ).outcome
    return cells


class TestEngineWindowEquivalence:
    # ISSUE acceptance grid: window sizes {1, 4, full clip}.
    @pytest.mark.parametrize("window", [1, 4, N_FRAMES])
    @pytest.mark.parametrize("policy", ["none", "temporal-reuse"])
    @pytest.mark.parametrize("source", list(SOURCES))
    def test_windowed_scenarios_match_oracle(
        self, engine, oracles, window, policy, source
    ):
        for seed in (3, 11):
            got = engine.run(scenario(source, policy, window, seed)).outcome
            oracle = oracles[source, policy, seed]
            assert got.frames == oracle.frames
            got_dict, oracle_dict = got.to_dict(), oracle.to_dict()
            got_dict.pop("wall_time_s"), oracle_dict.pop("wall_time_s")
            assert got_dict == oracle_dict

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_preserve_windowed_identity(self, engine, oracles, executor):
        """The full windowed grid through each batch executor."""
        requests = [
            scenario(source, policy, window)
            for source in SOURCES
            for policy in ("none", "temporal-reuse")
            for window in (1, 4, N_FRAMES)
        ]
        fresh = Engine(SYSTEM, cache=EngineCache.disabled())
        batch = fresh.run_batch(requests, workers=2, executor=executor)
        assert len(batch) == len(requests)
        for request, result in zip(requests, batch):
            oracle = oracles[request.source.name, request.policy.name, 3]
            assert result.outcome.frames == oracle.frames

    def test_legacy_batch_size_alias_matches_window(self, engine, oracles):
        """batch_size (the pre-window spelling) still runs and agrees."""
        got = engine.run(
            dataclasses.replace(scenario("pedestrian", "none", 1), batch_size=4)
        ).outcome
        assert got.frames == oracles["pedestrian", "none", 3].frames
