"""Property-based tests for the Table 1 cost model and energy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EnergyModel,
    conventional_costs,
    hirise_costs,
    hirise_stage1_costs,
)

frames = st.tuples(st.integers(64, 4096), st.integers(64, 4096))
poolings = st.sampled_from([2, 4, 8, 16])
roi_sets = st.lists(
    st.tuples(st.integers(1, 256), st.integers(1, 256)), min_size=0, max_size=24
)


class TestCostModelProperties:
    @given(frames)
    @settings(max_examples=50, deadline=None)
    def test_conventional_identities(self, frame):
        n, m = frame
        c = conventional_costs(n, m)
        assert c.data_transfer_bits == c.memory_bits
        assert c.data_transfer_bits == c.adc_conversions * 8
        assert c.adc_conversions == 3 * n * m

    @given(frames, poolings)
    @settings(max_examples=50, deadline=None)
    def test_stage1_scales_inverse_k2(self, frame, k):
        n, m = frame
        s = hirise_stage1_costs(n, m, k, grayscale=True)
        assert s.adc_conversions == (n // k) * (m // k)

    @given(frames, poolings)
    @settings(max_examples=50, deadline=None)
    def test_grayscale_exactly_one_third(self, frame, k):
        n, m = frame
        gray = hirise_stage1_costs(n, m, k, grayscale=True)
        rgb = hirise_stage1_costs(n, m, k, grayscale=False)
        assert rgb.adc_conversions == 3 * gray.adc_conversions

    @given(frames, poolings, roi_sets)
    @settings(max_examples=60, deadline=None)
    def test_hirise_conversions_never_exceed_baseline_plus_rois(self, frame, k, rois):
        n, m = frame
        cb = hirise_costs(n, m, k, rois)
        # Stage-1 conversions are strictly fewer; stage 2 adds ROI pixels.
        assert cb.stage1.adc_conversions < cb.conventional.adc_conversions
        expected_stage2 = 3 * sum(w * h for w, h in rois)
        assert cb.stage2.adc_conversions == expected_stage2

    @given(frames, poolings, roi_sets)
    @settings(max_examples=60, deadline=None)
    def test_memory_is_max_rule(self, frame, k, rois):
        n, m = frame
        cb = hirise_costs(n, m, k, rois)
        assert cb.hirise_peak_memory_bits == max(
            cb.stage1.memory_bits, cb.stage2.memory_bits
        )

    @given(frames, roi_sets)
    @settings(max_examples=40, deadline=None)
    def test_reduction_monotone_in_k(self, frame, rois):
        n, m = frame
        reductions = [
            hirise_costs(n, m, k, rois).transfer_reduction for k in (2, 4, 8)
        ]
        assert reductions[0] <= reductions[1] <= reductions[2]


class TestEnergyProperties:
    @given(frames, poolings, roi_sets)
    @settings(max_examples=50, deadline=None)
    def test_energy_consistent_with_conversions(self, frame, k, rois):
        n, m = frame
        model = EnergyModel()
        e = model.hirise_frame(n, m, k, rois)
        conversions = (
            hirise_costs(n, m, k, rois, grayscale=False).stage1.adc_conversions
            + 3 * sum(w * h for w, h in rois)
        )
        assert e.stage1_adc + e.stage2_adc == pytest.approx(
            conversions * model.adc_energy_per_conversion
        )

    @given(frames)
    @settings(max_examples=40, deadline=None)
    def test_baseline_energy_proportional_to_pixels(self, frame):
        n, m = frame
        model = EnergyModel()
        assert model.conventional_frame(n, m).total == pytest.approx(
            n * m * 3 * model.adc_energy_per_conversion
        )

    @given(frames, poolings)
    @settings(max_examples=40, deadline=None)
    def test_empty_roi_hirise_always_wins(self, frame, k):
        """With no ROIs, HiRISE energy is strictly below baseline."""
        n, m = frame
        model = EnergyModel()
        hirise = model.hirise_frame(n, m, k, [])
        base = model.conventional_frame(n, m)
        assert hirise.total < base.total
