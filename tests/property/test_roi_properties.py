"""Property-based tests (hypothesis) for the ROI algebra invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import ROI, dedup_contained, merge_overlapping, total_area, union_area


def rois(max_coord=200, max_size=80):
    return st.builds(
        ROI,
        x=st.integers(-20, max_coord),
        y=st.integers(-20, max_coord),
        w=st.integers(1, max_size),
        h=st.integers(1, max_size),
    )


roi_lists = st.lists(rois(), min_size=0, max_size=12)


class TestUnionAreaProperties:
    @given(roi_lists)
    @settings(max_examples=60, deadline=None)
    def test_union_between_max_and_total(self, items):
        u = union_area(items)
        if not items:
            assert u == 0
            return
        assert max(r.area for r in items) <= u <= total_area(items)

    @given(roi_lists)
    @settings(max_examples=40, deadline=None)
    def test_union_matches_rasterization(self, items):
        """The sweep algorithm equals a brute-force pixel count."""
        u = union_area(items)
        if not items:
            assert u == 0
            return
        x0 = min(r.x for r in items)
        y0 = min(r.y for r in items)
        x1 = max(r.x2 for r in items)
        y1 = max(r.y2 for r in items)
        grid = np.zeros((y1 - y0, x1 - x0), dtype=bool)
        for r in items:
            grid[r.y - y0 : r.y2 - y0, r.x - x0 : r.x2 - x0] = True
        assert u == int(grid.sum())

    @given(roi_lists)
    @settings(max_examples=40, deadline=None)
    def test_union_invariant_under_permutation(self, items):
        assert union_area(items) == union_area(list(reversed(items)))

    @given(rois())
    @settings(max_examples=30, deadline=None)
    def test_duplicates_do_not_grow_union(self, roi):
        assert union_area([roi, roi, roi]) == roi.area


class TestGeometryProperties:
    @given(rois(), st.integers(50, 300), st.integers(50, 300))
    @settings(max_examples=60, deadline=None)
    def test_clip_stays_inside(self, roi, w, h):
        clipped = roi.clip(w, h)
        if clipped is not None:
            assert 0 <= clipped.x and 0 <= clipped.y
            assert clipped.x2 <= w and clipped.y2 <= h
            assert clipped.area <= roi.area

    @given(rois(), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_pad_grows(self, roi, frac):
        padded = roi.pad(frac)
        assert padded.area >= roi.area
        assert padded.contains(roi)

    @given(rois(), rois())
    @settings(max_examples=60, deadline=None)
    def test_iou_symmetric_and_bounded(self, a, b):
        assert a.iou(b) == b.iou(a)
        assert 0.0 <= a.iou(b) <= 1.0

    @given(rois())
    @settings(max_examples=30, deadline=None)
    def test_self_iou_is_one(self, roi):
        assert roi.iou(roi) == 1.0

    @given(rois(), rois())
    @settings(max_examples=60, deadline=None)
    def test_union_with_contains_both(self, a, b):
        merged = a.union_with(b)
        assert merged.contains(a)
        assert merged.contains(b)


class TestConditioningProperties:
    @given(roi_lists)
    @settings(max_examples=60, deadline=None)
    def test_dedup_result_is_antichain(self, items):
        kept = dedup_contained(items)
        for i, a in enumerate(kept):
            for j, b in enumerate(kept):
                if i != j:
                    assert not (a.contains(b) and a.area > b.area) or not a.contains(b)

    @given(roi_lists)
    @settings(max_examples=60, deadline=None)
    def test_dedup_preserves_union_area(self, items):
        """Dropping contained boxes never loses covered pixels."""
        assert union_area(dedup_contained(items)) == union_area(items)

    @given(roi_lists, st.floats(0.1, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_merge_covers_original(self, items, thr):
        merged = merge_overlapping(items, iou_threshold=thr)
        assert union_area(merged) >= union_area(items)
        for roi in items:
            assert any(m.contains(roi) or m.iou(roi) > 0 or m == roi for m in merged) or not merged
