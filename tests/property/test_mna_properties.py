"""Property-based tests for the MNA solver on randomized linear networks."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analog import (
    Circuit,
    DC,
    MNASolver,
    Resistor,
    VoltageSource,
    build_resistive_average,
    dc_operating_point,
    ideal_shared_node_voltage,
)


class TestLinearNetworkProperties:
    @given(
        st.lists(st.floats(0.05, 0.95), min_size=1, max_size=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_resistive_average_matches_closed_form(self, inputs):
        circuit = build_resistive_average([DC(v) for v in inputs])
        sol = dc_operating_point(circuit)
        expected = ideal_shared_node_voltage(float(np.mean(inputs)), 1.0)
        assert abs(sol["avg"] - expected) < 1e-8

    @given(
        st.floats(0.1, 10.0),
        st.floats(100.0, 1e6),
        st.floats(100.0, 1e6),
    )
    @settings(max_examples=40, deadline=None)
    def test_divider_formula(self, vin, r1, r2):
        c = Circuit("divider")
        c.add(VoltageSource("V", "in", "0", vin))
        c.add(Resistor("R1", "in", "m", r1))
        c.add(Resistor("R2", "m", "0", r2))
        sol = dc_operating_point(c)
        assert np.isclose(sol["m"], vin * r2 / (r1 + r2), rtol=1e-9)

    @given(
        st.lists(st.floats(100.0, 1e5), min_size=2, max_size=6),
        st.floats(0.5, 5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_superposition(self, resistances, vin):
        """Doubling the only source doubles every node voltage."""

        def solve(scale):
            c = Circuit("ladder")
            c.add(VoltageSource("V", "n0", "0", vin * scale))
            for i, r in enumerate(resistances):
                c.add(Resistor(f"R{i}", f"n{i}", f"n{i+1}", r))
            c.add(Resistor("Rend", f"n{len(resistances)}", "0", 1e3))
            return dc_operating_point(c)

        sol1 = solve(1.0)
        sol2 = solve(2.0)
        for node, v in sol1.items():
            assert np.isclose(sol2[node], 2 * v, rtol=1e-9, atol=1e-12)

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_average_node_between_extremes(self, inputs):
        """The shared node maps back to a value inside the input range."""
        from repro.analog import invert_shared_node_voltage

        circuit = build_resistive_average([DC(v) for v in inputs])
        sol = dc_operating_point(circuit)
        recovered = invert_shared_node_voltage(sol["avg"], 1.0)
        assert min(inputs) - 1e-9 <= recovered <= max(inputs) + 1e-9
