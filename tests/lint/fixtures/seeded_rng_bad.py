"""BAD: unseeded and legacy global-state RNG (rule: seeded-rng)."""

import numpy as np


def sample(n: int) -> np.ndarray:
    rng = np.random.default_rng()  # OS entropy: different every run
    np.random.seed(7)  # legacy global state
    return rng.normal(size=n)
