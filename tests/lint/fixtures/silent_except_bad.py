"""BAD: a broad except that swallows silently (rule: silent-except)."""


def load(path: str):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        return None
