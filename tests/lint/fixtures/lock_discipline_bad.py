"""BAD: tier state mutated off-lock (rule: lock-discipline)."""

import threading
from collections import OrderedDict


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        self._sizes = {}

    def put(self, key, value, size):
        self._entries[key] = value  # racy: no lock held
        self._sizes[key] = size  # racy: no lock held

    def evict(self, key):
        with self._lock:
            self._entries.pop(key, None)
        self._sizes.pop(key, None)  # racy: outside the with block
