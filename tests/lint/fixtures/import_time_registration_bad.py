"""BAD: registration below module top level (rule: import-time-registration).

A spawn worker re-imports the module; a component registered inside a
function body never runs there, so the worker silently loses it.
"""


def register_detector(name):
    def decorate(builder):
        return builder

    return decorate


def install_late():
    @register_detector("late-detector")
    def build(config):
        return config

    return build
