"""GOOD: every mutation under the lock, or in a *_locked helper."""

import threading
from collections import OrderedDict


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        self._sizes = {}

    def put(self, key, value, size):
        with self._lock:
            self._entries[key] = value
            self._sizes[key] = size
            self._evict_over_capacity_locked()

    def _evict_over_capacity_locked(self):
        # Caller holds the lock (the *_locked naming contract).
        while len(self._entries) > 4:
            key, _ = self._entries.popitem(last=False)
            self._sizes.pop(key, None)
