"""BAD: a payload module reaching for wall-clock (rule: no-wallclock)."""

import time


def build_payload(frames: int) -> dict:
    return {"frames": frames, "generated_at": time.time()}
