"""BAD: a work unit carrying live resources (rule: picklable-workunits)."""

import threading
from dataclasses import dataclass, field


@dataclass
class WorkUnit:
    name: str
    lock: threading.Lock = field(default_factory=threading.Lock)
    on_done: object = lambda result: result
