"""GOOD: every stream is explicitly seeded from the spec."""

import numpy as np


def sample(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=n)
