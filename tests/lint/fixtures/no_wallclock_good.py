"""GOOD: the payload is a pure function of its inputs (no wall-clock)."""


def build_payload(frames: int) -> dict:
    return {"frames": frames}
