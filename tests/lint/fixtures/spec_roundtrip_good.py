"""GOOD: a frozen spec with an exact to_dict/from_dict round-trip."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    name: str
    value: int

    def to_dict(self) -> dict:
        return {"name": self.name, "value": self.value}

    @classmethod
    def from_dict(cls, data: dict) -> "Spec":
        return cls(name=data["name"], value=data["value"])
