"""BAD: bare matmul on an inference path (rule: no-bare-matmul-in-inference)."""

import numpy as np


def forward(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    return x @ w  # BLAS reassociates by shape: batch-size-dependent bits
