"""GOOD: fixed-order einsum at inference; '@' only on training paths."""

import numpy as np


def forward(x: np.ndarray, w: np.ndarray, training: bool = False) -> np.ndarray:
    if training:
        return x @ w  # training path: exempt, bit-identity not required
    return np.einsum("nk,km->nm", x, w)


def backward(grad: np.ndarray, w: np.ndarray) -> np.ndarray:
    return grad @ w.T  # backward pass: exempt
