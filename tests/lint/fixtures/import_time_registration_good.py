"""GOOD: registration at module top level — import is the registry."""


def register_detector(name):
    def decorate(builder):
        return builder

    return decorate


@register_detector("import-time-detector")
def build(config):
    return config
