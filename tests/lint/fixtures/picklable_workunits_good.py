"""GOOD: a work unit of plain data — names, numbers, nested dicts."""

from dataclasses import dataclass, field


@dataclass
class WorkUnit:
    name: str
    seed: int = 0
    params: dict = field(default_factory=dict)
