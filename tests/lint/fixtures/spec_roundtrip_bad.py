"""BAD: a frozen spec that cannot round-trip (rule: spec-roundtrip).

``to_dict`` drops ``value`` and there is no ``from_dict`` at all, so
the emitted payload can neither rebuild the spec nor cover its fields.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    name: str
    value: int

    def to_dict(self) -> dict:
        return {"name": self.name}
