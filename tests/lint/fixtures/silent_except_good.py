"""GOOD: broad excepts either justify themselves, re-raise, or narrow."""


def load(path: str):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:  # noqa: BLE001 - a missing/corrupt file means "no cached value"
        return None


def load_strict(path: str):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception as exc:
        raise RuntimeError(f"cannot load {path}") from exc


def load_narrow(path: str):
    try:
        with open(path) as handle:
            return handle.read()
    except FileNotFoundError:
        return None
