"""The merged tree is lint-clean, and every waiver is honest.

This is the same gate CI runs (``repro lint src benchmarks tools``),
expressed as a tier-1 test so a contract regression fails locally
before it reaches the lint job.
"""

from pathlib import Path

from repro.lint import all_rule_ids, lint_paths, scan_suppressions

REPO = Path(__file__).resolve().parents[2]
LINTED = ("src", "benchmarks", "tools")


def test_repo_tree_is_lint_clean():
    findings = lint_paths([REPO / part for part in LINTED])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_every_waiver_names_a_registered_rule_with_a_reason():
    # The satellite meta-test: a rule rename must not orphan waivers,
    # and no waiver may ride without a written justification.
    known = set(all_rule_ids())
    waivers = []
    for path in sorted((REPO / "src").rglob("*.py")):
        index = scan_suppressions(path.read_text(encoding="utf-8"))
        waivers.extend((path, waiver) for waiver in index.suppressions)
    assert waivers, "expected at least one lint-ok waiver in src/"
    for path, waiver in waivers:
        where = f"{path}:{waiver.line}"
        assert waiver.rule_ids, f"{where}: waiver names no rule"
        for rule_id in waiver.rule_ids:
            assert rule_id in known, f"{where}: unknown rule {rule_id!r}"
        assert waiver.reason, f"{where}: waiver carries no reason"
