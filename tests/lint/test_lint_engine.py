"""Engine-level behaviour: waivers, determinism, parse errors, filters."""

import json
from pathlib import Path

from repro.lint import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    all_rule_ids,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    scan_suppressions,
)

FIXTURES = Path(__file__).parent / "fixtures"

UNSEEDED = (
    "import numpy as np\n"
    "rng = np.random.default_rng()\n"
)


class TestSuppressions:
    def test_waiver_on_the_finding_line(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro: lint-ok[seeded-rng] fixture exercising the waiver\n"
        )
        assert lint_source(source, "mod.py") == []

    def test_waiver_on_the_line_above(self):
        source = (
            "import numpy as np\n"
            "# repro: lint-ok[seeded-rng] fixture exercising the waiver\n"
            "rng = np.random.default_rng()\n"
        )
        assert lint_source(source, "mod.py") == []

    def test_waiver_elsewhere_does_not_cover(self):
        source = (
            "# repro: lint-ok[seeded-rng] too far away to count\n"
            "import numpy as np\n"
            "\n"
            "rng = np.random.default_rng()\n"
        )
        findings = lint_source(source, "mod.py")
        assert [f.rule_id for f in findings] == ["seeded-rng"]

    def test_waiver_only_covers_the_named_rule(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro: lint-ok[silent-except] wrong rule named\n"
        )
        rule_ids = {f.rule_id for f in lint_source(source, "mod.py")}
        assert "seeded-rng" in rule_ids

    def test_comma_separated_rule_list(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro: lint-ok[seeded-rng, silent-except] covers both ids\n"
        )
        assert lint_source(source, "mod.py") == []

    def test_reasonless_waiver_is_a_finding(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: lint-ok[seeded-rng]\n"
        )
        rule_ids = [f.rule_id for f in lint_source(source, "mod.py")]
        assert "bad-suppression" in rule_ids
        # The reasonless waiver still silences its target rule: the
        # gate fails on the waiver itself, pointing at the right line.
        assert "seeded-rng" not in rule_ids

    def test_unknown_rule_waiver_is_a_finding(self):
        source = "x = 1  # repro: lint-ok[no-such-rule] some reason\n"
        findings = lint_source(source, "mod.py")
        assert [f.rule_id for f in findings] == ["bad-suppression"]
        assert "no-such-rule" in findings[0].message

    def test_marker_inside_a_string_is_not_a_waiver(self):
        source = (
            "import numpy as np\n"
            'text = "# repro: lint-ok[seeded-rng] not a comment"\n'
            "rng = np.random.default_rng()\n"
        )
        findings = lint_source(source, "mod.py")
        assert [f.rule_id for f in findings] == ["seeded-rng"]

    def test_scan_suppressions_parses_ids_and_reason(self):
        source = "x = 1  # repro: lint-ok[a-rule, b-rule] because reasons\n"
        index = scan_suppressions(source)
        assert len(index.suppressions) == 1
        waiver = index.suppressions[0]
        assert waiver.rule_ids == ("a-rule", "b-rule")
        assert waiver.reason == "because reasons"
        assert waiver.line == 1


class TestParseErrors:
    def test_syntax_error_is_a_parse_error_finding(self):
        findings = lint_source("def broken(:\n", "mod.py")
        assert [f.rule_id for f in findings] == ["parse-error"]
        assert findings[0].line >= 1

    def test_parse_error_is_not_suppressible(self):
        source = "# repro: lint-ok[parse-error] nice try\ndef broken(:\n"
        findings = lint_source(source, "mod.py")
        assert [f.rule_id for f in findings] == ["parse-error"]


class TestFiltersAndApi:
    def test_rule_filter_limits_findings(self):
        source = (
            "import numpy as np\n"
            "try:\n"
            "    rng = np.random.default_rng()\n"
            "except Exception:\n"
            "    rng = None\n"
        )
        everything = {f.rule_id for f in lint_source(source, "mod.py")}
        assert everything == {"seeded-rng", "silent-except"}
        only = lint_source(source, "mod.py", rules=["seeded-rng"])
        assert {f.rule_id for f in only} == {"seeded-rng"}

    def test_all_rule_ids_include_engine_ids(self):
        ids = all_rule_ids()
        assert "parse-error" in ids and "bad-suppression" in ids
        assert list(ids) == sorted(ids)

    def test_finding_round_trips_through_to_dict(self):
        finding = Finding(
            rule_id="seeded-rng",
            path="mod.py",
            line=3,
            col=7,
            message="msg",
            hint="hint",
        )
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_lint_paths_accepts_files_and_directories(self):
        by_dir = lint_paths([FIXTURES], config=DEFAULT_CONFIG)
        by_file = lint_paths(
            sorted(FIXTURES.glob("*.py")), config=DEFAULT_CONFIG
        )
        assert by_dir == by_file


class TestDeterminism:
    def test_findings_sorted_by_path_line_rule(self):
        findings = lint_paths([FIXTURES])
        assert findings == sorted(findings, key=Finding.sort_key)

    def test_json_report_is_byte_stable_across_runs(self):
        first = render_json(lint_paths([FIXTURES]))
        second = render_json(lint_paths([FIXTURES]))
        assert first == second
        payload = json.loads(first)
        assert payload["version"] == 1
        assert payload["count"] == len(payload["findings"])

    def test_text_report_counts_findings(self):
        report = render_text(lint_source(UNSEEDED, "mod.py"))
        assert report.endswith("1 finding\n")
        assert "[seeded-rng]" in report

    def test_clean_reports(self):
        assert render_text([]) == "0 findings\n"
        payload = json.loads(render_json([]))
        assert payload == {"count": 0, "findings": [], "version": 1}
