"""Seeded fixture regression: every rule fires on bad, stays silent on good.

Each rule has one minimal ``<rule>_bad.py`` / ``<rule>_good.py`` pair
under ``fixtures/``.  Scoped rules (wall-clock, lock discipline, matmul,
work units) are retargeted at the fixture files through a
:class:`LintConfig`, which is exactly the knob the engine exposes for
this purpose — the rule logic under test is the shipped logic.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, LockScope, lint_file

FIXTURES = Path(__file__).parent / "fixtures"

#: Scoped rules pointed at the fixture tree instead of src/repro.
FIXTURE_CONFIG = LintConfig(
    payload_modules=("*/fixtures/no_wallclock_*.py",),
    lock_scopes=(
        LockScope("*/fixtures/lock_discipline_*.py", ("_entries", "_sizes")),
    ),
    matmul_modules=("*/fixtures/no_bare_matmul_*.py",),
    workunit_modules=("*/fixtures/picklable_workunits_*.py",),
)

#: rule id -> fixture basename stem.
RULE_FIXTURES = {
    "no-wallclock": "no_wallclock",
    "seeded-rng": "seeded_rng",
    "import-time-registration": "import_time_registration",
    "spec-roundtrip": "spec_roundtrip",
    "lock-discipline": "lock_discipline",
    "no-bare-matmul-in-inference": "no_bare_matmul",
    "picklable-workunits": "picklable_workunits",
    "silent-except": "silent_except",
}


class TestFixturePairs:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_bad_fixture_triggers_exactly_its_rule(self, rule_id):
        path = FIXTURES / f"{RULE_FIXTURES[rule_id]}_bad.py"
        findings = lint_file(path, config=FIXTURE_CONFIG)
        assert findings, f"{path.name} raised nothing"
        assert {f.rule_id for f in findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_good_fixture_is_clean(self, rule_id):
        path = FIXTURES / f"{RULE_FIXTURES[rule_id]}_good.py"
        findings = lint_file(path, config=FIXTURE_CONFIG)
        assert findings == [], [f.format() for f in findings]

    def test_every_registered_rule_has_a_fixture_pair(self):
        from repro.lint import RULES

        assert set(RULE_FIXTURES) == set(RULES)
        for stem in RULE_FIXTURES.values():
            assert (FIXTURES / f"{stem}_bad.py").is_file()
            assert (FIXTURES / f"{stem}_good.py").is_file()

    def test_findings_carry_location_and_hint(self):
        path = FIXTURES / "seeded_rng_bad.py"
        findings = lint_file(path, config=FIXTURE_CONFIG)
        for finding in findings:
            assert finding.path.endswith("seeded_rng_bad.py")
            assert finding.line > 0 and finding.col > 0
            assert finding.message
            assert finding.hint


class TestRuleSpecifics:
    def test_bad_wallclock_flags_import_and_call(self):
        path = FIXTURES / "no_wallclock_bad.py"
        findings = lint_file(path, config=FIXTURE_CONFIG)
        assert len(findings) == 2  # the import and the time.time() call

    def test_wallclock_rule_is_scoped_to_payload_modules(self):
        # The same file linted as a non-payload module is clean: the
        # engine is the scoping mechanism, not the rule body.
        path = FIXTURES / "no_wallclock_bad.py"
        findings = lint_file(path, config=LintConfig(payload_modules=()))
        assert findings == []

    def test_bad_spec_roundtrip_reports_both_defects(self):
        path = FIXTURES / "spec_roundtrip_bad.py"
        messages = [
            f.message for f in lint_file(path, config=FIXTURE_CONFIG)
        ]
        assert any("no from_dict" in m for m in messages)
        assert any("never writes field(s): value" in m for m in messages)

    def test_bad_lock_discipline_flags_each_racy_mutation(self):
        path = FIXTURES / "lock_discipline_bad.py"
        findings = lint_file(path, config=FIXTURE_CONFIG)
        assert len(findings) == 3  # two in put(), one after the with block

    def test_bad_workunit_flags_lock_field_and_lambda_default(self):
        path = FIXTURES / "picklable_workunits_bad.py"
        messages = [
            f.message for f in lint_file(path, config=FIXTURE_CONFIG)
        ]
        assert any("Lock" in m for m in messages)
        assert any("lambda" in m for m in messages)
