"""The ``repro lint`` subcommand: exit codes, formats, determinism."""

import json
from pathlib import Path

from repro.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "seeded_rng_bad.py")
GOOD = str(FIXTURES / "seeded_rng_good.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main(["lint", GOOD]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", BAD]) == 1
        out = capsys.readouterr().out
        assert "[seeded-rng]" in out
        assert "seeded_rng_bad.py" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", GOOD, "--rule", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule(s): bogus" in err
        assert "known rules:" in err

    def test_rule_filter_applies(self, capsys):
        assert main(["lint", BAD, "--rule", "silent-except"]) == 0
        assert main(["lint", BAD, "--rule", "seeded-rng"]) == 1
        capsys.readouterr()


class TestJsonFormat:
    def test_json_schema(self, capsys):
        assert main(["lint", BAD, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["count"] == len(payload["findings"]) > 0
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule_id", "path", "line", "col", "message", "hint",
            }

    def test_json_is_byte_stable_across_runs(self, capsys):
        assert main(["lint", str(FIXTURES), "--format", "json"]) == 1
        first = capsys.readouterr().out
        assert main(["lint", str(FIXTURES), "--format", "json"]) == 1
        second = capsys.readouterr().out
        assert first == second

    def test_json_sorted_by_path_line_rule(self, capsys):
        main(["lint", str(FIXTURES), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        keys = [
            (f["path"], f["line"], f["col"], f["rule_id"])
            for f in payload["findings"]
        ]
        assert keys == sorted(keys)

    def test_out_writes_json_report_regardless_of_format(
        self, tmp_path, capsys
    ):
        report = tmp_path / "lint.json"
        assert main(["lint", BAD, "--out", str(report)]) == 1
        console = capsys.readouterr().out
        assert "[seeded-rng]" in console  # console stays text
        payload = json.loads(report.read_text())
        assert payload["count"] > 0
