"""Tests for the top-level lazy export table (PEP 562 surface)."""

import importlib

import pytest

import repro


class TestLazyExports:
    def test_every_export_resolves(self):
        for name in repro._EXPORTS:
            assert getattr(repro, name) is not None, name

    def test_exports_match_their_providing_module(self):
        for name, module_name in repro._EXPORTS.items():
            module = importlib.import_module(module_name)
            assert getattr(repro, name) is getattr(module, name), name

    def test_all_covers_exports_and_version(self):
        assert set(repro.__all__) == set(repro._EXPORTS) | {"__version__"}
        assert repro.__all__ == sorted(repro._EXPORTS) + ["__version__"]

    def test_dir_matches_all(self):
        # dir() sorts whatever __dir__ returns, so compare as sets
        assert set(dir(repro)) == set(repro.__all__)

    def test_version_is_exported(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_service_names_in_export_table(self):
        for name in (
            "Engine",
            "EngineCache",
            "Executor",
            "make_executor",
            "BatchResult",
            "RunResult",
            "SystemSpec",
            "ScenarioSpec",
            "ServiceSpec",
            "ComponentRef",
            "list_components",
        ):
            assert repro._EXPORTS[name] == "repro.service"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'Bogus'"):
            repro.Bogus

    def test_lazy_spelling_sanity(self):
        # A typo in _EXPORTS would make getattr fail only at first touch;
        # spot-check identity for a few heavily used names.
        from repro.core import HiRISEConfig, HiRISEPipeline
        from repro.service import Engine
        from repro.stream import StreamRunner

        assert repro.HiRISEConfig is HiRISEConfig
        assert repro.HiRISEPipeline is HiRISEPipeline
        assert repro.Engine is Engine
        assert repro.StreamRunner is StreamRunner
