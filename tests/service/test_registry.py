"""Tests for the component registries and their introspection surface."""

import pytest

from repro.service import (
    CLASSIFIERS,
    DETECTORS,
    POLICIES,
    SOURCES,
    Registry,
    UnknownComponentError,
    list_components,
)


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("widget")

        @reg.register("a")
        def build_a():
            return "A"

        assert reg.get("a") is build_a
        assert "a" in reg
        assert reg.names() == ["a"]
        assert len(reg) == 1

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("a")(lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a")(lambda: None)

    def test_unregister_then_reregister(self):
        reg = Registry("widget")
        reg.register("a")(lambda: 1)
        del reg["a"]
        assert "a" not in reg
        reg.register("a")(lambda: 2)
        assert reg.get("a")() == 2

    def test_unknown_name_error_lists_known(self):
        reg = Registry("widget")
        reg.register("alpha")(lambda: None)
        reg.register("beta")(lambda: None)
        with pytest.raises(UnknownComponentError) as exc:
            reg.get("gamma")
        message = str(exc.value)
        assert "gamma" in message and "alpha" in message and "beta" in message
        assert "widget" in message

    def test_unknown_component_error_is_key_error(self):
        with pytest.raises(KeyError):
            Registry("widget").get("missing")

    def test_invalid_names_rejected(self):
        reg = Registry("widget")
        with pytest.raises(ValueError):
            reg.register("")
        with pytest.raises(ValueError):
            reg.register(3)

    def test_iteration_is_sorted(self):
        reg = Registry("widget")
        for name in ("zeta", "alpha", "mid"):
            reg.register(name)(lambda: None)
        assert list(reg) == ["alpha", "mid", "zeta"]


class TestBuiltins:
    def test_builtin_components_registered(self):
        assert "ground-truth" in DETECTORS and "grid" in DETECTORS
        assert "none" in CLASSIFIERS and "mean-luma" in CLASSIFIERS
        assert "pedestrian" in SOURCES and "drone" in SOURCES
        for name in ("crowdhuman-scenes", "dhdcampus-scenes", "visdrone-scenes"):
            assert name in SOURCES
        assert "none" in POLICIES and "temporal-reuse" in POLICIES

    def test_list_components_shape(self):
        listing = list_components()
        assert sorted(listing) == [
            "classifiers", "detectors", "policies", "sources"
        ]
        for names in listing.values():
            assert names == sorted(names)
            assert names  # every slot ships at least one builtin

    def test_listing_matches_registries(self):
        listing = list_components()
        assert listing["detectors"] == DETECTORS.names()
        assert listing["classifiers"] == CLASSIFIERS.names()
        assert listing["sources"] == SOURCES.names()
        assert listing["policies"] == POLICIES.names()

    def test_source_factories_build_clips(self):
        for name in ("pedestrian", "drone"):
            clip = SOURCES.get(name)(4, 0, resolution=(64, 48))
            assert len(clip.frames) == 4
            assert clip.resolution == (64, 48)

    def test_scene_sweep_sources(self):
        clip = SOURCES.get("crowdhuman-scenes")(
            3, 7, resolution=(96, 64), label="head"
        )
        assert len(clip.frames) == 3
        assert clip.resolution == (96, 64)
        # independent scenes: every frame has its own ground truth boxes
        assert all(clip.ground_truth)
        # deterministic given the seed
        again = SOURCES.get("crowdhuman-scenes")(
            3, 7, resolution=(96, 64), label="head"
        )
        import numpy as np

        assert all(np.array_equal(a, b) for a, b in zip(clip.frames, again.frames))

    def test_scene_sweep_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="wobble"):
            SOURCES.get("visdrone-scenes")(2, 0, wobble=True)

    def test_policy_factory_forwards_params(self):
        policy = POLICIES.get("temporal-reuse")(max_reuse=5, stability_iou=0.7)
        assert policy.max_reuse == 5
        assert policy.stability_iou == 0.7
        assert POLICIES.get("none")() is None

    def test_mean_luma_classifier(self):
        import numpy as np

        classify = CLASSIFIERS.get("mean-luma")()
        assert classify(np.ones((4, 4, 3))) == pytest.approx(1.0)
        assert classify(np.zeros((4, 4, 3))) == pytest.approx(0.0)

    def test_mean_luma_batch_bit_identical_to_loop(self):
        import numpy as np

        from repro.core import classify_crops

        classify = CLASSIFIERS.get("mean-luma")()
        rng = np.random.default_rng(0)
        # Mixed shapes (several buckets), RGB and grayscale layouts.
        rgb = [rng.random((13, 17, 3)) for _ in range(4)] + [rng.random((8, 9, 3))]
        assert classify_crops(classify, rgb) == [classify(c) for c in rgb]
        gray = [rng.random((6, 7)) for _ in range(3)]
        assert classify_crops(classify, gray) == [classify(c) for c in gray]
        single = [rng.random((5, 5, 1)) for _ in range(2)]
        assert classify_crops(classify, single) == [classify(c) for c in single]

    def test_none_factories_reject_params(self):
        with pytest.raises(ValueError, match="takes no params"):
            CLASSIFIERS.get("none")(bogus=1)
        with pytest.raises(ValueError, match="takes no params"):
            POLICIES.get("none")(bogus=1)
