"""Tests for the executor layer: selection, bit-identity, chunking."""

import numpy as np
import pytest

from repro.core import HiRISEConfig
from repro.service import (
    ComponentRef,
    Engine,
    EngineCache,
    ProcessExecutor,
    ScenarioSpec,
    SerialExecutor,
    ServiceSpec,
    SpecError,
    SystemSpec,
    ThreadExecutor,
    make_executor,
)
from repro.service.executor import EXECUTOR_NAMES, _chunk_by_clip

SYSTEM = SystemSpec(
    config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth", {"label": "person"}),
)


def scenario(**kwargs) -> ScenarioSpec:
    defaults = dict(
        source=ComponentRef("pedestrian", {"resolution": [64, 48]}),
        n_frames=2,
        seed=4,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def requests() -> list[ScenarioSpec]:
    return [
        scenario(name="a/frame"),
        scenario(name="a/reuse", policy=ComponentRef("temporal-reuse")),
        scenario(name="b/other-seed", seed=9),
    ]


@pytest.fixture(scope="module")
def reference():
    """Sequential, cache-free ground truth for every executor to match."""
    engine = Engine(SYSTEM, cache=EngineCache.disabled())
    return [engine.run(r) for r in requests()]


@pytest.fixture(scope="module")
def process_pool():
    """One spawn pool for the whole module (spawning is the slow part)."""
    with ProcessExecutor(workers=2) as pool:
        yield pool


class TestSelection:
    def test_make_executor_by_name(self):
        for name, cls in (
            ("serial", SerialExecutor),
            ("thread", ThreadExecutor),
            ("process", ProcessExecutor),
        ):
            executor = make_executor(name, workers=2)
            assert isinstance(executor, cls)
            assert executor.name == name
            assert executor.workers == 2
            executor.close()

    def test_unknown_name_lists_known(self):
        with pytest.raises(SpecError, match=r"executor.*'gpu'.*serial"):
            make_executor("gpu")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SerialExecutor(workers=0)

    def test_engine_rejects_unknown_executor(self):
        with pytest.raises(SpecError, match=r"service\.executor.*'quantum'"):
            Engine(SYSTEM, executor="quantum")

    def test_service_spec_executor_field(self):
        spec = ServiceSpec(system=SYSTEM, executor="process")
        assert ServiceSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["executor"] == "process"
        # default stays the PR 2 behavior
        assert ServiceSpec().executor == "thread"
        with pytest.raises(SpecError, match=r"spec\.executor.*'warp'"):
            ServiceSpec(executor="warp")
        with pytest.raises(SpecError, match=r"spec\.executor"):
            ServiceSpec.from_dict({"executor": 3})

    def test_engine_from_spec_carries_executor(self):
        engine = Engine.from_spec(
            {"system": {"system": "hirise"}, "executor": "serial"}
        )
        assert engine.executor == "serial"
        assert engine.run_batch([{"n_frames": 1, "seed": 0}]).executor == "serial"


class TestBitIdentity:
    def test_serial_matches_reference(self, reference):
        batch = Engine(SYSTEM).run_batch(requests(), executor="serial")
        assert batch.executor == "serial"
        for got, want in zip(batch, reference):
            assert got.scenario == want.scenario
            assert got.outcome.frames == want.outcome.frames

    def test_thread_matches_reference(self, reference):
        batch = Engine(SYSTEM).run_batch(requests(), workers=3, executor="thread")
        assert batch.executor == "thread"
        for got, want in zip(batch, reference):
            assert got.outcome.frames == want.outcome.frames

    def test_process_matches_reference(self, reference, process_pool):
        batch = Engine(SYSTEM).run_batch(requests(), executor=process_pool)
        assert batch.executor == "process"
        assert [r.scenario.name for r in batch] == [r.name for r in requests()]
        for got, want in zip(batch, reference):
            assert got.outcome.frames == want.outcome.frames

    def test_process_round_trips_images(self, process_pool):
        request = scenario(keep_outcomes=True)
        fresh = Engine(SYSTEM, cache=EngineCache.disabled()).run(request)
        batch = Engine(SYSTEM).run_batch([request], executor=process_pool)
        for a, b in zip(batch[0].outcome.outcomes, fresh.outcome.outcomes):
            assert np.array_equal(a.stage1_image, b.stage1_image)
            for ca, cb in zip(a.roi_crops, b.roi_crops):
                assert np.array_equal(ca, cb)

    def test_process_serves_repeat_batches_from_cache(self, process_pool):
        engine = Engine(SYSTEM)
        cold = engine.run_batch(requests(), executor=process_pool)
        warm = engine.run_batch(requests(), executor=process_pool)
        assert warm.cache.results.hits == len(requests())
        assert warm.cache.results.misses == 0
        assert [r.outcome.frames for r in warm] == [
            r.outcome.frames for r in cold
        ]

    def test_process_duplicate_requests_count_like_single_flight(self, process_pool):
        # duplicates in one batch: 1 dispatched miss + 1 shared hit, the
        # same accounting serial/thread report via the single-flight cache
        engine = Engine(SYSTEM)
        batch = engine.run_batch([scenario(), scenario()], executor=process_pool)
        assert batch.cache.results.misses == 1
        assert batch.cache.results.hits == 1
        assert batch[0].outcome.frames == batch[1].outcome.frames

    def test_process_disabled_cache_recomputes_duplicates(self, process_pool):
        # EngineCache.disabled() means recompute everything — no dedup, no
        # hits, exactly like serial/thread with a disabled tier
        engine = Engine(SYSTEM, cache=EngineCache.disabled())
        batch = engine.run_batch([scenario(), scenario()], executor=process_pool)
        assert batch.cache.results.hits == 0
        assert batch.cache.results.misses == 2
        assert batch[0] is not batch[1]
        assert batch[0].outcome.frames == batch[1].outcome.frames

    def test_process_propagates_spec_errors(self, process_pool):
        engine = Engine(SYSTEM)
        bad = [scenario(), scenario(source=ComponentRef("webcam"))]
        with pytest.raises(SpecError, match="webcam"):
            engine.run_batch(bad, executor=process_pool)

    def test_executor_instance_overrides_name_and_stays_open(self):
        pool = ThreadExecutor(workers=2)
        engine = Engine(SYSTEM, executor="serial")
        batch = engine.run_batch(requests(), executor=pool)
        assert batch.executor == "thread"
        assert batch.workers == 2
        # the caller's pool is not closed by run_batch
        again = engine.run_batch(requests(), executor=pool)
        assert len(again) == len(requests())
        pool.close()


class TestChunking:
    def test_groups_shared_clips_together_within_even_share(self):
        # 2 clip-sharers + 2 solos over 2 chunks: the sharers fit an even
        # share (ceil(4/2) = 2), so they stay together in one chunk
        shared = [scenario(name=f"s{i}") for i in range(2)]
        solos = [scenario(seed=98), scenario(seed=99)]
        chunks = _chunk_by_clip(list(enumerate(shared + solos)), n_chunks=2)
        assert sorted(i for chunk in chunks for i, _ in chunk) == [0, 1, 2, 3]
        assert sorted(len(c) for c in chunks) == [2, 2]
        by_chunk = [{i for i, _ in c} for c in chunks]
        assert {0, 1} in by_chunk

    def test_homogeneous_fleet_splits_across_workers(self):
        # one shared clip must not serialize the whole batch onto one worker
        indexed = [(i, scenario(name=f"s{i}")) for i in range(8)]
        chunks = _chunk_by_clip(indexed, n_chunks=4)
        assert len(chunks) == 4
        assert sorted(len(c) for c in chunks) == [2, 2, 2, 2]

    def test_respects_chunk_budget(self):
        indexed = [(i, scenario(seed=i)) for i in range(8)]
        chunks = _chunk_by_clip(indexed, n_chunks=3)
        assert len(chunks) <= 3
        assert sorted(i for chunk in chunks for i, _ in chunk) == list(range(8))

    def test_uncacheable_scenarios_stay_solo(self):
        odd = scenario(
            source=ComponentRef(
                "pedestrian", {"resolution": [64, 48], "n_walkers": np.int64(2)}
            )
        )
        chunks = _chunk_by_clip([(0, odd), (1, odd)], n_chunks=2)
        assert sorted(len(c) for c in chunks) == [1, 1]

    def test_executor_names_constant(self):
        assert EXECUTOR_NAMES == ("serial", "thread", "process")

    def test_cli_choices_match_executor_names(self):
        # __main__ hardcodes the choices to keep parser construction cheap;
        # this pins the two lists together
        from repro.__main__ import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if isinstance(a.choices, dict)
        )
        for command in ("run", "sweep"):
            sub = subparsers.choices[command]
            executor_arg = next(
                a for a in sub._actions if "--executor" in a.option_strings
            )
            assert tuple(executor_arg.choices) == EXECUTOR_NAMES, command
