"""Per-batch cache-delta attribution under concurrency.

``BatchResult.cache`` used to be a global before/after snapshot of the
engine cache, which mis-attributed traffic whenever two batches shared
one warm cache concurrently (exactly what daemon connections do).  These
tests pin the fixed behavior: every batch reports **its own** lookups,
no more, no less, even with another batch provably in flight.
"""

import threading

import pytest

from repro.service import Engine, SOURCES, ScenarioSpec
from repro.stream import pedestrian_clip

SYSTEM = {"system": {"system": "hirise"}}


def scenarios(source, seeds):
    return [
        ScenarioSpec.from_dict(
            {
                "source": {"name": source, "params": {}},
                "n_frames": 3,
                "seed": seed,
                "name": f"delta-{seed}",
            }
        )
        for seed in seeds
    ]


@pytest.fixture
def rendezvous_source():
    """A source that makes two concurrent batches meet mid-build.

    The first build from EACH of two batches blocks on a 2-party barrier,
    so both batches are provably inside their cache windows at once — the
    exact interleaving where snapshot-based deltas double-count.
    """
    barrier = threading.Barrier(2, timeout=30)
    name = "rendezvous-pedestrian"

    @SOURCES.register(name)
    def build(n_frames, seed, **params):
        barrier.wait()
        return pedestrian_clip(n_frames=n_frames, resolution=(48, 36), seed=seed)

    yield name
    del SOURCES[name]


class TestConcurrentBatchAttribution:
    def test_two_concurrent_batches_each_count_only_their_own(
        self, rendezvous_source
    ):
        engine = Engine.from_spec(SYSTEM)
        # Three builds per batch: a batch's builds can't all pair up among
        # themselves at the 2-party barrier (odd count), so finishing a
        # batch REQUIRES a build from the other batch to be in flight —
        # the windows provably overlap, and 3+3 keeps the total even so
        # every barrier wait is matched.
        batch_a = scenarios(rendezvous_source, seeds=(1, 2, 3))
        batch_b = scenarios(rendezvous_source, seeds=(11, 12, 13))
        results = {}

        def run(key, batch):
            results[key] = engine.run_batch(batch, workers=2, executor="thread")

        threads = [
            threading.Thread(target=run, args=("a", batch_a)),
            threading.Thread(target=run, args=("b", batch_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert sorted(results) == ["a", "b"]

        # Every scenario is distinct and cold: each batch's delta must be
        # exactly its own misses — a snapshot-based delta would count the
        # other batch's overlapping traffic too.
        a, b = results["a"].cache, results["b"].cache
        assert (a.results.hits, a.results.misses) == (0, len(batch_a))
        assert (b.results.hits, b.results.misses) == (0, len(batch_b))
        assert (a.clips.hits, a.clips.misses) == (0, len(batch_a))
        assert (b.clips.hits, b.clips.misses) == (0, len(batch_b))

        # The per-batch deltas tile the global counters exactly.
        total = engine.cache.stats()
        assert total.results.misses == len(batch_a) + len(batch_b)
        assert total.results.hits == 0
        assert total.clips.misses == len(batch_a) + len(batch_b)

    def test_concurrent_warm_batches_attribute_hits_per_batch(
        self, rendezvous_source
    ):
        engine = Engine.from_spec(SYSTEM)
        # Two cold scenarios rendezvous once to warm the cache...
        warm = scenarios(rendezvous_source, seeds=(21, 22))
        cold = {}

        def prewarm(spec):
            cold[spec.seed] = engine.run_batch([spec], executor="thread")

        threads = [threading.Thread(target=prewarm, args=(s,)) for s in warm]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for spec in warm:
            assert cold[spec.seed].cache.results.misses == 1

        # ...then two warm batches replay them concurrently: all hits, and
        # each batch claims exactly its own.  (Result-tier hits don't touch
        # the clip tier at all — the memoized RunResult short-circuits.)
        warm_results = {}

        def replay(key, batch):
            warm_results[key] = engine.run_batch(batch, workers=2, executor="thread")

        threads = [
            threading.Thread(target=replay, args=("a", [warm[0], warm[1]])),
            threading.Thread(target=replay, args=("b", [warm[1], warm[0]])),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for key in ("a", "b"):
            delta = warm_results[key].cache
            assert (delta.results.hits, delta.results.misses) == (2, 0)
            assert delta.clips.lookups == 0

    def test_single_batch_delta_unchanged_by_fix(self):
        # The sequential case the old snapshot got right must stay right.
        engine = Engine.from_spec(SYSTEM)
        batch = scenarios("pedestrian", seeds=(31, 32))
        first = engine.run_batch(batch, executor="serial")
        assert (first.cache.results.hits, first.cache.results.misses) == (0, 2)
        second = engine.run_batch(batch, executor="serial")
        assert (second.cache.results.hits, second.cache.results.misses) == (2, 0)
        assert second.cache.clips.lookups == 0
