"""Tests for spec serialization: exact round-trips and field-naming errors."""

import json

import pytest

from repro.core import HiRISEConfig
from repro.service import (
    ComponentRef,
    ScenarioSpec,
    ServiceSpec,
    SpecError,
    SystemSpec,
)
from repro.service.spec import coerce_service_spec


def rich_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="stress",
        source=ComponentRef("drone", {"resolution": [128, 96], "n_vehicles": 2}),
        n_frames=5,
        seed=17,
        frame_seeds=(3, 1, 4, 1, 5),
        policy=ComponentRef("temporal-reuse", {"max_reuse": 2}),
        batch_size=1,
        keep_outcomes=True,
        window=4,
    )


def rich_system() -> SystemSpec:
    from repro.sensor import NoiseModel

    return SystemSpec(
        system="hirise",
        config=HiRISEConfig(pool_k=2, grayscale_stage1=True, max_rois=4),
        detector=ComponentRef("ground-truth", {"label": "person", "score": 0.8}),
        classifier=ComponentRef("mean-luma"),
        noise=NoiseModel(read_noise=1e-3, seed=7),
    )


class TestRoundTrip:
    def test_component_ref(self):
        ref = ComponentRef("pedestrian", {"speed": 2.5})
        assert ComponentRef.from_dict(ref.to_dict()) == ref

    def test_component_ref_string_shorthand(self):
        assert ComponentRef.from_dict("drone") == ComponentRef("drone")

    def test_scenario_spec_dict(self):
        spec = rich_scenario()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_scenario_spec_json(self):
        spec = rich_scenario()
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        # and the JSON text itself is plain data
        assert json.loads(spec.to_json())["n_frames"] == 5

    def test_scenario_defaults_round_trip(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_system_spec(self):
        spec = rich_system()
        assert SystemSpec.from_dict(spec.to_dict()) == spec
        assert SystemSpec.from_json(spec.to_json()) == spec

    def test_service_spec(self):
        spec = ServiceSpec(
            system=rich_system(), scenarios=(rich_scenario(), ScenarioSpec()),
            workers=3,
        )
        assert ServiceSpec.from_dict(spec.to_dict()) == spec
        assert ServiceSpec.from_json(spec.to_json()) == spec

    def test_specs_are_hashable(self):
        # frozen value types: equal specs hash equal, sets dedup them
        a, b = rich_scenario(), rich_scenario()
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        assert len({rich_system(), rich_system()}) == 1
        assert hash(ComponentRef("x", {"p": [1, 2]})) == hash(
            ComponentRef("x", {"p": [1, 2]})
        )

    def test_hirise_config(self):
        config = HiRISEConfig(pool_k=4, merge_roi_iou=0.5, max_rois=2)
        assert HiRISEConfig.from_dict(config.to_dict()) == config
        assert (
            HiRISEConfig.from_dict(json.loads(json.dumps(config.to_dict())))
            == config
        )


class TestValidation:
    def test_unknown_scenario_field_named(self):
        with pytest.raises(SpecError, match=r"scenario.*frames_n"):
            ScenarioSpec.from_dict({"frames_n": 10})

    def test_wrong_type_names_field_and_value(self):
        with pytest.raises(SpecError, match=r"scenario\.n_frames.*'ten'"):
            ScenarioSpec.from_dict({"n_frames": "ten"})
        with pytest.raises(SpecError, match=r"scenario\.keep_outcomes"):
            ScenarioSpec.from_dict({"keep_outcomes": "yes"})
        # bools are not ints for spec purposes
        with pytest.raises(SpecError, match=r"scenario\.seed"):
            ScenarioSpec.from_dict({"seed": True})

    def test_frame_seeds_validation(self):
        with pytest.raises(SpecError, match=r"scenario\.frame_seeds"):
            ScenarioSpec.from_dict({"frame_seeds": "abc"})
        with pytest.raises(SpecError, match=r"frame_seeds.*2 seeds for 3"):
            ScenarioSpec(n_frames=3, frame_seeds=(1, 2))

    def test_scenario_bounds_named(self):
        with pytest.raises(SpecError, match=r"scenario\.n_frames"):
            ScenarioSpec(n_frames=0)
        with pytest.raises(SpecError, match=r"scenario\.batch_size"):
            ScenarioSpec(batch_size=0)
        with pytest.raises(SpecError, match=r"scenario\.window: must be >= 1"):
            ScenarioSpec(window=0)
        with pytest.raises(SpecError, match=r"scenario\.window.*legacy"):
            ScenarioSpec(window=2, batch_size=2)

    def test_window_reaches_the_runner(self):
        """The spec knob lands on the engine's StreamRunner (and the
        runner gets the scenario label for its error messages)."""
        from repro.service import Engine

        engine = Engine.from_spec({"system": {"system": "hirise"}})
        scenario = ScenarioSpec(
            n_frames=4,
            window=4,
            source=ComponentRef("pedestrian", {"resolution": [64, 48]}),
        )
        clip = engine._build_clip(scenario)
        runner, _ = engine._build_runner(scenario, clip)
        assert runner.window == 4
        assert runner.effective_window == 4
        assert runner.label == "pedestrian/none"
        conventional = Engine.from_spec({"system": {"system": "conventional"}})
        with pytest.raises(SpecError, match=r"'pedestrian/none'.*conventional"):
            conventional._build_runner(scenario, clip)

    def test_component_ref_errors_named(self):
        with pytest.raises(SpecError, match=r"scenario\.source\.name.*missing"):
            ScenarioSpec.from_dict({"source": {"params": {}}})
        with pytest.raises(SpecError, match=r"scenario\.policy.*pararms"):
            ScenarioSpec.from_dict({"policy": {"name": "none", "pararms": {}}})

    def test_bad_system_value(self):
        with pytest.raises(SpecError, match="'quantum'"):
            SystemSpec(system="quantum")

    def test_bad_config_field_named(self):
        with pytest.raises(SpecError, match=r"system\.config.*pool_q"):
            SystemSpec.from_dict({"config": {"pool_q": 8}})
        with pytest.raises(SpecError, match=r"system\.config"):
            SystemSpec.from_dict({"config": {"pool_k": 0}})

    def test_unknown_system_field_named(self):
        with pytest.raises(SpecError, match=r"system.*detectors"):
            SystemSpec.from_dict({"detectors": {"name": "grid"}})

    def test_unknown_noise_field_named(self):
        with pytest.raises(SpecError, match=r"system\.noise.*read_nose"):
            SystemSpec.from_dict({"noise": {"read_nose": 0.1}})

    def test_service_spec_errors(self):
        with pytest.raises(SpecError, match=r"spec\.workers"):
            ServiceSpec.from_dict({"workers": "four"})
        with pytest.raises(SpecError, match="workers"):
            ServiceSpec(workers=0)
        with pytest.raises(SpecError, match=r"spec\.scenarios"):
            ServiceSpec.from_dict({"scenarios": {"name": "not-a-list"}})

    def test_hirise_config_unknown_fields_named(self):
        with pytest.raises(ValueError, match=r"pool_q.*valid fields"):
            HiRISEConfig.from_dict({"pool_q": 8, "adc_bits": 8})


class TestCoercion:
    def test_bare_system_dict(self):
        service = coerce_service_spec({"system": "conventional"})
        assert service.system.system == "conventional"
        assert service.scenarios == ()

    def test_full_layout(self):
        service = coerce_service_spec(
            {"system": {"system": "hirise"}, "scenarios": [{"n_frames": 2}]}
        )
        assert service.scenarios[0].n_frames == 2

    def test_scenarios_without_system(self):
        service = coerce_service_spec({"scenarios": [{}], "workers": 2})
        assert service.system == SystemSpec()
        assert service.workers == 2

    def test_bare_string_system_with_scenarios(self):
        # adding a scenarios list to a bare system spec must keep parsing
        service = coerce_service_spec(
            {"system": "conventional", "scenarios": [{"n_frames": 3}]}
        )
        assert service.system.system == "conventional"
        assert service.scenarios[0].n_frames == 3

    def test_spec_objects_pass_through(self):
        system = rich_system()
        assert coerce_service_spec(system).system == system
        service = ServiceSpec(system=system)
        assert coerce_service_spec(service) is service


class TestComputeDtype:
    def test_default_and_round_trip(self):
        spec = SystemSpec()
        assert spec.compute_dtype == "float64"
        assert SystemSpec.from_dict(spec.to_dict()) == spec

    def test_float32_round_trips(self):
        spec = SystemSpec(compute_dtype="float32")
        data = json.loads(spec.to_json())
        assert data["compute_dtype"] == "float32"
        assert SystemSpec.from_dict(data) == spec

    def test_invalid_value_names_field(self):
        with pytest.raises(SpecError, match=r"system\.compute_dtype.*float16"):
            SystemSpec(compute_dtype="float16")

    def test_wrong_type_names_field(self):
        with pytest.raises(SpecError, match=r"system\.compute_dtype"):
            SystemSpec.from_dict({"compute_dtype": 32})

    def test_dtype_changes_spec_equality(self):
        assert SystemSpec(compute_dtype="float32") != SystemSpec()

    def test_service_spec_carries_dtype(self):
        service = ServiceSpec(system=SystemSpec(compute_dtype="float32"))
        clone = ServiceSpec.from_dict(json.loads(service.to_json()))
        assert clone.system.compute_dtype == "float32"
