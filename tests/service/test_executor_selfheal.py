"""Self-healing ProcessExecutor: crash recovery, retry budget, counters."""

import pytest

from repro.core import HiRISEConfig
from repro.faults import FaultPlan, FaultSpec
from repro.service import (
    ComponentRef,
    Engine,
    EngineCache,
    ProcessExecutor,
    ScenarioSpec,
    SpecError,
    SystemSpec,
    WorkUnitRetryError,
)

SYSTEM = SystemSpec(
    config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth", {"label": "person"}),
)


def scenario(**kwargs) -> ScenarioSpec:
    defaults = dict(
        source=ComponentRef("pedestrian", {"resolution": [64, 48]}),
        n_frames=2,
        seed=4,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def requests() -> list[ScenarioSpec]:
    return [
        scenario(name="heal/a"),
        scenario(name="heal/b", seed=9),
        scenario(name="heal/c", seed=11),
        scenario(name="heal/d", policy=ComponentRef("temporal-reuse")),
    ]


def crash_plan(fuse_dir, *hits) -> FaultPlan:
    """Worker crash at the given worker.run hits, once across all workers."""
    return FaultPlan(
        name="crash",
        seed=7,
        faults=(
            FaultSpec(
                site="worker.run", kind="worker-crash", at=hits, scope="global"
            ),
        ),
        fuse_dir=str(fuse_dir),
    )


class TestSelfHealing:
    def test_crash_recovery_is_bit_identical(self, tmp_path):
        # One worker takes a hard os._exit mid-batch; the pool respawns,
        # the chunk is re-dispatched, and the results match a fault-free
        # serial run bit for bit.
        reference_engine = Engine(SYSTEM, cache=EngineCache.disabled())
        reference = [reference_engine.run(r) for r in requests()]
        engine = Engine(
            SYSTEM,
            cache=EngineCache.disabled(),
            faults=crash_plan(tmp_path / "fuses", 1),
        )
        with ProcessExecutor(workers=2) as pool:
            batch = engine.run_batch(requests(), executor=pool)
            stats = pool.resilience_stats()
        assert stats["respawns"] >= 1
        assert stats["redispatched_units"] >= 1
        for got, want in zip(batch, reference):
            assert got.scenario == want.scenario
            assert got.outcome.frames == want.outcome.frames

    def test_retry_budget_exhaustion_names_the_unit(self, tmp_path):
        # Process-scope crash at hit 0 fires in every freshly spawned
        # worker, so each re-dispatch dies the same way until the budget
        # runs out.
        plan = FaultPlan(
            name="always-crash",
            seed=0,
            faults=(
                FaultSpec(site="worker.run", kind="worker-crash", at=(0,)),
            ),
        )
        engine = Engine(SYSTEM, cache=EngineCache.disabled(), faults=plan)
        with ProcessExecutor(workers=1, max_unit_retries=1) as pool:
            with pytest.raises(WorkUnitRetryError) as excinfo:
                engine.run_batch([scenario(name="doomed")], executor=pool)
        error = excinfo.value
        assert tuple(error.labels) == ("doomed",)
        assert error.attempts == 2
        assert "doomed" in str(error)
        assert "retry budget exhausted" in str(error)

    def test_deterministic_errors_propagate_without_respawn(self):
        # A SpecError is the work's fault, not the worker's: it must
        # surface immediately and never trip the self-healing machinery.
        engine = Engine(SYSTEM)
        bad = [scenario(), scenario(source=ComponentRef("webcam"))]
        with ProcessExecutor(workers=2) as pool:
            with pytest.raises(SpecError, match="webcam"):
                engine.run_batch(bad, executor=pool)
            assert pool.resilience_stats() == {
                "respawns": 0,
                "redispatched_units": 0,
            }

    def test_fault_free_batch_reports_clean_stats(self):
        engine = Engine(SYSTEM, cache=EngineCache.disabled())
        with ProcessExecutor(workers=2) as pool:
            batch = engine.run_batch(requests()[:2], executor=pool)
            assert len(batch) == 2
            assert pool.resilience_stats() == {
                "respawns": 0,
                "redispatched_units": 0,
            }


class TestConstructor:
    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError, match="max_unit_retries"):
            ProcessExecutor(workers=1, max_unit_retries=-1)

    def test_zero_timeout_rejected(self):
        with pytest.raises(ValueError, match="chunk_timeout_s"):
            ProcessExecutor(workers=1, chunk_timeout_s=0)

    def test_error_carries_labels_and_attempts(self):
        error = WorkUnitRetryError(["a", "b"], 3)
        assert tuple(error.labels) == ("a", "b")
        assert error.attempts == 3
        assert isinstance(error, RuntimeError)
