"""Tests for the Engine façade: spec loading, serving, and batch identity."""

import json

import numpy as np
import pytest

from repro.core import HiRISEConfig, HiRISEPipeline
from repro.service import (
    ComponentRef,
    Engine,
    ScenarioSpec,
    ServiceSpec,
    SpecError,
    SystemSpec,
    register_detector,
)
from repro.service.registry import DETECTORS
from repro.stream import StreamRunner, ground_truth_detector, pedestrian_clip

SYSTEM = SystemSpec(
    config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth", {"label": "person"}),
)


def scenario(**kwargs) -> ScenarioSpec:
    defaults = dict(
        source=ComponentRef("pedestrian", {"resolution": [128, 96]}),
        n_frames=6,
        seed=4,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestConstruction:
    def test_from_spec_dict_and_objects(self):
        for spec in (
            SYSTEM,
            SYSTEM.to_dict(),
            ServiceSpec(system=SYSTEM),
            {"system": SYSTEM.to_dict(), "scenarios": [], "workers": 2},
        ):
            engine = Engine.from_spec(spec)
            assert engine.spec == SYSTEM

    def test_from_spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        service = ServiceSpec(system=SYSTEM, scenarios=(scenario(),), workers=2)
        path.write_text(service.to_json())
        engine = Engine.from_spec(path)
        assert engine.spec == SYSTEM
        assert engine.scenarios == service.scenarios
        assert engine.workers == 2
        # str paths work too
        assert Engine.from_spec(str(path)).spec == SYSTEM

    def test_from_spec_bad_json_names_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="broken.json"):
            Engine.from_spec(path)

    def test_from_spec_non_utf8_names_file(self, tmp_path):
        path = tmp_path / "binary.json"
        path.write_bytes(b"\xff\xfe{}")
        with pytest.raises(SpecError, match="binary.json"):
            Engine.from_spec(path)

    def test_unknown_detector_fails_at_construction(self):
        spec = SystemSpec(detector=ComponentRef("resnet-900"))
        with pytest.raises(SpecError, match=r"system\.detector.*resnet-900"):
            Engine(spec)

    def test_unknown_source_fails_with_field_name(self):
        engine = Engine(SYSTEM)
        with pytest.raises(SpecError, match=r"scenario\.source.*webcam"):
            engine.run(scenario(source=ComponentRef("webcam")))

    def test_bad_source_params_name_the_source(self):
        engine = Engine(SYSTEM)
        bad = scenario(source=ComponentRef("pedestrian", {"wlakers": 3}))
        with pytest.raises(SpecError, match="pedestrian"):
            engine.run(bad)

    def test_bad_detector_params_raise_spec_error(self):
        engine = Engine(
            SystemSpec(detector=ComponentRef("ground-truth", {"labl": "x"}))
        )
        with pytest.raises(SpecError, match=r"system\.detector.*ground-truth"):
            engine.run(scenario())

    def test_bad_classifier_params_raise_spec_error(self):
        engine = Engine(
            SystemSpec(
                detector=SYSTEM.detector,
                classifier=ComponentRef("mean-luma", {"gamma": 2.0}),
            )
        )
        with pytest.raises(SpecError, match=r"system\.classifier.*mean-luma"):
            engine.run(scenario())

    def test_reuse_plus_batching_rejected_as_spec_error(self):
        engine = Engine(SYSTEM)
        bad = scenario(
            policy=ComponentRef("temporal-reuse"), batch_size=4
        )
        with pytest.raises(SpecError, match="reuse"):
            engine.run(bad)


class TestServing:
    def test_run_matches_hand_wired_runner(self):
        clip = pedestrian_clip(n_frames=6, resolution=(128, 96), seed=4)
        detect, on_frame = ground_truth_detector(clip, label="person")
        pipeline = HiRISEPipeline(
            detector=detect,
            config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
        )
        manual = StreamRunner(pipeline).run(clip.frames, on_frame=on_frame)

        result = Engine(SYSTEM).run(scenario())
        assert result.outcome.frames == manual.frames

    def test_run_accepts_request_dicts(self):
        engine = Engine(SYSTEM)
        from_spec = engine.run(scenario())
        from_dict = engine.run(json.loads(scenario().to_json()))
        assert from_dict.outcome.frames == from_spec.outcome.frames

    def test_repeated_runs_identical(self):
        engine = Engine(SYSTEM)
        a = engine.run(scenario(policy=ComponentRef("temporal-reuse")))
        b = engine.run(scenario(policy=ComponentRef("temporal-reuse")))
        assert a.outcome.frames == b.outcome.frames

    def test_frame_seeds_drive_temporal_noise(self):
        from repro.sensor import NoiseModel

        noisy = SystemSpec(
            config=SYSTEM.config, detector=SYSTEM.detector, noise=NoiseModel()
        )
        engine = Engine(noisy)
        default = engine.run(scenario(keep_outcomes=True))
        seeded = engine.run(
            scenario(keep_outcomes=True, frame_seeds=(9, 8, 7, 6, 5, 4))
        )
        repeat = engine.run(
            scenario(keep_outcomes=True, frame_seeds=(9, 8, 7, 6, 5, 4))
        )
        images = lambda r: [o.stage1_image for o in r.outcome.outcomes]
        # different seeds, different exposures; same seeds, identical ones
        assert not all(
            np.array_equal(a, b) for a, b in zip(images(default), images(seeded))
        )
        assert all(
            np.array_equal(a, b) for a, b in zip(images(seeded), images(repeat))
        )

    def test_conventional_system(self):
        engine = Engine(
            SystemSpec(
                system="conventional",
                detector=ComponentRef("ground-truth", {"label": "person"}),
            )
        )
        outcome = engine.run(scenario()).outcome
        assert outcome.system == "conventional"
        assert outcome.n_frames == 6

    def test_classifier_slot_runs(self):
        engine = Engine(
            SystemSpec(
                config=SYSTEM.config,
                detector=SYSTEM.detector,
                classifier=ComponentRef("mean-luma"),
            )
        )
        result = engine.run(scenario(keep_outcomes=True))
        predictions = [
            p for o in result.outcome.outcomes for p in o.predictions
        ]
        assert predictions
        assert all(0.0 <= p <= 1.0 for p in predictions)

    def test_keep_outcomes_round_trip(self):
        result = Engine(SYSTEM).run(scenario(keep_outcomes=True))
        assert len(result.outcome.outcomes) == 6

    def test_custom_registered_detector(self):
        @register_detector("test-null")
        def _null(clip, **params):
            return (lambda frame: []), None

        try:
            engine = Engine(SystemSpec(detector=ComponentRef("test-null")))
            outcome = engine.run(scenario()).outcome
            assert all(f.n_rois == 0 for f in outcome.frames)
        finally:
            del DETECTORS["test-null"]

    def test_label_and_report(self):
        result = Engine(SYSTEM).run(scenario(name="smoke"))
        assert result.label == "smoke"
        assert "smoke" in result.report()
        unnamed = Engine(SYSTEM).run(scenario())
        assert unnamed.label == "pedestrian/none"


class TestBatch:
    def requests(self):
        return [
            scenario(name="a/frame"),
            scenario(name="a/batch", batch_size=3),
            scenario(name="a/reuse", policy=ComponentRef("temporal-reuse")),
            scenario(name="b/other-seed", seed=9),
        ]

    def test_batch_bit_identical_to_sequential(self):
        engine = Engine(SYSTEM)
        requests = self.requests()
        sequential = [engine.run(r) for r in requests]
        batch = engine.run_batch(requests, workers=4)
        assert len(batch) == len(sequential)
        for seq, par in zip(sequential, batch):
            assert par.scenario == seq.scenario
            assert par.outcome.frames == seq.outcome.frames

    def test_batch_preserves_request_order(self):
        engine = Engine(SYSTEM)
        requests = self.requests()
        batch = engine.run_batch(requests, workers=3)
        assert [r.scenario.name for r in batch] == [r.name for r in requests]

    def test_batch_aggregates_sum(self):
        engine = Engine(SYSTEM)
        batch = engine.run_batch(self.requests(), workers=2)
        outcomes = batch.outcomes
        assert batch.total_bytes == sum(o.total_bytes for o in outcomes)
        assert batch.total_frames == sum(o.n_frames for o in outcomes)
        assert batch.total_energy_j == pytest.approx(
            sum(o.total_energy_j for o in outcomes)
        )
        assert batch.reused_frames == sum(o.reused_frames for o in outcomes)
        assert batch.peak_image_memory_bytes == max(
            o.peak_image_memory_bytes for o in outcomes
        )
        assert batch.wall_time_s > 0
        assert batch.frames_per_second > 0
        assert "scenario(s)" in batch.report()

    def test_batch_default_workload_from_spec(self):
        engine = Engine.from_spec(
            ServiceSpec(system=SYSTEM, scenarios=(scenario(), scenario(seed=5)))
        )
        batch = engine.run_batch()
        assert len(batch) == 2

    def test_batch_keep_outcomes_images_identical(self):
        engine = Engine(SYSTEM)
        requests = [scenario(keep_outcomes=True), scenario(keep_outcomes=True, seed=9)]
        sequential = [engine.run(r) for r in requests]
        batch = engine.run_batch(requests, workers=2)
        for seq, par in zip(sequential, batch):
            for a, b in zip(seq.outcome.outcomes, par.outcome.outcomes):
                assert np.array_equal(a.stage1_image, b.stage1_image)
                for ca, cb in zip(a.roi_crops, b.roi_crops):
                    assert np.array_equal(ca, cb)

    def test_batch_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            Engine(SYSTEM).run_batch([scenario()], workers=0)

    def test_batch_propagates_request_errors(self):
        engine = Engine(SYSTEM)
        requests = [scenario(), scenario(source=ComponentRef("webcam"))]
        with pytest.raises(SpecError, match="webcam"):
            engine.run_batch(requests, workers=2)

    def test_batch_accepts_unserializable_source_params(self):
        # numpy scalars defeat the clip cache's JSON key; the request must
        # still run (uncached) and match the sequential path
        engine = Engine(SYSTEM)
        request = scenario(
            source=ComponentRef(
                "pedestrian", {"resolution": [128, 96], "n_walkers": np.int64(2)}
            )
        )
        sequential = engine.run(request)
        batch = engine.run_batch([request, request], workers=2)
        for result in batch:
            assert result.outcome.frames == sequential.outcome.frames

    def test_batch_source_cache_shares_identical_sources_only(self):
        engine = Engine(SYSTEM)
        # same clip spec, different policies -> shareable; different seed -> not
        requests = [
            scenario(),
            scenario(policy=ComponentRef("temporal-reuse")),
            scenario(seed=9),
        ]
        batch = engine.run_batch(requests, workers=1)
        same_a, _, different = batch
        assert same_a.outcome.frames != different.outcome.frames


class TestBatchedStage2Serving:
    SPEC = SystemSpec(
        config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
        detector=ComponentRef("ground-truth", {"label": "person"}),
        classifier=ComponentRef("tiny-cnn", {"input_size": 16}),
    )

    @staticmethod
    def _predictions(result):
        return [
            p for o in result.outcome.outcomes for p in o.predictions
        ]

    def test_served_predictions_match_per_crop_reference(self):
        from repro.ml import CropClassifier, tiny_cnn

        engine = Engine(self.SPEC)
        result = engine.run(scenario(keep_outcomes=True))
        reference = CropClassifier(
            tiny_cnn(16, 2, seed=0), (16, 16), ("object", "background")
        )
        served = self._predictions(result)
        assert served
        for outcome in result.outcome.outcomes:
            for crop, prediction in zip(outcome.roi_crops, outcome.predictions):
                expected = reference(crop)
                assert prediction.label == expected.label
                assert np.array_equal(prediction.logits, expected.logits)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_bit_identical_predictions(self, executor):
        from repro.service import EngineCache

        requests = [scenario(keep_outcomes=True, n_frames=2),
                    scenario(keep_outcomes=True, n_frames=2, seed=9)]
        reference = Engine(self.SPEC, cache=EngineCache.disabled())
        sequential = [reference.run(r) for r in requests]

        engine = Engine(self.SPEC, cache=EngineCache.disabled())
        batch = engine.run_batch(requests, workers=2, executor=executor)
        for seq, got in zip(sequential, batch):
            a, b = self._predictions(seq), self._predictions(got)
            assert len(a) == len(b) and a
            for x, y in zip(a, b):
                assert x.label == y.label
                assert np.array_equal(x.logits, y.logits)

    def test_stream_reuse_path_matches_per_crop_reference(self):
        from repro.ml import CropClassifier, tiny_cnn

        engine = Engine(self.SPEC)
        result = engine.run(
            scenario(
                keep_outcomes=True,
                policy=ComponentRef("temporal-reuse", {"max_reuse": 3}),
            )
        )
        assert result.outcome.reused_frames > 0
        reference = CropClassifier(
            tiny_cnn(16, 2, seed=0), (16, 16), ("object", "background")
        )
        for outcome in result.outcome.outcomes:
            for crop, prediction in zip(outcome.roi_crops, outcome.predictions):
                expected = reference(crop)
                assert prediction.label == expected.label
                assert np.array_equal(prediction.logits, expected.logits)

    def test_float32_mode_argmax_parity(self):
        f64 = Engine(self.SPEC)
        f32 = Engine(
            SystemSpec(
                config=self.SPEC.config,
                detector=self.SPEC.detector,
                classifier=self.SPEC.classifier,
                compute_dtype="float32",
            )
        )
        request = scenario(keep_outcomes=True)
        a = self._predictions(f64.run(request))
        b = self._predictions(f32.run(request))
        assert a and len(a) == len(b)
        from repro.ml.classifier.crop import FLOAT32_LOGIT_ATOL, FLOAT32_LOGIT_RTOL

        for x, y in zip(a, b):
            assert y.logits.dtype == np.float32
            assert x.index == y.index
            assert np.allclose(
                y.logits, x.logits,
                atol=FLOAT32_LOGIT_ATOL, rtol=FLOAT32_LOGIT_RTOL,
            )


class TestEngineProfiling:
    PHASES = ("expose", "stage1.read", "detect", "condition",
              "stage2.read", "stage2.classify")

    def test_run_attaches_profile(self):
        engine = Engine(SYSTEM, profile=True)
        result = engine.run(scenario())
        assert result.profile is not None
        for path in self.PHASES:
            assert result.profile.get(path) is not None, path
        assert "phase breakdown" in result.report()

    def test_profile_off_by_default(self):
        result = Engine(SYSTEM).run(scenario())
        assert result.profile is None

    def test_profiled_requests_bypass_result_cache(self):
        engine = Engine(SYSTEM, profile=True)
        engine.run(scenario())
        stats = engine.cache.stats()
        assert stats.results.lookups == 0
        # And nothing was memoized: a second engine with profiling off
        # still misses.
        engine.profile = False
        engine.run(scenario())
        assert engine.cache.stats().results.misses == 1

    def test_batch_merges_profiles(self):
        engine = Engine(SYSTEM, profile=True)
        batch = engine.run_batch(
            [scenario(n_frames=2), scenario(n_frames=2, seed=9)], workers=2
        )
        assert batch.profile is not None
        assert batch.profile.get("detect").calls == 4  # 2 requests x 2 frames
        assert "phase breakdown" in batch.report()

    def test_process_executor_returns_profiles(self):
        engine = Engine(SYSTEM, profile=True)
        batch = engine.run_batch(
            [scenario(n_frames=2), scenario(n_frames=2, seed=9)],
            workers=2, executor="process",
        )
        assert all(r.profile is not None for r in batch)
        assert batch.profile.get("stage1.read") is not None
        # Same contract as serial/thread: profiled requests leave the
        # result tier untouched — no phantom lookups in the batch delta.
        assert batch.cache.results.lookups == 0

    def test_batched_stage1_mode_profiles_chunked_phases(self):
        engine = Engine(SYSTEM, profile=True)
        result = engine.run(scenario(n_frames=4, batch_size=2))
        profile = result.profile
        assert profile.get("stage1.read").calls == 2  # one per chunk flush
        assert profile.get("detect").calls == 4       # still per frame
