"""Tests for the content-addressed cache layer: keys, tiers, stats."""

import json
import threading

import numpy as np
import pytest

from repro.core import HiRISEConfig
from repro.service import (
    ComponentRef,
    Engine,
    EngineCache,
    ScenarioSpec,
    SystemSpec,
    spec_fingerprint,
)
from repro.service.cache import SpecCache, TierStats, clip_key, result_key

SYSTEM = SystemSpec(
    config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth", {"label": "person"}),
)


def scenario(**kwargs) -> ScenarioSpec:
    defaults = dict(
        source=ComponentRef("pedestrian", {"resolution": [96, 64]}),
        n_frames=3,
        seed=4,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestFingerprints:
    def test_stable_across_to_dict_round_trips(self):
        spec = scenario(policy=ComponentRef("temporal-reuse", {"max_reuse": 2}))
        round_tripped = ScenarioSpec.from_dict(spec.to_dict())
        assert spec_fingerprint(spec.to_dict()) == spec_fingerprint(
            round_tripped.to_dict()
        )
        system = SystemSpec.from_dict(SYSTEM.to_dict())
        assert spec_fingerprint(SYSTEM.to_dict()) == spec_fingerprint(
            system.to_dict()
        )

    def test_stable_across_json_key_order(self):
        payload = scenario().to_dict()
        shuffled = json.loads(json.dumps(payload, sort_keys=True))
        reversed_keys = dict(reversed(list(payload.items())))
        assert spec_fingerprint(payload) == spec_fingerprint(shuffled)
        assert spec_fingerprint(payload) == spec_fingerprint(reversed_keys)

    def test_different_specs_different_fingerprints(self):
        assert spec_fingerprint(scenario().to_dict()) != spec_fingerprint(
            scenario(seed=5).to_dict()
        )

    def test_uncanonicalizable_payload_is_uncacheable(self):
        assert spec_fingerprint({"n": np.int64(3)}) is None
        assert spec_fingerprint({"s": {1, 2}}) is None

    def test_clip_key_ignores_policy_and_labels(self):
        base = scenario()
        assert clip_key(base) == clip_key(
            scenario(name="renamed", policy=ComponentRef("temporal-reuse"),
                     keep_outcomes=True)
        )
        assert clip_key(base) != clip_key(scenario(seed=9))
        assert clip_key(base) != clip_key(scenario(n_frames=4))
        assert (
            clip_key(base)
            != clip_key(scenario(source=ComponentRef("pedestrian",
                                                     {"resolution": [128, 96]})))
        )

    def test_result_key_covers_system_and_scenario(self):
        other_system = SystemSpec(
            config=HiRISEConfig(pool_k=2), detector=SYSTEM.detector
        )
        assert result_key(SYSTEM, scenario()) != result_key(
            other_system, scenario()
        )
        assert result_key(SYSTEM, scenario()) != result_key(
            SYSTEM, scenario(keep_outcomes=True)
        )
        assert result_key(SYSTEM, scenario()) == result_key(
            SystemSpec.from_dict(SYSTEM.to_dict()),
            ScenarioSpec.from_dict(scenario().to_dict()),
        )


class TestSpecCache:
    def test_hit_miss_accounting(self):
        cache = SpecCache("clip", capacity=4)
        built = []
        for _ in range(3):
            cache.get_or_build("k", lambda: built.append(1) or "v")
        assert built == [1]
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction_counts(self):
        cache = SpecCache("clip", capacity=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)  # refresh a; b is now oldest
        cache.get_or_build("c", lambda: 3)  # evicts b
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        rebuilt = []
        cache.get_or_build("b", lambda: rebuilt.append(1) or 2)
        assert rebuilt == [1]  # b was really gone
        cache.get_or_build("c", lambda: pytest.fail("c must have survived"))

    def test_capacity_zero_disables_tier(self):
        cache = SpecCache("result", capacity=0)
        built = []
        for _ in range(2):
            cache.get_or_build("k", lambda: built.append(1) or "v")
        assert built == [1, 1]
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert len(cache) == 0

    def test_none_key_bypasses(self):
        cache = SpecCache("clip", capacity=4)
        built = []
        for _ in range(2):
            cache.get_or_build(None, lambda: built.append(1) or "v")
        assert built == [1, 1]
        assert len(cache) == 0

    def test_single_flight_under_threads(self):
        cache = SpecCache("clip", capacity=4)
        built = []
        gate = threading.Event()

        def build():
            gate.wait(timeout=5)
            built.append(1)
            return "v"

        threads = [
            threading.Thread(target=cache.get_or_build, args=("k", build))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert built == [1]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 3

    def test_failed_build_not_cached(self):
        cache = SpecCache("clip", capacity=4)
        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_build("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert cache.get_or_build("k", lambda: "recovered") == "recovered"

    def test_peek_and_put(self):
        cache = SpecCache("result", capacity=2)
        hit, value = cache.peek("k")
        assert (hit, value) == (False, None)
        cache.put("k", "v")
        hit, value = cache.peek("k")
        assert (hit, value) == (True, "v")
        cache.put("l", 1)
        cache.put("m", 2)  # evicts k
        assert cache.peek("k") == (False, None)
        assert cache.stats.evictions == 1

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SpecCache("clip", capacity=-1)


class TestTierStats:
    def test_delta_and_merge(self):
        a = TierStats(hits=5, misses=3, evictions=1)
        b = TierStats(hits=2, misses=1, evictions=0)
        assert a - b == TierStats(hits=3, misses=2, evictions=1)
        b.merge(a)
        assert b == TierStats(hits=7, misses=4, evictions=1)
        assert "hit" in a.describe()


class TestEngineCaching:
    def test_cached_result_bit_identical_to_fresh(self):
        request = scenario(keep_outcomes=True)
        fresh = Engine(SYSTEM, cache=EngineCache.disabled()).run(request)
        engine = Engine(SYSTEM)
        first = engine.run(request)
        cached = engine.run(request)
        assert cached is first  # served from the result tier
        assert cached.outcome.frames == fresh.outcome.frames
        for a, b in zip(cached.outcome.outcomes, fresh.outcome.outcomes):
            assert np.array_equal(a.stage1_image, b.stage1_image)
            for ca, cb in zip(a.roi_crops, b.roi_crops):
                assert np.array_equal(ca, cb)

    def test_batch_surfaces_cache_delta(self):
        engine = Engine(SYSTEM)
        requests = [scenario(), scenario(policy=ComponentRef("temporal-reuse"))]
        cold = engine.run_batch(requests, workers=1)
        assert cold.cache is not None
        assert cold.cache.results.misses == 2
        assert cold.cache.results.hits == 0
        assert cold.cache.clips.misses == 1  # one shared clip rendered
        assert cold.cache.clips.hits == 1
        warm = engine.run_batch(requests, workers=1)
        assert warm.cache.results.hits == 2
        assert warm.cache.results.misses == 0
        assert warm.cache.clips.lookups == 0  # results short-circuit clips
        assert [r.outcome.frames for r in warm] == [
            r.outcome.frames for r in cold
        ]
        assert "cache:" in warm.report()

    def test_duplicate_requests_in_one_batch_share(self):
        engine = Engine(SYSTEM)
        batch = engine.run_batch([scenario(), scenario()], workers=1)
        assert batch.cache.results.misses == 1
        assert batch.cache.results.hits == 1
        assert batch[0].outcome.frames == batch[1].outcome.frames

    def test_eviction_surfaces_in_batch_stats(self):
        engine = Engine(
            SYSTEM, cache=EngineCache(clip_capacity=8, result_capacity=1)
        )
        batch = engine.run_batch(
            [scenario(), scenario(seed=5), scenario(seed=6)], workers=1
        )
        assert batch.cache.results.evictions == 2

    def test_disabled_cache_recomputes(self):
        engine = Engine(SYSTEM, cache=EngineCache.disabled())
        a = engine.run(scenario())
        b = engine.run(scenario())
        assert a is not b
        assert a.outcome.frames == b.outcome.frames

    def test_component_override_invalidates_caches(self):
        # the registry's documented override hatch (del + re-register) is
        # the one way an existing spec can change meaning; the cache must
        # not serve the old implementation's results across it
        from repro.service import register_detector
        from repro.service.registry import DETECTORS

        request = scenario()

        @register_detector("test-override")
        def _noisy(clip, **params):
            return (lambda frame: []), None

        try:
            engine = Engine(SystemSpec(detector=ComponentRef("test-override")))
            before = engine.run(request)
            assert all(f.n_rois == 0 for f in before.outcome.frames)
            del DETECTORS["test-override"]

            @register_detector("test-override")
            def _replacement(clip, **params):
                from repro.stream import ground_truth_detector

                return ground_truth_detector(clip)

            after = engine.run(request)
            assert after is not before
            assert any(f.n_rois > 0 for f in after.outcome.frames)
        finally:
            del DETECTORS["test-override"]

    def test_uncacheable_params_still_served(self):
        engine = Engine(SYSTEM)
        request = scenario(
            source=ComponentRef(
                "pedestrian", {"resolution": [96, 64], "n_walkers": np.int64(2)}
            )
        )
        fresh = Engine(SYSTEM, cache=EngineCache.disabled()).run(request)
        a = engine.run(request)
        b = engine.run(request)
        assert a is not b  # never memoized
        assert a.outcome.frames == fresh.outcome.frames


class TestComputeDtypeKeys:
    """A float32 result must never be served for a float64 request."""

    def test_system_fingerprint_folds_compute_dtype(self):
        f64 = SystemSpec(config=SYSTEM.config, detector=SYSTEM.detector)
        f32 = SystemSpec(
            config=SYSTEM.config, detector=SYSTEM.detector, compute_dtype="float32"
        )
        assert spec_fingerprint(f64.to_dict()) != spec_fingerprint(f32.to_dict())

    def test_result_keys_differ_by_dtype(self):
        request = scenario()
        f64 = SystemSpec(config=SYSTEM.config, detector=SYSTEM.detector)
        f32 = SystemSpec(
            config=SYSTEM.config, detector=SYSTEM.detector, compute_dtype="float32"
        )
        key64 = result_key(f64, request)
        key32 = result_key(f32, request)
        assert key64 is not None and key32 is not None
        assert key64 != key32

    def test_engine_result_keys_differ_by_dtype(self):
        request = scenario()
        e64 = Engine(SystemSpec(config=SYSTEM.config, detector=SYSTEM.detector))
        e32 = Engine(
            SystemSpec(
                config=SYSTEM.config,
                detector=SYSTEM.detector,
                compute_dtype="float32",
            )
        )
        assert e64.result_key_for(request) != e32.result_key_for(request)

    def test_clip_key_ignores_dtype(self):
        # The rendered pixels don't depend on the compute dtype: the clip
        # tier may (and should) share across dtype modes.
        assert clip_key(scenario()) == clip_key(scenario())
