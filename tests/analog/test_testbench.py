"""Tests for the Fig. 5 test benches (the paper's circuit validation)."""

import numpy as np
import pytest

from repro.analog import (
    dc_sweep_bench,
    fit_tracking,
    four_input_bench,
    many_input_bench,
    two_input_bench,
)


@pytest.fixture(scope="module")
def fig5a():
    return two_input_bench()


@pytest.fixture(scope="module")
def fig5b():
    return four_input_bench()


class TestTwoInputBench:
    def test_tracks_mean_with_half_gain(self, fig5a):
        """The resistor core halves the mean; SFs shift it down."""
        assert fig5a.fit.gain == pytest.approx(0.5, abs=0.05)

    def test_tracking_error_small(self, fig5a):
        """Paper: the Avg signal 'follows the variations' cleanly."""
        assert fig5a.fit.relative_rmse < 0.02

    def test_region2_flat_average(self, fig5a):
        """Opposing slopes (region 2) -> near-zero slope on Avg."""
        t = fig5a.time
        avg = fig5a.avg
        t1, t2 = t[-1] / 3.0, 2.0 * t[-1] / 3.0
        mask = (t > t1 * 1.1) & (t < t2 * 0.9)
        region = avg[mask]
        assert np.ptp(region) < 0.05 * np.ptp(avg)

    def test_region1_follows_ramping_input(self, fig5a):
        """Input 2 ramps alone in region 1 -> Avg rises monotonically."""
        t = fig5a.time
        avg = fig5a.avg
        mask = (t > t[-1] / 30) & (t < t[-1] / 3 * 0.95)
        region = avg[mask]
        assert region[-1] > region[0]
        # Mostly monotone (small solver ripple tolerated).
        assert np.mean(np.diff(region) >= -1e-4) > 0.95


class TestFourInputBench:
    def test_gain_still_half(self, fig5b):
        assert fig5b.fit.gain == pytest.approx(0.5, abs=0.06)

    def test_peak_when_all_inputs_high(self, fig5b):
        """Paper annotation 1: Avg peaks when all inputs are at VDD."""
        inputs = fig5b.input_matrix()
        means = inputs.mean(axis=0)
        peak_at = int(np.argmax(fig5b.avg))
        assert means[peak_at] == pytest.approx(means.max(), abs=0.05)

    def test_trough_when_all_inputs_low(self, fig5b):
        """Paper annotation 2: Avg bottoms when all inputs are zero."""
        inputs = fig5b.input_matrix()
        means = inputs.mean(axis=0)
        trough_at = int(np.argmin(fig5b.avg))
        assert means[trough_at] == pytest.approx(means.min(), abs=0.05)

    def test_avg_visits_multiple_levels(self, fig5b):
        """Binary counting through 4 inputs -> >= 4 distinct avg plateaus."""
        quantized = np.round(fig5b.avg, 2)
        assert len(np.unique(quantized)) >= 4


class TestManyInputBench:
    def test_192_inputs_flawless(self):
        """The paper's extension: 192 inputs, still clean tracking."""
        bench = many_input_bench(n_inputs=192, t_stop=2e-4, dt=1e-5)
        assert bench.fit.relative_rmse < 0.05
        assert bench.fit.gain == pytest.approx(0.5, abs=0.08)

    def test_small_variant_deterministic(self):
        a = many_input_bench(n_inputs=8, seed=5, t_stop=1e-4, dt=5e-6)
        b = many_input_bench(n_inputs=8, seed=5, t_stop=1e-4, dt=5e-6)
        assert np.allclose(a.avg, b.avg)


class TestDCSweep:
    def test_transfer_curve_monotone(self):
        levels, outputs = dc_sweep_bench(n_inputs=4, n_points=7)
        assert np.all(np.diff(outputs) > 0)

    def test_fit_tracking_settle_fraction(self):
        bench = two_input_bench()
        fit_late = fit_tracking(bench.result, bench.input_waveforms, settle_fraction=0.5)
        assert fit_late.gain == pytest.approx(bench.fit.gain, abs=0.1)
