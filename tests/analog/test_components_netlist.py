"""Additional unit tests for individual components and the netlist layer."""

import numpy as np
import pytest

from repro.analog import (
    Capacitor,
    Circuit,
    MOSFET,
    MOSFETParams,
    Resistor,
    VoltageSource,
)


class TestComponentValidation:
    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Resistor("R1", "a", "b", 0.0)
        with pytest.raises(ValueError):
            Resistor("R1", "a", "b", -10.0)

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Capacitor("C1", "a", "b", 0.0)

    def test_mosfet_rejects_bad_wl(self):
        with pytest.raises(ValueError):
            MOSFET("M1", "d", "g", "s", w_over_l=0.0)

    def test_nodes_tuple_populated(self):
        r = Resistor("R1", "in", "out", 1e3)
        assert r.nodes == ("in", "out")
        m = MOSFET("M1", "d", "g", "s")
        assert m.nodes == ("d", "g", "s")


class TestMOSFETDeviceEquations:
    """Direct checks of the square-law current function."""

    def test_cutoff(self):
        m = MOSFET("M1", "d", "g", "s", params=MOSFETParams(vth=0.45, lam=0.0))
        assert m.drain_current(vd=1.0, vg=0.2, vs=0.0) == 0.0

    def test_saturation_value(self):
        p = MOSFETParams(vth=0.4, kp=100e-6, lam=0.0)
        m = MOSFET("M1", "d", "g", "s", params=p, w_over_l=1.0)
        # vgs=1.0, vov=0.6, vds=2.0 > vov -> Id = 0.5*k*vov^2
        expected = 0.5 * 100e-6 * 0.6**2
        assert m.drain_current(2.0, 1.0, 0.0) == pytest.approx(expected)

    def test_triode_value(self):
        p = MOSFETParams(vth=0.4, kp=100e-6, lam=0.0)
        m = MOSFET("M1", "d", "g", "s", params=p, w_over_l=1.0)
        # vov=0.6, vds=0.2 < vov -> Id = k*(vov*vds - vds^2/2)
        expected = 100e-6 * (0.6 * 0.2 - 0.02)
        assert m.drain_current(0.2, 1.0, 0.0) == pytest.approx(expected)

    def test_symmetry_negative_vds(self):
        """Swapping drain/source negates the current."""
        m = MOSFET("M1", "d", "g", "s")
        forward = m.drain_current(0.3, 1.0, 0.0)
        backward = m.drain_current(0.0, 1.0, 0.3)
        assert backward == pytest.approx(-forward)

    def test_current_continuous_at_pinchoff(self):
        p = MOSFETParams(vth=0.4, kp=100e-6, lam=0.0)
        m = MOSFET("M1", "d", "g", "s", params=p)
        vov = 0.6
        below = m.drain_current(vov - 1e-9, 1.0, 0.0)
        above = m.drain_current(vov + 1e-9, 1.0, 0.0)
        assert below == pytest.approx(above, rel=1e-6)

    def test_pmos_conducts_with_negative_vgs(self):
        m = MOSFET("M1", "d", "g", "s", polarity="pmos")
        # Source high, gate low: PMOS on, current flows source->drain
        # (negative into the drain terminal by our convention).
        i = m.drain_current(vd=0.0, vg=0.0, vs=1.2)
        assert i < 0.0


class TestCircuitQueries:
    def test_len_contains_getitem(self):
        c = Circuit("q")
        c.add(Resistor("R1", "a", "0", 1e3))
        c.add(VoltageSource("V1", "a", "0", 1.0))
        assert len(c) == 2
        assert "R1" in c
        assert isinstance(c["V1"], VoltageSource)

    def test_nodes_excludes_ground(self):
        c = Circuit("q")
        c.add(Resistor("R1", "a", "0", 1e3))
        assert c.nodes == {"a"}

    def test_node_index_deterministic(self):
        c = Circuit("q")
        c.add(Resistor("R1", "b", "a", 1e3))
        c.add(Resistor("R2", "c", "0", 1e3))
        idx = c.node_index()
        assert idx["b"] == 0 and idx["a"] == 1 and idx["c"] == 2
        assert idx["0"] is None

    def test_summary_lists_components(self):
        c = Circuit("sum")
        c.add(Resistor("Rx", "a", "0", 1e3))
        text = c.summary()
        assert "Rx" in text
        assert "Resistor" in text

    def test_is_nonlinear_flag(self):
        c = Circuit("lin")
        c.add(Resistor("R1", "a", "0", 1e3))
        assert not c.is_nonlinear()
        c.add(MOSFET("M1", "a", "a", "0"))
        assert c.is_nonlinear()
