"""Tests for the Fig. 4 averaging-circuit builders."""

import pytest

from repro.analog import (
    AVG_NODE,
    DC,
    MNASolver,
    PoolingCircuitSpec,
    PoolingEnergyModel,
    build_pooling_circuit,
    build_resistive_average,
    dc_operating_point,
    ideal_shared_node_voltage,
    invert_shared_node_voltage,
    pixels_per_pool,
)


class TestPixelsPerPool:
    def test_paper_example_2x2_rgb_is_12(self):
        assert pixels_per_pool(2) == 12

    def test_8x8_rgb_is_192(self):
        assert pixels_per_pool(8) == 192

    def test_grayscale_channel_merge_only(self):
        assert pixels_per_pool(1, channels=3) == 3

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            pixels_per_pool(0)


class TestResistiveCore:
    """The passive network has the closed form V = (mean - VDD)/2."""

    @pytest.mark.parametrize("inputs", [
        [0.5], [0.2, 0.8], [0.1, 0.5, 0.9], [0.0, 0.0, 1.0, 1.0],
    ])
    def test_matches_analytic_mean(self, inputs):
        circuit = build_resistive_average([DC(v) for v in inputs])
        sol = dc_operating_point(circuit)
        mean = sum(inputs) / len(inputs)
        assert sol[AVG_NODE] == pytest.approx(
            ideal_shared_node_voltage(mean, 1.0), abs=1e-9
        )

    def test_inverse_recovers_mean(self):
        v = ideal_shared_node_voltage(0.37, 1.0)
        assert invert_shared_node_voltage(v, 1.0) == pytest.approx(0.37)

    def test_shared_node_below_zero(self):
        """The paper's design goal: node G stays below 0 V."""
        circuit = build_resistive_average([DC(1.0)] * 4)  # max inputs
        sol = dc_operating_point(circuit)
        assert sol[AVG_NODE] <= 0.0

    def test_scales_to_192_inputs(self):
        inputs = [DC(1.0 if i % 2 else 0.0) for i in range(192)]
        sol = dc_operating_point(build_resistive_average(inputs))
        assert sol[AVG_NODE] == pytest.approx(
            ideal_shared_node_voltage(0.5, 1.0), abs=1e-6
        )

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            build_resistive_average([])


class TestTransistorCircuit:
    def test_monotone_in_mean(self):
        """More light -> higher shared-node voltage, across the range."""
        outputs = []
        for level in (0.2, 0.5, 0.8):
            circuit = build_pooling_circuit([DC(level)] * 4)
            outputs.append(dc_operating_point(circuit)[AVG_NODE])
        assert outputs[0] < outputs[1] < outputs[2]

    def test_insensitive_to_permutation(self):
        """Averaging is symmetric: input order must not matter."""
        a = dc_operating_point(build_pooling_circuit([DC(0.2), DC(0.9), DC(0.5)]))
        b = dc_operating_point(build_pooling_circuit([DC(0.5), DC(0.2), DC(0.9)]))
        assert a[AVG_NODE] == pytest.approx(b[AVG_NODE], abs=1e-9)

    def test_row_select_changes_little(self):
        """The row-select switch adds only a small series drop."""
        with_rs = build_pooling_circuit(
            [DC(0.6)] * 4, PoolingCircuitSpec(row_select=True)
        )
        without_rs = build_pooling_circuit(
            [DC(0.6)] * 4, PoolingCircuitSpec(row_select=False)
        )
        va = dc_operating_point(with_rs)[AVG_NODE]
        vb = dc_operating_point(without_rs)[AVG_NODE]
        assert abs(va - vb) < 0.05

    def test_load_capacitance_slows_settling(self):
        spec = PoolingCircuitSpec(load_capacitance=10e-12)
        circuit = build_pooling_circuit([DC(0.8)] * 2, spec)
        solver = MNASolver(circuit)
        result = solver.transient(t_stop=1e-5, dt=1e-7, from_dc=False)
        final = result.final(AVG_NODE)
        early = result.voltage(AVG_NODE)[1]
        assert abs(early - final) > 1e-3  # not settled instantly


class TestPoolingEnergyModel:
    def test_paper_range_lower_bound(self):
        """8x8 grayscale at 2560x1920 -> 76.8k outputs -> ~1.9 nJ."""
        model = PoolingEnergyModel()
        energy = model.frame_energy(2560 * 1920 // 64)
        assert 1e-9 < energy < 3e-9

    def test_paper_range_upper_bound(self):
        """2x2 RGB at 2560x1920 -> 3.69M outputs -> ~92 nJ."""
        model = PoolingEnergyModel()
        energy = model.frame_energy(2560 * 1920 // 4 * 3)
        assert 80e-9 < energy < 100e-9

    def test_orders_of_magnitude_below_adc(self):
        """The paper's claim: pooling energy negligible vs ADC."""
        from repro.core import EnergyModel

        pooled_outputs = 2560 * 1920 // 4 * 3
        pooling = PoolingEnergyModel().frame_energy(pooled_outputs)
        adc = EnergyModel().adc_energy_per_conversion * pooled_outputs
        assert pooling < adc / 1000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PoolingEnergyModel().frame_energy(-1)
