"""Tests for the SPICE-style stimulus waveforms."""

import math

import pytest

from repro.analog import DC, PWL, Pulse, Sine, Triangle, as_waveform


class TestDC:
    def test_constant_everywhere(self):
        w = DC(0.7)
        assert w(0.0) == 0.7
        assert w(1e9) == 0.7

    def test_as_waveform_wraps_numbers(self):
        w = as_waveform(1.5)
        assert isinstance(w, DC)
        assert w(3.0) == 1.5

    def test_as_waveform_passes_callables_through(self):
        f = lambda t: 2 * t
        assert as_waveform(f) is f


class TestPWL:
    def test_holds_before_first_point(self):
        w = PWL([(1.0, 2.0), (2.0, 4.0)])
        assert w(0.0) == 2.0

    def test_holds_after_last_point(self):
        w = PWL([(0.0, 1.0), (1.0, 3.0)])
        assert w(5.0) == 3.0

    def test_linear_interpolation(self):
        w = PWL([(0.0, 0.0), (2.0, 1.0)])
        assert w(1.0) == pytest.approx(0.5)
        assert w(0.5) == pytest.approx(0.25)

    def test_multiple_segments(self):
        w = PWL([(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)])
        assert w(1.5) == pytest.approx(0.5)

    def test_rejects_unsorted_points(self):
        with pytest.raises(ValueError):
            PWL([(1.0, 0.0), (0.5, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PWL([])

    def test_vertical_step_allowed(self):
        w = PWL([(0.0, 0.0), (1.0, 0.0), (1.0, 5.0), (2.0, 5.0)])
        assert w(0.5) == 0.0
        assert w(1.5) == 5.0


class TestPulse:
    def test_sits_at_v1_before_delay(self):
        w = Pulse(v1=0.0, v2=1.0, delay=1e-6)
        assert w(0.0) == 0.0

    def test_reaches_v2_after_rise(self):
        w = Pulse(v1=0.0, v2=1.0, delay=0.0, rise=1e-9, width=1e-6, period=10e-6)
        assert w(0.5e-6) == pytest.approx(1.0)

    def test_returns_to_v1_after_fall(self):
        w = Pulse(v1=0.2, v2=1.0, delay=0.0, rise=1e-9, fall=1e-9, width=1e-6, period=10e-6)
        assert w(5e-6) == pytest.approx(0.2)

    def test_periodicity(self):
        w = Pulse(v1=0.0, v2=1.0, rise=1e-9, fall=1e-9, width=1e-6, period=4e-6)
        assert w(0.5e-6) == pytest.approx(w(4.5e-6))

    def test_mid_rise_value(self):
        w = Pulse(v1=0.0, v2=1.0, rise=2e-6, width=10e-6, period=100e-6)
        assert w(1e-6) == pytest.approx(0.5)


class TestSine:
    def test_offset_at_zero_phase(self):
        w = Sine(offset=0.5, amplitude=0.3, freq=1e3)
        assert w(0.0) == pytest.approx(0.5)

    def test_peak_at_quarter_period(self):
        w = Sine(offset=0.0, amplitude=1.0, freq=1.0)
        assert w(0.25) == pytest.approx(1.0)

    def test_phase_shift(self):
        w = Sine(offset=0.0, amplitude=1.0, freq=1.0, phase=math.pi / 2)
        assert w(0.0) == pytest.approx(1.0)


class TestTriangle:
    def test_starts_low(self):
        w = Triangle(low=0.1, high=0.9, period=1.0)
        assert w(0.0) == pytest.approx(0.1)

    def test_peaks_mid_period(self):
        w = Triangle(low=0.0, high=1.0, period=2.0)
        assert w(1.0) == pytest.approx(1.0)

    def test_symmetric_descent(self):
        w = Triangle(low=0.0, high=1.0, period=1.0)
        assert w(0.25) == pytest.approx(w(0.75))

    def test_phase_offset(self):
        w = Triangle(low=0.0, high=1.0, period=1.0, phase=0.5)
        assert w(0.0) == pytest.approx(1.0)
