"""Tests for the MNA solver: DC operating points and transients.

Every circuit here has a hand-derivable solution, so the solver is checked
against closed-form answers rather than golden files.
"""

import numpy as np
import pytest

from repro.analog import (
    Capacitor,
    Circuit,
    CurrentSource,
    DC,
    MNASolver,
    MOSFET,
    MOSFETParams,
    NetlistError,
    PWL,
    Resistor,
    VoltageSource,
    dc_operating_point,
    transient,
)


def divider(r1=1e3, r2=1e3, vin=1.0) -> Circuit:
    c = Circuit("divider")
    c.add(VoltageSource("Vin", "in", "0", vin))
    c.add(Resistor("R1", "in", "mid", r1))
    c.add(Resistor("R2", "mid", "0", r2))
    return c


class TestDCLinear:
    def test_voltage_divider(self):
        sol = dc_operating_point(divider())
        assert sol["mid"] == pytest.approx(0.5)

    def test_asymmetric_divider(self):
        sol = dc_operating_point(divider(r1=3e3, r2=1e3, vin=2.0))
        assert sol["mid"] == pytest.approx(0.5)

    def test_current_source_into_resistor(self):
        c = Circuit("cs")
        c.add(CurrentSource("I1", "0", "a", 1e-3))  # 1 mA into node a
        c.add(Resistor("R1", "a", "0", 2e3))
        sol = dc_operating_point(c)
        assert sol["a"] == pytest.approx(2.0)

    def test_two_sources_superposition(self):
        c = Circuit("two")
        c.add(VoltageSource("V1", "a", "0", 1.0))
        c.add(VoltageSource("V2", "b", "0", 3.0))
        c.add(Resistor("Ra", "a", "m", 1e3))
        c.add(Resistor("Rb", "b", "m", 1e3))
        c.add(Resistor("Rg", "m", "0", 1e9))
        sol = dc_operating_point(c)
        assert sol["m"] == pytest.approx(2.0, rel=1e-3)

    def test_negative_supply(self):
        c = Circuit("neg")
        c.add(VoltageSource("V1", "a", "0", -1.0))
        c.add(Resistor("R1", "a", "m", 1e3))
        c.add(Resistor("R2", "m", "0", 1e3))
        sol = dc_operating_point(c)
        assert sol["m"] == pytest.approx(-0.5)

    def test_time_varying_source_sampled_at_t(self):
        c = Circuit("pwl")
        c.add(VoltageSource("V1", "a", "0", PWL([(0.0, 0.0), (1.0, 1.0)])))
        c.add(Resistor("R1", "a", "0", 1e3))
        assert MNASolver(c).dc(t=0.5)["a"] == pytest.approx(0.5)


class TestValidation:
    def test_empty_circuit_rejected(self):
        with pytest.raises(NetlistError):
            MNASolver(Circuit("empty"))

    def test_floating_circuit_rejected(self):
        c = Circuit("floating")
        c.add(Resistor("R1", "a", "b", 1e3))
        with pytest.raises(NetlistError):
            MNASolver(c)

    def test_duplicate_component_rejected(self):
        c = Circuit("dup")
        c.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(NetlistError):
            c.add(Resistor("R1", "a", "0", 2e3))


class TestMOSFETDC:
    def test_cutoff_no_current(self):
        """Gate at 0 V: drain pulled fully to VDD through the resistor."""
        c = Circuit("cutoff")
        c.add(VoltageSource("Vdd", "vdd", "0", 1.0))
        c.add(VoltageSource("Vg", "g", "0", 0.0))
        c.add(Resistor("Rd", "vdd", "d", 10e3))
        c.add(MOSFET("M1", drain="d", gate="g", source="0"))
        sol = MNASolver(c).dc()
        assert sol["d"] == pytest.approx(1.0, abs=1e-3)

    def test_saturation_current_matches_square_law(self):
        """Common-source amp in saturation: check Id = k/2 (Vgs-Vth)^2."""
        params = MOSFETParams(vth=0.45, kp=200e-6, lam=0.0)
        vg, w_over_l, rd, vdd = 0.8, 2.0, 10e3, 2.0
        k = params.kp * w_over_l
        expected_id = 0.5 * k * (vg - params.vth) ** 2
        c = Circuit("cs-amp")
        c.add(VoltageSource("Vdd", "vdd", "0", vdd))
        c.add(VoltageSource("Vg", "g", "0", vg))
        c.add(Resistor("Rd", "vdd", "d", rd))
        c.add(MOSFET("M1", drain="d", gate="g", source="0", params=params, w_over_l=w_over_l))
        sol = MNASolver(c).dc()
        measured_id = (vdd - sol["d"]) / rd
        assert measured_id == pytest.approx(expected_id, rel=1e-4)

    def test_source_follower_tracks_gate(self):
        """SF output sits roughly Vth + overdrive below the gate."""
        c = Circuit("sf")
        c.add(VoltageSource("Vdd", "vdd", "0", 1.5))
        c.add(VoltageSource("Vg", "g", "0", 1.2))
        c.add(MOSFET("M1", drain="vdd", gate="g", source="s", w_over_l=10.0))
        c.add(Resistor("Rs", "s", "0", 100e3))
        sol = MNASolver(c).dc()
        assert 0.5 < sol["s"] < 0.8  # 1.2 - 0.45 - small overdrive

    def test_pmos_mirror_symmetry(self):
        """A PMOS with inverted rails mirrors the NMOS solution."""
        n = Circuit("nmos")
        n.add(VoltageSource("Vdd", "vdd", "0", 1.0))
        n.add(VoltageSource("Vg", "g", "0", 0.8))
        n.add(Resistor("Rd", "vdd", "d", 10e3))
        n.add(MOSFET("M1", drain="d", gate="g", source="0", polarity="nmos"))
        p = Circuit("pmos")
        p.add(VoltageSource("Vss", "vss", "0", -1.0))
        p.add(VoltageSource("Vg", "g", "0", -0.8))
        p.add(Resistor("Rd", "vss", "d", 10e3))
        p.add(MOSFET("M1", drain="d", gate="g", source="0", polarity="pmos"))
        sol_n = MNASolver(n).dc()
        sol_p = MNASolver(p).dc()
        assert sol_p["d"] == pytest.approx(-sol_n["d"], rel=1e-6)

    def test_polarity_validation(self):
        with pytest.raises(ValueError):
            MOSFET("M1", "d", "g", "s", polarity="cmos")


class TestTransient:
    def test_rc_charge_curve(self):
        """RC step response matches 1 - exp(-t/RC) within BE accuracy."""
        r, cap = 1e3, 1e-6  # tau = 1 ms
        c = Circuit("rc")
        c.add(VoltageSource("Vin", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "out", r))
        c.add(Capacitor("C1", "out", "0", cap))
        result = MNASolver(c).transient(t_stop=5e-3, dt=1e-5, from_dc=False)
        tau = r * cap
        expected = 1.0 - np.exp(-result.time / tau)
        measured = result.voltage("out")
        assert np.max(np.abs(measured[1:] - expected[1:])) < 0.01

    def test_rc_discharge_from_dc(self):
        """Starting from DC with a falling source discharges the cap."""
        c = Circuit("rc-fall")
        c.add(VoltageSource("Vin", "in", "0", PWL([(0.0, 1.0), (1e-6, 0.0)])))
        c.add(Resistor("R1", "in", "out", 1e3))
        c.add(Capacitor("C1", "out", "0", 1e-6))
        result = MNASolver(c).transient(t_stop=10e-3, dt=5e-5)
        assert result.voltage("out")[0] == pytest.approx(1.0, abs=1e-6)
        assert result.final("out") < 0.01

    def test_ground_waveform_is_zero(self):
        result = transient(divider(), t_stop=1e-4, dt=1e-5)
        assert np.all(result.voltage("0") == 0.0)

    def test_sample_interpolates(self):
        c = Circuit("ramp")
        c.add(VoltageSource("Vin", "a", "0", PWL([(0.0, 0.0), (1e-3, 1.0)])))
        c.add(Resistor("R1", "a", "0", 1e3))
        result = transient(c, t_stop=1e-3, dt=1e-4)
        assert result.sample("a", 0.5e-3) == pytest.approx(0.5, abs=1e-6)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            MNASolver(divider()).transient(t_stop=1e-3, dt=0.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            MNASolver(divider()).transient(t_stop=0.0, dt=1e-5)
