"""Tests for the shared-memory clip transport: fidelity and lifetime."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.stream import pedestrian_clip
from repro.stream.source import SyntheticClip
from repro.store import (
    SEGMENT_PREFIX,
    ClipSegmentGoneError,
    attach_clip,
    share_clip,
)

DEV_SHM = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not DEV_SHM.is_dir(), reason="no /dev/shm to observe segment lifetime"
)


def segments() -> list[str]:
    return sorted(p.name for p in DEV_SHM.glob(f"{SEGMENT_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = segments()
    yield
    assert segments() == before


def uniform_clip() -> SyntheticClip:
    return pedestrian_clip(n_frames=3, resolution=(64, 48), seed=4)


class TestRoundTrip:
    def test_attached_clip_is_bit_identical(self):
        clip = uniform_clip()
        lease = share_clip(clip)
        assert lease is not None
        try:
            copy = attach_clip(lease.handle)
            assert len(copy) == len(clip)
            assert copy.resolution == clip.resolution
            assert copy.ground_truth == clip.ground_truth
            for a, b in zip(clip.frames, copy.frames):
                assert np.array_equal(a, b)
                assert a.dtype == b.dtype
            del copy
        finally:
            lease.destroy()

    def test_handle_is_tiny_and_picklable(self):
        import pickle

        clip = uniform_clip()
        lease = share_clip(clip)
        try:
            payload = pickle.dumps(lease.handle)
            # The point of the transport: the handle crosses the pipe,
            # the frame block does not.
            assert len(payload) < clip.nbytes / 100
            copy = pickle.loads(payload)
            assert copy.name == lease.handle.name
            assert copy.shape == (3, 48, 64, 3)
        finally:
            lease.destroy()

    def test_attached_frames_are_read_only_views(self):
        lease = share_clip(uniform_clip())
        try:
            copy = attach_clip(lease.handle)
            assert copy.frames[0].base is not None
            with pytest.raises(ValueError, match="read-only"):
                copy.frames[0][0, 0, 0] = 0.5
            del copy
        finally:
            lease.destroy()

    def test_ragged_clip_returns_none(self):
        clip = SyntheticClip(
            frames=[np.zeros((4, 4, 3)), np.zeros((2, 2, 3))],
            ground_truth=[[], []],
            resolution=(4, 4),
        )
        assert share_clip(clip) is None

    def test_empty_clip_returns_none(self):
        clip = SyntheticClip(frames=[], ground_truth=[], resolution=(8, 8))
        assert share_clip(clip) is None


class TestLeaseLifetime:
    def test_segment_lives_until_last_release(self):
        lease = share_clip(uniform_clip())
        name = lease.handle.name
        lease.acquire()
        lease.acquire()
        assert name in segments()
        lease.release()
        assert name in segments()  # one reference still out
        lease.release()
        assert name not in segments()

    def test_destroy_is_idempotent_and_wins_over_refs(self):
        lease = share_clip(uniform_clip())
        name = lease.handle.name
        lease.acquire()
        lease.destroy()
        assert name not in segments()
        lease.destroy()  # idempotent
        lease.release()  # harmless after destroy

    def test_attach_after_destroy_raises_oserror(self):
        lease = share_clip(uniform_clip())
        handle = lease.handle
        lease.destroy()
        with pytest.raises(OSError):
            attach_clip(handle)

    def test_attach_after_unlink_raises_typed_error(self):
        # Not a raw FileNotFoundError: callers distinguish "the owner
        # tore the batch down" from ordinary filesystem failures, while
        # the OSError fallback ("render it yourself") keeps working.
        lease = share_clip(uniform_clip())
        handle = lease.handle
        lease.destroy()
        with pytest.raises(ClipSegmentGoneError) as excinfo:
            attach_clip(handle)
        assert isinstance(excinfo.value, OSError)
        assert excinfo.value.name == handle.name
        assert handle.name in str(excinfo.value)

    def test_double_close_is_a_noop(self):
        lease = share_clip(uniform_clip())
        name = lease.handle.name
        assert name in segments()
        lease.close()
        assert name not in segments()
        lease.close()  # second close: no error, no effect
        lease.close()

    def test_close_after_release_is_a_noop(self):
        lease = share_clip(uniform_clip())
        lease.acquire()
        lease.release()  # last reference: segment already gone
        lease.close()

    def test_lease_is_a_context_manager(self):
        with share_clip(uniform_clip()) as lease:
            name = lease.handle.name
            assert name in segments()
        assert name not in segments()

    def test_attached_views_survive_parent_unlink(self):
        # Unlink removes the *name*; the mapping lives until the last
        # view dies — a worker caching the clip is safe.
        clip = uniform_clip()
        lease = share_clip(clip)
        copy = attach_clip(lease.handle)
        lease.destroy()
        assert lease.handle.name not in segments()
        for a, b in zip(clip.frames, copy.frames):
            assert np.array_equal(a, b)
        del copy  # finalizer closes the mapping; autouse fixture checks

    def test_segment_names_carry_the_prefix(self):
        lease = share_clip(uniform_clip())
        try:
            assert lease.handle.name.startswith(SEGMENT_PREFIX)
        finally:
            lease.destroy()


class TestCrashedAttacher:
    def test_no_leak_when_attacher_dies_without_cleanup(self, tmp_path):
        """A worker that crashes mid-use must not pin the segment.

        The child attaches the segment, proves it can read it, then dies
        via ``os._exit`` — no finalizers, no cleanup, the worst case.
        The parent's destroy must still leave /dev/shm empty.
        """
        clip = uniform_clip()
        lease = share_clip(clip)
        handle = lease.handle
        script = tmp_path / "attacher.py"
        script.write_text(
            "import os, sys\n"
            "from repro.store import SharedClipHandle, attach_clip\n"
            f"handle = SharedClipHandle(name={handle.name!r}, "
            f"shape={handle.shape!r}, dtype={handle.dtype!r}, "
            "ground_truth=[], resolution=(64, 48))\n"
            "clip = attach_clip(handle)\n"
            f"assert float(clip.frames[0][0, 0, 0]) == "
            f"{float(clip.frames[0][0, 0, 0])!r}\n"
            "os._exit(17)  # crash: no cleanup, no finalizers\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        done = subprocess.run(
            [sys.executable, str(script)],
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert done.returncode == 17, done.stderr
        lease.destroy()
        assert handle.name not in segments()
