"""Integration tests: process executor x clip transport x disk store."""

from pathlib import Path

import pytest

from repro.core import HiRISEConfig
from repro.service import (
    ComponentRef,
    Engine,
    EngineCache,
    ProcessExecutor,
    ScenarioSpec,
    SystemSpec,
)
from repro.service.cache import CacheStats, clip_key
from repro.service.executor import CLIP_TRANSPORTS
from repro.store import SEGMENT_PREFIX, ArtifactStore

SYSTEM = SystemSpec(
    config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth", {"label": "person"}),
)

DEV_SHM = Path("/dev/shm")


def segments() -> list[str]:
    if not DEV_SHM.is_dir():
        return []
    return sorted(p.name for p in DEV_SHM.glob(f"{SEGMENT_PREFIX}*"))


def scenario(**kwargs) -> ScenarioSpec:
    defaults = dict(
        source=ComponentRef("pedestrian", {"resolution": [64, 48]}),
        n_frames=2,
        seed=4,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def requests() -> list[ScenarioSpec]:
    # Two scenarios over ONE clip (the transport payload) + a distinct one.
    return [
        scenario(name="a/plain"),
        scenario(name="a/reuse", policy=ComponentRef("temporal-reuse")),
        scenario(name="b/other", seed=9),
    ]


@pytest.fixture(scope="module")
def reference():
    engine = Engine(SYSTEM, cache=EngineCache.disabled())
    return [engine.run(r) for r in requests()]


def run_with_transport(transport, store=None, warm_clips=True):
    engine = Engine(SYSTEM, store=store)
    if warm_clips:
        # Render the shared clips into the parent tiers so the executor
        # has something to ship.
        for spec in requests():
            engine.run(spec)
        engine.cache.results.clear()  # force re-dispatch, keep the clips
    delta = CacheStats.zero()
    with ProcessExecutor(workers=2, clip_transport=transport) as pool:
        results = pool.execute(engine, requests(), cache_delta=delta)
    return engine, results, delta


class TestTransports:
    def test_transport_names_constant(self):
        assert CLIP_TRANSPORTS == ("shm", "pickle", "none")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ProcessExecutor(workers=1, clip_transport="carrier-pigeon")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIP_TRANSPORT", "pickle")
        assert ProcessExecutor(workers=1).clip_transport == "pickle"
        monkeypatch.delenv("REPRO_CLIP_TRANSPORT")
        assert ProcessExecutor(workers=1).clip_transport == "shm"

    @pytest.mark.parametrize("transport", CLIP_TRANSPORTS)
    def test_bit_identical_and_leak_free(self, transport, reference):
        before = segments()
        engine, results, delta = run_with_transport(transport)
        for result, expected in zip(results, reference):
            assert result.scenario == expected.scenario
            assert result.outcome.frames == expected.outcome.frames
            assert result.outcome.total_bytes == expected.outcome.total_bytes
        # Shipped clips mean the workers never re-rendered: the folded-in
        # worker clip stats report hits, not builds.
        if transport != "none":
            assert delta.clips.misses == 0
        # No shared-memory segment outlives the executor.
        assert segments() == before

    def test_shm_transport_without_prewarmed_clips(self, reference):
        # Nothing to ship: workers render from specs, still bit-identical.
        before = segments()
        engine, results, delta = run_with_transport("shm", warm_clips=False)
        for result, expected in zip(results, reference):
            assert result.outcome.frames == expected.outcome.frames
        assert segments() == before


class TestWorkerStore:
    @pytest.fixture(autouse=True)
    def _fresh_registry_epoch(self, monkeypatch):
        # Spawned workers always start at override epoch 0; pin the
        # parent to the same epoch so parent- and worker-written store
        # keys agree even when earlier tests deleted registry names.
        monkeypatch.setattr("repro.service.registry._OVERRIDE_EPOCH", 0)

    def test_worker_renders_and_results_persist(self, tmp_path, reference):
        store_dir = tmp_path / "store"
        engine = Engine(SYSTEM, store=ArtifactStore(store_dir))
        with ProcessExecutor(workers=2) as pool:
            results = pool.execute(engine, requests())
        for result, expected in zip(results, reference):
            assert result.outcome.frames == expected.outcome.frames

        # The parent wrote the results through; the workers wrote their
        # clip renders.  A fresh serial engine on the same root replays
        # everything from disk without recomputing.
        snap = ArtifactStore(store_dir).snapshot()
        assert snap.by_kind["result"]["entries"] == len(requests())
        assert snap.by_kind["clip"]["entries"] == 2  # two distinct clips

        restarted = Engine(SYSTEM, store=ArtifactStore(store_dir))
        for spec, expected in zip(requests(), reference):
            replay = restarted.run(spec)
            assert replay.outcome.frames == expected.outcome.frames
        stats = restarted.cache.stats()
        assert stats.results.disk_hits == len(requests())
        assert stats.results.disk_misses == 0

    def test_restarted_parent_ships_promoted_clips(self, tmp_path, reference):
        store_dir = tmp_path / "store"
        first = Engine(SYSTEM, store=ArtifactStore(store_dir))
        for spec in requests():
            first.run(spec)

        # A fresh parent process: empty memory, populated disk.  Results
        # are served straight from the store — nothing is dispatched and
        # nothing recomputes (the warm-restart invariant under the
        # process executor).
        restarted = Engine(SYSTEM, store=ArtifactStore(store_dir))
        delta = CacheStats.zero()
        before = segments()
        with ProcessExecutor(workers=2) as pool:
            results = pool.execute(restarted, requests(), cache_delta=delta)
        for result, expected in zip(results, reference):
            assert result.outcome.frames == expected.outcome.frames
        assert delta.results.disk_hits == len(requests())
        assert delta.results.disk_misses == 0
        assert segments() == before

    def test_disabled_cache_ignores_store(self, tmp_path, reference):
        store = ArtifactStore(tmp_path / "store")
        engine = Engine(SYSTEM, cache=EngineCache.disabled())
        with ProcessExecutor(workers=2) as pool:
            results = pool.execute(engine, requests())
        for result, expected in zip(results, reference):
            assert result.outcome.frames == expected.outcome.frames
        assert store.snapshot().entries == 0
