"""Tests for the ArtifactStore: crash-safety, verification, LRU GC."""

import json
import pickle

import numpy as np
import pytest

from repro.store import MISS, ArtifactStore
from repro.store.artifact import MAGIC_LINE, _filename


def store_files(store: ArtifactStore) -> list:
    objects = store.root / "objects"
    if not objects.is_dir():
        return []
    return sorted(p for p in objects.rglob("*") if p.is_file())


class TestRoundTrip:
    def test_put_load_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        value = {"frames": np.arange(24.0).reshape(2, 3, 4), "label": "x"}
        written = store.put("result", "k" * 64, value)
        assert written > 0
        loaded = store.load("result", "k" * 64)
        assert loaded is not MISS
        assert loaded["label"] == "x"
        assert np.array_equal(loaded["frames"], value["frames"])

    def test_absent_key_is_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.load("result", "nope") is MISS
        assert store.snapshot().misses == 1
        assert store.snapshot().errors == 0

    def test_put_is_deduplicated_by_key(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.put("clip", "abc", [1, 2, 3]) > 0
        assert store.put("clip", "abc", [1, 2, 3]) == 0
        assert store.snapshot().writes == 1

    def test_unpicklable_value_is_uncacheable_not_an_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.put("clip", "fn", lambda: None) == 0
        assert store.load("clip", "fn") is MISS

    def test_contains(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("clip", "abc", 1)
        assert store.contains("clip", "abc")
        assert not store.contains("clip", "other")

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for index in range(4):
            store.put("clip", f"key{index}", list(range(index)))
        leftovers = [p for p in store.root.rglob(".tmp-*")]
        assert leftovers == []

    def test_kinds_are_separate_namespaces(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("clip", "same-key", "a clip")
        store.put("result", "same-key", "a result")
        assert store.load("clip", "same-key") == "a clip"
        assert store.load("result", "same-key") == "a result"

    def test_unsafe_keys_get_hashed_filenames(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = "spaces and/slashes!"
        store.put("clip", key, 7)
        assert store.load("clip", key) == 7
        name = _filename(key)
        assert name.startswith("h_")
        # Engine-style "<sha>:<epoch>" keys stay readable on disk.
        assert _filename("ab12:0") == "ab12_0"

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ArtifactStore(tmp_path / "store", max_bytes=-1)


class TestCorruptionDegradesToMiss:
    """The headline contract: a damaged store is slow, never broken."""

    def put_one(self, tmp_path, value="payload"):
        store = ArtifactStore(tmp_path / "store")
        store.put("result", "thekey", value)
        return store, store._path("result", "thekey")

    def assert_quarantined(self, store, path):
        assert store.load("result", "thekey") is MISS
        stats = store.snapshot()
        assert stats.errors == 1
        assert stats.misses == 1
        assert not path.exists()  # cannot fail twice
        assert store.load("result", "thekey") is MISS
        assert store.snapshot().errors == 1  # plain miss, not a new error

    def test_truncated_payload(self, tmp_path):
        store, path = self.put_one(tmp_path)
        path.write_bytes(path.read_bytes()[:-3])
        self.assert_quarantined(store, path)

    def test_flipped_payload_byte(self, tmp_path):
        store, path = self.put_one(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        self.assert_quarantined(store, path)

    def test_bad_magic_or_version(self, tmp_path):
        store, path = self.put_one(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(b"repro-store v9\n" + blob[len(MAGIC_LINE) :])
        self.assert_quarantined(store, path)

    def test_garbage_file(self, tmp_path):
        store, path = self.put_one(tmp_path)
        path.write_bytes(b"\x00" * 100)
        self.assert_quarantined(store, path)

    def test_empty_file(self, tmp_path):
        store, path = self.put_one(tmp_path)
        path.write_bytes(b"")
        self.assert_quarantined(store, path)

    def test_key_mismatch_after_file_rename(self, tmp_path):
        store, path = self.put_one(tmp_path)
        wrong = store._path("result", "otherkey")
        wrong.parent.mkdir(parents=True, exist_ok=True)
        path.rename(wrong)
        assert store.load("result", "otherkey") is MISS
        assert store.snapshot().errors == 1

    def test_corrupt_pickle_with_valid_header(self, tmp_path):
        store, path = self.put_one(tmp_path)
        import hashlib

        payload = b"not a pickle"
        meta = {
            "kind": "result",
            "key": "thekey",
            "codec": "pickle",
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        path.write_bytes(
            MAGIC_LINE
            + json.dumps(meta, sort_keys=True).encode() + b"\n"
            + payload
        )
        self.assert_quarantined(store, path)


class TestGC:
    def sized_value(self, tag: str) -> bytes:
        return (tag.encode() * 300)[:1200]

    def test_lru_eviction_to_budget(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for tag in ("a", "b", "c"):
            store.put("clip", tag, self.sized_value(tag))
        # Touch "a" so "b" is now the least recently used.
        assert store.load("clip", "a") is not MISS
        one_entry = store.snapshot().bytes // 3
        removed, freed = store.gc(max_bytes=2 * one_entry)
        assert removed == 1
        assert freed > 0
        assert store.load("clip", "b") is MISS
        assert store.load("clip", "a") is not MISS
        assert store.load("clip", "c") is not MISS
        assert store.snapshot().evictions == 1

    def test_budget_enforced_on_put_protects_newest(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=1)
        # Budget smaller than one object: the object just written survives
        # its own put, so an oversized value still round-trips.
        store.put("clip", "big", self.sized_value("x"))
        assert store.load("clip", "big") is not MISS
        store.put("clip", "next", self.sized_value("y"))
        assert store.load("clip", "big") is MISS
        assert store.load("clip", "next") is not MISS

    def test_gc_without_budget_is_noop(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("clip", "a", 1)
        assert store.gc() == (0, 0)
        assert store.load("clip", "a") == 1

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("clip", "a", 1)
        store.put("result", "b", 2)
        removed, freed = store.clear()
        assert removed == 2
        assert freed > 0
        assert store.snapshot().entries == 0
        assert store_files(store) == []

    def test_recency_survives_restart(self, tmp_path):
        first = ArtifactStore(tmp_path / "store")
        for tag in ("a", "b", "c"):
            first.put("clip", tag, self.sized_value(tag))
        assert first.load("clip", "a") is not MISS  # "b" is now LRU
        first.flush()

        second = ArtifactStore(tmp_path / "store")
        one_entry = second.snapshot().bytes // 3
        second.gc(max_bytes=2 * one_entry)
        assert second.load("clip", "b") is MISS
        assert second.load("clip", "a") is not MISS


class TestIndex:
    def test_lost_index_is_rebuilt_from_tree(self, tmp_path):
        first = ArtifactStore(tmp_path / "store")
        first.put("clip", "a", [1])
        first.put("result", "b", [2])
        (tmp_path / "store" / "index.json").unlink()

        second = ArtifactStore(tmp_path / "store")
        snap = second.snapshot()
        assert snap.entries == 2
        assert second.load("clip", "a") == [1]
        assert second.load("result", "b") == [2]

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        first = ArtifactStore(tmp_path / "store")
        first.put("clip", "a", [1])
        (tmp_path / "store" / "index.json").write_text("{not json")
        second = ArtifactStore(tmp_path / "store")
        assert second.snapshot().entries == 1
        assert second.load("clip", "a") == [1]

    def test_foreign_files_adopted_on_scan(self, tmp_path):
        first = ArtifactStore(tmp_path / "store")
        first.put("clip", "a", [1])
        # A second process writes to the same root behind our back.
        other = ArtifactStore(tmp_path / "store")
        other.put("clip", "b", [2])
        snap = first.snapshot()  # reconciles against the tree
        assert snap.entries == 2
        assert first.load("clip", "b") == [2]

    def test_deleted_files_forgotten_on_scan(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("clip", "a", [1])
        store._path("clip", "a").unlink()
        assert store.snapshot().entries == 0

    def test_snapshot_by_kind(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("clip", "a", [1])
        store.put("clip", "b", [2])
        store.put("result", "c", [3])
        by_kind = store.snapshot().by_kind
        assert by_kind["clip"]["entries"] == 2
        assert by_kind["result"]["entries"] == 1
        assert by_kind["clip"]["bytes"] > 0

    def test_describe_mentions_kinds_and_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert "empty" in store.snapshot().describe()
        store.put("clip", "a", [1])
        store.load("clip", "a")
        text = store.snapshot().describe()
        assert "clip: 1 entry" in text
        assert "1 hit(s)" in text
        assert "1 write(s)" in text


class TestConcurrency:
    def test_single_flight_concurrent_puts(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        store = ArtifactStore(tmp_path / "store")
        value = list(range(1000))
        with ThreadPoolExecutor(max_workers=8) as pool:
            sizes = list(
                pool.map(lambda _: store.put("clip", "one", value), range(16))
            )
        assert sum(1 for s in sizes if s > 0) == 1
        assert store.snapshot().writes == 1
        assert store.load("clip", "one") == value

    def test_two_handles_one_root(self, tmp_path):
        a = ArtifactStore(tmp_path / "store")
        b = ArtifactStore(tmp_path / "store")
        a.put("clip", "k", {"x": 1})
        assert b.load("clip", "k") == {"x": 1}
        b.snapshot()  # reconcile: adopt a's file into b's index
        # Content addressing: b "rewriting" the same key is a dedup no-op.
        assert b.put("clip", "k", {"x": 1}) == 0
