"""Tests for the cache's persistent tier: fallthrough, promote, spill."""

import pytest

from repro.service import Engine, EngineCache, ScenarioSpec, SystemSpec
from repro.service.cache import SpecCache, TierStats
from repro.store import MISS, ArtifactStore


def build_counter():
    """A build factory that records how many times it really ran."""
    calls = []

    def build():
        calls.append(1)
        return {"value": len(calls)}

    return build, calls


class TestSpecCacheDiskTier:
    def test_miss_builds_and_writes_through(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cache = SpecCache("result", capacity=4, store=store)
        build, calls = build_counter()
        assert cache.get_or_build("k1", build) == {"value": 1}
        assert calls == [1]
        assert cache.stats.disk_misses == 1
        assert store.load("result", "k1") == {"value": 1}

    def test_fresh_cache_serves_from_disk_without_building(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        SpecCache("result", capacity=4, store=store).get_or_build(
            "k1", lambda: "built once"
        )

        def poisoned():
            raise AssertionError("a disk hit must not rebuild")

        restarted = SpecCache(
            "result", capacity=4, store=ArtifactStore(tmp_path / "store")
        )
        assert restarted.get_or_build("k1", poisoned) == "built once"
        assert restarted.stats.disk_hits == 1
        assert restarted.stats.disk_misses == 0
        # Promoted into memory: the next lookup never touches disk.
        assert restarted.get_or_build("k1", poisoned) == "built once"
        assert restarted.stats.hits == 1
        assert restarted.stats.disk_hits == 1

    def test_peek_falls_through_to_disk_and_promotes(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("result", "k1", "from disk")
        cache = SpecCache("result", capacity=4, store=store)
        writes_before = store.snapshot().writes
        hit, value = cache.peek("k1")
        assert (hit, value) == (True, "from disk")
        assert cache.stats.disk_hits == 1
        # Promotion must not rewrite the object it just read.
        assert store.snapshot().writes == writes_before
        hit, value = cache.peek("k1")
        assert (hit, value) == (True, "from disk")
        assert cache.stats.hits == 1

    def test_peek_disk_miss_stays_a_miss(self, tmp_path):
        cache = SpecCache(
            "result", capacity=4, store=ArtifactStore(tmp_path / "store")
        )
        assert cache.peek("absent") == (False, None)
        assert cache.stats.disk_misses == 1

    def test_eviction_spills_to_disk(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cache = SpecCache("result", capacity=1, store=store)
        cache.put("k1", "first")
        cache.put("k2", "second")  # evicts k1 from memory
        assert cache.stats.evictions == 1
        assert len(cache) == 1
        # The evicted value survives on disk and promotes back on demand.
        assert store.load("result", "k1") == "first"
        hit, value = cache.peek("k1")
        assert (hit, value) == (True, "first")

    def test_put_writes_through(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cache = SpecCache("result", capacity=4, store=store)
        cache.put("k1", "worker built this")
        assert store.load("result", "k1") == "worker built this"

    def test_get_cached_promote(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("result", "k1", "on disk")
        cache = SpecCache("result", capacity=4, store=store)
        assert cache.get_cached("k1") is None  # quiet: memory only
        assert cache.get_cached("k1", promote=True) == "on disk"
        assert cache.get_cached("k1") == "on disk"  # promoted
        # get_cached counts nothing on the tier.
        assert cache.stats.lookups == 0

    def test_capacity_zero_disables_disk_tier_too(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("result", "k1", "must not be read")
        cache = SpecCache("result", capacity=0, store=store)
        build, calls = build_counter()
        assert cache.get_or_build("k1", build) == {"value": 1}
        assert calls == [1]
        assert cache.stats.disk_hits == 0
        assert cache.stats.disk_misses == 0
        assert store.snapshot().hits == 0  # never consulted
        assert store.load("result", "k2") is MISS  # and never written
        assert cache.peek("k1") == (False, None)

    def test_corrupted_file_degrades_to_rebuild(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = SpecCache("result", capacity=4, store=store)
        first.get_or_build("k1", lambda: "original")
        path = store._path("result", "k1")
        path.write_bytes(path.read_bytes()[:-4])

        restarted = SpecCache(
            "result", capacity=4, store=ArtifactStore(tmp_path / "store")
        )
        build, calls = build_counter()
        assert restarted.get_or_build("k1", build) == {"value": 1}
        assert calls == [1]  # quietly rebuilt
        assert restarted.stats.disk_misses == 1
        # ... and the rebuild was written back.
        assert ArtifactStore(tmp_path / "store").load("result", "k1") == {
            "value": 1
        }

    def test_failed_build_leaves_disk_untouched(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cache = SpecCache("result", capacity=4, store=store)
        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_build("k1", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert store.load("result", "k1") is MISS
        # The key is retryable afterwards.
        assert cache.get_or_build("k1", lambda: "ok") == "ok"
        assert store.load("result", "k1") == "ok"

    def test_delta_counts_disk_traffic(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("result", "hit", "x")
        cache = SpecCache("result", capacity=4, store=store)
        delta = TierStats()
        cache.get_or_build("hit", lambda: "never", delta=delta)
        cache.get_or_build("miss", lambda: "built", delta=delta)
        assert (delta.disk_hits, delta.disk_misses) == (1, 1)
        assert delta.misses == 2

    def test_describe_mentions_disk_only_when_used(self):
        stats = TierStats(hits=1, misses=2)
        assert "disk" not in stats.describe()
        stats.disk_hits = 3
        assert "disk: 3 hit(s) / 0 miss(es)" in stats.describe()


class TestSizes:
    def test_sizes_track_content_bytes(self, tmp_path):
        cache = SpecCache("result", capacity=4, sizer=len)
        assert cache.sizes() == (0, 0)
        cache.put("a", "xxxx")
        cache.put("b", "yy")
        assert cache.sizes() == (2, 6)
        cache.clear()
        assert cache.sizes() == (0, 0)

    def test_engine_cache_sizes_shape(self):
        cache = EngineCache()
        sizes = cache.sizes()
        assert set(sizes) == {"clips", "results"}
        assert sizes["clips"] == {"entries": 0, "bytes": 0}

    def test_engine_cache_sizes_count_clip_bytes(self):
        engine = Engine(SystemSpec())
        engine.run(
            ScenarioSpec.from_dict(
                {
                    "source": {
                        "name": "pedestrian",
                        "params": {"resolution": [64, 48]},
                    },
                    "n_frames": 2,
                    "seed": 4,
                }
            )
        )
        sizes = engine.cache.sizes()
        assert sizes["clips"]["entries"] == 1
        assert sizes["clips"]["bytes"] == 2 * 48 * 64 * 3 * 8
        assert sizes["results"]["entries"] == 1
        assert sizes["results"]["bytes"] > 0


class TestEngineWarmRestart:
    SCENARIO = {
        "source": {"name": "pedestrian", "params": {"resolution": [64, 48]}},
        "n_frames": 2,
        "seed": 4,
    }

    def test_engine_restart_serves_bit_identical_from_disk(self, tmp_path):
        scenario = ScenarioSpec.from_dict(self.SCENARIO)
        first = Engine(SystemSpec(), store=ArtifactStore(tmp_path / "store"))
        original = first.run(scenario)

        # A fresh process: new engine, new store handle, same root.
        restarted = Engine(SystemSpec(), store=ArtifactStore(tmp_path / "store"))
        replayed = restarted.run(scenario)
        stats = restarted.cache.stats()
        assert stats.results.disk_hits == 1
        assert stats.results.disk_misses == 0
        assert stats.clips.disk_misses == 0  # result hit short-circuits render
        assert replayed.outcome.frames == original.outcome.frames
        assert replayed.outcome.total_bytes == original.outcome.total_bytes
        assert replayed.outcome.total_energy_j == original.outcome.total_energy_j

    def test_streaming_replay_from_disk(self, tmp_path):
        scenario = ScenarioSpec.from_dict(self.SCENARIO)
        first = Engine(SystemSpec(), store=ArtifactStore(tmp_path / "store"))
        original = first.run(scenario)

        restarted = Engine(SystemSpec(), store=ArtifactStore(tmp_path / "store"))
        streamed = []
        replayed = restarted.run_streaming(scenario, on_stats=streamed.append)
        assert streamed == list(original.outcome.frames)
        assert replayed.outcome.frames == original.outcome.frames
        assert restarted.cache.stats().results.disk_misses == 0

    def test_no_store_means_no_disk_counters(self):
        engine = Engine(SystemSpec())
        engine.run(ScenarioSpec.from_dict(self.SCENARIO))
        stats = engine.cache.stats()
        assert stats.results.disk_hits == 0
        assert stats.results.disk_misses == 0
