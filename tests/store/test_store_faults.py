"""Store under injected I/O faults and concurrent quarantine races."""

import threading

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.store import MISS, ArtifactStore


def io_plan(site, *hits) -> FaultPlan:
    return FaultPlan(
        name="store-io",
        seed=0,
        faults=(FaultSpec(site=site, kind="store-io-error", at=hits),),
    )


class TestInjectedIOErrors:
    def test_injected_load_error_degrades_to_miss(self, tmp_path):
        # Hit 0 of store.load raises mid-read: the store treats it like
        # any real I/O failure — MISS, quarantine, error counted — and
        # the next load (hit 1, clean) rebuilds from a fresh put.
        store = ArtifactStore(tmp_path / "store", faults=io_plan("store.load", 0))
        store.put("result", "thekey", "payload")
        assert store.load("result", "thekey") is MISS
        stats = store.snapshot()
        assert stats.errors == 1
        assert stats.misses == 1
        # quarantined: the poisoned file cannot fail again
        assert not store._path("result", "thekey").exists()
        store.put("result", "thekey", "payload")
        assert store.load("result", "thekey") == "payload"

    def test_injected_put_error_is_swallowed_and_counted(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", faults=io_plan("store.put", 0))
        assert store.put("result", "thekey", "payload") == 0
        assert store.snapshot().errors == 1
        assert store.load("result", "thekey") is MISS
        # the store keeps serving: the next put (clean hit) lands
        assert store.put("result", "thekey", "payload") > 0
        assert store.load("result", "thekey") == "payload"

    def test_faults_knob_accepts_plan_dict(self, tmp_path):
        store = ArtifactStore(
            tmp_path / "store", faults=io_plan("store.load", 0).to_dict()
        )
        store.put("result", "k", 1)
        assert store.load("result", "k") is MISS

    def test_no_faults_means_clean_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("result", "k", 1)
        assert store.load("result", "k") == 1
        assert store.snapshot().errors == 0


class TestConcurrentQuarantine:
    def test_concurrent_readers_of_corrupt_entry_all_miss(self, tmp_path):
        # N threads race to load one corrupted entry. Every reader gets
        # MISS, none raises, and the entry stays quarantined — it never
        # resurrects until an explicit re-put.
        store = ArtifactStore(tmp_path / "store")
        store.put("result", "shared", list(range(64)))
        path = store._path("result", "shared")
        path.write_bytes(b"\x00" * 50)

        n_readers = 8
        barrier = threading.Barrier(n_readers)
        results, failures = [], []
        lock = threading.Lock()

        def read():
            try:
                barrier.wait(timeout=10)
                value = store.load("result", "shared")
            except Exception as exc:  # noqa: BLE001 - the contract is "never raises"
                with lock:
                    failures.append(exc)
            else:
                with lock:
                    results.append(value)

        threads = [threading.Thread(target=read) for _ in range(n_readers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert failures == []
        assert results == [MISS] * n_readers
        assert not path.exists()
        # still a plain MISS afterwards — no resurrection from the index
        assert store.load("result", "shared") is MISS
        # an explicit re-put is the only way back
        store.put("result", "shared", list(range(64)))
        assert store.load("result", "shared") == list(range(64))
