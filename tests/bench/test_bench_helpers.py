"""Tests for table/figure rendering and the experiment registry."""

import pytest

from repro.bench import (
    EXPERIMENTS,
    Table,
    ascii_bar_chart,
    ascii_line_chart,
    get_experiment,
    series_csv,
)


class TestTable:
    def test_render_contains_cells(self):
        t = Table("demo", ["name", "value"])
        t.add_row("alpha", 1.5)
        t.add_row("beta", 2)
        text = t.render()
        assert "alpha" in text
        assert "1.5" in text
        assert "demo" in text

    def test_row_width_validation(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_alignment(self):
        t = Table("demo", ["name", "v"], aligns=["l", "r"])
        t.add_row("x", 1)
        line = t.render().splitlines()[-2]
        assert line.startswith("x")

    def test_csv(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        assert t.to_csv() == "a,b\n1,2"


class TestCharts:
    def test_bar_chart_scales(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10  # b is the max
        assert lines[0].count("#") == 5

    def test_bar_chart_empty(self):
        assert ascii_bar_chart({}, title="t") == "t"

    def test_line_chart_structure(self):
        chart = ascii_line_chart(
            {"x2": [1, 4, 9, 16]}, x_labels=["1", "2", "3", "4"], height=5, width=20
        )
        assert "x2" in chart
        assert "+" in chart

    def test_line_chart_logy(self):
        chart = ascii_line_chart({"e": [1, 10, 100]}, height=4, width=10, logy=True)
        assert "100" in chart

    def test_line_chart_logy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"e": [0, 1]}, logy=True)

    def test_line_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [1, 2], "b": [1, 2, 3]})

    def test_series_csv(self):
        csv = series_csv({"a": [1.0, 2.0]}, ["x0", "x1"])
        assert csv.splitlines()[0] == "x,a"
        assert csv.splitlines()[1] == "x0,1"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8",
            "stream", "service", "hotpath", "sweep", "serving", "store",
            "resilience",
        }

    def test_benches_exist_on_disk(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for exp in EXPERIMENTS.values():
            assert (root / exp.bench).exists(), f"missing {exp.bench}"

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("table9")
