"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestCLI:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8"):
            assert exp_id in out

    def test_costs_paper_headline(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "17.7x" in out
        assert "14.75 MB" in out

    def test_costs_gray_flag(self, capsys):
        assert main(["costs", "--gray"]) == 0
        assert "gray" in capsys.readouterr().out

    def test_circuit_command(self, capsys):
        assert main(["circuit", "--inputs", "4", "--level", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "shared node" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--width", "320", "--height", "240", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
