"""Tests for the ``python -m repro`` command-line interface."""

import json
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main

SPECS_DIR = Path(__file__).resolve().parents[2] / "examples" / "specs"


class TestCLI:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8"):
            assert exp_id in out

    def test_costs_paper_headline(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "17.7x" in out
        assert "14.75 MB" in out

    def test_costs_gray_flag(self, capsys):
        assert main(["costs", "--gray"]) == 0
        assert "gray" in capsys.readouterr().out

    def test_circuit_command(self, capsys):
        assert main(["circuit", "--inputs", "4", "--level", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "shared node" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--width", "320", "--height", "240", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out

    def test_compare_gray_flag_reduces_stage1_bytes(self, capsys):
        args = ["compare", "--width", "320", "--height", "240", "--k", "2"]
        assert main(args) == 0
        rgb_out = capsys.readouterr().out
        assert main(args + ["--gray"]) == 0
        gray_out = capsys.readouterr().out
        # grayscale stage 1 moves fewer bytes, so the reduction grows
        def reduction(text):
            line = next(l for l in text.splitlines() if "data transfer" in l)
            return float(line.rsplit(None, 1)[-1].rstrip("x"))
        assert reduction(gray_out) > reduction(rgb_out)

    def test_compare_score_threshold_drops_all_rois(self, capsys):
        assert main([
            "compare", "--width", "320", "--height", "240", "--k", "2",
            "--score-threshold", "0.95",
        ]) == 0
        # seed ROIs carry score 0.9 < 0.95, so nothing is read out
        assert "0 ROIs" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestServiceCLI:
    def test_components_lists_registries(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        for kind in ("detectors:", "classifiers:", "sources:", "policies:"):
            assert kind in out
        for name in ("ground-truth", "pedestrian", "temporal-reuse"):
            assert name in out

    def test_run_example_specs(self, capsys):
        for spec in ("pedestrian_reuse.json", "drone_batch.json"):
            assert main(["run", str(SPECS_DIR / spec), "--workers", "2"]) == 0
            out = capsys.readouterr().out
            assert "[batch]" in out

    def test_run_missing_file(self, capsys):
        assert main(["run", "no/such/spec.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_invalid_workers(self, capsys):
        spec = str(SPECS_DIR / "pedestrian_reuse.json")
        assert main(["run", spec, "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_run_invalid_spec_names_field(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"scenarios": [{"n_frames": "ten"}]}))
        assert main(["run", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "scenario.n_frames" in err

    def test_run_spec_without_scenarios(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"system": "hirise"}))
        assert main(["run", str(empty)]) == 2
        assert "no scenarios" in capsys.readouterr().err

    def test_all_example_specs_parse(self):
        from repro.service import Engine

        specs = sorted(SPECS_DIR.glob("*.json"))
        assert len(specs) >= 3
        for path in specs:
            engine = Engine.from_spec(path)
            assert engine.scenarios
            for scenario in engine.scenarios:
                scenario.validate_components()
