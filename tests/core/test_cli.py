"""Tests for the ``python -m repro`` command-line interface."""

import json
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main

SPECS_DIR = Path(__file__).resolve().parents[2] / "examples" / "specs"
SWEEPS_DIR = Path(__file__).resolve().parents[2] / "examples" / "sweeps"


class TestCLI:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8"):
            assert exp_id in out

    def test_costs_paper_headline(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "17.7x" in out
        assert "14.75 MB" in out

    def test_costs_gray_flag(self, capsys):
        assert main(["costs", "--gray"]) == 0
        assert "gray" in capsys.readouterr().out

    def test_circuit_command(self, capsys):
        assert main(["circuit", "--inputs", "4", "--level", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "shared node" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--width", "320", "--height", "240", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out

    def test_compare_gray_flag_reduces_stage1_bytes(self, capsys):
        args = ["compare", "--width", "320", "--height", "240", "--k", "2"]
        assert main(args) == 0
        rgb_out = capsys.readouterr().out
        assert main(args + ["--gray"]) == 0
        gray_out = capsys.readouterr().out
        # grayscale stage 1 moves fewer bytes, so the reduction grows
        def reduction(text):
            line = next(l for l in text.splitlines() if "data transfer" in l)
            return float(line.rsplit(None, 1)[-1].rstrip("x"))
        assert reduction(gray_out) > reduction(rgb_out)

    def test_compare_score_threshold_drops_all_rois(self, capsys):
        assert main([
            "compare", "--width", "320", "--height", "240", "--k", "2",
            "--score-threshold", "0.95",
        ]) == 0
        # seed ROIs carry score 0.9 < 0.95, so nothing is read out
        assert "0 ROIs" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_exits_nonzero_with_message(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["launch"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "launch" in err


class TestServiceCLI:
    def test_components_lists_registries(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        for kind in ("detectors:", "classifiers:", "sources:", "policies:"):
            assert kind in out
        for name in ("ground-truth", "pedestrian", "temporal-reuse"):
            assert name in out

    def test_run_example_specs(self, capsys):
        for spec in ("pedestrian_reuse.json", "drone_batch.json"):
            assert main(["run", str(SPECS_DIR / spec), "--workers", "2"]) == 0
            out = capsys.readouterr().out
            assert "[batch]" in out

    def test_run_missing_file(self, capsys):
        assert main(["run", "no/such/spec.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_invalid_workers(self, capsys):
        spec = str(SPECS_DIR / "pedestrian_reuse.json")
        assert main(["run", spec, "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_run_invalid_spec_names_field(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"scenarios": [{"n_frames": "ten"}]}))
        assert main(["run", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "scenario.n_frames" in err

    def test_run_spec_without_scenarios(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"system": "hirise"}))
        assert main(["run", str(empty)]) == 2
        assert "no scenarios" in capsys.readouterr().err

    def test_components_groups_are_sorted(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        for kind in ("detectors", "classifiers", "sources", "policies"):
            section = out.split(f"{kind}:", 1)[1].split(":", 1)[0]
            names = [l.strip() for l in section.splitlines() if l.startswith("  ")]
            assert names == sorted(names) and names

    def test_all_example_specs_parse(self):
        from repro.service import Engine

        specs = sorted(SPECS_DIR.glob("*.json"))
        assert len(specs) >= 3
        for path in specs:
            engine = Engine.from_spec(path)
            assert engine.scenarios
            for scenario in engine.scenarios:
                scenario.validate_components()


class TestSweepCLI:
    def run_fig7(self, tmp_path, capsys, *extra):
        spec = str(SWEEPS_DIR / "paper_fig7_transfer.json")
        code = main([
            "sweep", spec, "--tiny", "--executor", "serial",
            "--out", str(tmp_path / "reports"), *extra,
        ])
        return code, capsys.readouterr()

    def test_tiny_sweep_emits_report_artifacts(self, tmp_path, capsys):
        code, captured = self.run_fig7(tmp_path, capsys)
        assert code == 0
        assert "# Fig. 7 (sweep)" in captured.out
        assert "[sweep paper_fig7_transfer-tiny]" in captured.out
        json_path = tmp_path / "reports" / "paper_fig7_transfer-tiny.json"
        md_path = tmp_path / "reports" / "paper_fig7_transfer-tiny.md"
        assert json_path.is_file() and md_path.is_file()
        payload = json.loads(json_path.read_text())
        assert all(t["passed"] for t in payload["trends"])

    def test_tiny_sweep_artifacts_are_deterministic(self, tmp_path, capsys):
        self.run_fig7(tmp_path / "a", capsys)
        self.run_fig7(tmp_path / "b", capsys)
        for name in ("paper_fig7_transfer-tiny.json", "paper_fig7_transfer-tiny.md"):
            first = (tmp_path / "a" / "reports" / name).read_bytes()
            second = (tmp_path / "b" / "reports" / name).read_bytes()
            assert first == second

    def test_profile_flag_prints_phase_breakdown(self, tmp_path, capsys):
        code, captured = self.run_fig7(tmp_path, capsys, "--profile")
        assert code == 0
        assert "phase breakdown (all cells)" in captured.out
        assert "stage1" in captured.out

    def test_missing_sweep_file(self, capsys):
        assert main(["sweep", "no/such/sweep.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_sweep_spec_names_field(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"axes": [{"path": "pool_k", "values": [2]}]}))
        assert main(["sweep", str(bad)]) == 2
        assert "axis.path" in capsys.readouterr().err

    def test_invalid_workers(self, capsys):
        spec = str(SWEEPS_DIR / "paper_fig7_transfer.json")
        assert main(["sweep", spec, "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_axis_value_under_tiny_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad_res.json"
        bad.write_text(json.dumps({
            "axes": [{
                "path": "scenario.source.params.resolution",
                "values": [[320, 240], "oops"],
            }],
        }))
        assert main(["sweep", str(bad), "--tiny"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "resolution" in err

    def test_unwritable_out_dir_is_clean_error(self, tmp_path, capsys):
        spec = str(SWEEPS_DIR / "paper_fig7_transfer.json")
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        code = main([
            "sweep", spec, "--tiny", "--executor", "serial",
            "--out", str(blocker),
        ])
        assert code == 2
        assert "cannot write report" in capsys.readouterr().err

    def test_unknown_executor_rejected_by_parser(self, capsys):
        spec = str(SWEEPS_DIR / "paper_fig7_transfer.json")
        with pytest.raises(SystemExit) as exc:
            main(["sweep", spec, "--executor", "gpu"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_failed_trend_check_exits_one(self, tmp_path, capsys):
        # A parity sweep with no classifier has zero predictions to
        # compare, so the table2 trend checks must fail (exit code 1).
        spec = {
            "name": "no_predictions",
            "system": {"detector": {"name": "ground-truth"}},
            "scenario": {
                "source": {
                    "name": "pedestrian",
                    "params": {"resolution": [160, 120]},
                },
                "n_frames": 2,
                "keep_outcomes": True,
            },
            "axes": [
                {"path": "system.compute_dtype",
                 "values": ["float64", "float32"]},
            ],
            "executor": "serial",
            "workers": 1,
            "report": "table2_accuracy",
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        code = main(["sweep", str(path), "--out", str(tmp_path / "reports")])
        err = capsys.readouterr().err
        assert code == 1
        assert "trend check failed" in err
        # the report is still written: failures are evidence, not crashes
        payload = json.loads(
            (tmp_path / "reports" / "no_predictions.json").read_text()
        )
        # zero compared predictions is absence of evidence, not agreement
        for row in payload["aggregates"]["comparisons"]:
            assert row["agreement"] is None


class TestServingCLI:
    """Argument handling for ``repro serve`` / ``repro request``.

    Daemon behavior itself lives in tests/server/; these cover the CLI
    layer — validation exits, probe flags, and the request round trip
    against a directly started server.
    """

    SCENARIO = {
        "source": {"name": "pedestrian", "params": {"resolution": [48, 36]}},
        "n_frames": 3,
        "seed": 7,
        "name": "cli-serving",
    }

    @pytest.fixture()
    def server(self):
        from repro.server import ReproServer

        with ReproServer(
            {"system": {"system": "hirise"}}, executor="serial"
        ) as srv:
            yield srv

    def test_serve_rejects_invalid_workers(self, tmp_path, capsys):
        spec = tmp_path / "svc.json"
        spec.write_text(json.dumps({"scenarios": [self.SCENARIO]}))
        assert main(["serve", str(spec), "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_missing_spec_file_is_clean_error(self, capsys):
        assert main(["serve", "no/such/spec.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_request_probe_flags_are_mutually_exclusive(self, capsys):
        code = main(["request", "--port", "1", "--ping", "--stats"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_request_needs_scenario_or_probe(self, capsys):
        assert main(["request", "--port", "1"]) == 2
        assert "scenario file" in capsys.readouterr().err

    def test_request_unreachable_daemon_exits_one(self, capsys):
        code = main(["request", "--port", "1", "--ping"])
        assert code == 1
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_request_ping_and_stats_probes(self, server, capsys):
        host, port = server.address
        base = ["request", "--host", host, "--port", str(port)]
        assert main(base + ["--ping"]) == 0
        assert "pong" in capsys.readouterr().out
        assert main(base + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "requests served: 0" in out
        assert "cache[results]" in out

    def test_request_runs_scenario_from_service_spec(
        self, server, tmp_path, capsys
    ):
        host, port = server.address
        spec = tmp_path / "svc.json"
        spec.write_text(json.dumps(
            {"scenarios": [dict(self.SCENARIO, seed=1), self.SCENARIO]}
        ))
        code = main([
            "request", "--host", host, "--port", str(port),
            str(spec), "--index", "1",
        ])
        assert code == 0
        assert "cli-serving" in capsys.readouterr().out

    def test_request_stream_prints_per_frame_lines(
        self, server, tmp_path, capsys
    ):
        host, port = server.address
        spec = tmp_path / "scenario.json"
        spec.write_text(json.dumps(self.SCENARIO))
        code = main([
            "request", "--host", host, "--port", str(port),
            str(spec), "--stream",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for idx in range(self.SCENARIO["n_frames"]):
            assert f"frame {idx}:" in out

    def test_request_bad_index_is_clean_error(self, server, tmp_path, capsys):
        host, port = server.address
        spec = tmp_path / "svc.json"
        spec.write_text(json.dumps({"scenarios": [self.SCENARIO]}))
        code = main([
            "request", "--host", host, "--port", str(port),
            str(spec), "--index", "5",
        ])
        assert code == 2
        assert "--index 5 out of range" in capsys.readouterr().err

    def test_request_invalid_scenario_is_clean_error(
        self, server, tmp_path, capsys
    ):
        host, port = server.address
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"n_frames": 3, "label": "nope"}))
        code = main([
            "request", "--host", host, "--port", str(port), str(bad),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCacheCLI:
    """``repro cache`` and the ``--store-dir`` flag across subcommands."""

    SCENARIO = {
        "source": {"name": "pedestrian", "params": {"resolution": [48, 36]}},
        "n_frames": 3,
        "seed": 7,
        "name": "cli-store",
    }

    def service_spec(self, tmp_path) -> str:
        spec = tmp_path / "svc.json"
        spec.write_text(json.dumps({"scenarios": [self.SCENARIO]}))
        return str(spec)

    def test_stats_on_empty_store(self, tmp_path, capsys):
        code = main(["cache", "stats", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 object(s)" in out
        assert "empty" in out

    def test_run_populates_store_and_restart_replays(self, tmp_path, capsys):
        spec = self.service_spec(tmp_path)
        store = str(tmp_path / "store")
        assert main(["run", spec, "--store-dir", store]) == 0
        cold = capsys.readouterr().out

        assert main(["cache", "stats", "--store-dir", store]) == 0
        stats = capsys.readouterr().out
        assert "clip: 1 entry" in stats
        assert "result: 1 entry" in stats

        # A second CLI invocation (fresh process state, same root) serves
        # the same report from disk.
        assert main(["run", spec, "--store-dir", store]) == 0
        warm = capsys.readouterr().out

        def reports(text):
            return [l for l in text.splitlines() if "cli-store" in l]

        assert reports(warm) == reports(cold)

    def test_gc_to_zero_budget_clears(self, tmp_path, capsys):
        spec = self.service_spec(tmp_path)
        store = str(tmp_path / "store")
        assert main(["run", spec, "--store-dir", store]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--store-dir", store, "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "removed 2 object(s)" in out
        assert main(["cache", "stats", "--store-dir", store]) == 0
        assert "0 object(s)" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        spec = self.service_spec(tmp_path)
        store = str(tmp_path / "store")
        assert main(["run", spec, "--store-dir", store]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--store-dir", store]) == 0
        assert "removed 2 object(s)" in capsys.readouterr().out

    def test_gc_negative_budget_is_clean_error(self, tmp_path, capsys):
        code = main([
            "cache", "gc", "--store-dir", str(tmp_path / "store"),
            "--max-bytes", "-5",
        ])
        assert code == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_cache_requires_action_and_store_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "stats"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "gc", "--store-dir", "x"])

    def test_store_dir_flag_parses_on_run_serve_sweep(self):
        parser = build_parser()
        for argv in (
            ["run", "spec.json", "--store-dir", "s"],
            ["serve", "spec.json", "--store-dir", "s"],
            ["sweep", "sweep.json", "--store-dir", "s"],
        ):
            assert parser.parse_args(argv).store_dir == "s"

    def test_request_stats_reports_store_tier(self, tmp_path, capsys):
        from repro.server import ReproServer
        from repro.store import ArtifactStore

        spec = self.service_spec(tmp_path)
        store_dir = tmp_path / "store"
        with ReproServer(
            {"system": {"system": "hirise"}},
            executor="serial",
            store=ArtifactStore(store_dir),
        ) as server:
            host, port = server.address
            base = ["request", "--host", host, "--port", str(port)]
            assert main(base + [spec]) == 0
            capsys.readouterr()
            assert main(base + ["--stats"]) == 0
            out = capsys.readouterr().out
        assert "cache[store]" in out
        assert "write(s)" in out
        # per-tier occupancy: entries + byte sizes surface over the wire
        assert "cache[results]" in out
        assert "entry" in out
        assert "kB" in out

    def test_request_stats_shows_disk_hits_after_restart(self, tmp_path, capsys):
        from repro.server import ReproServer
        from repro.store import ArtifactStore

        spec = self.service_spec(tmp_path)
        store_dir = tmp_path / "store"
        with ReproServer(
            {"system": {"system": "hirise"}},
            executor="serial",
            store=ArtifactStore(store_dir),
        ) as server:
            host, port = server.address
            assert main(
                ["request", "--host", host, "--port", str(port), spec]
            ) == 0
        capsys.readouterr()

        with ReproServer(
            {"system": {"system": "hirise"}},
            executor="serial",
            store=ArtifactStore(store_dir),
        ) as server:
            host, port = server.address
            base = ["request", "--host", host, "--port", str(port)]
            assert main(base + [spec]) == 0
            capsys.readouterr()
            assert main(base + ["--stats"]) == 0
            out = capsys.readouterr().out
        assert "disk 1 hit(s) / 0 miss(es)" in out
