"""Tests for the end-to-end pipelines (config, HiRISE, conventional)."""

import numpy as np
import pytest

from repro.core import (
    ConventionalPipeline,
    HiRISEConfig,
    HiRISEPipeline,
    ROI,
    compare,
    comparison_report,
    format_bytes,
    format_energy,
)


@pytest.fixture(scope="module")
def scene_image(small_scene):
    return small_scene.image


@pytest.fixture(scope="module")
def head_rois(small_scene):
    return [
        ROI(int(b.x), int(b.y), max(int(b.w), 2), max(int(b.h), 2), 0.9, "head")
        for b in small_scene.boxes_for("head")
    ]


class TestHiRISEConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HiRISEConfig(pool_k=0)
        with pytest.raises(ValueError):
            HiRISEConfig(adc_bits=0)
        with pytest.raises(ValueError):
            HiRISEConfig(roi_pad_fraction=-1)
        with pytest.raises(ValueError):
            HiRISEConfig(max_rois=0)

    def test_for_stage1_resolution(self):
        cfg = HiRISEConfig.for_stage1_resolution((2560, 1920), (320, 240))
        assert cfg.pool_k == 8

    def test_for_stage1_resolution_forwards_known_kwargs(self):
        cfg = HiRISEConfig.for_stage1_resolution(
            (2560, 1920), (320, 240), grayscale_stage1=True, max_rois=4
        )
        assert cfg.pool_k == 8
        assert cfg.grayscale_stage1 is True
        assert cfg.max_rois == 4

    def test_for_stage1_resolution_rejects_nonmultiple(self):
        with pytest.raises(ValueError):
            HiRISEConfig.for_stage1_resolution((2560, 1920), (300, 200))

    def test_for_stage1_resolution_names_remainders(self):
        with pytest.raises(ValueError, match=r"2560x1920.*300x200.*remainder"):
            HiRISEConfig.for_stage1_resolution((2560, 1920), (300, 200))

    def test_for_stage1_resolution_names_mismatched_factors(self):
        # both axes divide, but by different factors: w/320=4, h/240=2
        with pytest.raises(ValueError, match=r"width gives k=4.*height gives k=2"):
            HiRISEConfig.for_stage1_resolution((1280, 480), (320, 240))

    def test_for_stage1_resolution_rejects_unknown_kwargs_by_name(self):
        with pytest.raises(TypeError, match=r"\['fov'\].*valid fields"):
            HiRISEConfig.for_stage1_resolution((2560, 1920), fov=90)

    def test_for_stage1_resolution_rejects_explicit_pool_k(self):
        with pytest.raises(TypeError, match=r"pool_k=3"):
            HiRISEConfig.for_stage1_resolution((2560, 1920), pool_k=3)

    def test_config_dict_round_trip(self):
        cfg = HiRISEConfig(pool_k=2, merge_roi_iou=0.4, max_rois=7)
        assert HiRISEConfig.from_dict(cfg.to_dict()) == cfg

    def test_config_from_dict_names_unknown_fields(self):
        with pytest.raises(ValueError, match=r"\['pool_q'\].*valid fields"):
            HiRISEConfig.from_dict({"pool_q": 8})

    def test_score_threshold_gates_explicit_rois(self, scene_image, head_rois):
        # explicit ROIs pass the same confidence gate as detector outputs
        gated = HiRISEPipeline(
            config=HiRISEConfig(pool_k=4, score_threshold=0.95)
        ).run(scene_image, rois=head_rois)
        assert gated.rois == []
        unscored = [ROI(8, 8, 16, 16)]  # score=None is never filtered
        kept = HiRISEPipeline(
            config=HiRISEConfig(pool_k=4, score_threshold=0.95)
        ).run(scene_image, rois=unscored)
        assert len(kept.rois) == 1


class TestHiRISEPipeline:
    def test_requires_detector_or_rois(self, scene_image):
        with pytest.raises(ValueError):
            HiRISEPipeline(config=HiRISEConfig(pool_k=2)).run(scene_image)

    def test_stage1_frame_is_pooled(self, scene_image, head_rois):
        out = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        assert out.stage1_image.shape == (120, 160, 3)

    def test_grayscale_stage1(self, scene_image, head_rois):
        cfg = HiRISEConfig(pool_k=4, grayscale_stage1=True)
        out = HiRISEPipeline(config=cfg).run(scene_image, rois=head_rois)
        assert out.stage1_image.ndim == 2
        assert out.stage1_conversions == 120 * 160

    def test_roi_crops_full_resolution(self, scene_image, head_rois):
        out = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        assert len(out.roi_crops) == len(out.rois)
        for roi, crop in zip(out.rois, out.roi_crops):
            assert crop.shape == (roi.h, roi.w, 3)

    def test_crop_content_matches_scene(self, scene_image, head_rois):
        out = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois[:1]
        )
        roi = out.rois[0]
        expected = scene_image[roi.y : roi.y2, roi.x : roi.x2, :]
        assert np.max(np.abs(out.roi_crops[0] - expected)) < 1 / 255.0

    def test_ledger_consistency(self, scene_image, head_rois):
        out = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        assert out.ledger.stage1_s2p == out.stage1_conversions  # 8-bit
        assert out.ledger.stage2_s2p == out.stage2_conversions
        assert out.ledger.stage1_p2s == len(out.rois) * 8

    def test_energy_accounting(self, scene_image, head_rois):
        out = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        expected = (out.stage1_conversions + out.stage2_conversions) * 125e-12
        assert out.energy.stage1_adc + out.energy.stage2_adc == pytest.approx(expected)
        assert out.energy.pooling > 0

    def test_classifier_applied_per_crop(self, scene_image, head_rois):
        calls = []

        def fake_classifier(crop):
            calls.append(crop.shape)
            return "neutral"

        out = HiRISEPipeline(
            classifier=fake_classifier, config=HiRISEConfig(pool_k=4)
        ).run(scene_image, rois=head_rois)
        assert len(out.predictions) == len(out.rois)
        assert all(p == "neutral" for p in out.predictions)

    def test_detector_driven_run(self, scene_image):
        """A trivial detector emitting one centered box drives stage 2."""

        class OneBox:
            def __call__(self, frame):
                from repro.ml import Detection

                h, w = frame.shape[:2]
                return [Detection("obj", 0.9, w // 4, h // 4, w // 4, h // 4)]

        out = HiRISEPipeline(detector=OneBox(), config=HiRISEConfig(pool_k=4)).run(
            scene_image
        )
        assert len(out.rois) == 1
        # Detector coordinates were scaled back by k=4.
        assert out.rois[0].w == pytest.approx(160, abs=4)

    def test_score_threshold_filters(self, scene_image):
        from repro.ml import Detection

        def detector(frame):
            return [
                Detection("a", 0.9, 1, 1, 10, 10),
                Detection("b", 0.1, 20, 20, 10, 10),
            ]

        cfg = HiRISEConfig(pool_k=4, score_threshold=0.5)
        out = HiRISEPipeline(detector=detector, config=cfg).run(scene_image)
        assert len(out.rois) == 1

    def test_max_rois_enforced(self, scene_image, head_rois):
        cfg = HiRISEConfig(pool_k=4, max_rois=3)
        out = HiRISEPipeline(config=cfg).run(scene_image, rois=head_rois)
        assert len(out.rois) <= 3

    def test_peak_memory_is_max_of_stages(self, scene_image, head_rois):
        out = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        largest = max(c.size for c in out.roi_crops)
        assert out.peak_image_memory_bytes == max(out.ledger.stage1_s2p, largest)

    def test_report_is_text(self, scene_image, head_rois):
        out = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        text = out.report()
        assert "hirise" in text
        assert "ROIs" in text


class TestConventionalPipeline:
    def test_full_frame_converted(self, scene_image):
        out = ConventionalPipeline().run(scene_image)
        assert out.stage1_image.shape == scene_image.shape
        assert out.stage2_conversions == scene_image.size

    def test_digital_crops(self, scene_image, head_rois):
        out = ConventionalPipeline().run(scene_image, rois=head_rois)
        assert len(out.roi_crops) == len(out.rois)

    def test_baseline_energy_constant_wrt_rois(self, scene_image, head_rois):
        a = ConventionalPipeline().run(scene_image)
        b = ConventionalPipeline().run(scene_image, rois=head_rois)
        assert a.energy.total == pytest.approx(b.energy.total)


class TestComparison:
    def test_hirise_wins_all_metrics(self, scene_image, head_rois):
        hirise = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        base = ConventionalPipeline().run(scene_image, rois=head_rois)
        cmp = compare(hirise, base)
        assert cmp.transfer_reduction > 1
        assert cmp.energy_reduction > 1
        assert cmp.memory_reduction > 1
        assert cmp.conversion_reduction > 1

    def test_compare_validates_order(self, scene_image, head_rois):
        hirise = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        base = ConventionalPipeline().run(scene_image, rois=head_rois)
        with pytest.raises(ValueError):
            compare(base, hirise)

    def test_report_text(self, scene_image, head_rois):
        hirise = HiRISEPipeline(config=HiRISEConfig(pool_k=4)).run(
            scene_image, rois=head_rois
        )
        base = ConventionalPipeline().run(scene_image, rois=head_rois)
        text = comparison_report(hirise, base)
        assert "reduction" in text
        assert "x" in text


class TestFormatters:
    def test_format_bytes_decimal(self):
        assert format_bytes(14_745_600) == "14.75 MB"
        assert format_bytes(230_400) == "230.4 kB"
        assert format_bytes(12) == "12 B"

    def test_format_energy(self):
        assert format_energy(1.843e-3) == "1.843 mJ"
        assert format_energy(40e-6) == "40.00 uJ"
        assert format_energy(91.4e-9) == "91.40 nJ"
