"""Tests for the Table 1 cost model and the energy model.

Several tests check the model against *numbers printed in the paper* —
these are the strongest reproduction anchors we have.
"""

import pytest

from repro.core import (
    ROI,
    EnergyModel,
    conventional_costs,
    hirise_costs,
    hirise_stage1_costs,
    hirise_stage2_costs,
    roi_feedback_bits,
)


class TestConventional:
    def test_paper_baseline_bytes(self):
        """2560x1920 RGB x 8 bit = 14,745,600 B (paper: 14,746 kB)."""
        c = conventional_costs(2560, 1920, p_adc=8)
        assert c.data_transfer_bytes == 14_745_600
        assert c.memory_bytes == 14_745_600
        assert c.adc_conversions == 14_745_600

    def test_transfer_equals_memory_equals_conversions_x_bits(self):
        c = conventional_costs(640, 480)
        assert c.data_transfer_bits == c.adc_conversions * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            conventional_costs(0, 100)
        with pytest.raises(ValueError):
            conventional_costs(10, 10, p_adc=20)


class TestStage1:
    def test_grayscale_table1_convention(self):
        s = hirise_stage1_costs(2560, 1920, k=8, grayscale=True)
        assert s.adc_conversions == 2560 * 1920 // 64

    def test_rgb_fig7_convention(self):
        s = hirise_stage1_costs(2560, 1920, k=8, grayscale=False)
        assert s.adc_conversions == 2560 * 1920 // 64 * 3

    def test_paper_stage1_frame_230kb(self):
        """2560x1920 pooled 8x to 320x240 RGB = 230,400 B (paper: 230 kB)."""
        s = hirise_stage1_costs(2560, 1920, k=8, grayscale=False)
        assert s.data_transfer_bytes == 230_400

    def test_k_must_fit(self):
        with pytest.raises(ValueError):
            hirise_stage1_costs(10, 10, k=20)


class TestStage2:
    def test_sum_of_areas(self):
        s = hirise_stage2_costs([(10, 20), (5, 5)])
        assert s.adc_conversions == 3 * (200 + 25)

    def test_union_dedup_smaller(self):
        rois = [ROI(0, 0, 10, 10), ROI(5, 0, 10, 10)]
        summed = hirise_stage2_costs(rois)
        union = hirise_stage2_costs(rois, dedup_overlaps=True)
        assert union.adc_conversions == 3 * 150
        assert union.adc_conversions < summed.adc_conversions

    def test_union_requires_positions(self):
        with pytest.raises(ValueError):
            hirise_stage2_costs([(10, 10)], dedup_overlaps=True)

    def test_empty_rois(self):
        s = hirise_stage2_costs([])
        assert s.adc_conversions == 0


class TestFeedback:
    def test_formula(self):
        assert roi_feedback_bits(16) == 16 * 4 * 16

    def test_negligible(self):
        assert roi_feedback_bits(16) < hirise_stage1_costs(320, 240, 1).data_transfer_bits / 100


class TestBreakdown:
    """The paper's Table 3 row at 2560x1920: the strongest anchor."""

    @pytest.fixture()
    def paper_row(self):
        return hirise_costs(
            2560, 1920, k=8, rois=[(112, 112)] * 16, grayscale=False
        )

    def test_hirise_transfer_matches_paper_833kb(self, paper_row):
        kb = paper_row.hirise_transfer_bits / 8 / 1000
        assert kb == pytest.approx(833, abs=5)

    def test_reduction_17_7x(self, paper_row):
        assert paper_row.conversion_reduction == pytest.approx(17.7, abs=0.2)

    def test_memory_is_max_of_stages(self, paper_row):
        assert paper_row.hirise_peak_memory_bits == max(
            paper_row.stage1.memory_bits, paper_row.stage2.memory_bits
        )

    def test_all_conditions_satisfied(self, paper_row):
        assert paper_row.satisfies_paper_conditions()

    def test_k_ordering(self):
        """Larger pooling -> more total reduction (Fig. 7's ordering)."""
        rois = [(100, 100)] * 10
        reductions = [
            hirise_costs(2560, 1920, k, rois, grayscale=False).transfer_reduction
            for k in (2, 4, 8)
        ]
        assert reductions[0] < reductions[1] < reductions[2]


class TestEnergyModel:
    def test_paper_baseline_1843uj(self):
        e = EnergyModel().conventional_frame(2560, 1920)
        assert e.total_mj == pytest.approx(1.843, abs=0.001)

    def test_fig8_crowdhuman_2x2(self):
        """Paper: 2x2 pooling, stage-1 RGB = 0.46 mJ (73% of 0.63 mJ)."""
        rois = [ROI(0, 0, 672, 672)]  # ~0.45 Mpx: back-solved stage-2 load
        e = EnergyModel().hirise_frame(2560, 1920, k=2, rois=rois)
        assert e.stage1_adc * 1e3 == pytest.approx(0.461, abs=0.001)
        assert e.total_mj == pytest.approx(0.63, abs=0.05)

    def test_fig8_reduction_ordering(self):
        rois = [ROI(0, 0, 672, 672)]
        model = EnergyModel()
        base = model.conventional_frame(2560, 1920).total
        totals = [
            model.hirise_frame(2560, 1920, k, rois).total for k in (2, 4, 8)
        ]
        reductions = [base / t for t in totals]
        assert reductions[0] == pytest.approx(3.0, abs=0.3)
        assert reductions[1] == pytest.approx(6.5, abs=0.7)
        assert reductions[2] == pytest.approx(9.4, abs=1.0)

    def test_pooling_energy_negligible(self):
        e = EnergyModel().hirise_frame(2560, 1920, 2, [ROI(0, 0, 100, 100)])
        assert e.pooling < e.stage1_adc / 1000

    def test_share_sums_to_one(self):
        e = EnergyModel().hirise_frame(640, 480, 4, [(50, 50)])
        total_share = sum(e.share(c) for c in ("stage1_adc", "stage2_adc", "pooling", "link"))
        assert total_share == pytest.approx(1.0)

    def test_from_conversions_consistent(self):
        model = EnergyModel()
        analytic = model.hirise_frame(640, 480, 4, [(50, 50)], grayscale=False)
        measured = model.from_conversions(
            stage1_conversions=640 * 480 // 16 * 3,
            stage2_conversions=3 * 50 * 50,
            pooled_outputs=640 * 480 // 16 * 3,
        )
        assert measured.total == pytest.approx(analytic.total)
