"""Tests for the phase-level profiler (repro.core.profiling)."""

import pickle

import pytest

from repro.core import PhaseProfile, PhaseProfiler, PhaseStats, profiled
from repro.core.profiling import PhaseProfiler as _ProfilerDirect


class FakeClock:
    """A deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestPhaseProfiler:
    def test_single_phase_records_calls_and_time(self):
        profiler = PhaseProfiler(clock=FakeClock())
        with profiler.phase("detect"):
            pass
        profile = profiler.snapshot()
        stats = profile.get("detect")
        assert stats == PhaseStats("detect", calls=1, total_s=1.0)

    def test_repeated_phases_accumulate(self):
        profiler = PhaseProfiler(clock=FakeClock())
        for _ in range(3):
            with profiler.phase("detect"):
                pass
        stats = profiler.snapshot().get("detect")
        assert stats.calls == 3
        assert stats.total_s == pytest.approx(3.0)

    def test_nesting_records_dotted_paths(self):
        profiler = PhaseProfiler()
        with profiler.phase("stage2"):
            with profiler.phase("read"):
                pass
            with profiler.phase("classify"):
                pass
        paths = [s.path for s in profiler.snapshot()]
        assert paths == ["stage2", "stage2.read", "stage2.classify"]

    def test_parents_precede_children_despite_recording_order(self):
        # A nested span completes (and is recorded) before its parent;
        # the snapshot must still list the parent first.
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            with profiler.phase("b"):
                pass
        assert [s.path for s in profiler.snapshot()] == ["a", "a.b"]

    def test_parent_time_includes_children(self):
        profiler = PhaseProfiler(clock=FakeClock())
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        profile = profiler.snapshot()
        assert profile.get("outer").total_s > profile.get("outer.inner").total_s
        # Only top-level phases contribute to the total.
        assert profile.total_s == profile.get("outer").total_s

    def test_phase_records_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("boom"):
                raise RuntimeError("boom")
        assert profiler.snapshot().get("boom").calls == 1
        # The stack unwound: a new phase is top-level again.
        with profiler.phase("after"):
            pass
        assert profiler.snapshot().get("after") is not None

    def test_empty_name_rejected(self):
        profiler = PhaseProfiler()
        with pytest.raises(ValueError, match="non-empty"):
            with profiler.phase(""):
                pass

    def test_snapshot_is_frozen_and_picklable(self):
        profiler = PhaseProfiler()
        with profiler.phase("x"):
            pass
        profile = profiler.snapshot()
        clone = pickle.loads(pickle.dumps(profile))
        assert [s.path for s in clone] == ["x"]

    def test_top_level_import_is_the_module_class(self):
        assert PhaseProfiler is _ProfilerDirect


class TestPhaseProfile:
    def _profile(self, *rows):
        return PhaseProfile(tuple(PhaseStats(*row) for row in rows))

    def test_bool_and_get(self):
        assert not PhaseProfile()
        profile = self._profile(("a", 1, 0.5))
        assert profile
        assert profile.get("a").total_s == 0.5
        assert profile.get("missing") is None

    def test_merge_sums_by_path_keeping_order(self):
        one = self._profile(("a", 1, 1.0), ("b", 2, 2.0))
        two = self._profile(("b", 1, 0.5), ("c", 1, 3.0))
        merged = PhaseProfile.merge([one, two])
        assert [s.path for s in merged] == ["a", "b", "c"]
        assert merged.get("b") == PhaseStats("b", 3, 2.5)

    def test_merge_empty(self):
        assert not PhaseProfile.merge([])

    def test_to_dict_round_trips_to_json(self):
        import json

        profile = self._profile(("a", 1, 1.0), ("a.b", 2, 0.25))
        data = json.loads(json.dumps(profile.to_dict()))
        assert data["total_s"] == 1.0  # nested rows not double-counted
        assert data["phases"][1] == {"path": "a.b", "calls": 2, "total_s": 0.25}

    def test_from_dict_round_trips_exactly(self):
        profile = self._profile(("a", 1, 1.0), ("a.b", 2, 0.25))
        assert PhaseProfile.from_dict(profile.to_dict()) == profile
        row = PhaseStats("a.b", 2, 0.25)
        assert PhaseStats.from_dict(row.to_dict()) == row

    def test_from_dict_rejects_inconsistent_total(self):
        import pytest

        profile = self._profile(("a", 1, 1.0))
        data = profile.to_dict()
        data["total_s"] = 99.0  # hand-edited payload: derived value lies
        with pytest.raises(ValueError, match="total_s"):
            PhaseProfile.from_dict(data)

    def test_report_contains_every_phase(self):
        profile = self._profile(("stage2", 1, 1.0), ("stage2.classify", 1, 0.9))
        text = profile.report()
        assert "stage2" in text and "classify" in text
        assert "(no phases recorded)" in PhaseProfile().report()


class TestProfiledHelper:
    def test_none_profiler_is_noop(self):
        with profiled(None, "anything"):
            pass  # must not raise and must not require a profiler

    def test_records_on_real_profiler(self):
        profiler = PhaseProfiler()
        with profiled(profiler, "phase"):
            pass
        assert profiler.snapshot().get("phase").calls == 1
