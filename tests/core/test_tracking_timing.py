"""Tests for the video extension (ROI tracking) and the timing model."""

import numpy as np
import pytest

from repro.core import (
    HiRISEConfig,
    HiRISEPipeline,
    ROI,
    ROITracker,
    Track,
    VideoHiRISEPipeline,
)
from repro.sensor import ReadoutTimingModel


class TestTrack:
    def test_anchor_follows_roi(self):
        track = Track(roi=ROI(100, 100, 20, 20), vx=5.0, vy=-3.0, age=1)
        assert (track.anchor_cx, track.anchor_cy) == (110.0, 110.0)
        track.roi = ROI(120, 100, 20, 20)
        track.rebase_anchor()
        assert (track.anchor_cx, track.anchor_cy) == (130.0, 110.0)


class TestROITracker:
    def test_new_detections_create_tracks(self):
        tracker = ROITracker()
        tracker.confirm([ROI(0, 0, 10, 10), ROI(50, 50, 10, 10)])
        assert len(tracker.tracks) == 2
        assert {t.track_id for t in tracker.tracks} == {0, 1}

    def test_matching_updates_velocity(self):
        tracker = ROITracker(velocity_smoothing=0.0)
        tracker.confirm([ROI(100, 100, 20, 20)])
        tracker.confirm([ROI(106, 100, 20, 20)])
        (track,) = tracker.tracks
        assert track.vx == pytest.approx(6.0)
        assert track.vy == pytest.approx(0.0)

    def test_unmatched_tracks_age_out(self):
        tracker = ROITracker(max_age=2)
        tracker.confirm([ROI(0, 0, 10, 10)])
        for _ in range(3):
            tracker.confirm([ROI(500, 500, 10, 10)])
        # Original track should be gone; only the far one remains (it is
        # re-matched every time).
        assert all(t.roi.x == 500 for t in tracker.tracks if t.age == 0)
        assert not any(t.roi.x == 0 for t in tracker.tracks)

    def test_predict_moves_tracks(self):
        tracker = ROITracker(inflate_per_frame=0.0, velocity_smoothing=0.0)
        tracker.confirm([ROI(100, 100, 20, 20)])
        tracker.confirm([ROI(110, 100, 20, 20)])
        (roi,) = tracker.predict()
        assert roi.x == pytest.approx(120, abs=1)

    def test_healthy_thresholds(self):
        tracker = ROITracker(max_age=1)
        assert not tracker.healthy()
        tracker.confirm([ROI(0, 0, 10, 10)])
        assert tracker.healthy()


class TestVideoPipeline:
    @pytest.fixture()
    def moving_clip(self):
        """A bright square marching right across a plain background."""
        frames = []
        for t in range(8):
            img = np.full((96, 128, 3), 0.3)
            x = 10 + 8 * t
            img[30:54, x : x + 24] = 0.95
            frames.append(img)
        return frames

    @pytest.fixture()
    def detector(self):
        from repro.ml import Detection

        def detect(frame):
            mask = frame[:, :, 0] > 0.7
            if not mask.any():
                return []
            ys, xs = np.nonzero(mask)
            return [
                Detection(
                    "blob", 0.9, float(xs.min()), float(ys.min()),
                    float(xs.max() - xs.min() + 1), float(ys.max() - ys.min() + 1),
                )
            ]

        return detect

    def test_keyframe_cadence(self, moving_clip, detector):
        pipeline = HiRISEPipeline(detector=detector, config=HiRISEConfig(pool_k=2))
        video = VideoHiRISEPipeline(pipeline, keyframe_interval=4)
        results = video.run(moving_clip)
        keyframes = [r.frame_index for r in results if r.is_keyframe]
        # Two warm-up keyframes (velocity needs two observations), then
        # one keyframe every 4 frames.
        assert keyframes == [0, 1, 5]

    def test_tracked_frames_cost_less(self, moving_clip, detector):
        pipeline = HiRISEPipeline(detector=detector, config=HiRISEConfig(pool_k=2))
        video = VideoHiRISEPipeline(pipeline, keyframe_interval=4)
        results = video.run(moving_clip)
        key_cost = np.mean([r.energy for r in results if r.is_keyframe])
        tracked_cost = np.mean([r.energy for r in results if not r.is_keyframe])
        assert tracked_cost < key_cost / 2

    def test_tracked_rois_still_cover_object(self, moving_clip, detector):
        pipeline = HiRISEPipeline(detector=detector, config=HiRISEConfig(pool_k=2))
        video = VideoHiRISEPipeline(pipeline, keyframe_interval=4)
        results = video.run(moving_clip)
        for t, result in enumerate(results):
            assert result.outcome.rois, f"no ROI at frame {t}"
            x = 10 + 8 * t
            gt = ROI(x, 30, 24, 24)
            best = max(r.iou(gt) for r in result.outcome.rois)
            assert best > 0.3, f"frame {t}: best IoU {best:.2f}"

    def test_interval_validation(self, detector):
        pipeline = HiRISEPipeline(detector=detector)
        with pytest.raises(ValueError):
            VideoHiRISEPipeline(pipeline, keyframe_interval=0)


class TestReadoutTimingModel:
    def test_full_frame_components(self):
        model = ReadoutTimingModel(
            row_time_s=1e-6, conversions_per_s=1e9, link_bytes_per_s=1e9
        )
        t = model.full_frame_s(100, 50)
        expected = 50 * 1e-6 + 15000 / 1e9 + 15000 / 1e9
        assert t == pytest.approx(expected)

    def test_pooled_faster_than_full(self):
        model = ReadoutTimingModel()
        full = model.full_frame_s(2560, 1920)
        pooled = model.pooled_frame_s(2560, 1920, k=8)
        assert pooled < full / 8

    def test_grayscale_converts_third(self):
        model = ReadoutTimingModel(row_time_s=0.0)
        rgb = model.pooled_frame_s(960, 720, 4, grayscale=False)
        gray = model.pooled_frame_s(960, 720, 4, grayscale=True)
        assert gray == pytest.approx(rgb / 3)

    def test_hirise_frame_beats_baseline(self):
        model = ReadoutTimingModel()
        rois = [(0, 0, 112, 112)] * 16
        speedup = model.speedup_vs_baseline(2560, 1920, 8, rois)
        assert speedup > 4

    def test_roi_latency_grows_with_count(self):
        model = ReadoutTimingModel()
        one = model.roi_readout_s([(0, 0, 50, 50)])
        four = model.roi_readout_s([(0, 0, 50, 50)] * 4)
        assert four > 3 * one

    def test_validation(self):
        model = ReadoutTimingModel()
        with pytest.raises(ValueError):
            model.pooled_frame_s(100, 100, 0)
        with pytest.raises(ValueError):
            model.roi_readout_s([(0, 0, -1, 5)])
