"""Hot-path tests: batched stage-2 classification and pipeline profiling.

The serving contract under test (see ``docs/architecture.md``, "Hot path
& profiling"): bucketing a frame's crops by post-resize shape and running
one forward per bucket changes *execution*, never *results* — in float64
compute mode predictions are bit-identical to the per-crop loop — and
every pipeline phase is observable through an attached profiler.
"""

import numpy as np
import pytest

from repro.core import (
    ConventionalPipeline,
    HiRISEConfig,
    HiRISEPipeline,
    PhaseProfiler,
    ROI,
    classify_crops,
)
from repro.ml import CropClassifier, CropPrediction, tiny_cnn


@pytest.fixture(scope="module")
def classifier() -> CropClassifier:
    return CropClassifier(tiny_cnn(16, 3, seed=5), (16, 16), ("a", "b", "c"))


@pytest.fixture(scope="module")
def crops() -> list:
    rng = np.random.default_rng(8)
    # Duplicate shapes on purpose: they must share one bucket.
    sizes = [(12, 18), (25, 9), (12, 18), (40, 40), (12, 18), (9, 25)]
    return [rng.random((h, w, 3)) for h, w in sizes]


def assert_predictions_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        if isinstance(a, CropPrediction):
            assert a.label == b.label and a.index == b.index
            assert np.array_equal(a.logits, b.logits)
        else:
            assert a == b


class TestClassifyCrops:
    def test_none_classifier_or_no_crops(self, classifier, crops):
        assert classify_crops(None, crops) == []
        assert classify_crops(classifier, []) == []

    def test_plain_callable_keeps_per_crop_loop(self, crops):
        calls = []

        def classify(crop):
            calls.append(crop.shape)
            return float(crop.mean())

        out = classify_crops(classify, crops)
        assert out == [float(c.mean()) for c in crops]
        assert len(calls) == len(crops)

    def test_batched_bit_identical_to_per_crop_loop(self, classifier, crops):
        batched = classify_crops(classifier, crops)
        looped = [classifier(crop) for crop in crops]
        assert_predictions_equal(batched, looped)

    def test_results_keep_crop_order(self, crops):
        class ShapeEcho:
            def classify_batch(self, stack):
                return [tuple(img.shape) for img in stack]

        out = classify_crops(ShapeEcho(), crops)
        assert out == [c.shape for c in crops]

    def test_one_forward_per_shape_bucket(self, crops):
        stacks = []

        class CountingEcho:
            def classify_batch(self, stack):
                stacks.append(stack.shape)
                return [0.0] * len(stack)

        classify_crops(CountingEcho(), crops)
        distinct_shapes = {c.shape for c in crops}
        assert len(stacks) == len(distinct_shapes)
        assert sum(shape[0] for shape in stacks) == len(crops)

    def test_preprocess_merges_buckets(self, classifier, crops):
        # CropClassifier resizes everything to one shape: a single bucket.
        stacks = []
        original = classifier.net.predict_batch

        def spy(stack):
            stacks.append(stack.shape)
            return original(stack)

        classifier.net.predict_batch = spy
        try:
            classify_crops(classifier, crops)
        finally:
            del classifier.net.predict_batch
        assert stacks == [(len(crops), 16, 16, 3)]

    def test_wrong_batch_length_raises(self, crops):
        class Broken:
            def classify_batch(self, stack):
                return [0.0]  # always one prediction

        with pytest.raises(ValueError, match="classify_batch returned"):
            classify_crops(Broken(), [crops[0], crops[0]])


@pytest.fixture(scope="module")
def head_rois(small_scene):
    return [
        ROI(int(b.x), int(b.y), max(int(b.w), 8), max(int(b.h), 8), 0.9, "head")
        for b in small_scene.boxes_for("head")
    ]


class TestPipelineBatchedStage2:
    def test_hirise_predictions_match_per_crop_reference(
        self, small_scene, head_rois, classifier
    ):
        pipeline = HiRISEPipeline(
            classifier=classifier, config=HiRISEConfig(pool_k=4)
        )
        outcome = pipeline.run(small_scene.image, rois=head_rois)
        assert outcome.predictions
        assert_predictions_equal(
            outcome.predictions, [classifier(c) for c in outcome.roi_crops]
        )

    def test_run_stage2_only_predictions_match(self, small_scene, head_rois, classifier):
        pipeline = HiRISEPipeline(
            classifier=classifier, config=HiRISEConfig(pool_k=4)
        )
        outcome = pipeline.run_stage2_only(small_scene.image, head_rois)
        assert outcome.predictions
        assert_predictions_equal(
            outcome.predictions, [classifier(c) for c in outcome.roi_crops]
        )

    def test_conventional_predictions_match(self, small_scene, head_rois, classifier):
        pipeline = ConventionalPipeline(classifier=classifier)
        outcome = pipeline.run(small_scene.image, rois=head_rois)
        assert outcome.predictions
        assert_predictions_equal(
            outcome.predictions, [classifier(c) for c in outcome.roi_crops]
        )

    def test_eq2_memory_accounting_unchanged_by_batching(
        self, small_scene, head_rois, classifier
    ):
        # Eq. 2 keeps per-crop semantics: peak memory is bounded by the
        # largest single crop, not the batched classifier stack.
        config = HiRISEConfig(pool_k=4)
        with_clf = HiRISEPipeline(classifier=classifier, config=config)
        without = HiRISEPipeline(config=config)
        a = with_clf.run(small_scene.image, rois=head_rois)
        b = without.run(small_scene.image, rois=head_rois)
        assert a.peak_image_memory_bytes == b.peak_image_memory_bytes


class TestPipelineProfiling:
    def test_hirise_phase_taxonomy(self, small_scene, head_rois, classifier):
        profiler = PhaseProfiler()
        pipeline = HiRISEPipeline(
            classifier=classifier, config=HiRISEConfig(pool_k=4), profiler=profiler
        )
        pipeline.run(small_scene.image, rois=head_rois)
        profile = profiler.snapshot()
        for path in ("expose", "stage1", "stage1.read", "condition",
                     "stage2", "stage2.read", "stage2.classify"):
            assert profile.get(path) is not None, path
        assert profile.get("stage1.read").calls == 1

    def test_run_stage2_only_skips_stage1_phase(self, small_scene, head_rois):
        profiler = PhaseProfiler()
        pipeline = HiRISEPipeline(
            config=HiRISEConfig(pool_k=4), profiler=profiler
        )
        pipeline.run_stage2_only(small_scene.image, head_rois)
        profile = profiler.snapshot()
        assert profile.get("stage1.read") is None
        assert profile.get("stage2.read") is not None

    def test_conventional_phase_taxonomy(self, small_scene, head_rois, classifier):
        profiler = PhaseProfiler()
        pipeline = ConventionalPipeline(classifier=classifier, profiler=profiler)
        pipeline.run(small_scene.image, rois=head_rois)
        profile = profiler.snapshot()
        for path in ("expose", "stage1.read", "condition",
                     "stage2.read", "stage2.classify"):
            assert profile.get(path) is not None, path

    def test_profiler_accumulates_across_frames(self, small_scene, head_rois):
        profiler = PhaseProfiler()
        pipeline = HiRISEPipeline(
            config=HiRISEConfig(pool_k=4), profiler=profiler
        )
        pipeline.run(small_scene.image, rois=head_rois)
        pipeline.run(small_scene.image, rois=head_rois)
        assert profiler.snapshot().get("stage1.read").calls == 2

    def test_no_profiler_no_phases(self, small_scene, head_rois):
        pipeline = HiRISEPipeline(config=HiRISEConfig(pool_k=4))
        outcome = pipeline.run(small_scene.image, rois=head_rois)
        assert pipeline.profiler is None
        assert outcome.rois
