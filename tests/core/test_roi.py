"""Tests for ROI algebra."""

import pytest

from repro.core import (
    ROI,
    dedup_contained,
    merge_overlapping,
    prepare_rois,
    total_area,
    union_area,
)
from repro.ml import Detection


class TestROIBasics:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            ROI(0, 0, 0, 5)

    def test_area_corners(self):
        roi = ROI(2, 3, 10, 20)
        assert roi.area == 200
        assert roi.x2 == 12
        assert roi.y2 == 23

    def test_from_detection_scales(self):
        det = Detection("head", 0.8, 10.2, 5.5, 3.0, 4.0)
        roi = ROI.from_detection(det, scale=8)
        assert roi.x == 81  # floor(10.2*8)
        assert roi.w >= 24
        assert roi.label == "head"
        assert roi.score == pytest.approx(0.8)


class TestGeometry:
    def test_clip_inside(self):
        assert ROI(5, 5, 10, 10).clip(100, 100) == ROI(5, 5, 10, 10)

    def test_clip_partial(self):
        clipped = ROI(-5, -5, 20, 20).clip(100, 100)
        assert clipped == ROI(0, 0, 15, 15)

    def test_clip_gone(self):
        assert ROI(200, 200, 5, 5).clip(100, 100) is None

    def test_pad(self):
        padded = ROI(10, 10, 10, 10).pad(0.1)
        assert padded == ROI(9, 9, 12, 12)

    def test_pad_validation(self):
        with pytest.raises(ValueError):
            ROI(0, 0, 5, 5).pad(-0.1)

    def test_scaled(self):
        assert ROI(2, 4, 6, 8).scaled(2.0) == ROI(4, 8, 12, 16)

    def test_iou_and_contains(self):
        a, b = ROI(0, 0, 10, 10), ROI(2, 2, 4, 4)
        assert a.contains(b)
        assert not b.contains(a)
        assert a.iou(b) == pytest.approx(16 / 100)

    def test_union_with(self):
        a = ROI(0, 0, 5, 5, score=0.3, label="a")
        b = ROI(3, 3, 5, 5, score=0.9, label="b")
        merged = a.union_with(b)
        assert merged.xywh == (0, 0, 8, 8)
        assert merged.label == "b"  # higher score wins


class TestAreas:
    def test_total_area_double_counts(self):
        rois = [ROI(0, 0, 10, 10), ROI(5, 5, 10, 10)]
        assert total_area(rois) == 200

    def test_union_area_disjoint(self):
        rois = [ROI(0, 0, 10, 10), ROI(20, 20, 5, 5)]
        assert union_area(rois) == 125

    def test_union_area_overlap(self):
        rois = [ROI(0, 0, 10, 10), ROI(5, 0, 10, 10)]
        assert union_area(rois) == 150

    def test_union_area_nested(self):
        rois = [ROI(0, 0, 10, 10), ROI(2, 2, 3, 3)]
        assert union_area(rois) == 100

    def test_union_area_empty(self):
        assert union_area([]) == 0

    def test_union_leq_total(self):
        rois = [ROI(i * 3, i * 2, 8, 8) for i in range(5)]
        assert union_area(rois) <= total_area(rois)


class TestConditioning:
    def test_dedup_contained(self):
        rois = [ROI(0, 0, 20, 20), ROI(5, 5, 3, 3), ROI(50, 50, 4, 4)]
        kept = dedup_contained(rois)
        assert len(kept) == 2

    def test_merge_overlapping(self):
        rois = [ROI(0, 0, 10, 10), ROI(1, 1, 10, 10), ROI(50, 50, 5, 5)]
        merged = merge_overlapping(rois, iou_threshold=0.5)
        assert len(merged) == 2

    def test_merge_validation(self):
        with pytest.raises(ValueError):
            merge_overlapping([], iou_threshold=0.0)

    def test_prepare_full_pipeline(self):
        rois = [
            ROI(-5, -5, 20, 20, score=0.9),
            ROI(0, 0, 3, 3, score=0.8),      # contained in first after clip
            ROI(90, 90, 30, 30, score=0.7),  # clipped at border
            ROI(0, 0, 1, 1, score=0.6),      # too small
            ROI(300, 300, 10, 10, score=0.5),  # gone
        ]
        out = prepare_rois(rois, 100, 100, min_side_px=2)
        assert ROI(0, 0, 15, 15, score=0.9) == out[0]
        assert all(r.x2 <= 100 and r.y2 <= 100 for r in out)
        assert len(out) == 2

    def test_prepare_max_rois_keeps_best(self):
        rois = [ROI(0, 0, 5, 5, score=0.1), ROI(20, 20, 5, 5, score=0.9)]
        out = prepare_rois(rois, 100, 100, max_rois=1)
        assert len(out) == 1
        assert out[0].score == pytest.approx(0.9)

    def test_prepare_merge_option(self):
        rois = [ROI(0, 0, 10, 10, score=0.5), ROI(1, 1, 10, 10, score=0.6)]
        out = prepare_rois(rois, 100, 100, merge_iou=0.5)
        assert len(out) == 1
