"""Temporal ROI reuse: the stage-1 skip must be safe and actually free."""

import numpy as np
import pytest

from repro.core import ROI, HiRISEConfig, HiRISEPipeline
from repro.stream import (
    StreamRunner,
    TemporalROIReuse,
    ground_truth_detector,
    pedestrian_clip,
    rois_stable,
)


class TestRoisStable:
    def test_identical_sets_are_stable(self):
        rois = [ROI(10, 10, 20, 20), ROI(50, 60, 15, 30)]
        assert rois_stable(rois, list(rois), 0.5)

    def test_small_drift_is_stable(self):
        prev = [ROI(10, 10, 20, 20)]
        cur = [ROI(12, 10, 20, 20)]
        assert rois_stable(prev, cur, 0.5)

    def test_large_motion_is_unstable(self):
        assert not rois_stable([ROI(10, 10, 20, 20)], [ROI(60, 10, 20, 20)], 0.5)

    def test_count_change_is_unstable(self):
        prev = [ROI(10, 10, 20, 20)]
        cur = [ROI(10, 10, 20, 20), ROI(100, 100, 20, 20)]
        assert not rois_stable(prev, cur, 0.5)
        assert not rois_stable(cur, prev, 0.5)

    def test_empty_sets_are_unstable(self):
        assert not rois_stable([], [], 0.5)

    def test_one_to_one_matching(self):
        """Two current boxes may not both claim the same previous box."""
        prev = [ROI(10, 10, 20, 20), ROI(200, 200, 20, 20)]
        cur = [ROI(11, 10, 20, 20), ROI(12, 10, 20, 20)]
        assert not rois_stable(prev, cur, 0.3)


class TestTemporalROIReusePolicy:
    def test_warmup_blocks_reuse(self):
        policy = TemporalROIReuse()
        assert policy.propose().reason == "warmup"
        policy.observe([ROI(10, 10, 20, 20)])
        assert policy.propose().reason == "warmup"

    def test_stable_scene_grants_reuse(self):
        policy = TemporalROIReuse()
        policy.observe([ROI(10, 10, 20, 20)])
        policy.observe([ROI(11, 10, 20, 20)])
        decision = policy.propose()
        assert decision.reuse and decision.reason == "stable"
        assert decision.rois

    def test_unstable_scene_blocks_reuse(self):
        policy = TemporalROIReuse()
        policy.observe([ROI(10, 10, 20, 20)])
        policy.observe([ROI(150, 10, 20, 20)])  # teleported
        assert policy.propose().reason == "unstable"

    def test_low_confidence_blocks_reuse(self):
        policy = TemporalROIReuse(min_score=0.5)
        policy.observe([ROI(10, 10, 20, 20, score=0.9)])
        policy.observe([ROI(11, 10, 20, 20, score=0.3)])
        assert not policy.propose().reuse

    def test_max_reuse_forces_revalidation(self):
        policy = TemporalROIReuse(max_reuse=2)
        policy.observe([ROI(10, 10, 20, 20)])
        policy.observe([ROI(10, 10, 20, 20)])
        assert policy.propose().reuse
        assert policy.propose().reuse
        assert policy.propose().reason == "revalidate"

    def test_observation_resets_streak(self):
        policy = TemporalROIReuse(max_reuse=1)
        policy.observe([ROI(10, 10, 20, 20)])
        policy.observe([ROI(10, 10, 20, 20)])
        assert policy.propose().reuse
        assert policy.propose().reason == "revalidate"
        policy.observe([ROI(10, 10, 20, 20)])
        assert policy.propose().reuse

    def test_constant_velocity_estimated_exactly_through_reuse(self):
        """Velocity must be measured from the last *confirmed* anchor over
        the true elapsed frames; measuring from the prediction-advanced box
        (or dividing by predict-count alone) biases the estimate and makes
        reused windows lag or overshoot moving objects."""
        u = 6
        policy = TemporalROIReuse(max_reuse=3)
        x = 100
        policy.observe([ROI(x, 50, 24, 24)])
        x += u
        policy.observe([ROI(x, 50, 24, 24)])
        ious = []
        for _ in range(20):
            decision = policy.propose()
            x += u
            truth = ROI(x, 50, 24, 24)
            if decision.reuse:
                (track,) = policy.tracker.tracks
                assert track.vx == pytest.approx(u)
                ious.append(max(r.iou(truth) for r in decision.rois))
            else:
                policy.observe([truth])
        assert ious and min(ious) > 0.6

    def test_moving_scene_survives_revalidation(self):
        """The stability reference must advance with the tracks, so steady
        motion keeps earning reuse after each revalidating stage-1 run."""
        policy = TemporalROIReuse(max_reuse=2)
        x = 10
        policy.observe([ROI(x, 10, 20, 20)])
        x += 3
        policy.observe([ROI(x, 10, 20, 20)])
        granted = 0
        for _ in range(12):
            decision = policy.propose()
            if decision.reuse:
                granted += 1
                x += 3
            else:
                x += 3
                policy.observe([ROI(x, 10, 20, 20)])
        assert granted >= 6

    def test_vanished_object_does_not_poison_reuse(self):
        """A track whose object disappeared must not contribute readout
        windows, and the next revalidation must still judge the unchanged
        remaining detections stable."""
        policy = TemporalROIReuse(max_reuse=2)
        both = [ROI(10, 10, 20, 20), ROI(100, 100, 20, 20)]
        policy.observe(both)
        policy.observe(both)
        assert policy.propose().reuse  # second object still tracked
        # The second object vanishes; detections settle on one box.
        one = [ROI(10, 10, 20, 20)]
        policy.observe(one)  # unstable transition (2 -> 1), no reuse
        assert not policy.propose().reuse
        policy.observe(one)
        decision = policy.propose()
        assert decision.reuse
        # Only the live object's window is read, even though the dead
        # track may still linger inside the tracker.
        assert len(decision.rois) == 1
        assert decision.rois[0].iou(ROI(10, 10, 20, 20)) > 0.5
        # After the streak, revalidation sees the same single box: stable.
        policy.propose()  # second reuse of the streak
        assert policy.propose().reason == "revalidate"
        policy.observe(one)
        assert policy.propose().reuse

    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalROIReuse(max_reuse=0)
        with pytest.raises(ValueError):
            TemporalROIReuse(warmup=1)


class TestReuseStream:
    @pytest.fixture(scope="class")
    def clip(self):
        return pedestrian_clip(n_frames=14, resolution=(128, 96), seed=2)

    def _run(self, clip, **kwargs):
        detect, on_frame = ground_truth_detector(clip)
        pipeline = HiRISEPipeline(
            detector=detect,
            config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05),
        )
        runner = StreamRunner(pipeline, **kwargs)
        return runner.run(clip.frames, on_frame=on_frame)

    def test_reused_frames_pay_zero_stage1(self, clip):
        outcome = self._run(clip, reuse=TemporalROIReuse(max_reuse=3))
        reused = [f for f in outcome.frames if f.reused_rois]
        assert reused, "no frame was served from reuse"
        for frame in reused:
            assert frame.stage1_bytes == 0
            assert frame.stage1_conversions == 0
            assert not frame.ran_stage1
            assert frame.n_rois > 0

    def test_reuse_cheaper_than_per_frame(self, clip):
        per = self._run(clip)
        reuse = self._run(clip, reuse=TemporalROIReuse(max_reuse=3))
        assert reuse.total_bytes < per.total_bytes
        assert reuse.total_energy_j < per.total_energy_j

    def test_streak_bounded_by_max_reuse(self, clip):
        outcome = self._run(clip, reuse=TemporalROIReuse(max_reuse=2))
        streak = 0
        for frame in outcome.frames:
            if frame.reused_rois:
                streak += 1
                assert streak <= 2
            else:
                streak = 0

    def test_first_frames_always_run_stage1(self, clip):
        outcome = self._run(clip, reuse=TemporalROIReuse())
        assert outcome.frames[0].ran_stage1
        assert outcome.frames[1].ran_stage1

    def test_second_run_starts_fresh(self, clip):
        """run() must reset the reuse policy: tracks from a previous clip
        may never grant reuse on a stream that was never detected."""
        detect, on_frame = ground_truth_detector(clip)
        pipeline = HiRISEPipeline(
            detector=detect,
            config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05),
        )
        runner = StreamRunner(pipeline, reuse=TemporalROIReuse(max_reuse=3))
        runner.run(clip.frames, on_frame=on_frame)
        second = runner.run(clip.frames, on_frame=on_frame)
        assert second.frames[0].ran_stage1
        assert second.frames[0].reason == "warmup"
        assert second.frames[1].ran_stage1

    def test_reused_windows_cover_ground_truth(self, clip):
        outcome = self._run(clip, reuse=TemporalROIReuse(max_reuse=3), keep_outcomes=True)
        for stats, result, gt in zip(
            outcome.frames, outcome.outcomes, clip.ground_truth
        ):
            if not stats.reused_rois:
                continue
            for x, y, w, h in gt:
                box = ROI(int(x), int(y), max(int(w), 1), max(int(h), 1))
                clipped = box.clip(*clip.resolution)
                if clipped is None:
                    continue
                best = max((r.iou(clipped) for r in result.rois), default=0.0)
                assert best > 0.3, f"frame {stats.frame_index}: IoU {best:.2f}"
