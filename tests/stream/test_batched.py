"""Batched sensor readout: bit-identical to the per-frame loop."""

import numpy as np
import pytest

from repro.core import HiRISEConfig, HiRISEPipeline
from repro.sensor import (
    ADCModel,
    AnalogPoolingModel,
    BatchSensorReadout,
    NoiseModel,
    PixelArray,
    SensorReadout,
    block_reduce_mean,
    block_reduce_mean_batch,
)
from repro.stream import StreamRunner, ground_truth_detector, pedestrian_clip


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(5)
    return [rng.random((48, 64, 3)) for _ in range(6)]


class TestBlockReduceBatch:
    def test_matches_per_frame_exactly(self):
        rng = np.random.default_rng(0)
        stack = rng.random((5, 32, 48, 3))
        batched = block_reduce_mean_batch(stack, 4)
        for i in range(5):
            assert np.array_equal(batched[i], block_reduce_mean(stack[i], 4))

    def test_2d_frames(self):
        rng = np.random.default_rng(1)
        stack = rng.random((3, 16, 16))
        batched = block_reduce_mean_batch(stack, 2)
        for i in range(3):
            assert np.array_equal(batched[i], block_reduce_mean(stack[i], 2))

    def test_validates_pool_size(self):
        with pytest.raises(ValueError):
            block_reduce_mean_batch(np.zeros((2, 4, 4, 3)), 0)


class TestExposureBatch:
    def test_noiseless_identical(self, frames):
        batch = PixelArray.from_image_batch(frames)
        for frame, array in zip(frames, batch):
            assert np.array_equal(array.voltages, PixelArray.from_image(frame).voltages)

    def test_noisy_identical(self, frames):
        noise = NoiseModel()  # fixed-pattern maps active
        batch = PixelArray.from_image_batch(frames, noise=noise)
        for frame, array in zip(frames, batch):
            scalar = PixelArray.from_image(frame, noise=noise)
            assert np.array_equal(array.voltages, scalar.voltages)

    def test_uint8_frames(self):
        frames = [np.full((8, 8, 3), 128, dtype=np.uint8)]
        (array,) = PixelArray.from_image_batch(frames)
        assert np.array_equal(
            array.voltages, PixelArray.from_image(frames[0]).voltages
        )

    def test_grayscale_frames_promoted(self):
        (array,) = PixelArray.from_image_batch([np.full((8, 8), 0.5)])
        assert array.voltages.shape == (8, 8, 3)

    def test_mixed_resolutions_rejected(self):
        with pytest.raises(ValueError, match="one resolution"):
            PixelArray.from_image_batch([np.zeros((8, 8, 3)), np.zeros((9, 8, 3))])

    def test_empty_batch(self):
        assert PixelArray.from_image_batch([]) == []

    def test_frames_are_views_of_one_block(self, frames):
        batch = PixelArray.from_image_batch(frames)
        base = batch[0].voltages.base
        assert base is not None
        assert all(a.voltages.base is base for a in batch)


class TestBatchSensorReadout:
    def test_read_compressed_bit_identical(self, frames):
        noise = NoiseModel()
        pooling = AnalogPoolingModel()  # mismatch + compression active
        batch = BatchSensorReadout.from_images(
            frames, adc_bits=8, noise=noise, pooling=pooling
        )
        results = batch.read_compressed(4)
        for i, frame in enumerate(frames):
            array = PixelArray.from_image(frame, noise=noise)
            scalar = SensorReadout(
                array,
                adc=ADCModel(bits=8, v_ref=array.vdd),
                pooling=pooling,
                frame_seed=i,
            ).read_compressed(4)
            assert np.array_equal(results[i].images, scalar.images)
            assert results[i].conversions == scalar.conversions
            assert results[i].data_bytes == scalar.data_bytes
            assert results[i].adc_energy == scalar.adc_energy

    def test_grayscale_bit_identical(self, frames):
        batch = BatchSensorReadout.from_images(frames)
        results = batch.read_compressed(4, grayscale=True)
        for i, frame in enumerate(frames):
            scalar = SensorReadout(
                PixelArray.from_image(frame),
                frame_seed=i,
            ).read_compressed(4, grayscale=True)
            assert np.array_equal(results[i].images, scalar.images)

    def test_follow_on_roi_reads_identical(self, frames):
        """The batch advances each frame's RNG counter like the scalar path,
        so stage-2 reads after a batched stage-1 stay bit-identical too."""
        noise = NoiseModel()
        batch = BatchSensorReadout.from_images(frames, noise=noise)
        batch.read_compressed(4)
        for i, frame in enumerate(frames):
            array = PixelArray.from_image(frame, noise=noise)
            scalar = SensorReadout(array, frame_seed=i)
            scalar.read_compressed(4)
            a = scalar.read_rois([(8, 8, 16, 12)])
            b = batch.readouts[i].read_rois([(8, 8, 16, 12)])
            assert np.array_equal(a.images[0], b.images[0])

    def test_custom_frame_seeds(self, frames):
        batch = BatchSensorReadout.from_images(frames, frame_seeds=[7] * len(frames))
        results = batch.read_compressed(4)
        # Same seed + same-shaped pooled frames draw the same noise stream,
        # but scenes differ, so images differ while seeds agree.
        assert all(r.conversions == results[0].conversions for r in results)
        assert all(ro.frame_seed == 7 for ro in batch.readouts)

    def test_seed_count_mismatch(self, frames):
        with pytest.raises(ValueError, match="frame seeds"):
            BatchSensorReadout.from_images(frames, frame_seeds=[1, 2])

    def test_voltage_stack_copy_free(self, frames):
        batch = BatchSensorReadout.from_images(frames)
        assert batch._stack is not None
        assert all(
            np.shares_memory(batch._stack[i], batch.readouts[i].array.voltages)
            for i in range(len(frames))
        )

    def test_hand_built_instance_falls_back_to_stacking(self, frames):
        readouts = BatchSensorReadout.from_images(frames).readouts
        rebuilt = BatchSensorReadout(readouts=readouts)
        assert rebuilt._stack is None
        results = rebuilt.read_compressed(4)
        expected = BatchSensorReadout.from_images(frames).read_compressed(4)
        for a, b in zip(results, expected):
            assert np.array_equal(a.images, b.images)

    def test_mixed_pooling_models_rejected(self, frames):
        readouts = BatchSensorReadout.from_images(frames).readouts
        readouts[1].pooling = AnalogPoolingModel(seed=1)
        with pytest.raises(ValueError, match="shared pooling"):
            BatchSensorReadout(readouts=readouts).read_compressed(4)

    def test_empty(self):
        assert BatchSensorReadout.from_images([]).read_compressed(2) == []


class TestRunnerBatchParity:
    def test_batched_stream_equals_per_frame(self):
        clip = pedestrian_clip(n_frames=9, resolution=(128, 96), seed=2)

        def build():
            detect, on_frame = ground_truth_detector(clip)
            pipeline = HiRISEPipeline(
                detector=detect,
                config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05),
            )
            return pipeline, on_frame

        pipeline, on_frame = build()
        per = StreamRunner(pipeline, keep_outcomes=True).run(
            clip.frames, on_frame=on_frame
        )
        pipeline, on_frame = build()
        bat = StreamRunner(pipeline, batch_size=4, keep_outcomes=True).run(
            clip.frames, on_frame=on_frame
        )

        assert bat.total_bytes == per.total_bytes
        assert bat.total_conversions == per.total_conversions
        for a, b in zip(per.outcomes, bat.outcomes):
            assert np.array_equal(a.stage1_image, b.stage1_image)
            assert [r.xywh for r in a.rois] == [r.xywh for r in b.rois]
            for ca, cb in zip(a.roi_crops, b.roi_crops):
                assert np.array_equal(ca, cb)
