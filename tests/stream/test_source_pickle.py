"""Tests for clip picklability: the process executor's transport contract."""

import pickle

import numpy as np
import pytest

from repro.stream import pedestrian_clip
from repro.stream.source import SyntheticClip, drone_traffic_clip


class TestSyntheticClipPickle:
    @pytest.mark.parametrize("make", [pedestrian_clip, drone_traffic_clip])
    def test_round_trip_bit_identical(self, make):
        clip = make(n_frames=3, resolution=(64, 48), seed=4)
        copy = pickle.loads(pickle.dumps(clip))
        assert len(copy) == len(clip)
        assert copy.resolution == clip.resolution
        assert copy.ground_truth == clip.ground_truth
        for a, b in zip(clip.frames, copy.frames):
            assert np.array_equal(a, b)
            assert a.dtype == b.dtype
            assert a.shape == b.shape

    def test_uniform_clip_pickles_as_one_block(self):
        clip = pedestrian_clip(n_frames=4, resolution=(64, 48), seed=4)
        state = clip.__getstate__()
        assert "frame_stack" in state
        assert state["frame_stack"].shape == (4, 48, 64, 3)
        # one contiguous buffer, not N separately-pickled arrays
        payload = pickle.dumps(clip)
        assert len(payload) < clip.nbytes + 4096

    def test_ragged_clip_still_pickles(self):
        clip = SyntheticClip(
            frames=[np.zeros((4, 4, 3)), np.zeros((2, 2, 3))],
            ground_truth=[[], []],
            resolution=(4, 4),
        )
        copy = pickle.loads(pickle.dumps(clip))
        assert [f.shape for f in copy.frames] == [(4, 4, 3), (2, 2, 3)]

    def test_empty_clip_pickles(self):
        clip = SyntheticClip(frames=[], ground_truth=[], resolution=(8, 8))
        copy = pickle.loads(pickle.dumps(clip))
        assert copy.frames == []
        assert copy.resolution == (8, 8)

    def test_nbytes_counts_frame_buffers(self):
        clip = pedestrian_clip(n_frames=2, resolution=(64, 48), seed=4)
        assert clip.nbytes == 2 * 48 * 64 * 3 * 8  # float64 RGB
