"""Tests for clip picklability: the process executor's transport contract."""

import pickle

import numpy as np
import pytest

from repro.stream import pedestrian_clip
from repro.stream.source import SyntheticClip, drone_traffic_clip


class TestSyntheticClipPickle:
    @pytest.mark.parametrize("make", [pedestrian_clip, drone_traffic_clip])
    def test_round_trip_bit_identical(self, make):
        clip = make(n_frames=3, resolution=(64, 48), seed=4)
        copy = pickle.loads(pickle.dumps(clip))
        assert len(copy) == len(clip)
        assert copy.resolution == clip.resolution
        assert copy.ground_truth == clip.ground_truth
        for a, b in zip(clip.frames, copy.frames):
            assert np.array_equal(a, b)
            assert a.dtype == b.dtype
            assert a.shape == b.shape

    def test_uniform_clip_pickles_as_one_block(self):
        clip = pedestrian_clip(n_frames=4, resolution=(64, 48), seed=4)
        state = clip.__getstate__()
        assert "frame_stack" in state
        assert state["frame_stack"].shape == (4, 48, 64, 3)
        # one contiguous buffer, not N separately-pickled arrays
        payload = pickle.dumps(clip)
        assert len(payload) < clip.nbytes + 4096

    def test_getstate_ragged_falls_back_to_frame_list(self):
        clip = SyntheticClip(
            frames=[np.zeros((4, 4, 3)), np.zeros((2, 2, 3))],
            ground_truth=[[], []],
            resolution=(4, 4),
        )
        state = clip.__getstate__()
        assert "frame_stack" not in state
        assert [f.shape for f in state["frames"]] == [(4, 4, 3), (2, 2, 3)]

    def test_getstate_mixed_dtype_falls_back_to_frame_list(self):
        # Same shape, different dtype: np.stack would silently upcast, so
        # the one-block fast path must refuse.
        clip = SyntheticClip(
            frames=[
                np.zeros((4, 4, 3), dtype=np.float64),
                np.zeros((4, 4, 3), dtype=np.float32),
            ],
            ground_truth=[[], []],
            resolution=(4, 4),
        )
        state = clip.__getstate__()
        assert "frame_stack" not in state
        copy = pickle.loads(pickle.dumps(clip))
        assert [f.dtype for f in copy.frames] == [np.float64, np.float32]

    def test_getstate_empty_falls_back_to_frame_list(self):
        clip = SyntheticClip(frames=[], ground_truth=[], resolution=(8, 8))
        state = clip.__getstate__()
        assert "frame_stack" not in state
        assert state["frames"] == []

    def test_ragged_clip_still_pickles(self):
        clip = SyntheticClip(
            frames=[np.zeros((4, 4, 3)), np.zeros((2, 2, 3))],
            ground_truth=[[], []],
            resolution=(4, 4),
        )
        copy = pickle.loads(pickle.dumps(clip))
        assert [f.shape for f in copy.frames] == [(4, 4, 3), (2, 2, 3)]

    def test_empty_clip_pickles(self):
        clip = SyntheticClip(frames=[], ground_truth=[], resolution=(8, 8))
        copy = pickle.loads(pickle.dumps(clip))
        assert copy.frames == []
        assert copy.resolution == (8, 8)

    def test_nbytes_counts_frame_buffers(self):
        clip = pedestrian_clip(n_frames=2, resolution=(64, 48), seed=4)
        assert clip.nbytes == 2 * 48 * 64 * 3 * 8  # float64 RGB

    def test_nbytes_ragged_layout(self):
        clip = SyntheticClip(
            frames=[np.zeros((4, 4, 3)), np.zeros((2, 2, 3))],
            ground_truth=[[], []],
            resolution=(4, 4),
        )
        assert clip.nbytes == (4 * 4 * 3 + 2 * 2 * 3) * 8
        empty = SyntheticClip(frames=[], ground_truth=[], resolution=(8, 8))
        assert empty.nbytes == 0

    def test_nbytes_stack_view_layout(self):
        # Restored frames are views into one (N, H, W, C) block; nbytes
        # must count the same bytes as the list-of-arrays layout.
        clip = pedestrian_clip(n_frames=2, resolution=(64, 48), seed=4)
        copy = pickle.loads(pickle.dumps(clip))
        assert copy.frames[0].base is not None  # stack views, not copies
        assert copy.nbytes == clip.nbytes
