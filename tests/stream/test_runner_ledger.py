"""Stream runner modes, sources, and the cumulative ledger."""

import numpy as np
import pytest

from repro.core import (
    ConventionalPipeline,
    HiRISEConfig,
    HiRISEPipeline,
    ROI,
)
from repro.stream import (
    FrameStats,
    StreamOutcome,
    StreamRunner,
    TemporalROIReuse,
    drone_traffic_clip,
    ground_truth_detector,
    pedestrian_clip,
)


@pytest.fixture(scope="module")
def clip():
    return pedestrian_clip(n_frames=6, resolution=(128, 96), seed=3)


def hirise_runner(clip, **kwargs):
    detect, on_frame = ground_truth_detector(clip)
    pipeline = HiRISEPipeline(
        detector=detect,
        config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05),
    )
    return StreamRunner(pipeline, **kwargs), on_frame


class TestSources:
    def test_pedestrian_clip_shapes(self, clip):
        assert len(clip) == 6
        assert clip.frames[0].shape == (96, 128, 3)
        assert len(clip.ground_truth) == 6
        assert all(clip.ground_truth[0])
        assert float(clip.frames[0].min()) >= 0.0
        assert float(clip.frames[0].max()) <= 1.0

    def test_clip_is_deterministic(self):
        a = pedestrian_clip(n_frames=3, resolution=(64, 48), seed=9)
        b = pedestrian_clip(n_frames=3, resolution=(64, 48), seed=9)
        assert np.array_equal(a.frames[2], b.frames[2])
        assert a.ground_truth == b.ground_truth

    def test_actors_move(self, clip):
        first = np.asarray(clip.ground_truth[0])
        last = np.asarray(clip.ground_truth[-1])
        assert np.abs(first[:, 0] - last[:, 0]).max() > 2

    def test_drone_clip(self):
        clip = drone_traffic_clip(n_frames=4, resolution=(128, 96), n_vehicles=3)
        assert len(clip) == 4
        assert len(clip.ground_truth[0]) == 3

    def test_ground_truth_detector_scales_to_pooled(self, clip):
        detect, on_frame = ground_truth_detector(clip)
        on_frame(0)
        pooled = np.zeros((24, 32, 3))  # k = 4
        dets = detect(pooled)
        x, y, w, h = clip.ground_truth[0][0]
        assert dets[0].x == pytest.approx(x / 4)
        assert dets[0].w == pytest.approx(w / 4)


class TestRunnerModes:
    def test_per_frame_matches_manual_loop(self, clip):
        runner, on_frame = hirise_runner(clip, keep_outcomes=True)
        stream = runner.run(clip.frames, on_frame=on_frame)

        detect, on_frame = ground_truth_detector(clip)
        pipeline = HiRISEPipeline(
            detector=detect,
            config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05),
        )
        for idx, frame in enumerate(clip.frames):
            on_frame(idx)
            manual = pipeline.run(frame, frame_seed=idx)
            assert manual.ledger.breakdown() == stream.outcomes[idx].ledger.breakdown()
            assert np.array_equal(manual.stage1_image, stream.outcomes[idx].stage1_image)

    def test_conventional_mode(self, clip):
        detect, on_frame = ground_truth_detector(clip)
        runner = StreamRunner(ConventionalPipeline(detector=detect))
        stream = runner.run(clip.frames, on_frame=on_frame)
        assert stream.system == "conventional"
        assert stream.n_frames == len(clip)
        # No pooled conversion exists in this mode; the full frames still
        # ride the stage-1 S->P flow in the ledger.
        assert stream.stage1_frames == 0
        w, h = clip.resolution
        assert stream.stage1_bytes == w * h * 3 * len(clip)

    def test_custom_frame_seeds(self, clip):
        runner, on_frame = hirise_runner(clip)
        stream = runner.run(clip.frames, frame_seeds=[11] * len(clip), on_frame=on_frame)
        assert stream.n_frames == len(clip)
        with pytest.raises(ValueError, match="frame seeds"):
            runner.run(clip.frames, frame_seeds=[1, 2])

    def test_generator_input(self, clip):
        runner, on_frame = hirise_runner(clip)
        stream = runner.run((f for f in clip.frames), on_frame=on_frame)
        assert stream.n_frames == len(clip)

    def test_generator_with_explicit_seeds_stays_lazy(self, clip):
        """Explicit seeds must not materialize the clip (streaming contract)."""
        runner, on_frame = hirise_runner(clip)
        stream = runner.run(
            (f for f in clip.frames),
            frame_seeds=(i + 100 for i in range(len(clip))),
            on_frame=on_frame,
        )
        assert stream.n_frames == len(clip)
        with pytest.raises(ValueError, match="frame seeds"):
            runner.run((f for f in clip.frames), frame_seeds=iter([1, 2]))

    def test_frame_source_errors_surface_unmasked(self, clip):
        """A ValueError raised *inside* the frame iterable must not be
        rewritten as a seed-count mismatch."""
        runner, on_frame = hirise_runner(clip)

        def broken_frames():
            yield clip.frames[0]
            raise ValueError("frame decode failed")

        with pytest.raises(ValueError, match="frame decode failed"):
            runner.run(
                broken_frames(),
                frame_seeds=iter(range(len(clip))),
                on_frame=on_frame,
            )

    def test_outcomes_dropped_by_default(self, clip):
        runner, on_frame = hirise_runner(clip)
        stream = runner.run(clip.frames, on_frame=on_frame)
        assert stream.outcomes == []
        assert stream.n_frames == len(clip)

    def test_validation(self, clip):
        pipeline = HiRISEPipeline()
        with pytest.raises(ValueError):
            StreamRunner(pipeline, batch_size=0)
        with pytest.raises(ValueError, match="frame-by-frame"):
            StreamRunner(pipeline, reuse=TemporalROIReuse(), batch_size=2)
        with pytest.raises(ValueError, match="conventional"):
            StreamRunner(ConventionalPipeline(), reuse=TemporalROIReuse())
        with pytest.raises(ValueError, match="conventional"):
            StreamRunner(ConventionalPipeline(), batch_size=2)

    def test_window_validation(self):
        pipeline = HiRISEPipeline()
        # Per the spec convention, the error names the offending field.
        with pytest.raises(ValueError, match=r"window: must be >= 1, got 0"):
            StreamRunner(pipeline, window=0)
        with pytest.raises(ValueError, match=r"window: must be >= 1, got -3"):
            StreamRunner(pipeline, window=-3)
        with pytest.raises(ValueError, match="legacy"):
            StreamRunner(pipeline, window=2, batch_size=2)
        with pytest.raises(ValueError, match="conventional"):
            StreamRunner(ConventionalPipeline(), window=2)
        # window composes with reuse (unlike the legacy batch_size knob).
        runner = StreamRunner(pipeline, reuse=TemporalROIReuse(), window=4)
        assert runner.effective_window == 4

    def test_seed_mismatch_error_names_the_stream(self, clip):
        runner, _ = hirise_runner(clip, label="pedestrian/none")
        with pytest.raises(
            ValueError, match=r"stream 'pedestrian/none': 2 frame seeds for 6"
        ):
            runner.run(clip.frames, frame_seeds=[1, 2])
        with pytest.raises(
            ValueError, match=r"stream 'pedestrian/none': frame seeds and"
        ):
            runner.run((f for f in clip.frames), frame_seeds=iter([1, 2]))
        # Unnamed runners keep the bare message (no dangling quote noise).
        unnamed, _ = hirise_runner(clip)
        with pytest.raises(ValueError, match=r"^2 frame seeds for 6 frames$"):
            unnamed.run(clip.frames, frame_seeds=[1, 2])


class TestStreamOutcomeAggregation:
    def _stats(self, i, **kwargs):
        defaults = dict(
            frame_index=i,
            ran_stage1=True,
            reused_rois=False,
            reason="",
            n_rois=2,
            stage1_bytes=100,
            roi_feedback_bytes=16,
            stage2_bytes=300,
            stage1_conversions=100,
            stage2_conversions=300,
            energy_j=1e-6,
            peak_image_memory_bytes=400,
        )
        defaults.update(kwargs)
        return FrameStats(**defaults)

    def test_totals_are_sums_of_frames(self):
        outcome = StreamOutcome(system="hirise")
        outcome.append(self._stats(0))
        outcome.append(self._stats(1, stage1_bytes=0, stage1_conversions=0,
                                   reused_rois=True, ran_stage1=False,
                                   peak_image_memory_bytes=900))
        outcome.append(self._stats(2, stage2_bytes=50, stage2_conversions=50))

        assert outcome.n_frames == 3
        assert outcome.stage1_frames == 2
        assert outcome.reused_frames == 1
        assert outcome.stage1_bytes == 200
        assert outcome.roi_feedback_bytes == 48
        assert outcome.stage2_bytes == 650
        assert outcome.total_bytes == 200 + 48 + 650
        assert outcome.total_bytes == sum(f.total_bytes for f in outcome.frames)
        assert outcome.total_conversions == 200 + 650
        assert outcome.total_energy_j == pytest.approx(3e-6)
        assert outcome.peak_image_memory_bytes == 900
        assert outcome.breakdown()["total"] == outcome.total_bytes

    def test_rates(self):
        outcome = StreamOutcome(system="hirise")
        assert outcome.frames_per_second == 0.0
        assert outcome.mean_bytes_per_frame == 0.0
        outcome.append(self._stats(0))
        outcome.append(self._stats(1))
        outcome.wall_time_s = 0.5
        assert outcome.frames_per_second == pytest.approx(4.0)
        assert outcome.mean_bytes_per_frame == pytest.approx(416.0)
        assert outcome.mean_energy_per_frame_j == pytest.approx(1e-6)

    def test_report_mentions_key_quantities(self):
        outcome = StreamOutcome(system="hirise")
        outcome.append(self._stats(0))
        outcome.wall_time_s = 0.25
        text = outcome.report()
        assert "1 frames" in text
        assert "transfer" in text
        assert "frames/s" in text

    def test_stream_totals_match_outcome_ledgers(self, clip):
        runner, on_frame = hirise_runner(clip, keep_outcomes=True)
        stream = runner.run(clip.frames, on_frame=on_frame)
        assert stream.total_bytes == sum(
            o.ledger.total_bytes for o in stream.outcomes
        )
        assert stream.total_energy_j == pytest.approx(
            sum(o.energy.total for o in stream.outcomes)
        )
        assert stream.peak_image_memory_bytes == max(
            o.peak_image_memory_bytes for o in stream.outcomes
        )


class TestFrameStats:
    def test_from_outcome(self, clip):
        detect, on_frame = ground_truth_detector(clip)
        pipeline = HiRISEPipeline(
            detector=detect, config=HiRISEConfig(pool_k=4)
        )
        on_frame(0)
        outcome = pipeline.run(clip.frames[0], frame_seed=0)
        stats = FrameStats.from_outcome(3, outcome, ran_stage1=True)
        assert stats.frame_index == 3
        assert stats.stage1_bytes == outcome.ledger.stage1_s2p
        assert stats.stage2_bytes == outcome.ledger.stage2_s2p
        assert stats.roi_feedback_bytes == outcome.ledger.stage1_p2s
        assert stats.total_bytes == outcome.ledger.total_bytes
        assert stats.n_rois == len(outcome.rois)
        assert stats.energy_j == outcome.energy.total


class TestLedgerSerialization:
    """Exact to_dict/from_dict/JSON round-trips (the serving payloads)."""

    def run_stream(self, clip, **kwargs):
        runner, on_frame = hirise_runner(clip, **kwargs)
        return runner.run(clip.frames, on_frame=on_frame)

    def test_frame_stats_round_trip_is_exact(self, clip):
        stream = self.run_stream(clip)
        for stats in stream.frames:
            data = stats.to_dict()
            assert FrameStats.from_dict(data) == stats
            assert FrameStats.from_dict(data).to_dict() == data

    def test_frame_stats_json_round_trip_is_exact(self, clip):
        import json

        stream = self.run_stream(clip)
        for stats in stream.frames:
            wire = json.dumps(stats.to_dict())
            assert FrameStats.from_dict(json.loads(wire)) == stats

    def test_outcome_round_trip_is_exact(self, clip):
        import json

        stream = self.run_stream(clip)
        data = stream.to_dict()
        rebuilt = StreamOutcome.from_dict(json.loads(json.dumps(data)))
        assert rebuilt == stream
        assert rebuilt.to_dict() == data

    def test_validation_errors_name_the_field(self, clip):
        stream = self.run_stream(clip)
        data = stream.frames[0].to_dict()
        bad = dict(data, energy_j="warm")
        with pytest.raises(ValueError, match="frame_stats.energy_j"):
            FrameStats.from_dict(bad)
        with pytest.raises(ValueError, match=r"unknown field\(s\) \['surprise'\]"):
            FrameStats.from_dict(dict(data, surprise=1))
        missing = dict(data)
        del missing["n_rois"]
        with pytest.raises(ValueError, match=r"missing field\(s\) \['n_rois'\]"):
            FrameStats.from_dict(missing)

    def test_exact_types_reject_bool_int_impostors(self, clip):
        data = self.run_stream(clip).frames[0].to_dict()
        with pytest.raises(ValueError, match="frame_stats.ran_stage1"):
            FrameStats.from_dict(dict(data, ran_stage1=1))
        with pytest.raises(ValueError, match="frame_stats.n_rois"):
            FrameStats.from_dict(dict(data, n_rois=True))
        # ints are acceptable floats (JSON can render 1.0 as 1)...
        assert FrameStats.from_dict(dict(data, energy_j=1)).energy_j == 1.0
        # ...but bools are not.
        with pytest.raises(ValueError, match="frame_stats.energy_j"):
            FrameStats.from_dict(dict(data, energy_j=True))

    def test_outcome_with_kept_outcomes_refuses_to_serialize(self, clip):
        stream = self.run_stream(clip, keep_outcomes=True)
        with pytest.raises(ValueError, match="keep_outcomes"):
            stream.to_dict()


class TestOnStatsHook:
    def test_callback_fires_per_frame_in_stream_order(self, clip):
        runner, on_frame = hirise_runner(clip)
        seen = []
        runner.on_stats = seen.append
        stream = runner.run(clip.frames, on_frame=on_frame)
        assert seen == stream.frames
        assert [s.frame_index for s in seen] == list(range(len(clip)))

    def test_callback_sees_rows_live(self, clip):
        # Frame events interleave: stats(i) arrives before frame i+1 even
        # starts — the hook streams mid-run, it does not replay at the end.
        runner, on_frame = hirise_runner(clip)
        events = []

        def track_frame(idx):
            events.append(("start", idx))
            on_frame(idx)

        runner.on_stats = lambda stats: events.append(("stats", stats.frame_index))
        runner.run(clip.frames, on_frame=track_frame)
        expected = [
            e for i in range(len(clip)) for e in (("start", i), ("stats", i))
        ]
        assert events == expected

    def test_no_callback_by_default(self, clip):
        runner, _ = hirise_runner(clip)
        assert runner.on_stats is None


class TestStage2OnlyPath:
    def test_zero_stage1_accounting(self, clip):
        pipeline = HiRISEPipeline(config=HiRISEConfig(pool_k=4))
        outcome = pipeline.run_stage2_only(
            clip.frames[0], [ROI(10, 10, 30, 40)], frame_seed=0
        )
        assert outcome.stage1_conversions == 0
        assert outcome.ledger.stage1_s2p == 0
        assert outcome.ledger.stage1_p2s > 0
        assert outcome.ledger.stage2_s2p == 30 * 40 * 3
        assert outcome.stage1_image.size == 0
        assert len(outcome.roi_crops) == 1

    def test_windows_clipped_and_filtered(self, clip):
        pipeline = HiRISEPipeline(config=HiRISEConfig(pool_k=4, min_roi_px=4))
        outcome = pipeline.run_stage2_only(
            clip.frames[0],
            [ROI(-10, -10, 20, 20), ROI(0, 0, 2, 2), ROI(1000, 1000, 5, 5)],
            frame_seed=0,
        )
        # Off-array window clipped to 10x10; tiny and out-of-bounds dropped.
        assert [r.xywh for r in outcome.rois] == [(0, 0, 10, 10)]
