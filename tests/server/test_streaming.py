"""Streaming mode: per-frame ledgers over the socket reassemble exactly."""

import threading

import pytest

from repro.server import ReproServer, RequestTimeoutError, ServerClient
from repro.service import Engine, ScenarioSpec, SOURCES
from repro.stream import FrameStats, StreamOutcome, pedestrian_clip

SYSTEM = {"system": {"system": "hirise"}}


def scenario(seed=0, n_frames=5, source="pedestrian"):
    return ScenarioSpec.from_dict(
        {
            "source": {"name": source, "params": {"resolution": [48, 36]}},
            "n_frames": n_frames,
            "seed": seed,
            "policy": {"name": "temporal-reuse", "params": {"max_reuse": 2}},
            "name": f"stream-{seed}",
        }
    )


@pytest.fixture(scope="module")
def server():
    with ReproServer(SYSTEM, workers=2, executor="thread") as srv:
        yield srv


class TestStreamingReassembly:
    def test_stream_reassembles_equal_to_whole_result(self, server):
        spec = scenario(seed=1)
        with ServerClient(*server.address) as client:
            streamed = client.run_streaming(spec)
            whole = client.run(spec)
        # The non-streaming reply serves the memoized result of the
        # streamed run, so the reassembled StreamOutcome must equal it
        # FULLY — frames, system, and even the recorded wall time.
        assert streamed.outcome == whole.outcome
        assert streamed.scenario == whole.scenario == spec

    def test_streamed_rows_bit_identical_to_fresh_serial_engine(self, server):
        spec = scenario(seed=2)
        rows = []
        with ServerClient(*server.address) as client:
            result = client.run_streaming(spec, on_stats=rows.append)
        fresh = Engine.from_spec(SYSTEM).run(spec)
        assert rows == fresh.outcome.frames
        assert result.outcome.frames == fresh.outcome.frames
        assert result.outcome.system == fresh.outcome.system

    def test_callback_sees_rows_live_and_in_order(self, server):
        spec = scenario(seed=3, n_frames=6)
        seen = []
        with ServerClient(*server.address) as client:
            result = client.run_streaming(spec, on_stats=seen.append)
        assert [s.frame_index for s in seen] == list(range(6))
        assert all(isinstance(s, FrameStats) for s in seen)
        assert seen == result.outcome.frames

    def test_cache_hit_replays_the_memoized_ledger(self, server):
        spec = scenario(seed=4)
        with ServerClient(*server.address) as client:
            first = client.run_streaming(spec)
            before = client.stats().cache["results"]
            replay = client.run_streaming(spec)
            after = client.stats().cache["results"]
        assert replay.outcome == first.outcome
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_streaming_and_whole_modes_share_one_cache(self, server):
        spec = scenario(seed=5)
        with ServerClient(*server.address) as client:
            whole = client.run(spec)  # miss: computes and memoizes
            before = client.stats().cache["results"]
            streamed = client.run_streaming(spec)  # hit: replays
            after = client.stats().cache["results"]
        assert streamed.outcome == whole.outcome
        assert after["hits"] == before["hits"] + 1

    def test_outcome_aggregates_survive_reassembly(self, server):
        spec = scenario(seed=6)
        with ServerClient(*server.address) as client:
            streamed = client.run_streaming(spec)
        fresh = Engine.from_spec(SYSTEM).run(spec)
        got, want = streamed.outcome, fresh.outcome
        assert isinstance(got, StreamOutcome)
        assert got.total_bytes == want.total_bytes
        assert got.total_energy_j == want.total_energy_j
        assert got.stage1_frames == want.stage1_frames
        assert got.reused_frames == want.reused_frames
        assert got.peak_image_memory_bytes == want.peak_image_memory_bytes


class TestStreamingFailureModes:
    def test_timeout_mid_stream_leaves_connection_usable(self):
        gate_release = threading.Event()
        gate_started = threading.Event()

        @SOURCES.register("stream-gated")
        def build(n_frames, seed, **params):
            gate_started.set()
            assert gate_release.wait(timeout=30)
            return pedestrian_clip(
                n_frames=n_frames, resolution=(48, 36), seed=seed
            )

        try:
            with ReproServer(SYSTEM, workers=1, executor="serial") as server:
                with ServerClient(*server.address) as client:
                    with pytest.raises(RequestTimeoutError):
                        client.run_streaming(
                            scenario(seed=7, source="stream-gated"),
                            timeout_s=0.2,
                        )
                    assert gate_started.is_set()
                    gate_release.set()
                    # The daemon abandoned the stream: no stray FrameChunk
                    # corrupts the next exchange on this connection.
                    assert client.ping()
                    fast = client.run_streaming(scenario(seed=8))
                    assert fast.outcome.n_frames == 5
        finally:
            gate_release.set()
            del SOURCES["stream-gated"]
