"""Windowed scenarios through the live daemon: stream order + bit-identity.

The windowed runner computes stage-1 for a whole flush before any frame's
stats are recorded, so this suite pins down the serving-layer contract
that windowing must not disturb: streamed :class:`FrameStats` rows still
arrive one per frame, in frame order, and the reassembled result equals
both the daemon's own non-streaming reply and a fresh serial engine —
exactly.
"""

import pytest

from repro.server import ReproServer, ServerClient
from repro.service import Engine, ScenarioSpec
from repro.stream import FrameStats

SYSTEM = {"system": {"system": "hirise"}}
N_FRAMES = 6


def scenario(seed=0, window=4, policy="none"):
    return ScenarioSpec.from_dict(
        {
            "source": {"name": "pedestrian", "params": {"resolution": [48, 36]}},
            "n_frames": N_FRAMES,
            "seed": seed,
            "policy": {"name": policy},
            "window": window,
            "name": f"windowed-{policy}-{window}-{seed}",
        }
    )


@pytest.fixture(scope="module")
def server():
    with ReproServer(SYSTEM, workers=2, executor="thread") as srv:
        yield srv


class TestWindowedStreaming:
    @pytest.mark.parametrize("policy", ["none", "temporal-reuse"])
    def test_rows_arrive_per_frame_and_in_order(self, server, policy):
        """A window flush must not batch, drop, or reorder streamed rows."""
        spec = scenario(seed=1, window=4, policy=policy)
        rows = []
        with ServerClient(*server.address) as client:
            result = client.run_streaming(spec, on_stats=rows.append)
        assert [r.frame_index for r in rows] == list(range(N_FRAMES))
        assert all(isinstance(r, FrameStats) for r in rows)
        assert rows == result.outcome.frames

    def test_stream_reassembles_equal_to_whole_result(self, server):
        spec = scenario(seed=2, window=3)
        with ServerClient(*server.address) as client:
            streamed = client.run_streaming(spec)
            whole = client.run(spec)
        assert streamed.outcome == whole.outcome
        assert streamed.scenario == whole.scenario == spec

    @pytest.mark.parametrize("window", [2, 4, N_FRAMES])
    def test_windowed_stream_bit_identical_to_per_frame_serial(
        self, server, window
    ):
        """The served windowed stream equals the window=1 reference engine
        — the bit-identity contract, across the wire."""
        rows = []
        with ServerClient(*server.address) as client:
            result = client.run_streaming(
                scenario(seed=3, window=window), on_stats=rows.append
            )
        oracle = Engine.from_spec(SYSTEM).run(scenario(seed=3, window=1))
        assert rows == oracle.outcome.frames
        assert result.outcome.frames == oracle.outcome.frames
        assert result.outcome.total_bytes == oracle.outcome.total_bytes
        assert result.outcome.stage1_frames == oracle.outcome.stage1_frames

    def test_windowed_reuse_stream_matches_serial_oracle(self, server):
        """window x reuse composed, across the wire."""
        spec = scenario(seed=4, window=4, policy="temporal-reuse")
        with ServerClient(*server.address) as client:
            streamed = client.run_streaming(spec)
        oracle = Engine.from_spec(SYSTEM).run(
            scenario(seed=4, window=1, policy="temporal-reuse")
        )
        assert streamed.outcome.frames == oracle.outcome.frames
        assert streamed.outcome.reused_frames == oracle.outcome.reused_frames
