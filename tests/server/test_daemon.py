"""Daemon lifecycle: start/stop, admission control, timeouts, drain.

The deterministic tests gate a runtime-registered source on
``threading.Event``s, so "a request is in flight" / "the queue is full"
are *states the test establishes*, never sleeps racing the scheduler.
Runtime registrations don't survive process spawn, so every daemon here
uses in-process executors (serial/thread).
"""

import socket
import threading
from types import SimpleNamespace

import pytest

from repro.server import (
    BackpressureError,
    BadRequestError,
    ReproServer,
    RequestTimeoutError,
    ServerClient,
    ServerError,
    ServerShuttingDownError,
    wait_for_server,
)
from repro.server.protocol import encode_frame, parse_frame, read_frame
from repro.service import Engine, ScenarioSpec, SOURCES
from repro.stream import pedestrian_clip

SYSTEM = {"system": {"system": "hirise"}}


def tiny_scenario(seed=0, n_frames=3, source="pedestrian", name=""):
    return ScenarioSpec.from_dict(
        {
            "source": {"name": source, "params": {"resolution": [48, 36]}},
            "n_frames": n_frames,
            "seed": seed,
            "name": name or f"tiny-{seed}",
        }
    )


@pytest.fixture
def gated_source():
    """A source whose build blocks until the test releases it.

    ``started`` is set the moment a worker enters the build, so tests can
    deterministically establish "a request is computing right now".
    """
    gate = SimpleNamespace(
        name="gated-pedestrian",
        started=threading.Event(),
        release=threading.Event(),
    )

    @SOURCES.register(gate.name)
    def build(n_frames, seed, **params):
        gate.started.set()
        assert gate.release.wait(timeout=30), "gated source never released"
        return pedestrian_clip(n_frames=n_frames, resolution=(48, 36), seed=seed)

    yield gate
    gate.release.set()
    del SOURCES[gate.name]  # bumps the registry epoch: cold-starts caches


def raw_socket(server):
    sock = socket.create_connection(server.address, timeout=10)
    return sock, sock.makefile("rb")


class TestLifecycle:
    def test_start_serve_stop(self):
        with ReproServer(SYSTEM, workers=2, executor="thread") as server:
            host, port = server.address
            assert port > 0
            assert wait_for_server(host, port, timeout_s=5)
            with ServerClient(host, port) as client:
                assert client.ping()
        assert server.wait(timeout=0)  # context exit drained and stopped
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_shutdown_is_idempotent(self):
        server = ReproServer(SYSTEM, workers=1, executor="serial").start()
        server.shutdown()
        server.shutdown()
        assert server.wait(timeout=0)

    def test_client_shutdown_frame_stops_daemon(self):
        server = ReproServer(SYSTEM, workers=1, executor="serial").start()
        with ServerClient(*server.address) as client:
            assert "shutting down" in client.shutdown()
        assert server.wait(timeout=10)

    def test_double_start_rejected(self):
        server = ReproServer(SYSTEM, workers=1, executor="serial").start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.shutdown()

    def test_constructor_validates_knobs(self):
        with pytest.raises(ValueError, match="queue_size"):
            ReproServer(SYSTEM, queue_size=0)
        with pytest.raises(ValueError, match="workers"):
            ReproServer(SYSTEM, workers=0)

    def test_accepts_prebuilt_engine(self):
        engine = Engine.from_spec(SYSTEM)
        with ReproServer(engine, workers=1, executor="serial") as server:
            with ServerClient(*server.address) as client:
                result = client.run(tiny_scenario(seed=3))
        # Same engine, same cache: the daemon's run landed in it.
        assert engine.cache.results.stats.misses >= 1
        assert result.outcome.n_frames == 3


class TestRequests:
    def test_result_bit_identical_to_fresh_serial_engine(self):
        scenario = tiny_scenario(seed=11, n_frames=4)
        with ReproServer(SYSTEM, workers=2, executor="thread") as server:
            with ServerClient(*server.address) as client:
                served = client.run(scenario)
        fresh = Engine.from_spec(SYSTEM).run(scenario)
        assert served.scenario == scenario
        assert served.outcome.frames == fresh.outcome.frames
        assert served.outcome.system == fresh.outcome.system

    def test_repeat_request_is_pure_cache_hit(self):
        scenario = tiny_scenario(seed=12)
        with ReproServer(SYSTEM, workers=1, executor="serial") as server:
            with ServerClient(*server.address) as client:
                first = client.run(scenario)
                before = client.stats().cache["results"]
                second = client.run(scenario)
                after = client.stats().cache["results"]
        assert second.outcome == first.outcome  # incl. wall_time: memoized
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_concurrent_clients_bit_identical_to_serial_runs(self):
        scenarios = [tiny_scenario(seed=s, n_frames=3) for s in (0, 1, 2)]
        results = {}
        errors = []

        def hammer(worker_id, server):
            try:
                with ServerClient(*server.address) as client:
                    # Each client runs every scenario; overlapping identical
                    # requests exercise the shared warm cache.
                    results[worker_id] = [client.run(s) for s in scenarios]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        with ReproServer(SYSTEM, workers=4, executor="thread") as server:
            threads = [
                threading.Thread(target=hammer, args=(n, server)) for n in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not errors
        fresh_engine = Engine.from_spec(SYSTEM)
        fresh = [fresh_engine.run(s) for s in scenarios]
        assert sorted(results) == [0, 1, 2]
        for served in results.values():
            for got, want in zip(served, fresh):
                assert got.outcome.frames == want.outcome.frames

    def test_unknown_component_is_typed_bad_request(self):
        with ReproServer(SYSTEM, workers=1, executor="serial") as server:
            with ServerClient(*server.address) as client:
                with pytest.raises(BadRequestError) as exc:
                    client.run(tiny_scenario(source="no-such-source"))
                assert exc.value.code == "bad-request"
                assert client.ping()  # connection survives the rejection

    def test_malformed_frame_keeps_connection_alive(self):
        with ReproServer(SYSTEM, workers=1, executor="serial") as server:
            sock, reader = raw_socket(server)
            try:
                sock.sendall(b"this is not json\n")
                error = parse_frame(read_frame(reader))
                assert error.type == "error" and error.code == "bad-frame"
                sock.sendall(b'{"type": "warp", "id": "x"}\n')
                error = parse_frame(read_frame(reader))
                assert error.code == "bad-frame"
                assert "unknown frame type" in error.message
                sock.sendall(encode_frame({"type": "ping", "id": "still-alive"}))
                pong = parse_frame(read_frame(reader))
                assert pong.type == "pong" and pong.id == "still-alive"
            finally:
                sock.close()

    def test_oversized_frame_rejected_without_killing_connection(self):
        with ReproServer(
            SYSTEM, workers=1, executor="serial", max_frame_bytes=512
        ) as server:
            sock, reader = raw_socket(server)
            try:
                huge = b'{"type": "ping", "id": "' + b"x" * 2048 + b'"}\n'
                sock.sendall(huge)
                error = parse_frame(read_frame(reader))
                assert error.type == "error" and error.code == "oversized"
                sock.sendall(encode_frame({"type": "ping", "id": "ok"}))
                assert parse_frame(read_frame(reader)).type == "pong"
            finally:
                sock.close()

    def test_oversized_result_is_typed_error_suggesting_streaming(self):
        # The ledger of even a short run overflows a tiny outgoing budget;
        # the daemon must answer a typed error, not a broken half-frame.
        with ReproServer(
            SYSTEM, workers=1, executor="serial", max_frame_bytes=700
        ) as server:
            with ServerClient(
                *server.address, max_frame_bytes=8 * 1024 * 1024
            ) as client:
                with pytest.raises(ServerError) as exc:
                    client.run(tiny_scenario(seed=5, n_frames=8))
                assert exc.value.code == "oversized"
                assert "streaming" in str(exc.value)


class TestBackpressure:
    def test_queue_full_rejection_is_deterministic(self, gated_source):
        with ReproServer(
            SYSTEM, workers=1, executor="serial", queue_size=1
        ) as server:
            a = ServerClient(*server.address).connect()
            b = ServerClient(*server.address).connect()
            c = ServerClient(*server.address).connect()
            try:
                # Request 1: admitted, picked up by the single worker, now
                # blocked inside the gated build (queue back to empty).
                r1 = {}
                t1 = threading.Thread(
                    target=lambda: r1.setdefault(
                        "result", a.run(tiny_scenario(seed=1, source=gated_source.name))
                    )
                )
                t1.start()
                assert gated_source.started.wait(timeout=10)
                # Request 2: admitted, fills the queue_size=1 queue.
                r2 = {}
                t2 = threading.Thread(
                    target=lambda: r2.setdefault(
                        "result", b.run(tiny_scenario(seed=2, source=gated_source.name))
                    )
                )
                t2.start()
                deadline = threading.Event()
                for _ in range(200):
                    if c.stats().queue_depth == 1:
                        break
                    deadline.wait(0.02)
                assert c.stats().queue_depth == 1
                # Request 3: the queue is provably full -> typed rejection,
                # immediately, without waiting on the gate.
                with pytest.raises(BackpressureError) as exc:
                    c.run(tiny_scenario(seed=3, source=gated_source.name))
                assert exc.value.code == "queue-full"
                # Open the gate: both admitted requests complete normally.
                gated_source.release.set()
                t1.join(timeout=30)
                t2.join(timeout=30)
                assert r1["result"].outcome.n_frames == 3
                assert r2["result"].outcome.n_frames == 3
            finally:
                gated_source.release.set()
                for cl in (a, b, c):
                    cl.close()


class TestTimeout:
    def test_per_request_timeout_fires(self, gated_source):
        with ReproServer(SYSTEM, workers=1, executor="serial") as server:
            with ServerClient(*server.address) as client:
                with pytest.raises(RequestTimeoutError) as exc:
                    client.run(
                        tiny_scenario(seed=1, source=gated_source.name),
                        timeout_s=0.2,
                    )
                assert exc.value.code == "timeout"
                # The connection stays usable after the timeout error.
                assert client.ping()
                gated_source.release.set()

    def test_server_default_timeout_applies(self, gated_source):
        with ReproServer(
            SYSTEM, workers=1, executor="serial", request_timeout_s=0.2
        ) as server:
            with ServerClient(*server.address) as client:
                with pytest.raises(RequestTimeoutError):
                    client.run(tiny_scenario(seed=1, source=gated_source.name))
                gated_source.release.set()


class TestDrain:
    def test_graceful_drain_completes_inflight_and_queued(self, gated_source):
        server = ReproServer(
            SYSTEM, workers=1, executor="serial", queue_size=4
        ).start()
        a = ServerClient(*server.address).connect()
        b = ServerClient(*server.address).connect()
        watcher = ServerClient(*server.address).connect()
        try:
            s1 = tiny_scenario(seed=1, source=gated_source.name)
            s2 = tiny_scenario(seed=2, source=gated_source.name)
            r1, r2 = {}, {}
            t1 = threading.Thread(target=lambda: r1.setdefault("v", a.run(s1)))
            t1.start()
            assert gated_source.started.wait(timeout=10)  # s1 is computing
            t2 = threading.Thread(target=lambda: r2.setdefault("v", b.run(s2)))
            t2.start()
            for _ in range(200):
                if watcher.stats().queue_depth == 1:
                    break
                threading.Event().wait(0.02)
            assert watcher.stats().queue_depth == 1  # s2 is queued

            drained = threading.Event()
            stopper = threading.Thread(
                target=lambda: (server.shutdown(drain=True), drained.set())
            )
            stopper.start()
            # Drain must WAIT for the gated work, not kill it.
            assert not drained.wait(timeout=0.3)
            gated_source.release.set()
            stopper.join(timeout=30)
            assert drained.is_set()
            t1.join(timeout=30)
            t2.join(timeout=30)
            # Both the in-flight and the queued request completed, correctly.
            fresh = Engine.from_spec(SYSTEM)
            gated_source.release.set()  # fresh engine hits the gate too
            assert r1["v"].outcome.frames == fresh.run(s1).outcome.frames
            assert r2["v"].outcome.frames == fresh.run(s2).outcome.frames
        finally:
            gated_source.release.set()
            for cl in (a, b, watcher):
                cl.close()
            server.shutdown()

    def test_draining_daemon_rejects_new_runs(self, gated_source):
        server = ReproServer(SYSTEM, workers=1, executor="serial").start()
        runner = ServerClient(*server.address).connect()
        probe = ServerClient(*server.address).connect()
        try:
            result = {}
            t = threading.Thread(
                target=lambda: result.setdefault(
                    "v", runner.run(tiny_scenario(seed=1, source=gated_source.name))
                )
            )
            t.start()
            assert gated_source.started.wait(timeout=10)
            stopper = threading.Thread(target=lambda: server.shutdown(drain=True))
            stopper.start()
            for _ in range(200):
                if probe.stats().draining:
                    break
                threading.Event().wait(0.02)
            assert probe.stats().draining
            with pytest.raises(ServerShuttingDownError):
                probe.run(tiny_scenario(seed=9))
            gated_source.release.set()
            stopper.join(timeout=30)
            t.join(timeout=30)
            assert result["v"].outcome.n_frames == 3
        finally:
            gated_source.release.set()
            for cl in (runner, probe):
                cl.close()
            server.shutdown()
