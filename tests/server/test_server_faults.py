"""Daemon under injected faults: mid-stream death, drops, stats counters.

Fault schedules are cumulative over the daemon's lifetime, so ``at=(N,)``
fires exactly once — the request after the faulted one is automatically
clean, which is exactly the "daemon keeps serving" property under test.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.server import ReproServer, ServerClient, ServerError
from repro.service import Engine, ScenarioSpec

SYSTEM = {"system": {"system": "hirise"}}


def scenario(seed=0, n_frames=5, name=""):
    return ScenarioSpec.from_dict(
        {
            "source": {"name": "pedestrian", "params": {"resolution": [48, 36]}},
            "n_frames": n_frames,
            "seed": seed,
            "name": name or f"fault-{seed}",
        }
    )


def stream_plan(kind, *hits, delay_s=0.0) -> FaultPlan:
    return FaultPlan(
        name=f"stream-{kind}",
        seed=0,
        faults=(
            FaultSpec(
                site="server.stream", kind=kind, at=hits, delay_s=delay_s
            ),
        ),
    )


class TestMidStreamDeath:
    def test_worker_death_yields_typed_error_then_daemon_survives(self):
        # The stream dies after exactly 2 delivered frames; the client
        # gets a typed "internal" error — never a truncated stream or a
        # hung connection — and the daemon serves the next request.
        plan = stream_plan("worker-crash", 2)
        with ReproServer(
            SYSTEM, workers=1, executor="serial", faults=plan
        ) as server:
            with ServerClient(*server.address) as client:
                seen = []
                with pytest.raises(ServerError) as excinfo:
                    client.run_streaming(scenario(seed=1), on_stats=seen.append)
                assert excinfo.value.code == "internal"
                assert [s.frame_index for s in seen] == [0, 1]
                # same connection, same daemon: next request is clean
                follow_up = client.run_streaming(scenario(seed=2))
                assert follow_up.outcome.n_frames == 5

    def test_mid_stream_drop_replayed_bit_identically_by_retrying_client(self):
        # The socket drops after frame 0; a retrying client reconnects
        # and replays, and the reassembled result matches a fresh
        # fault-free engine bit for bit.
        spec = scenario(seed=3)
        want = Engine.from_spec(SYSTEM).run(spec)
        plan = stream_plan("socket-drop", 1)
        with ReproServer(
            SYSTEM, workers=1, executor="serial", faults=plan
        ) as server:
            with ServerClient(*server.address, max_retries=2) as client:
                result = client.run_streaming(spec)
                assert client.retry_stats["reconnect"] == 1
        assert result.outcome.frames == want.outcome.frames

    def test_reply_delay_stalls_but_completes(self):
        plan = FaultPlan(
            name="slow",
            seed=0,
            faults=(
                FaultSpec(
                    site="server.reply",
                    kind="reply-delay",
                    at=(0,),
                    delay_s=0.05,
                ),
            ),
        )
        with ReproServer(
            SYSTEM, workers=1, executor="serial", faults=plan
        ) as server:
            with ServerClient(*server.address) as client:
                result = client.run(scenario(seed=4))
                assert result.outcome.n_frames == 5


class TestResilienceStats:
    def test_fault_counters_surface_in_stats(self):
        plan = stream_plan("worker-crash", 0)
        with ReproServer(
            SYSTEM, workers=1, executor="serial", faults=plan
        ) as server:
            with ServerClient(*server.address) as client:
                with pytest.raises(ServerError):
                    client.run_streaming(scenario(seed=5))
                stats = client.stats()
        assert stats.resilience["faults"] == {
            "server.stream:worker-crash": 1
        }

    def test_no_plan_means_no_fault_counters(self):
        with ReproServer(SYSTEM, workers=1, executor="serial") as server:
            with ServerClient(*server.address) as client:
                client.run(scenario(seed=6))
                stats = client.stats()
        assert "faults" not in stats.resilience
