"""Retrying client: typed close error, reconnect, backoff determinism.

Faults are injected server-side through ``REPRO_FAULT_PLAN``-style plans
passed to :class:`ReproServer` directly, so "the connection drops" is a
deterministic event at a scheduled reply hit — no real network flakes.
"""

import pytest

import repro
from repro.faults import FaultPlan, FaultSpec
from repro.server import (
    BadRequestError,
    ReproServer,
    ServerClient,
    ServerClosedError,
)
from repro.service import ScenarioSpec

SYSTEM = {"system": {"system": "hirise"}}


def tiny_scenario(seed=0, n_frames=3, name=""):
    return ScenarioSpec.from_dict(
        {
            "source": {"name": "pedestrian", "params": {"resolution": [48, 36]}},
            "n_frames": n_frames,
            "seed": seed,
            "name": name or f"retry-{seed}",
        }
    )


def drop_first_reply() -> FaultPlan:
    """Server closes the connection instead of sending its first reply."""
    return FaultPlan(
        name="drop-first",
        seed=0,
        faults=(
            FaultSpec(site="server.reply", kind="socket-drop", at=(0,)),
        ),
    )


class TestServerClosedError:
    def test_is_a_connection_error(self):
        assert issubclass(ServerClosedError, ConnectionError)
        assert repro.ServerClosedError is ServerClosedError

    def test_raised_when_server_drops_mid_request(self):
        server = ReproServer(
            SYSTEM, workers=1, executor="serial", faults=drop_first_reply()
        )
        with server:
            with ServerClient(*server.address) as client:
                with pytest.raises(ConnectionError):
                    client.run(tiny_scenario())


class TestReconnect:
    def test_retry_survives_a_dropped_reply(self):
        # Hit 0 of server.reply drops the socket; the retrying client
        # reconnects, replays, and gets the same answer a clean daemon
        # would have produced.
        with ReproServer(SYSTEM, workers=1, executor="serial") as clean:
            with ServerClient(*clean.address) as client:
                want = client.run(tiny_scenario())
        server = ReproServer(
            SYSTEM, workers=1, executor="serial", faults=drop_first_reply()
        )
        with server:
            client = ServerClient(*server.address, max_retries=2)
            with client:
                got = client.run(tiny_scenario())
                assert client.retry_stats["reconnect"] == 1
                # connection is live again after the transparent replay
                assert client.ping()
        assert got.outcome.frames == want.outcome.frames

    def test_zero_retries_keeps_failing_fast(self):
        server = ReproServer(
            SYSTEM, workers=1, executor="serial", faults=drop_first_reply()
        )
        with server:
            with ServerClient(*server.address, max_retries=0) as client:
                with pytest.raises(ConnectionError):
                    client.run(tiny_scenario())
                assert client.retry_stats["reconnect"] == 0

    def test_bad_requests_are_never_retried(self):
        # A deterministic rejection must surface immediately: retrying
        # an invalid request can only waste the budget.
        with ReproServer(SYSTEM, workers=1, executor="serial") as server:
            with ServerClient(*server.address, max_retries=3) as client:
                bad = tiny_scenario().to_dict()
                bad["source"] = {"name": "webcam", "params": {}}
                with pytest.raises(BadRequestError):
                    client.run(bad)
                assert client.retry_stats == {"backpressure": 0, "reconnect": 0}


class TestBackoff:
    def test_same_seed_same_backoff_sequence(self):
        a = ServerClient("localhost", 1, retry_seed=42)
        b = ServerClient("localhost", 1, retry_seed=42)
        assert [a._backoff_s(i) for i in range(6)] == [
            b._backoff_s(i) for i in range(6)
        ]

    def test_backoff_grows_then_caps(self):
        client = ServerClient(
            "localhost", 1, backoff_base_s=0.1, backoff_cap_s=0.5
        )
        delays = [client._backoff_s(i) for i in range(10)]
        assert all(0 < d <= 0.5 for d in delays)
        # the uncapped window doubles per try; by try 3 the 0.5s cap rules
        assert max(delays[3:]) <= 0.5

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            ServerClient("localhost", 1, max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            ServerClient("localhost", 1, backoff_base_s=-0.1)
