"""Wire-protocol frames: exact round-trips, validation, framing robustness."""

import io
import json

import pytest

from repro.server.protocol import (
    ERROR_CODES,
    FRAME_TYPES,
    MAX_FRAME_BYTES,
    ErrorResponse,
    FrameChunk,
    OkResponse,
    PingRequest,
    PongResponse,
    ProtocolError,
    ResultResponse,
    RunRequest,
    ShutdownRequest,
    StatsRequest,
    StatsResponse,
    StreamEnd,
    encode_frame,
    parse_frame,
    read_frame,
)
from repro.service import ScenarioSpec
from repro.stream import FrameStats, StreamOutcome

SCENARIO = {
    "source": {"name": "pedestrian", "params": {"resolution": [64, 48]}},
    "n_frames": 4,
    "seed": 1,
    "name": "proto-test",
}

STATS = FrameStats(
    frame_index=3,
    ran_stage1=True,
    reused_rois=False,
    reason="warmup",
    n_rois=2,
    stage1_bytes=100,
    roi_feedback_bytes=8,
    stage2_bytes=50,
    stage1_conversions=600,
    stage2_conversions=150,
    energy_j=1.25e-6,
    peak_image_memory_bytes=4096,
)


def sample_frames():
    """One instance of every frame type (id/field values arbitrary)."""
    scenario = ScenarioSpec.from_dict(SCENARIO)
    outcome = StreamOutcome(system="hirise", frames=[STATS], wall_time_s=0.5)
    return [
        RunRequest(id="r1", scenario=scenario, stream=True, timeout_s=2.5),
        PingRequest(id="p1"),
        StatsRequest(id="s1"),
        ShutdownRequest(id="k1", drain=False),
        ResultResponse(id="r1", scenario=scenario, outcome=outcome),
        FrameChunk(id="r1", stats=STATS),
        StreamEnd(id="r1", system="hirise", n_frames=1, wall_time_s=0.5),
        PongResponse(id="p1", version="1.1.0"),
        StatsResponse(
            id="s1",
            requests_served=7,
            queue_depth=2,
            draining=False,
            cache={"clips": {"hits": 1, "misses": 2, "evictions": 0}},
        ),
        OkResponse(id="k1", detail="shutting down"),
        ErrorResponse(id="r9", code="queue-full", message="full"),
    ]


class TestRoundTrips:
    def test_every_frame_type_is_registered(self):
        assert sorted(FRAME_TYPES) == sorted(
            ["run", "ping", "stats", "shutdown", "result", "frame", "end",
             "pong", "server-stats", "ok", "error"]
        )

    @pytest.mark.parametrize("frame", sample_frames(), ids=lambda f: f.type)
    def test_dict_round_trip_is_exact(self, frame):
        data = frame.to_dict()
        assert data["type"] == frame.type
        rebuilt = type(frame).from_dict(data)
        assert rebuilt == frame
        assert rebuilt.to_dict() == data

    @pytest.mark.parametrize("frame", sample_frames(), ids=lambda f: f.type)
    def test_json_wire_round_trip_is_exact(self, frame):
        line = encode_frame(frame)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        rebuilt = parse_frame(json.loads(line.decode("utf-8")))
        assert rebuilt == frame
        assert encode_frame(rebuilt) == line

    def test_frame_stats_floats_survive_the_wire_bit_exactly(self):
        # Python repr round-trips floats exactly; the ledger rows a client
        # reassembles must compare bit-equal to the server's.
        stats = FrameStats(
            frame_index=0, ran_stage1=False, reused_rois=True, reason="stable",
            n_rois=1, stage1_bytes=0, roi_feedback_bytes=0, stage2_bytes=1,
            stage1_conversions=0, stage2_conversions=1,
            energy_j=0.1 + 0.2,  # 0.30000000000000004
            peak_image_memory_bytes=1,
        )
        line = encode_frame(FrameChunk(id="x", stats=stats))
        rebuilt = parse_frame(json.loads(line.decode("utf-8")))
        assert rebuilt.stats == stats
        assert rebuilt.stats.energy_j == stats.energy_j


class TestValidation:
    def test_parse_rejects_missing_type(self):
        with pytest.raises(ProtocolError, match="frame.type"):
            parse_frame({"id": "x"})

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown frame type 'nope'"):
            parse_frame({"type": "nope"})

    def test_unknown_fields_named_in_error(self):
        with pytest.raises(ProtocolError, match=r"ping: unknown field\(s\) \['extra'\]"):
            parse_frame({"type": "ping", "id": "x", "extra": 1})

    def test_missing_id_named_in_error(self):
        with pytest.raises(ProtocolError, match="ping.id: required field is missing"):
            parse_frame({"type": "ping"})

    def test_non_string_id_rejected(self):
        with pytest.raises(ProtocolError, match="ping.id: expected str"):
            parse_frame({"type": "ping", "id": 7})

    def test_run_requires_scenario(self):
        with pytest.raises(ProtocolError, match="run.scenario: required"):
            parse_frame({"type": "run", "id": "x"})

    def test_run_bad_scenario_is_bad_request(self):
        bad = dict(SCENARIO, n_frames=-1)
        with pytest.raises(ProtocolError, match="run.scenario") as exc:
            parse_frame({"type": "run", "id": "x", "scenario": bad})
        assert exc.value.code == "bad-request"

    def test_run_rejects_keep_outcomes(self):
        heavy = dict(SCENARIO, keep_outcomes=True)
        with pytest.raises(ProtocolError, match="keep_outcomes") as exc:
            parse_frame({"type": "run", "id": "x", "scenario": heavy})
        assert exc.value.code == "bad-request"

    def test_run_timeout_must_be_positive_number(self):
        with pytest.raises(ProtocolError, match="run.timeout_s: must be > 0"):
            parse_frame(
                {"type": "run", "id": "x", "scenario": SCENARIO, "timeout_s": 0}
            )
        with pytest.raises(ProtocolError, match="run.timeout_s: expected"):
            parse_frame(
                {"type": "run", "id": "x", "scenario": SCENARIO, "timeout_s": "2"}
            )

    def test_run_stream_must_be_bool(self):
        with pytest.raises(ProtocolError, match="run.stream: expected bool"):
            parse_frame(
                {"type": "run", "id": "x", "scenario": SCENARIO, "stream": 1}
            )

    def test_frame_chunk_validates_stats_fields(self):
        data = FrameChunk(id="x", stats=STATS).to_dict()
        data["stats"]["energy_j"] = "hot"
        with pytest.raises(ProtocolError, match="frame.stats"):
            parse_frame(data)

    def test_end_rejects_negative_frame_count(self):
        with pytest.raises(ProtocolError, match="end.n_frames: must be >= 0"):
            parse_frame(
                {"type": "end", "id": "x", "system": "hirise",
                 "n_frames": -1, "wall_time_s": 0.0}
            )

    def test_error_code_must_be_known(self):
        with pytest.raises(ProtocolError, match="error.code: unknown code"):
            ErrorResponse(id="x", code="weird", message="")
        for code in ERROR_CODES:
            assert ErrorResponse(id="x", code=code).code == code

    def test_stats_response_counters_must_be_ints(self):
        data = {
            "type": "server-stats", "id": "s", "requests_served": 1,
            "queue_depth": 0, "draining": False,
            "cache": {"clips": {"hits": 1.5}},
        }
        with pytest.raises(ProtocolError, match="server-stats.cache.clips.hits"):
            parse_frame(data)

    def test_bool_fields_reject_int_impostors(self):
        with pytest.raises(ProtocolError, match="shutdown.drain: expected bool"):
            parse_frame({"type": "shutdown", "id": "x", "drain": 1})


class TestWireFraming:
    def read_all(self, payload: bytes, max_bytes: int = MAX_FRAME_BYTES):
        reader = io.BytesIO(payload)
        frames = []
        while True:
            data = read_frame(reader, max_bytes)
            if data is None:
                return frames
            frames.append(data)

    def test_reads_frames_in_order_then_clean_eof(self):
        payload = encode_frame(PingRequest(id="a")) + encode_frame(
            PingRequest(id="b")
        )
        frames = self.read_all(payload)
        assert [f["id"] for f in frames] == ["a", "b"]

    def test_truncated_line_raises(self):
        reader = io.BytesIO(b'{"type": "ping", "id": "a"')
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame(reader)

    def test_invalid_json_raises_bad_frame(self):
        reader = io.BytesIO(b"not json\n")
        with pytest.raises(ProtocolError, match="not valid JSON") as exc:
            read_frame(reader)
        assert exc.value.code == "bad-frame"

    def test_non_object_json_rejected(self):
        reader = io.BytesIO(b"[1, 2]\n")
        with pytest.raises(ProtocolError, match="expected a JSON object"):
            read_frame(reader)

    def test_oversized_line_drained_and_stream_stays_in_sync(self):
        # An over-limit line must not desync the connection: the reader
        # drains to the next newline, raises with code "oversized", and the
        # *next* read returns the following frame intact.
        big = b'{"type": "ping", "id": "' + b"x" * 4096 + b'"}\n'
        reader = io.BytesIO(big + encode_frame(PingRequest(id="after")))
        with pytest.raises(ProtocolError) as exc:
            read_frame(reader, max_bytes=256)
        assert exc.value.code == "oversized"
        assert read_frame(reader, max_bytes=256)["id"] == "after"

    def test_encode_accepts_plain_dicts(self):
        assert json.loads(encode_frame({"type": "ping", "id": "z"})) == {
            "type": "ping", "id": "z"
        }
