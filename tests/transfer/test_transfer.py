"""Tests for the link model, ledger, and packet helpers."""

import pytest

from repro.transfer import (
    LinkModel,
    PacketStats,
    TransferLedger,
    packet_stats,
    roi_descriptor_bytes,
    roi_payload_bytes,
    split_into_mtu,
)


class TestLinkModel:
    def test_default_is_pure_bytes(self):
        link = LinkModel()
        assert link.transfer_bytes(1000, n_transactions=5) == 1000
        assert link.energy(1000) == 0.0

    def test_overhead_per_transaction(self):
        link = LinkModel(per_transaction_overhead_bytes=8)
        assert link.transfer_bytes(100, n_transactions=3) == 124

    def test_latency(self):
        link = LinkModel(bandwidth_bytes_per_s=1e6)
        assert link.latency_s(500_000) == pytest.approx(0.5)
        assert LinkModel().latency_s(100) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel().transfer_bytes(-1)
        with pytest.raises(ValueError):
            LinkModel().transfer_bytes(10, n_transactions=-1)

    def test_zero_transactions_is_an_idle_link(self):
        link = LinkModel(per_transaction_overhead_bytes=8)
        assert link.transfer_bytes(0, n_transactions=0) == 0
        # payload without framed transactions: no overhead to charge
        assert link.transfer_bytes(10, n_transactions=0) == 10

    def test_zero_bandwidth_rejected_at_construction(self):
        # regression: bandwidth=0 used to surface later as ZeroDivisionError
        with pytest.raises(ValueError, match=r"link\.bandwidth_bytes_per_s"):
            LinkModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError, match=r"link\.bandwidth_bytes_per_s"):
            LinkModel(bandwidth_bytes_per_s=-1e6)
        with pytest.raises(ValueError, match=r"link\.bandwidth_bytes_per_s"):
            LinkModel(bandwidth_bytes_per_s=float("nan"))

    def test_negative_overhead_and_energy_rejected(self):
        with pytest.raises(ValueError, match=r"link\.per_transaction_overhead"):
            LinkModel(per_transaction_overhead_bytes=-1)
        with pytest.raises(ValueError, match=r"link\.energy_per_byte"):
            LinkModel(energy_per_byte=-1e-9)
        with pytest.raises(ValueError, match=r"link\.per_transaction_overhead"):
            LinkModel(per_transaction_overhead_bytes=float("nan"))
        with pytest.raises(ValueError, match=r"link\.energy_per_byte"):
            LinkModel(energy_per_byte=float("nan"))


class TestRoiDescriptors:
    def test_paper_formula(self):
        """j boxes x 4 words x 2 bytes."""
        assert roi_descriptor_bytes(16) == 16 * 4 * 2

    def test_zero_boxes(self):
        assert roi_descriptor_bytes(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            roi_descriptor_bytes(-1)

    def test_descriptors_negligible_vs_frame(self):
        """Paper: D1(P->S) negligible vs D1(S->P) and D2(S->P)."""
        frame_bytes = 320 * 240 * 3
        assert roi_descriptor_bytes(16) < frame_bytes / 500


class TestTransferLedger:
    def test_accumulates_flows(self):
        ledger = TransferLedger()
        ledger.add_stage1_frame(1000)
        ledger.add_roi_descriptors(2)
        ledger.add_stage2_rois(500, n_rois=2)
        assert ledger.stage1_s2p == 1000
        assert ledger.stage1_p2s == 16
        assert ledger.stage2_s2p == 500
        assert ledger.total_bytes == 1516

    def test_breakdown_keys(self):
        ledger = TransferLedger()
        ledger.add_stage1_frame(10)
        b = ledger.breakdown()
        assert set(b) == {"stage1_s2p", "stage1_p2s", "stage2_s2p", "total"}

    def test_wire_bytes_with_overhead(self):
        ledger = TransferLedger(link=LinkModel(per_transaction_overhead_bytes=4))
        ledger.add_stage1_frame(100)
        ledger.add_stage2_rois(50, n_rois=2)
        assert ledger.transactions == 3
        assert ledger.wire_bytes == 150 + 12

    def test_empty_ledger_costs_zero_wire_bytes(self):
        # regression: an idle frame used to be charged one phantom
        # transaction of overhead (max(transactions, 1))
        ledger = TransferLedger(link=LinkModel(per_transaction_overhead_bytes=64))
        assert ledger.total_bytes == 0
        assert ledger.transactions == 0
        assert ledger.wire_bytes == 0
        assert ledger.link_energy == 0.0

    def test_link_energy(self):
        ledger = TransferLedger(link=LinkModel(energy_per_byte=1e-9))
        ledger.add_stage1_frame(1000)
        assert ledger.link_energy == pytest.approx(1e-6)


class TestPackets:
    def test_stats(self):
        stats = packet_stats([100, 300, 200])
        assert stats == PacketStats(3, 600, 200.0, 300)

    def test_empty_stats(self):
        assert packet_stats([]).n_packets == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            packet_stats([-1])

    def test_mtu_split(self):
        assert split_into_mtu(1000, 256) == 4
        assert split_into_mtu(1024, 256) == 4
        assert split_into_mtu(0, 256) == 0

    def test_mtu_validation(self):
        with pytest.raises(ValueError):
            split_into_mtu(10, 0)

    def test_roi_payload(self):
        assert roi_payload_bytes(112, 112) == 112 * 112 * 3
        assert roi_payload_bytes(10, 10, channels=1, sample_bytes=2) == 200
