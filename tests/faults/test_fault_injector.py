"""FaultInjector: live firing, counters, fuses, and env activation."""

import json

import pytest

from repro.faults import (
    ENV_PLAN,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    as_injector,
    deactivate,
    default_injector,
    install,
)


def plan_with(*faults, seed=0, fuse_dir=None):
    return FaultPlan(name="t", seed=seed, faults=faults, fuse_dir=fuse_dir)


class TestFiring:
    def test_at_indices_fire_exactly(self):
        spec = FaultSpec(site="store.load", kind="store-io-error", at=(1, 3))
        injector = FaultInjector(plan_with(spec))
        fired = [injector.fire("store.load") for _ in range(5)]
        assert [f is not None for f in fired] == [False, True, False, True, False]
        assert fired[1].kind == "store-io-error"
        assert injector.hits("store.load") == 5

    def test_live_fires_match_schedule_preview(self):
        # The acceptance invariant: one seed, one schedule — what the
        # injector does live is exactly what the plan previews.
        plan = plan_with(
            FaultSpec(site="server.reply", kind="socket-drop", rate=0.3),
            FaultSpec(site="server.reply", kind="reply-delay", at=(2,)),
            seed=17,
        )
        injector = FaultInjector(plan)
        live = [
            spec.kind if (spec := injector.fire("server.reply")) else None
            for _ in range(100)
        ]
        assert live == plan.schedule("server.reply", 100)

    def test_counters_key_site_and_kind(self):
        spec = FaultSpec(site="shm.attach", kind="shm-attach-gone", at=(0, 1))
        injector = FaultInjector(plan_with(spec))
        injector.fire("shm.attach")
        injector.fire("shm.attach")
        assert injector.counters() == {"shm.attach:shm-attach-gone": 2}

    def test_unarmed_site_is_free(self):
        injector = FaultInjector(plan_with())
        assert injector.fire("worker.run") is None
        assert injector.counters() == {}

    def test_from_dict_round_trip(self):
        plan = plan_with(FaultSpec(site="worker.run", kind="worker-crash", at=(0,)))
        rebuilt = FaultInjector.from_dict(plan.to_dict())
        assert rebuilt.plan == plan

    def test_injected_fault_is_oserror(self):
        fault = InjectedFault("store.load", "store-io-error")
        assert isinstance(fault, OSError)
        assert fault.site == "store.load"
        assert fault.kind == "store-io-error"
        assert "store.load" in str(fault)


class TestGlobalFuse:
    def test_fuse_fires_once_across_injectors(self, tmp_path):
        spec = FaultSpec(
            site="worker.run", kind="worker-crash", at=(0,), scope="global"
        )
        plan = plan_with(spec, fuse_dir=str(tmp_path / "fuses"))
        first = FaultInjector(plan)
        second = FaultInjector(plan)  # simulates a respawned worker
        assert first.fire("worker.run") is not None
        assert second.fire("worker.run") is None
        assert second.counters() == {}

    def test_fuse_loss_rolls_back_fire_tally(self, tmp_path):
        # Losing hit 0's race must not consume the spec's only fire: a
        # limit=1 spec can still win a later scheduled hit.
        spec = FaultSpec(
            site="worker.run",
            kind="worker-crash",
            at=(0, 1),
            limit=1,
            scope="global",
        )
        plan = plan_with(spec, fuse_dir=str(tmp_path / "fuses"))
        winner = FaultInjector(plan)
        assert winner.fire("worker.run") is not None  # claims hit 0's fuse
        loser = FaultInjector(plan)
        assert loser.fire("worker.run") is None  # hit 0: fuse already burnt
        assert loser.fire("worker.run") is not None  # hit 1: its own fuse

    def test_process_scope_ignores_other_processes(self, tmp_path):
        spec = FaultSpec(site="worker.run", kind="worker-crash", at=(0,))
        plan = plan_with(spec)
        assert FaultInjector(plan).fire("worker.run") is not None
        assert FaultInjector(plan).fire("worker.run") is not None


class TestActivation:
    @pytest.fixture(autouse=True)
    def _clean_slate(self, monkeypatch):
        monkeypatch.delenv(ENV_PLAN, raising=False)
        deactivate()
        yield
        deactivate()

    def test_as_injector_coercions(self, tmp_path):
        plan = plan_with(FaultSpec(site="store.load", kind="store-io-error", at=(0,)))
        assert as_injector(None) is None
        injector = FaultInjector(plan)
        assert as_injector(injector) is injector
        assert as_injector(plan).plan == plan
        assert as_injector(plan.to_dict()).plan == plan
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        assert as_injector(str(path)).plan == plan
        # inline JSON string, same convention as the env hatch / CLI flag
        assert as_injector(json.dumps(plan.to_dict())).plan == plan
        with pytest.raises(FaultPlanError, match="inline JSON"):
            as_injector("{not json")
        with pytest.raises(TypeError, match="faults"):
            as_injector(42)

    def test_install_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_PLAN, json.dumps(plan_with().to_dict()))
        installed = install(plan_with(seed=99))
        assert default_injector() is installed
        deactivate()
        assert default_injector().plan.seed == 0

    def test_env_inline_json(self, monkeypatch):
        plan = plan_with(FaultSpec(site="store.put", kind="store-io-error", at=(0,)))
        monkeypatch.setenv(ENV_PLAN, json.dumps(plan.to_dict()))
        injector = default_injector()
        assert injector.plan == plan
        # Same raw env value -> the same cached injector (hit counters
        # persist across default_injector() calls).
        assert default_injector() is injector

    def test_env_file_path(self, tmp_path, monkeypatch):
        plan = plan_with(seed=5)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        monkeypatch.setenv(ENV_PLAN, str(path))
        assert default_injector().plan == plan

    def test_broken_env_plan_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_PLAN, "{not json")
        with pytest.raises(FaultPlanError, match=ENV_PLAN):
            default_injector()
        monkeypatch.setenv(ENV_PLAN, "/nonexistent/plan.json")
        with pytest.raises(FaultPlanError, match="fault plan"):
            default_injector()

    def test_no_plan_means_dormant(self):
        assert default_injector() is None
