"""Worker crash mid-window: the whole window re-dispatches bit-identically.

The windowed runner holds a flush of frames in flight when a worker dies,
so recovery has more state to lose than the per-frame path: a respawned
worker must re-expose the whole window into a *fresh* preallocated buffer
and reproduce every frame — including reuse decisions whose history spans
window boundaries — exactly as a fault-free serial run would.
"""

import pytest

from repro.core import HiRISEConfig
from repro.faults import FaultPlan, FaultSpec
from repro.service import (
    ComponentRef,
    Engine,
    EngineCache,
    ProcessExecutor,
    ScenarioSpec,
    SystemSpec,
)

SYSTEM = SystemSpec(
    config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth", {"label": "person"}),
)


def scenario(**kwargs) -> ScenarioSpec:
    defaults = dict(
        source=ComponentRef("pedestrian", {"resolution": [64, 48]}),
        n_frames=6,
        seed=4,
        window=4,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def requests() -> list[ScenarioSpec]:
    return [
        scenario(name="win/a"),
        scenario(name="win/b", seed=9, window=6),
        scenario(name="win/c", seed=11, window=2),
        scenario(
            name="win/d",
            policy=ComponentRef("temporal-reuse"),
            window=4,
            source=ComponentRef(
                "pedestrian", {"resolution": [64, 48], "speed": 0.0}
            ),
        ),
    ]


def crash_plan(fuse_dir, *hits) -> FaultPlan:
    """Worker crash at the given worker.run hits, once across all workers."""
    return FaultPlan(
        name="window-crash",
        seed=7,
        faults=(
            FaultSpec(
                site="worker.run", kind="worker-crash", at=hits, scope="global"
            ),
        ),
        fuse_dir=str(fuse_dir),
    )


class TestWindowedCrashRecovery:
    def test_crash_mid_window_redispatches_whole_window(self, tmp_path):
        """The crash lands while a windowed scenario is in flight; the
        respawned worker replays it from frame 0 and every recovered
        outcome — windowed, full-clip window, reuse-composed — matches
        the fault-free serial reference bit for bit."""
        reference_engine = Engine(SYSTEM, cache=EngineCache.disabled())
        reference = [reference_engine.run(r) for r in requests()]
        engine = Engine(
            SYSTEM,
            cache=EngineCache.disabled(),
            faults=crash_plan(tmp_path / "fuses", 1),
        )
        with ProcessExecutor(workers=2) as pool:
            batch = engine.run_batch(requests(), executor=pool)
            stats = pool.resilience_stats()
        assert stats["respawns"] >= 1
        assert stats["redispatched_units"] >= 1
        for got, want in zip(batch, reference):
            assert got.scenario == want.scenario
            assert got.outcome.frames == want.outcome.frames

    def test_reuse_grants_survive_recovery(self, tmp_path):
        """The reuse-composed windowed scenario actually reuses frames,
        and the recovered run reproduces the same grants."""
        reused = scenario(
            name="win/reused",
            policy=ComponentRef("temporal-reuse"),
            window=4,
            source=ComponentRef(
                "pedestrian", {"resolution": [64, 48], "speed": 0.0}
            ),
        )
        reference = Engine(SYSTEM, cache=EngineCache.disabled()).run(reused)
        assert reference.outcome.reused_frames > 0
        engine = Engine(
            SYSTEM,
            cache=EngineCache.disabled(),
            faults=crash_plan(tmp_path / "fuses", 0),
        )
        with ProcessExecutor(workers=1) as pool:
            batch = engine.run_batch([reused], executor=pool)
            stats = pool.resilience_stats()
        assert stats["respawns"] >= 1
        assert batch[0].outcome.frames == reference.outcome.frames
        assert (
            batch[0].outcome.reused_frames == reference.outcome.reused_frames
        )
