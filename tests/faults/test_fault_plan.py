"""FaultPlan/FaultSpec: validation, exact round-trips, schedules."""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FAULT_SCOPES,
    FAULT_SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    load_fault_plan,
)


def crash_at(*hits, scope="process"):
    return FaultSpec(site="worker.run", kind="worker-crash", at=hits, scope=scope)


def sample_plan(seed=3):
    return FaultPlan(
        name="sample",
        seed=seed,
        faults=(
            crash_at(1),
            FaultSpec(site="store.load", kind="store-io-error", rate=0.5),
            FaultSpec(site="server.reply", kind="reply-delay", at=(0,), delay_s=0.25),
            FaultSpec(site="server.reply", kind="socket-drop", rate=0.2, limit=2),
        ),
    )


class TestValidation:
    def test_known_kinds_and_sites_are_closed_sets(self):
        assert "worker-crash" in FAULT_KINDS
        assert "worker.run" in FAULT_SITES
        assert FAULT_SCOPES == ("process", "global")

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="fault.site"):
            FaultSpec(site="nowhere", kind="worker-crash")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="fault.kind"):
            FaultSpec(site="worker.run", kind="explode")

    def test_rate_bounds(self):
        with pytest.raises(FaultPlanError, match="fault.rate"):
            FaultSpec(site="store.load", kind="store-io-error", rate=1.5)
        with pytest.raises(FaultPlanError, match="fault.rate"):
            FaultSpec(site="store.load", kind="store-io-error", rate=-0.1)

    def test_negative_at_and_limit_rejected(self):
        with pytest.raises(FaultPlanError, match="fault.at"):
            FaultSpec(site="worker.run", kind="worker-crash", at=(-1,))
        with pytest.raises(FaultPlanError, match="fault.limit"):
            FaultSpec(site="store.load", kind="store-io-error", rate=0.5, limit=-1)

    def test_unknown_scope_rejected(self):
        with pytest.raises(FaultPlanError, match="fault.scope"):
            FaultSpec(site="worker.run", kind="worker-crash", scope="galaxy")

    def test_global_scope_requires_fuse_dir(self, tmp_path):
        with pytest.raises(FaultPlanError, match="fuse_dir"):
            FaultPlan(name="p", seed=0, faults=(crash_at(0, scope="global"),))
        plan = FaultPlan(
            name="p",
            seed=0,
            faults=(crash_at(0, scope="global"),),
            fuse_dir=str(tmp_path / "fuses"),
        )
        assert plan.fuse_dir is not None

    def test_plan_rejects_non_spec_faults(self):
        with pytest.raises(FaultPlanError, match="plan.faults"):
            FaultPlan(name="p", seed=0, faults=({"site": "worker.run"},))


class TestRoundTrip:
    def test_exact_dict_round_trip(self):
        plan = sample_plan()
        data = plan.to_dict()
        rebuilt = FaultPlan.from_dict(data)
        assert rebuilt == plan
        assert rebuilt.to_dict() == data

    def test_json_round_trip_is_byte_stable(self):
        plan = sample_plan()
        blob = json.dumps(plan.to_dict(), sort_keys=True)
        rebuilt = FaultPlan.from_dict(json.loads(blob))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == blob

    def test_from_dict_rejects_unknown_keys(self):
        data = sample_plan().to_dict()
        data["surprise"] = 1
        with pytest.raises(FaultPlanError, match="surprise"):
            FaultPlan.from_dict(data)

    def test_fingerprint_tracks_content(self):
        assert sample_plan(3).fingerprint() == sample_plan(3).fingerprint()
        assert sample_plan(3).fingerprint() != sample_plan(4).fingerprint()

    def test_load_fault_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(sample_plan().to_dict()), encoding="utf-8")
        assert load_fault_plan(path) == sample_plan()
        with pytest.raises(FaultPlanError, match="fault plan"):
            load_fault_plan(tmp_path / "missing.json")


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = sample_plan(seed=9).schedule("server.reply", 50)
        b = sample_plan(seed=9).schedule("server.reply", 50)
        assert a == b
        assert any(kind is not None for kind in a)

    def test_different_seed_diverges(self):
        a = sample_plan(seed=9).schedule("store.load", 200)
        b = sample_plan(seed=10).schedule("store.load", 200)
        assert a != b

    def test_at_schedule_is_exact(self):
        plan = FaultPlan(name="p", seed=0, faults=(crash_at(2, 5),))
        schedule = plan.schedule("worker.run", 8)
        fires = [hit for hit, kind in enumerate(schedule) if kind is not None]
        assert fires == [2, 5]
        assert schedule[2] == schedule[5] == "worker-crash"

    def test_limit_caps_rate_faults(self):
        plan = FaultPlan(
            name="p",
            seed=1,
            faults=(
                FaultSpec(site="store.load", kind="store-io-error", rate=1.0, limit=3),
            ),
        )
        schedule = plan.schedule("store.load", 100)
        assert sum(kind is not None for kind in schedule) == 3
        assert schedule[:3] == ["store-io-error"] * 3

    def test_unscheduled_site_never_fires(self):
        assert sample_plan().schedule("shm.attach", 100) == [None] * 100
