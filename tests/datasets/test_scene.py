"""Tests for scene generation and ground truth."""

import numpy as np
import pytest

from repro.datasets import (
    CROWDHUMAN_LIKE,
    DHDCAMPUS_LIKE,
    GroundTruthBox,
    Scene,
    SceneGenerator,
    VISDRONE_LIKE,
)


class TestGroundTruthBox:
    def test_area(self):
        assert GroundTruthBox("person", 0, 0, 4, 5).area == 20

    def test_scaled(self):
        box = GroundTruthBox("person", 10, 20, 30, 40).scaled(0.5, 0.25)
        assert box.xywh == (5.0, 5.0, 15.0, 10.0)
        assert box.label == "person"

    def test_xywh_tuple(self):
        assert GroundTruthBox("head", 1, 2, 3, 4).xywh == (1, 2, 3, 4)


class TestSceneGenerator:
    def test_deterministic_given_seed(self):
        a = SceneGenerator(CROWDHUMAN_LIKE, (320, 240), seed=9).scene(0)
        b = SceneGenerator(CROWDHUMAN_LIKE, (320, 240), seed=9).scene(0)
        assert np.array_equal(a.image, b.image)
        assert a.boxes == b.boxes

    def test_different_indices_differ(self):
        gen = SceneGenerator(CROWDHUMAN_LIKE, (320, 240), seed=9)
        assert not np.array_equal(gen.scene(0).image, gen.scene(1).image)

    def test_image_in_unit_range(self, small_scene):
        assert small_scene.image.min() >= 0.0
        assert small_scene.image.max() <= 1.0

    def test_resolution_property(self, small_scene):
        assert small_scene.resolution == (640, 480)
        assert small_scene.image.shape == (480, 640, 3)

    def test_crowdhuman_emits_person_and_head(self, small_scene):
        labels = {b.label for b in small_scene.boxes}
        assert "person" in labels
        assert "head" in labels

    def test_head_boxes_inside_person_boxes(self, small_scene):
        """Every head belongs to some person box."""
        persons = small_scene.boxes_for("person")
        for head in small_scene.boxes_for("head"):
            hx, hy = head.x + head.w / 2, head.y + head.h / 2
            assert any(
                p.x <= hx <= p.x + p.w and p.y <= hy <= p.y + p.h for p in persons
            )

    def test_object_count_in_profile_range(self, small_scene):
        lo, hi = CROWDHUMAN_LIKE.objects_per_image
        n_persons = len(small_scene.boxes_for("person"))
        assert lo - 2 <= n_persons <= hi  # a couple may fail placement

    def test_object_scale_in_profile_range(self, small_scene):
        lo, hi = CROWDHUMAN_LIKE.object_scale
        heights = [b.h for b in small_scene.boxes_for("person")]
        assert min(heights) >= lo * 480 * 0.9
        assert max(heights) <= hi * 480 * 1.1

    def test_dhd_classes(self):
        scene = SceneGenerator(DHDCAMPUS_LIKE, (320, 240), seed=3).scene(0)
        assert {b.label for b in scene.boxes} <= {"person", "cyclist"}

    def test_visdrone_objects_are_tiny(self):
        scene = SceneGenerator(VISDRONE_LIKE, (640, 480), seed=3).scene(0)
        assert scene.boxes, "visdrone scene should contain objects"
        median_h = np.median([b.h for b in scene.boxes])
        assert median_h < 0.08 * 480

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            SceneGenerator(CROWDHUMAN_LIKE, (16, 16), seed=0)

    def test_total_box_area_filter(self, small_scene):
        total = small_scene.total_box_area()
        persons_only = small_scene.total_box_area(("person",))
        assert 0 < persons_only < total


class TestSceneResolutionIndependence:
    def test_profile_scales_with_resolution(self):
        """The same profile at 2x resolution -> ~2x object heights."""
        lo_scene = SceneGenerator(CROWDHUMAN_LIKE, (320, 240), seed=5).scene(0)
        hi_scene = SceneGenerator(CROWDHUMAN_LIKE, (640, 480), seed=5).scene(0)
        lo_med = np.median([b.h for b in lo_scene.boxes_for("person")])
        hi_med = np.median([b.h for b in hi_scene.boxes_for("person")])
        assert hi_med == pytest.approx(2 * lo_med, rel=0.35)
