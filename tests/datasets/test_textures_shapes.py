"""Tests for procedural textures and shape rasterization."""

import numpy as np
import pytest

from repro.datasets.shapes import (
    draw_cyclist,
    draw_person,
    draw_vehicle,
    fill_circle,
    fill_ellipse,
    fill_rect,
)
from repro.datasets.textures import checker, colorize, speckle, stripes, value_noise


class TestTextures:
    def test_value_noise_range_and_shape(self):
        rng = np.random.default_rng(0)
        field = value_noise((40, 60), rng)
        assert field.shape == (40, 60)
        assert field.min() == pytest.approx(0.0)
        assert field.max() == pytest.approx(1.0)

    def test_value_noise_not_constant(self):
        rng = np.random.default_rng(1)
        assert value_noise((32, 32), rng).std() > 0.05

    def test_stripes_period(self):
        field = stripes((4, 32), pitch=8.0, angle_deg=0.0, soft=0.01)
        row = field[0]
        assert row[:3].mean() > 0.9  # bright phase
        assert np.allclose(row[:8], row[8:16], atol=0.05)  # periodic

    def test_stripes_rejects_bad_pitch(self):
        with pytest.raises(ValueError):
            stripes((4, 4), pitch=0.0)

    def test_checker_alternates(self):
        field = checker((4, 4), cell=2)
        assert field[0, 0] != field[0, 2]
        assert field[0, 0] == field[2, 2]

    def test_speckle_centered(self):
        rng = np.random.default_rng(2)
        field = speckle((200, 200), rng, strength=0.5)
        assert abs(field.mean() - 0.5) < 0.01

    def test_colorize_endpoints(self):
        field = np.array([[0.0, 1.0]])
        out = colorize(field, (0.1, 0.2, 0.3), (0.9, 0.8, 0.7))
        assert np.allclose(out[0, 0], (0.1, 0.2, 0.3))
        assert np.allclose(out[0, 1], (0.9, 0.8, 0.7))


class TestPrimitives:
    def test_fill_rect_interior(self):
        canvas = np.zeros((10, 10, 3))
        fill_rect(canvas, 2, 3, 4, 5, (1.0, 0.0, 0.0))
        assert np.allclose(canvas[5, 4], (1.0, 0.0, 0.0))
        assert np.allclose(canvas[0, 0], 0.0)

    def test_fill_rect_clipped_at_border(self):
        canvas = np.zeros((10, 10, 3))
        fill_rect(canvas, 8, 8, 10, 10, (0.0, 1.0, 0.0))
        assert canvas[9, 9, 1] > 0.5
        assert canvas[0, 0, 1] == 0.0

    def test_fill_rect_degenerate_noop(self):
        canvas = np.zeros((5, 5, 3))
        fill_rect(canvas, 1, 1, 0, 3, (1, 1, 1))
        assert canvas.sum() == 0.0

    def test_fill_circle_center_and_outside(self):
        canvas = np.zeros((20, 20, 3))
        fill_circle(canvas, 10, 10, 5, (0.0, 0.0, 1.0))
        assert canvas[10, 10, 2] > 0.9
        assert canvas[1, 1, 2] == 0.0

    def test_fill_ellipse_covers_axes(self):
        canvas = np.zeros((30, 30, 3))
        fill_ellipse(canvas, 15, 15, 10, 5, (1.0, 1.0, 1.0))
        assert canvas[15, 7, 0] > 0.5  # along x radius
        assert canvas[12, 15, 0] > 0.5  # along y radius
        assert canvas[5, 15, 0] < 0.5  # beyond y radius


class TestObjectRenderers:
    def test_person_boxes_sane(self):
        canvas = np.full((120, 120, 3), 0.5)
        rng = np.random.default_rng(3)
        body, head = draw_person(canvas, rng, cx=60, top=20, height=80)
        bx, by, bw, bh = body
        assert bh == 80
        assert 20 <= bw <= 60
        hx, hy, hw, hh = head
        assert hh < bh / 3
        assert by <= hy <= by + bh

    def test_person_modifies_canvas(self):
        canvas = np.full((100, 100, 3), 0.5)
        before = canvas.copy()
        draw_person(canvas, np.random.default_rng(4), 50, 10, 70)
        assert not np.array_equal(canvas, before)

    def test_cyclist_box_wider_than_person(self):
        canvas = np.full((120, 120, 3), 0.5)
        rng = np.random.default_rng(5)
        box = draw_cyclist(canvas, rng, cx=60, top=20, height=80)
        assert box[2] > 30  # wheels widen the box

    def test_vehicle_kinds(self):
        canvas = np.full((60, 120, 3), 0.5)
        rng = np.random.default_rng(6)
        for kind in ("car", "van", "truck", "bus", "motor"):
            box = draw_vehicle(canvas, rng, kind, cx=60, cy=30, length=30)
            assert box[2] == pytest.approx(30)
            assert box[3] < box[2]  # top-down vehicles are long

    def test_vehicle_unknown_kind(self):
        canvas = np.zeros((10, 10, 3))
        with pytest.raises(KeyError):
            draw_vehicle(canvas, np.random.default_rng(0), "tank", 5, 5, 4)
