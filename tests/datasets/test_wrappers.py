"""Tests for the dataset wrappers and their calibrated statistics."""

import numpy as np

from repro.datasets import (
    crowdhuman_like,
    dhdcampus_like,
    median_body_area_fraction,
    median_head_count,
    visdrone_like,
)


class TestCrowdhumanStatistics:
    """The Table 3 / Fig. 7 calibration constants (see DESIGN.md)."""

    def test_median_head_count_near_16(self):
        scenes = crowdhuman_like(8, resolution=(640, 480), seed=21)
        assert 12 <= median_head_count(scenes) <= 20

    def test_body_area_fraction_near_27_percent(self):
        scenes = crowdhuman_like(8, resolution=(640, 480), seed=21)
        assert 0.18 <= median_body_area_fraction(scenes) <= 0.36

    def test_head_size_scales_with_array_width(self):
        """Paper Table 3: ROI side ~ 14 px per 320 px of array width."""
        scenes = crowdhuman_like(6, resolution=(640, 480), seed=4)
        heads = [b.h for s in scenes for b in s.boxes_for("head")]
        median = np.median(heads)
        # 640-wide array -> expect ~28 px heads (2x the 320 reference).
        assert 17 <= median <= 39

    def test_empty_stats_are_zero(self):
        assert median_head_count([]) == 0.0
        assert median_body_area_fraction([]) == 0.0


class TestWrapperBasics:
    def test_counts(self):
        assert len(crowdhuman_like(3, (320, 240), seed=0)) == 3
        assert len(dhdcampus_like(2, (320, 240), seed=0)) == 2
        assert len(visdrone_like(2, (320, 240), seed=0)) == 2

    def test_names_carry_profile(self):
        scene = dhdcampus_like(1, (320, 240), seed=0)[0]
        assert "dhdcampus" in scene.name

    def test_visdrone_has_ten_classes_available(self):
        from repro.datasets import VISDRONE_LIKE

        assert len(VISDRONE_LIKE.classes) == 10
        scenes = visdrone_like(4, (640, 480), seed=1)
        seen = {b.label for s in scenes for b in s.boxes}
        assert len(seen) >= 5  # several of the 10 appear in a few frames

    def test_seeds_give_different_data(self):
        a = crowdhuman_like(1, (320, 240), seed=1)[0]
        b = crowdhuman_like(1, (320, 240), seed=2)[0]
        assert not np.array_equal(a.image, b.image)
