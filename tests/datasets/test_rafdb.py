"""Tests for the RAF-DB-like synthetic expression dataset."""

import numpy as np
import pytest

from repro.datasets import CANONICAL_SIZE, EXPRESSIONS, rafdb_like, render_face


class TestRenderFace:
    def test_output_shape_and_range(self):
        rng = np.random.default_rng(0)
        face = render_face("happy", rng, size=112)
        assert face.shape == (112, 112, 3)
        assert face.min() >= 0.0
        assert face.max() <= 1.0

    def test_unknown_expression_rejected(self):
        with pytest.raises(ValueError):
            render_face("smug", np.random.default_rng(0))

    def test_identities_vary(self):
        a = render_face("neutral", np.random.default_rng(1), 64)
        b = render_face("neutral", np.random.default_rng(2), 64)
        assert not np.array_equal(a, b)

    def test_expressions_differ_for_same_identity_stream(self):
        a = render_face("happy", np.random.default_rng(5), 112)
        b = render_face("surprise", np.random.default_rng(5), 112)
        assert np.mean(np.abs(a - b)) > 1e-3

    def test_surprise_opens_mouth(self):
        """Surprise faces have a dark open-mouth region; neutral do not."""
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        surprise = render_face("surprise", rng_a, 112)
        neutral = render_face("neutral", rng_b, 112)
        mouth_region = (slice(75, 100), slice(40, 72))
        assert surprise[mouth_region].mean() < neutral[mouth_region].mean()


class TestRafdbLike:
    def test_shapes_and_labels(self, tiny_faces):
        images, labels = tiny_faces
        assert images.shape == (42, 28, 28, 3)
        assert labels.shape == (42,)
        assert labels.min() >= 0
        assert labels.max() < len(EXPRESSIONS)

    def test_balanced_labels(self, tiny_faces):
        _, labels = tiny_faces
        counts = np.bincount(labels, minlength=7)
        assert counts.max() - counts.min() <= 1

    def test_deterministic(self):
        a_imgs, a_labels = rafdb_like(7, size=14, seed=11)
        b_imgs, b_labels = rafdb_like(7, size=14, seed=11)
        assert np.array_equal(a_imgs, b_imgs)
        assert np.array_equal(a_labels, b_labels)

    def test_split_seeds_disjoint(self):
        a, _ = rafdb_like(7, size=14, seed=0)
        b, _ = rafdb_like(7, size=14, seed=1)
        assert not np.array_equal(a, b)

    def test_size_must_divide_canonical(self):
        with pytest.raises(ValueError):
            rafdb_like(2, size=100, seed=0)

    def test_area_downsampling_composes(self):
        """The same face at 14 px equals the 112 px render block-meaned to 14.

        Both resolutions derive from one canonical 224 px render by area
        downsampling, and block means compose — so resolution is the *only*
        difference between Table 3 rows.
        """
        hi, hl = rafdb_like(7, size=112, seed=2)
        lo, ll = rafdb_like(7, size=14, seed=2)
        assert np.array_equal(hl, ll)
        hi_down = hi.reshape(7, 14, 8, 14, 8, 3).mean(axis=(2, 4))
        assert np.allclose(hi_down, lo, atol=1e-12)

    def test_high_res_carries_more_detail(self):
        """Within-block variance at 112 px is information 14 px cannot hold."""
        hi, _ = rafdb_like(7, size=112, seed=2)
        blocks = hi.reshape(7, 14, 8, 14, 8, 3)
        within_block_var = blocks.var(axis=(2, 4)).mean()
        assert within_block_var > 1e-4

    def test_canonical_size_divisors(self):
        for size in (14, 28, 56, 112, 224):
            assert CANONICAL_SIZE % size == 0
