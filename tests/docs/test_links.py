"""Docs hygiene: every relative markdown link resolves (tools/check_links.py).

The CI docs job runs the same script standalone; this test keeps the
check in tier-1 so a broken link fails locally before it fails in CI.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestMarkdownLinks:
    def test_no_broken_relative_links(self):
        checker = _load_checker()
        assert checker.broken_links(REPO_ROOT) == []

    def test_checker_covers_readme_and_docs(self):
        checker = _load_checker()
        names = {p.name for p in checker.markdown_files(REPO_ROOT)}
        assert "README.md" in names
        assert "architecture.md" in names
        assert "paper_mapping.md" in names
        assert "api.md" in names

    def test_checker_reports_broken_links(self, tmp_path):
        checker = _load_checker()
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "[ok](docs/real.md) [bad](docs/missing.md) [ext](https://x.test/a)"
        )
        (tmp_path / "docs" / "real.md").write_text("hi")
        errors = checker.broken_links(tmp_path)
        assert errors == ["README.md: broken link -> docs/missing.md"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        checker = _load_checker()
        (tmp_path / "README.md").write_text("[bad](nope.md)")
        assert checker.main([str(tmp_path)]) == 1
        assert "broken link" in capsys.readouterr().err
        (tmp_path / "README.md").write_text("no links here")
        assert checker.main([str(tmp_path)]) == 0
