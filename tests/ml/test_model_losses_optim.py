"""Tests for Sequential, losses, optimizers and the training loop."""

import numpy as np
import pytest

from repro.ml import Sequential, fit_classifier, predict_classifier
from repro.ml.layers import Dense, ReLU
from repro.ml.losses import (
    binary_cross_entropy_with_logits,
    mse,
    sigmoid,
    softmax,
    softmax_cross_entropy,
)
from repro.ml.optim import SGD, Adam
from repro.ml.train import iterate_minibatches


def tiny_net(rng, n_in=4, n_out=3):
    return Sequential([Dense(n_in, 8, rng=rng), ReLU(), Dense(8, n_out, rng=rng)])


class TestSequential:
    def test_forward_shape(self, rng):
        net = tiny_net(rng)
        assert net(np.zeros((5, 4))).shape == (5, 3)

    def test_params_collected(self, rng):
        net = tiny_net(rng)
        assert len(net.params()) == 4  # two Dense layers x (w, b)

    def test_state_dict_roundtrip(self, rng):
        net = tiny_net(rng)
        x = rng.standard_normal((2, 4))
        before = net(x)
        state = net.state_dict()
        for p in net.params():
            p.value[...] = 0.0
        assert not np.allclose(net(x), before)
        net.load_state_dict(state)
        assert np.allclose(net(x), before)

    def test_load_rejects_shape_mismatch(self, rng):
        net = tiny_net(rng)
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_n_parameters(self, rng):
        net = tiny_net(rng)
        assert net.n_parameters() == 4 * 8 + 8 + 8 * 3 + 3


class TestLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.standard_normal((5, 7)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(p, 0.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((1, 4))
        loss, _ = softmax_cross_entropy(logits, np.array([2]))
        assert loss == pytest.approx(np.log(4))

    def test_cross_entropy_gradient_fd(self, rng):
        logits = rng.standard_normal((3, 4))
        labels = np.array([0, 2, 1])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in (0, 5, 11):
            flat = logits.reshape(-1)
            old = flat[i]
            flat[i] = old + eps
            hi, _ = softmax_cross_entropy(logits, labels)
            flat[i] = old - eps
            lo, _ = softmax_cross_entropy(logits, labels)
            flat[i] = old
            assert grad.reshape(-1)[i] == pytest.approx((hi - lo) / (2 * eps), abs=1e-5)

    def test_mse_zero_at_target(self):
        x = np.ones((2, 2))
        loss, grad = mse(x, x)
        assert loss == 0.0
        assert np.all(grad == 0.0)

    def test_sigmoid_range_and_symmetry(self):
        x = np.array([-50.0, 0.0, 50.0])
        s = sigmoid(x)
        assert s[0] == pytest.approx(0.0, abs=1e-12)
        assert s[1] == pytest.approx(0.5)
        assert s[2] == pytest.approx(1.0)

    def test_bce_perfect(self):
        logits = np.array([[-100.0, 100.0]])
        targets = np.array([[0.0, 1.0]])
        loss, grad = binary_cross_entropy_with_logits(logits, targets)
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.allclose(grad, 0.0, atol=1e-6)


class TestOptimizers:
    def _quadratic_param(self):
        from repro.ml.layers import Param

        return Param(np.array([5.0, -3.0]))

    def test_sgd_minimizes_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(200):
            p.zero_grad()
            p.grad += 2 * p.value  # d/dx x^2
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-4)

    def test_sgd_momentum_faster_than_plain(self):
        p1, p2 = self._quadratic_param(), self._quadratic_param()
        plain = SGD([p1], lr=0.01, momentum=0.0)
        heavy = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in ((p1, plain), (p2, heavy)):
                p.zero_grad()
                p.grad += 2 * p.value
                opt.step()
        assert np.abs(p2.value).sum() < np.abs(p1.value).sum()

    def test_adam_minimizes_quadratic(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.zero_grad()
            p.grad += 2 * p.value
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-3)

    def test_weight_decay_shrinks(self):
        from repro.ml.layers import Param

        p = Param(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        opt.step()  # no loss gradient, only decay
        assert p.value[0] < 1.0

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=-1.0)


class TestTrainLoop:
    def test_learns_linearly_separable(self, rng):
        x = rng.standard_normal((120, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        net = tiny_net(rng, n_in=4, n_out=2)
        history = fit_classifier(
            net, x, y, Adam(net.params(), lr=0.01), epochs=30, batch_size=16, seed=0
        )
        assert history.final_accuracy > 0.9
        assert history.losses[-1] < history.losses[0]

    def test_predict_matches_forward(self, rng):
        net = tiny_net(rng)
        x = rng.standard_normal((10, 4))
        preds = predict_classifier(net, x, batch_size=3)
        assert np.array_equal(preds, np.argmax(net(x), axis=1))

    def test_minibatches_cover_everything(self, rng):
        batches = iterate_minibatches(10, 3, rng)
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == list(range(10))

    def test_misaligned_inputs_rejected(self, rng):
        net = tiny_net(rng)
        with pytest.raises(ValueError):
            fit_classifier(net, np.zeros((3, 4)), np.zeros(2, dtype=int),
                           SGD(net.params(), lr=0.1))
