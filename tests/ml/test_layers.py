"""Tests for the NumPy layers, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.ml.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    Param,
    ReLU,
    relu6,
)


def numeric_grad(f, x, eps=1e-5):
    """Central finite differences of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        f_hi = f()
        flat[i] = old - eps
        f_lo = f()
        flat[i] = old
        gflat[i] = (f_hi - f_lo) / (2 * eps)
    return grad


def check_input_gradient(layer, x, atol=1e-6):
    """Backward pass vs finite differences of sum(forward)."""
    def loss():
        return float(layer.forward(x, training=False).sum())

    out = layer.forward(x, training=True)
    analytic = layer.backward(np.ones_like(out))
    numeric = numeric_grad(loss, x)
    assert np.allclose(analytic, numeric, atol=atol), (
        f"max err {np.max(np.abs(analytic - numeric))}"
    )


def check_param_gradient(layer, x, param: Param, atol=1e-6):
    def loss():
        return float(layer.forward(x, training=False).sum())

    out = layer.forward(x, training=True)
    param.zero_grad()
    layer.backward(np.ones_like(out))
    numeric = numeric_grad(loss, param.value)
    assert np.allclose(param.grad, numeric, atol=atol), (
        f"max err {np.max(np.abs(param.grad - numeric))}"
    )


@pytest.fixture()
def x_small(rng):
    return rng.standard_normal((2, 6, 6, 3)) * 0.5


class TestConv2D:
    def test_same_padding_shape(self, x_small):
        conv = Conv2D(3, 4, kernel=3, stride=1)
        assert conv.forward(x_small).shape == (2, 6, 6, 4)

    def test_stride2_shape(self, x_small):
        conv = Conv2D(3, 4, kernel=3, stride=2)
        assert conv.forward(x_small).shape == (2, 3, 3, 4)

    def test_1x1_conv_is_channel_mix(self, rng):
        conv = Conv2D(3, 2, kernel=1, pad=0, rng=rng)
        x = rng.standard_normal((1, 4, 4, 3))
        out = conv.forward(x)
        expected = x @ conv.w.value.reshape(3, 2) + conv.b.value
        assert np.allclose(out, expected)

    def test_input_gradient(self, rng):
        conv = Conv2D(2, 3, kernel=3, stride=1, rng=rng)
        x = rng.standard_normal((1, 4, 4, 2)) * 0.5
        check_input_gradient(conv, x)

    def test_weight_gradient(self, rng):
        conv = Conv2D(2, 2, kernel=3, stride=2, rng=rng)
        x = rng.standard_normal((2, 4, 4, 2)) * 0.5
        check_param_gradient(conv, x, conv.w)

    def test_bias_gradient(self, rng):
        conv = Conv2D(2, 2, kernel=3, rng=rng)
        x = rng.standard_normal((1, 4, 4, 2)) * 0.5
        check_param_gradient(conv, x, conv.b)

    def test_backward_requires_training_forward(self, x_small):
        conv = Conv2D(3, 2)
        conv.forward(x_small, training=False)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((2, 6, 6, 2)))


class TestDepthwiseConv2D:
    def test_preserves_channels(self, x_small):
        dw = DepthwiseConv2D(3, kernel=3)
        assert dw.forward(x_small).shape == (2, 6, 6, 3)

    def test_stride2(self, x_small):
        dw = DepthwiseConv2D(3, kernel=3, stride=2)
        assert dw.forward(x_small).shape == (2, 3, 3, 3)

    def test_input_gradient(self, rng):
        dw = DepthwiseConv2D(2, kernel=3, rng=rng)
        x = rng.standard_normal((1, 4, 4, 2)) * 0.5
        check_input_gradient(dw, x)

    def test_weight_gradient(self, rng):
        dw = DepthwiseConv2D(2, kernel=3, stride=2, rng=rng)
        x = rng.standard_normal((1, 4, 4, 2)) * 0.5
        check_param_gradient(dw, x, dw.w)


class TestActivationsAndPooling:
    def test_relu_clamps(self):
        r = ReLU()
        out = r.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_relu6_caps(self):
        r = relu6()
        out = r.forward(np.array([[-1.0, 3.0, 9.0]]))
        assert np.array_equal(out, [[0.0, 3.0, 6.0]])

    def test_relu_gradient_mask(self, rng):
        r = ReLU()
        x = rng.standard_normal((3, 5))
        check_input_gradient(r, x)

    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = MaxPool2D(2).forward(x)
        assert out[0, 0, 0, 0] == 5.0
        assert out[0, 1, 1, 0] == 15.0

    def test_maxpool_gradient(self, rng):
        mp = MaxPool2D(2)
        x = rng.standard_normal((1, 4, 4, 2))
        check_input_gradient(mp, x)

    def test_maxpool_requires_divisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(3).forward(np.zeros((1, 4, 4, 1)))

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 5, 4))
        out = GlobalAvgPool().forward(x)
        assert out.shape == (2, 4)
        assert np.allclose(out, x.mean(axis=(1, 2)))

    def test_global_avg_pool_gradient(self, rng):
        gap = GlobalAvgPool()
        x = rng.standard_normal((1, 3, 3, 2))
        check_input_gradient(gap, x)

    def test_flatten_roundtrip(self, rng):
        f = Flatten()
        x = rng.standard_normal((2, 3, 4, 5))
        out = f.forward(x, training=True)
        assert out.shape == (2, 60)
        back = f.backward(out)
        assert back.shape == x.shape


class TestDense:
    def test_forward(self, rng):
        d = Dense(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        assert np.allclose(d.forward(x), x @ d.w.value + d.b.value)

    def test_input_gradient(self, rng):
        d = Dense(4, 3, rng=rng)
        x = rng.standard_normal((2, 4))
        check_input_gradient(d, x)

    def test_weight_gradient(self, rng):
        d = Dense(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        check_param_gradient(d, x, d.w)


class TestBatchNorm:
    def test_training_normalizes(self, rng):
        bn = BatchNorm(4)
        x = rng.standard_normal((64, 4)) * 3 + 2
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_inference_uses_running_stats(self, rng):
        bn = BatchNorm(2, momentum=0.0)  # adopt batch stats immediately
        x = rng.standard_normal((32, 2)) * 2 + 5
        bn.forward(x, training=True)
        out = bn.forward(x, training=False)
        assert np.allclose(out.mean(axis=0), 0.0, atol=0.2)

    def test_nhwc_axes(self, rng):
        bn = BatchNorm(3)
        x = rng.standard_normal((2, 4, 4, 3))
        out = bn.forward(x, training=True)
        assert out.shape == x.shape
        assert np.allclose(out.mean(axis=(0, 1, 2)), 0.0, atol=1e-6)

    def test_input_gradient(self, rng):
        bn = BatchNorm(2)
        x = rng.standard_normal((6, 2))

        def loss():
            return float(bn.forward(x, training=True).sum())

        out = bn.forward(x, training=True)
        analytic = bn.backward(np.ones_like(out))
        numeric = numeric_grad(loss, x)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestComputeDtype:
    LAYER_FACTORIES = (
        lambda: Conv2D(3, 4, kernel=3),
        lambda: DepthwiseConv2D(3),
        lambda: BatchNorm(3),
        lambda: ReLU(),
        lambda: relu6(),
        lambda: MaxPool2D(2),
        lambda: GlobalAvgPool(),
        lambda: Flatten(),
    )

    def test_default_is_float64(self):
        layer = Conv2D(3, 4)
        assert layer.compute_dtype == np.float64
        assert layer.w.value.dtype == np.float64

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="float32.*float64|float64.*float32"):
            Conv2D(3, 4).set_compute_dtype("int32")

    @pytest.mark.parametrize("factory", LAYER_FACTORIES)
    def test_float32_forward_never_upcasts(self, factory, rng):
        layer = factory().set_compute_dtype("float32")
        x = rng.random((2, 8, 8, 3)).astype(np.float32)
        out = layer.forward(x, training=False)
        assert out.dtype == np.float32, type(layer).__name__
        for param in layer.params():
            assert param.value.dtype == np.float32
            assert param.grad.dtype == np.float32

    def test_dense_float32(self, rng):
        dense = Dense(6, 3).set_compute_dtype("float32")
        out = dense.forward(rng.random((4, 6)).astype(np.float32), training=False)
        assert out.dtype == np.float32

    def test_batchnorm_running_stats_cast(self):
        bn = BatchNorm(3).set_compute_dtype("float32")
        assert bn.running_mean.dtype == np.float32
        assert bn.running_var.dtype == np.float32

    def test_predict_batch_casts_input(self, rng):
        dense = Dense(6, 3).set_compute_dtype("float32")
        out = dense.predict_batch(rng.random((4, 6)))  # float64 in
        assert out.dtype == np.float32

    def test_cast_back_to_float64(self, rng):
        dense = Dense(6, 3)
        w64 = dense.w.value.copy()
        dense.set_compute_dtype("float32").set_compute_dtype("float64")
        assert dense.w.value.dtype == np.float64
        # Round-tripping through float32 is lossy but close.
        assert np.allclose(dense.w.value, w64, atol=1e-6)


class TestBatchedInferenceBitIdentity:
    def test_dense_rows_independent_of_batch_size(self, rng):
        dense = Dense(32, 5)
        x = rng.random((8, 32))
        batched = dense.forward(x, training=False)
        looped = np.concatenate(
            [dense.forward(x[i : i + 1], training=False) for i in range(8)]
        )
        assert np.array_equal(batched, looped)

    def test_conv_rows_independent_of_batch_size(self, rng):
        conv = Conv2D(3, 4, kernel=3)
        x = rng.random((6, 10, 10, 3))
        batched = conv.forward(x, training=False)
        looped = np.concatenate(
            [conv.forward(x[i : i + 1], training=False) for i in range(6)]
        )
        assert np.array_equal(batched, looped)

    def test_dense_training_and_inference_stay_close(self, rng):
        # Training keeps the BLAS matmul; inference uses the fixed-order
        # reduction.  They may differ in the last ulps, never more.
        dense = Dense(32, 5)
        x = rng.random((8, 32))
        assert np.allclose(
            dense.forward(x, training=True),
            dense.forward(x, training=False),
            rtol=1e-12, atol=1e-12,
        )
