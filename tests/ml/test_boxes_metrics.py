"""Tests for box geometry, NMS, AP and mAP."""

import numpy as np
import pytest

from repro.ml import Detection, evaluate_detections, iou_matrix, nms
from repro.ml.eval.boxes import box_iou, xywh_to_xyxy, xyxy_to_xywh
from repro.ml.eval.metrics import average_precision, classification_accuracy


class TestIoU:
    def test_identical_boxes(self):
        assert box_iou((0, 0, 10, 10), (0, 0, 10, 10)) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert box_iou((0, 0, 5, 5), (10, 10, 5, 5)) == 0.0

    def test_half_overlap(self):
        # Two 10x10 boxes sharing a 5x10 strip: IoU = 50/150.
        assert box_iou((0, 0, 10, 10), (5, 0, 10, 10)) == pytest.approx(1 / 3)

    def test_contained_box(self):
        assert box_iou((0, 0, 10, 10), (2, 2, 5, 5)) == pytest.approx(25 / 100)

    def test_matrix_shape(self):
        a = np.array([[0, 0, 5, 5], [10, 10, 5, 5]])
        b = np.array([[0, 0, 5, 5], [2, 2, 5, 5], [20, 20, 1, 1]])
        m = iou_matrix(a, b)
        assert m.shape == (2, 3)
        assert m[0, 0] == pytest.approx(1.0)
        assert m[1, 2] == 0.0

    def test_empty_inputs(self):
        assert iou_matrix(np.zeros((0, 4)), np.zeros((3, 4))).shape == (0, 3)

    def test_degenerate_box_zero_iou(self):
        assert box_iou((0, 0, 0, 10), (0, 0, 5, 5)) == 0.0

    def test_conversions_roundtrip(self):
        boxes = np.array([[1.0, 2.0, 3.0, 4.0], [0.0, 0.0, 10.0, 5.0]])
        assert np.allclose(xyxy_to_xywh(xywh_to_xyxy(boxes)), boxes)


class TestNMS:
    def test_keeps_highest_scoring(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 10, 10]])
        keep = nms(boxes, np.array([0.5, 0.9]), iou_threshold=0.5)
        assert keep == [1]

    def test_keeps_disjoint(self):
        boxes = np.array([[0, 0, 10, 10], [50, 50, 10, 10]])
        keep = nms(boxes, np.array([0.5, 0.9]), iou_threshold=0.5)
        assert sorted(keep) == [0, 1]

    def test_order_by_score(self):
        boxes = np.array([[0, 0, 5, 5], [20, 0, 5, 5], [40, 0, 5, 5]])
        keep = nms(boxes, np.array([0.1, 0.9, 0.5]), iou_threshold=0.5)
        assert keep == [1, 2, 0]

    def test_empty(self):
        assert nms(np.zeros((0, 4)), np.zeros(0)) == []

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            nms(np.zeros((2, 4)), np.zeros(3))


class TestAveragePrecision:
    def test_perfect_detector(self):
        recalls = np.array([0.5, 1.0])
        precisions = np.array([1.0, 1.0])
        assert average_precision(recalls, precisions) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert average_precision(np.array([]), np.array([])) == 0.0

    def test_monotone_envelope(self):
        """A precision dip is filled in by the envelope."""
        recalls = np.array([0.25, 0.5, 0.75, 1.0])
        precisions = np.array([1.0, 0.5, 1.0, 0.8])
        ap = average_precision(recalls, precisions)
        # Envelope: [1.0, 1.0, 1.0, 0.8] -> 0.75*1.0 + 0.25*0.8
        assert ap == pytest.approx(0.95)


def make_gt(label, box):
    return (label, box)


class TestEvaluateDetections:
    def test_perfect_predictions(self):
        gts = [[make_gt("person", (0, 0, 10, 10)), make_gt("person", (50, 50, 8, 8))]]
        preds = [[
            Detection("person", 0.9, 0, 0, 10, 10),
            Detection("person", 0.8, 50, 50, 8, 8),
        ]]
        result = evaluate_detections(preds, gts, ["person"])
        assert result.map == pytest.approx(1.0)

    def test_missed_gt_halves_recall(self):
        gts = [[make_gt("person", (0, 0, 10, 10)), make_gt("person", (50, 50, 8, 8))]]
        preds = [[Detection("person", 0.9, 0, 0, 10, 10)]]
        result = evaluate_detections(preds, gts, ["person"])
        assert result.map == pytest.approx(0.5)

    def test_false_positive_lowers_precision(self):
        gts = [[make_gt("person", (0, 0, 10, 10))]]
        preds = [[
            Detection("person", 0.9, 100, 100, 10, 10),  # FP scored higher
            Detection("person", 0.5, 0, 0, 10, 10),
        ]]
        result = evaluate_detections(preds, gts, ["person"])
        assert 0.0 < result.map < 1.0

    def test_duplicate_detection_counts_once(self):
        gts = [[make_gt("person", (0, 0, 10, 10))]]
        preds = [[
            Detection("person", 0.9, 0, 0, 10, 10),
            Detection("person", 0.8, 1, 0, 10, 10),  # duplicate -> FP
        ]]
        result = evaluate_detections(preds, gts, ["person"])
        assert result.map == pytest.approx(1.0)  # AP unaffected by tail FP

    def test_iou_threshold_matters(self):
        gts = [[make_gt("person", (0, 0, 10, 10))]]
        preds = [[Detection("person", 0.9, 4, 0, 10, 10)]]  # IoU ~ 0.43
        loose = evaluate_detections(preds, gts, ["person"], iou_threshold=0.4)
        strict = evaluate_detections(preds, gts, ["person"], iou_threshold=0.5)
        assert loose.map == pytest.approx(1.0)
        assert strict.map == 0.0

    def test_absent_class_skipped(self):
        gts = [[make_gt("person", (0, 0, 10, 10))]]
        preds = [[Detection("person", 0.9, 0, 0, 10, 10)]]
        result = evaluate_detections(preds, gts, ["person", "unicorn"])
        assert set(result.per_class_ap) == {"person"}

    def test_wrong_class_is_fp(self):
        gts = [[make_gt("person", (0, 0, 10, 10)), make_gt("head", (2, 2, 3, 3))]]
        preds = [[Detection("head", 0.9, 0, 0, 10, 10)]]
        result = evaluate_detections(preds, gts, ["person", "head"])
        assert result.per_class_ap["person"] == 0.0
        assert result.per_class_ap["head"] == 0.0

    def test_accepts_gt_objects_with_attrs(self, small_scene):
        preds = [[]]
        result = evaluate_detections(preds, [small_scene.boxes], ["person"])
        assert result.per_class_ap["person"] == 0.0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            evaluate_detections([[], []], [[]], ["person"])


class TestClassificationAccuracy:
    def test_perfect(self):
        assert classification_accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        assert classification_accuracy(np.array([0, 1, 0]), np.array([0, 1, 2])) == pytest.approx(2 / 3)

    def test_empty(self):
        assert classification_accuracy(np.array([]), np.array([])) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classification_accuracy(np.array([1]), np.array([1, 2]))
