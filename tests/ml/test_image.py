"""Tests for image utilities (resize, grayscale, padded crop)."""

import numpy as np
import pytest

from repro.ml import crop_padded, ensure_channels, resize_bilinear, to_gray


class TestToGray:
    def test_luma_weights(self):
        img = np.zeros((2, 2, 3))
        img[:, :, 0] = 1.0
        assert np.allclose(to_gray(img), 0.299)

    def test_2d_passthrough(self):
        img = np.full((3, 3), 0.5)
        assert to_gray(img) is img

    def test_single_channel_squeezed(self):
        img = np.full((3, 3, 1), 0.4)
        assert to_gray(img).shape == (3, 3)

    def test_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            to_gray(np.zeros((2, 2, 4)))


class TestEnsureChannels:
    def test_adds_axis(self):
        assert ensure_channels(np.zeros((4, 5))).shape == (4, 5, 1)

    def test_keeps_3d(self):
        x = np.zeros((4, 5, 3))
        assert ensure_channels(x).shape == (4, 5, 3)


class TestResizeBilinear:
    def test_identity_when_same_size(self):
        img = np.random.default_rng(0).random((5, 7, 3))
        out = resize_bilinear(img, (5, 7))
        assert np.allclose(out, img)

    def test_constant_image_preserved(self):
        img = np.full((8, 8), 0.37)
        out = resize_bilinear(img, (3, 5))
        assert np.allclose(out, 0.37)

    def test_upsample_shape(self):
        out = resize_bilinear(np.zeros((4, 4, 3)), (9, 13))
        assert out.shape == (9, 13, 3)

    def test_2d_stays_2d(self):
        out = resize_bilinear(np.zeros((4, 4)), (8, 8))
        assert out.shape == (8, 8)

    def test_linear_ramp_preserved(self):
        """Bilinear resize of a linear ramp stays (approximately) linear."""
        ramp = np.tile(np.linspace(0, 1, 16), (4, 1))
        out = resize_bilinear(ramp, (4, 31))
        diffs = np.diff(out[0])
        assert np.all(diffs >= -1e-12)
        assert np.allclose(diffs[2:-2], diffs[2], atol=1e-6)

    def test_downsample_averages(self):
        img = np.zeros((2, 2))
        img[0, 0] = 1.0
        out = resize_bilinear(img, (1, 1))
        assert 0.2 <= out[0, 0] <= 0.3  # center sample of the bilinear surface

    def test_rejects_empty_output(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), (0, 4))


class TestCropPadded:
    def test_interior_crop(self):
        img = np.arange(24, dtype=float).reshape(4, 6)
        out = crop_padded(img, 1, 1, 3, 2)
        assert np.array_equal(out, img[1:3, 1:4])

    def test_pads_out_of_bounds(self):
        img = np.ones((4, 4, 3))
        out = crop_padded(img, -2, -2, 4, 4)
        assert out.shape == (4, 4, 3)
        assert out[0, 0, 0] == 0.0  # padded corner
        assert out[3, 3, 0] == 1.0  # real pixel

    def test_fully_outside_is_zeros(self):
        img = np.ones((4, 4))
        out = crop_padded(img, 10, 10, 3, 3)
        assert out.shape == (3, 3)
        assert np.all(out == 0.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            crop_padded(np.ones((4, 4)), 0, 0, 0, 3)
