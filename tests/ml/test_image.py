"""Tests for image utilities (resize, grayscale, padded crop)."""

import numpy as np
import pytest

from repro.ml import crop_padded, ensure_channels, resize_bilinear, to_gray


class TestToGray:
    def test_luma_weights(self):
        img = np.zeros((2, 2, 3))
        img[:, :, 0] = 1.0
        assert np.allclose(to_gray(img), 0.299)

    def test_2d_passthrough(self):
        img = np.full((3, 3), 0.5)
        assert to_gray(img) is img

    def test_single_channel_squeezed(self):
        img = np.full((3, 3, 1), 0.4)
        assert to_gray(img).shape == (3, 3)

    def test_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            to_gray(np.zeros((2, 2, 4)))


class TestEnsureChannels:
    def test_adds_axis(self):
        assert ensure_channels(np.zeros((4, 5))).shape == (4, 5, 1)

    def test_keeps_3d(self):
        x = np.zeros((4, 5, 3))
        assert ensure_channels(x).shape == (4, 5, 3)


class TestResizeBilinear:
    def test_identity_when_same_size(self):
        img = np.random.default_rng(0).random((5, 7, 3))
        out = resize_bilinear(img, (5, 7))
        assert np.allclose(out, img)

    def test_constant_image_preserved(self):
        img = np.full((8, 8), 0.37)
        out = resize_bilinear(img, (3, 5))
        assert np.allclose(out, 0.37)

    def test_upsample_shape(self):
        out = resize_bilinear(np.zeros((4, 4, 3)), (9, 13))
        assert out.shape == (9, 13, 3)

    def test_2d_stays_2d(self):
        out = resize_bilinear(np.zeros((4, 4)), (8, 8))
        assert out.shape == (8, 8)

    def test_linear_ramp_preserved(self):
        """Bilinear resize of a linear ramp stays (approximately) linear."""
        ramp = np.tile(np.linspace(0, 1, 16), (4, 1))
        out = resize_bilinear(ramp, (4, 31))
        diffs = np.diff(out[0])
        assert np.all(diffs >= -1e-12)
        assert np.allclose(diffs[2:-2], diffs[2], atol=1e-6)

    def test_downsample_averages(self):
        img = np.zeros((2, 2))
        img[0, 0] = 1.0
        out = resize_bilinear(img, (1, 1))
        assert 0.2 <= out[0, 0] <= 0.3  # center sample of the bilinear surface

    def test_rejects_empty_output(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), (0, 4))


class TestCropPadded:
    def test_interior_crop(self):
        img = np.arange(24, dtype=float).reshape(4, 6)
        out = crop_padded(img, 1, 1, 3, 2)
        assert np.array_equal(out, img[1:3, 1:4])

    def test_pads_out_of_bounds(self):
        img = np.ones((4, 4, 3))
        out = crop_padded(img, -2, -2, 4, 4)
        assert out.shape == (4, 4, 3)
        assert out[0, 0, 0] == 0.0  # padded corner
        assert out[3, 3, 0] == 1.0  # real pixel

    def test_fully_outside_is_zeros(self):
        img = np.ones((4, 4))
        out = crop_padded(img, 10, 10, 3, 3)
        assert out.shape == (3, 3)
        assert np.all(out == 0.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            crop_padded(np.ones((4, 4)), 0, 0, 0, 3)


def _reference_resize(image, out_hw):
    """The pre-cache resize implementation, kept as a bit-exact oracle."""
    oh, ow = out_hw
    squeeze = image.ndim == 2
    img = ensure_channels(np.asarray(image, dtype=np.float64))
    h, w, _ = img.shape
    if (h, w) == (oh, ow):
        out = img.copy()
        return out[:, :, 0] if squeeze else out
    ys = (np.arange(oh) + 0.5) * h / oh - 0.5
    xs = (np.arange(ow) + 0.5) * w / ow - 0.5
    ys = np.clip(ys, 0.0, h - 1.0)
    xs = np.clip(xs, 0.0, w - 1.0)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    fy = (ys - y0)[:, None, None]
    fx = (xs - x0)[None, :, None]
    top = img[np.ix_(y0, x0)] * (1 - fx) + img[np.ix_(y0, x1)] * fx
    bottom = img[np.ix_(y1, x0)] * (1 - fx) + img[np.ix_(y1, x1)] * fx
    out = top * (1 - fy) + bottom * fy
    return out[:, :, 0] if squeeze else out


class TestResizePlanCache:
    def test_bit_identical_to_uncached_reference(self):
        from repro.ml.image import _resize_plan

        rng = np.random.default_rng(11)
        _resize_plan.cache_clear()
        cases = [((13, 21), (32, 32)), ((64, 48), (7, 9)),
                 ((5, 5), (20, 3)), ((40, 40), (40, 41))]
        for in_hw, out_hw in cases:
            img = rng.random((*in_hw, 3))
            expected = _reference_resize(img, out_hw)
            # Twice: a cold plan and a cached plan must both match.
            assert np.array_equal(resize_bilinear(img, out_hw), expected)
            assert np.array_equal(resize_bilinear(img, out_hw), expected)

    def test_repeated_shapes_hit_the_cache(self):
        from repro.ml.image import _resize_plan

        _resize_plan.cache_clear()
        rng = np.random.default_rng(3)
        for _ in range(5):
            resize_bilinear(rng.random((17, 23, 3)), (8, 8))
        info = _resize_plan.cache_info()
        assert info.misses == 1
        assert info.hits == 4

    def test_cached_plan_is_read_only(self):
        from repro.ml.image import _resize_plan

        plan = _resize_plan((10, 10), (4, 4))
        for table in plan:
            with pytest.raises(ValueError):
                table[...] = 0

    def test_output_is_writable_and_fresh(self):
        img = np.ones((6, 6, 3))
        out = resize_bilinear(img, (3, 3))
        out[...] = -1.0  # mutating one output must not poison the next
        again = resize_bilinear(img, (3, 3))
        assert np.all(again == 1.0)

    def test_same_size_still_copies(self):
        img = np.ones((4, 4, 3))
        out = resize_bilinear(img, (4, 4))
        out[...] = 0.0
        assert np.all(img == 1.0)
