"""Tests for the correlation detector and the trainable grid detector."""

import numpy as np
import pytest

from repro.datasets import GroundTruthBox
from repro.ml import CorrelationDetector, evaluate_detections
from repro.ml.detector.classical import featurize
from repro.ml.detector.grid import GridDetector, GridDetectorConfig


class TestFeaturize:
    def test_rgb_adds_edge_channel(self):
        img = np.random.default_rng(0).random((8, 8, 3))
        feat = featurize(img, "rgb")
        assert feat.shape == (8, 8, 4)

    def test_gray_collapses_channels(self):
        img = np.random.default_rng(0).random((8, 8, 3))
        feat = featurize(img, "gray")
        assert feat.shape == (8, 8, 2)

    def test_gray_accepts_2d(self):
        feat = featurize(np.zeros((8, 8)), "gray")
        assert feat.shape == (8, 8, 2)

    def test_rgb_rejects_2d(self):
        with pytest.raises(ValueError):
            featurize(np.zeros((8, 8)), "rgb")

    def test_chroma_edges_survive_rgb_vanish_in_gray(self):
        """An iso-luminant boundary is visible to RGB, invisible to gray.

        This is the mechanism behind the paper's RGB->gray accuracy drop.
        """
        img = np.zeros((8, 8, 3))
        # Left: pure red at luma L; right: pure blue scaled to the same luma.
        img[:, :4, 0] = 0.5
        img[:, 4:, 2] = 0.5 * 0.299 / 0.114
        img = np.clip(img, 0, 1)
        rgb_edge = featurize(img, "rgb")[:, 3:5, 3].max()
        gray_edge = featurize(img, "gray")[:, 3:5, 1].max()
        assert rgb_edge > 5 * gray_edge


class TestCorrelationDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelationDetector(classes=())
        with pytest.raises(ValueError):
            CorrelationDetector(classes=("a",), colorspace="hsv")

    def test_detect_before_fit_raises(self):
        det = CorrelationDetector(classes=("person",))
        with pytest.raises(RuntimeError):
            det.detect(np.zeros((32, 32, 3)))

    def test_fit_records_templates(self, train_scenes):
        det = CorrelationDetector(classes=("person", "head"))
        det.fit([s.image for s in train_scenes], [s.boxes for s in train_scenes])
        assert set(det.fitted_classes) == {"person", "head"}

    def test_recovers_planted_square(self):
        """A high-contrast synthetic square is found near-perfectly."""
        rng = np.random.default_rng(0)
        def make(n):
            imgs, gts = [], []
            for i in range(n):
                img = np.full((96, 96, 3), 0.4) + 0.02 * rng.standard_normal((96, 96, 3))
                x, y = rng.integers(10, 60, size=2)
                img[y : y + 20, x : x + 20, 0] = 0.95
                img = np.clip(img, 0, 1)
                imgs.append(img)
                gts.append([GroundTruthBox("blob", x, y, 20, 20)])
            return imgs, gts

        train_x, train_y = make(4)
        test_x, test_y = make(3)
        det = CorrelationDetector(classes=("blob",), scales=(0.9, 1.0, 1.15))
        det.fit(train_x, train_y)
        preds = det.detect_batch(test_x)
        result = evaluate_detections(preds, test_y, ["blob"])
        assert result.map > 0.9

    def test_crowdhuman_heads_detectable(self, train_scenes, test_scenes):
        det = CorrelationDetector(classes=("head",))
        det.fit([s.image for s in train_scenes], [s.boxes for s in train_scenes])
        preds = det.detect_batch([s.image for s in test_scenes])
        result = evaluate_detections(preds, [s.boxes for s in test_scenes], ["head"])
        assert result.map > 0.2

    def test_gray_mode_on_analog_gray_frame(self, train_scenes):
        """A gray detector consumes 2-D frames (in-sensor merged)."""
        det = CorrelationDetector(classes=("person",), colorspace="gray")
        gray_imgs = [s.image.mean(axis=2) for s in train_scenes]
        det.fit(gray_imgs, [s.boxes for s in train_scenes])
        dets = det.detect(gray_imgs[0])
        assert isinstance(dets, list)

    def test_detections_sorted_by_score(self, train_scenes, test_scenes):
        det = CorrelationDetector(classes=("person", "head"))
        det.fit([s.image for s in train_scenes], [s.boxes for s in train_scenes])
        dets = det.detect(test_scenes[0].image)
        scores = [d.score for d in dets]
        assert scores == sorted(scores, reverse=True)

    def test_max_detections_cap(self, train_scenes, test_scenes):
        det = CorrelationDetector(classes=("person",), max_detections=3,
                                  cross_class_nms_iou=None)
        det.fit([s.image for s in train_scenes], [s.boxes for s in train_scenes])
        dets = det.detect(test_scenes[0].image)
        assert len(dets) <= 3


class TestGridDetector:
    @pytest.fixture(scope="class")
    def simple_data(self):
        """Bright squares on dark backgrounds, one class."""
        rng = np.random.default_rng(7)
        images, annotations = [], []
        for _ in range(24):
            img = 0.1 + 0.02 * rng.standard_normal((48, 48, 3))
            x, y = rng.integers(4, 30, size=2)
            img[y : y + 14, x : x + 14, :] = 0.9
            images.append(np.clip(img, 0, 1))
            annotations.append([GroundTruthBox("blob", x, y, 14, 14)])
        return np.stack(images), annotations

    def test_input_dims_must_divide_stride(self):
        with pytest.raises(ValueError):
            GridDetector(GridDetectorConfig(input_hw=(50, 48), classes=("a",)))

    def test_encode_targets_places_center(self, simple_data):
        _, annotations = simple_data
        det = GridDetector(GridDetectorConfig(input_hw=(48, 48), classes=("blob",)))
        target = det.encode_targets(annotations[0])
        assert target.shape == (6, 6, 6)
        assert target[..., 0].sum() == 1.0

    def test_training_reduces_loss(self, simple_data):
        images, annotations = simple_data
        det = GridDetector(GridDetectorConfig(input_hw=(48, 48), classes=("blob",)), seed=1)
        losses = det.fit(images, annotations, epochs=8, batch_size=8, lr=2e-3, seed=0)
        assert losses[-1] < losses[0]

    def test_trained_detector_finds_blobs(self, simple_data):
        images, annotations = simple_data
        config = GridDetectorConfig(
            input_hw=(48, 48), classes=("blob",), score_threshold=0.3
        )
        det = GridDetector(config, seed=1)
        det.fit(images, annotations, epochs=30, batch_size=8, lr=2e-3, seed=0)
        preds = [det.detect(img) for img in images[:8]]
        result = evaluate_detections(
            preds, annotations[:8], ["blob"], iou_threshold=0.3
        )
        assert result.map > 0.5


class TestGridDecodeVectorized:
    """The vectorized decode must match the original per-cell loop exactly."""

    @staticmethod
    def _reference_decode(det, preds):
        """The pre-vectorization per-cell decode, kept as the oracle."""
        from repro.ml.detector.grid import nms, sigmoid, softmax
        from repro.ml.eval.metrics import Detection

        obj = sigmoid(preds[..., 0])
        offs = sigmoid(preds[..., 1:3])
        sizes = np.exp(np.clip(preds[..., 3:5], -2.0, 8.0))
        cls_probs = softmax(preds[..., 5:], axis=-1)
        boxes, scores, labels = [], [], []
        ys, xs = np.nonzero(obj >= det.config.score_threshold)
        for gy, gx in zip(ys, xs):
            cx = (gx + offs[gy, gx, 0]) * det.STRIDE
            cy = (gy + offs[gy, gx, 1]) * det.STRIDE
            w, h = sizes[gy, gx]
            cls = int(np.argmax(cls_probs[gy, gx]))
            boxes.append((cx - w / 2.0, cy - h / 2.0, float(w), float(h)))
            scores.append(float(obj[gy, gx] * cls_probs[gy, gx, cls]))
            labels.append(det.config.classes[cls])
        if not boxes:
            return []
        keep = nms(np.asarray(boxes), np.asarray(scores), det.config.nms_iou)
        return [Detection(labels[i], scores[i], *boxes[i]) for i in keep]

    @pytest.fixture(scope="class")
    def detector(self):
        return GridDetector(
            GridDetectorConfig(
                input_hw=(48, 48), classes=("blob", "spot"), score_threshold=0.35
            ),
            seed=3,
        )

    def test_identical_on_random_heads(self, detector):
        rng = np.random.default_rng(21)
        for _ in range(5):
            preds = rng.standard_normal((6, 6, 7)) * 2.0
            got = detector.decode(preds)
            expected = self._reference_decode(detector, preds)
            assert len(got) == len(expected)
            for a, b in zip(got, expected):
                assert a.label == b.label
                assert a.score == b.score
                assert (a.x, a.y, a.w, a.h) == (b.x, b.y, b.w, b.h)

    def test_identical_on_fixed_clip(self, detector):
        # detect() on real frames goes through decode(): same result as
        # the reference loop on the same head output.
        from repro.stream.source import pedestrian_clip

        clip = pedestrian_clip(n_frames=2, resolution=(48, 48), seed=9)
        for frame in clip.frames:
            preds = detector.net.forward(frame[None], training=False)[0]
            got = detector.detect(frame)
            expected = self._reference_decode(detector, preds)
            assert len(got) == len(expected)
            for a, b in zip(got, expected):
                assert (a.label, a.score, a.x, a.y, a.w, a.h) == (
                    b.label, b.score, b.x, b.y, b.w, b.h
                )

    def test_empty_when_nothing_clears_threshold(self, detector):
        preds = np.full((6, 6, 7), -10.0)  # objectness sigmoid ~ 0
        assert detector.decode(preds) == []

    def test_detection_fields_are_plain_floats(self, detector):
        rng = np.random.default_rng(2)
        preds = rng.standard_normal((6, 6, 7)) * 2.0
        for d in detector.decode(preds):
            assert isinstance(d.score, float)
            assert isinstance(d.x, float) and isinstance(d.w, float)
