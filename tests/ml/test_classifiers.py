"""Tests for the HOG and CNN stage-2 classifiers."""

import numpy as np
import pytest

from repro.datasets import rafdb_like
from repro.ml import (
    CLASSIFIER_PRESETS,
    HOGClassifier,
    SoftmaxRegression,
    hog_features,
    mcunetv2_like_classifier,
    mobilenetv2_like_classifier,
    tiny_cnn,
)
from repro.ml.train import fit_classifier, predict_classifier
from repro.ml.optim import Adam


class TestHOGFeatures:
    def test_shape_deterministic(self, tiny_faces):
        images, _ = tiny_faces
        feats = hog_features(images[:4])
        assert feats.shape[0] == 4
        assert np.array_equal(feats, hog_features(images[:4]))

    def test_l2_normalized(self, tiny_faces):
        images, _ = tiny_faces
        feats = hog_features(images[:4])
        norms = np.linalg.norm(feats, axis=1)
        assert np.allclose(norms, 1.0)

    def test_gray_batch_supported(self, tiny_faces):
        images, _ = tiny_faces
        gray = images.mean(axis=3)
        feats = hog_features(gray, include_color=False)
        assert feats.shape[0] == images.shape[0]

    def test_tiny_images_cap_cells(self):
        imgs = np.random.default_rng(0).random((2, 6, 6, 3))
        feats = hog_features(imgs, n_cells=8)  # capped to 3
        assert feats.shape[1] > 0

    def test_rotation_changes_features(self, tiny_faces):
        images, _ = tiny_faces
        rotated = np.rot90(images[:2], axes=(1, 2))
        a = hog_features(images[:2])
        b = hog_features(rotated)
        assert not np.allclose(a, b)


class TestSoftmaxRegression:
    def test_separable_problem(self, rng):
        x = rng.standard_normal((90, 5))
        y = (x[:, 0] > 0).astype(np.int64)
        model = SoftmaxRegression(n_classes=2, epochs=200).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.95

    def test_predict_proba_sums_to_one(self, rng):
        x = rng.standard_normal((20, 4))
        y = rng.integers(0, 3, 20)
        model = SoftmaxRegression(n_classes=3, epochs=50).fit(x, y)
        probs = model.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxRegression(n_classes=2).predict(np.zeros((1, 3)))


class TestHOGClassifier:
    def test_preset_validation(self):
        with pytest.raises(ValueError):
            HOGClassifier("resnet-like", n_classes=7)

    def test_presets_exist(self):
        assert "mcunetv2-like" in CLASSIFIER_PRESETS
        assert "mobilenetv2-like" in CLASSIFIER_PRESETS

    def test_learns_expressions_at_56px(self):
        xtr, ytr = rafdb_like(140, size=56, seed=0)
        xte, yte = rafdb_like(56, size=56, seed=1)
        clf = HOGClassifier("mobilenetv2-like", n_classes=7, epochs=250).fit(xtr, ytr)
        assert clf.accuracy(xte, yte) > 0.5  # 7-class chance is 0.14

    def test_resolution_sensitivity(self):
        """The Table 3 effect: higher ROI resolution -> higher accuracy."""
        accs = {}
        for size in (14, 56):
            xtr, ytr = rafdb_like(140, size=size, seed=0)
            xte, yte = rafdb_like(56, size=size, seed=1)
            clf = HOGClassifier("mobilenetv2-like", n_classes=7, epochs=250).fit(xtr, ytr)
            accs[size] = clf.accuracy(xte, yte)
        assert accs[56] > accs[14] + 0.1

    def test_unfitted_raises(self, tiny_faces):
        images, labels = tiny_faces
        with pytest.raises(RuntimeError):
            HOGClassifier("mcunetv2-like", n_classes=7).predict(images)


class TestTinyCNN:
    def test_output_shape(self, rng):
        net = tiny_cnn(16, n_classes=5, width=4)
        x = rng.random((3, 16, 16, 3))
        assert net(x).shape == (3, 5)

    def test_odd_input_size_handled(self, rng):
        net = tiny_cnn(14, n_classes=7, width=4)
        x = rng.random((2, 14, 14, 3))
        assert net(x).shape == (2, 7)

    def test_capacity_ordering(self):
        small = mcunetv2_like_classifier(28, 7)
        large = mobilenetv2_like_classifier(28, 7)
        assert large.n_parameters() > small.n_parameters()

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            tiny_cnn(4, n_classes=2)

    def test_trains_on_trivial_task(self, rng):
        """Black vs white images: the CNN must fit this quickly."""
        x = np.concatenate([
            np.zeros((12, 16, 16, 3)),
            np.ones((12, 16, 16, 3)),
        ])
        y = np.array([0] * 12 + [1] * 12)
        net = tiny_cnn(16, n_classes=2, width=4, seed=1)
        fit_classifier(net, x, y, Adam(net.params(), lr=5e-3), epochs=12,
                       batch_size=6, seed=0)
        preds = predict_classifier(net, x)
        assert np.mean(preds == y) > 0.9


class TestCropClassifier:
    @pytest.fixture(scope="class")
    def classifier(self):
        from repro.ml import CropClassifier

        return CropClassifier(tiny_cnn(16, 3, seed=2), (16, 16), ("a", "b", "c"))

    @pytest.fixture(scope="class")
    def crops(self):
        rng = np.random.default_rng(5)
        return [rng.random((h, w, 3)) for h, w in [(10, 14), (30, 22), (16, 16)]]

    def test_validation(self):
        from repro.ml import CropClassifier

        net = tiny_cnn(16, 2, seed=0)
        with pytest.raises(ValueError, match="input_hw"):
            CropClassifier(net, (0, 16), ("a", "b"))
        with pytest.raises(ValueError, match="classes"):
            CropClassifier(net, (16, 16), ())

    def test_call_returns_prediction(self, classifier, crops):
        pred = classifier(crops[0])
        assert pred.label in ("a", "b", "c")
        assert pred.index == int(np.argmax(pred.logits))
        assert 0.0 < pred.score <= 1.0
        assert pred.logits.shape == (3,)

    def test_preprocess_resizes_and_adds_channels(self, classifier):
        out = classifier.preprocess(np.ones((7, 9)))
        assert out.shape == (16, 16, 1) or out.shape == (16, 16)
        out = classifier.preprocess(np.ones((40, 3, 3)))
        assert out.shape == (16, 16, 3)

    def test_call_equals_batch_of_one(self, classifier, crops):
        for crop in crops:
            single = classifier(crop)
            batch = classifier.classify_batch(classifier.preprocess(crop)[None])[0]
            assert single.label == batch.label
            assert np.array_equal(single.logits, batch.logits)

    def test_classify_batch_rejects_non_stack(self, classifier):
        with pytest.raises(ValueError, match=r"\(N, H, W, C\)"):
            classifier.classify_batch(np.ones((16, 16, 3)))

    def test_batched_rows_bit_identical_to_singles(self, classifier, crops):
        stack = np.stack([classifier.preprocess(c) for c in crops])
        batched = classifier.classify_batch(stack)
        for row, crop in enumerate(crops):
            single = classifier(crop)
            assert np.array_equal(batched[row].logits, single.logits)

    def test_float32_parity(self, crops):
        from repro.ml import CropClassifier
        from repro.ml.classifier.crop import (
            FLOAT32_LOGIT_ATOL,
            FLOAT32_LOGIT_RTOL,
        )

        f64 = CropClassifier(tiny_cnn(16, 3, seed=2), (16, 16), ("a", "b", "c"))
        f32 = CropClassifier(
            tiny_cnn(16, 3, seed=2), (16, 16), ("a", "b", "c")
        ).set_compute_dtype("float32")
        assert f32.compute_dtype == np.float32
        for crop in crops:
            a, b = f64(crop), f32(crop)
            assert b.logits.dtype == np.float32
            assert a.index == b.index
            assert np.allclose(
                b.logits, a.logits,
                atol=FLOAT32_LOGIT_ATOL, rtol=FLOAT32_LOGIT_RTOL,
            )

    def test_prediction_str(self, classifier, crops):
        text = str(classifier(crops[0]))
        assert classifier(crops[0]).label in text
