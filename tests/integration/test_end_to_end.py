"""Integration tests: the full HiRISE system wired end to end.

These exercise sensor -> detector -> ROI feedback -> selective readout ->
classifier across module boundaries, including the claims that matter:
HiRISE must beat the baseline on transfer/energy/memory *without* losing
the task signal (the crops it reads must still contain the objects).
"""

import numpy as np
import pytest

from repro.core import (
    ConventionalPipeline,
    HiRISEConfig,
    HiRISEPipeline,
    ROI,
    compare,
)
from repro.datasets import EXPRESSIONS, SceneGenerator, CROWDHUMAN_LIKE, rafdb_like
from repro.ml import CorrelationDetector, HOGClassifier, iou_matrix
from repro.sensor import NoiseModel


@pytest.fixture(scope="module")
def fitted_detector(train_scenes):
    """A head detector fitted on 2x-pooled frames (stage-1 domain)."""
    from repro.sensor import AnalogPoolingModel, PixelArray, SensorReadout

    frames, boxes = [], []
    for scene in train_scenes:
        arr = PixelArray.from_image(scene.image, noise=NoiseModel())
        frame = SensorReadout(arr, pooling=AnalogPoolingModel()).read_compressed(2).images
        frames.append(frame)
        boxes.append([b.scaled(0.5, 0.5) for b in scene.boxes])
    det = CorrelationDetector(classes=("head",))
    det.fit(frames, boxes)
    return det


class TestDetectorDrivenPipeline:
    def test_detected_rois_cover_ground_truth(self, fitted_detector, test_scenes):
        """Stage-2 crops must actually contain heads (the system's point)."""
        scene = test_scenes[0]
        pipeline = HiRISEPipeline(
            detector=fitted_detector.detect,
            config=HiRISEConfig(pool_k=2, roi_pad_fraction=0.15, max_rois=24),
            noise=NoiseModel(),
        )
        outcome = pipeline.run(scene.image)
        assert outcome.rois, "detector found nothing"

        gt = np.array([b.xywh for b in scene.boxes_for("head")])
        pred = np.array([r.xywh for r in outcome.rois], dtype=float)
        ious = iou_matrix(gt, pred)
        recalled = (ious.max(axis=1) > 0.25).mean()
        assert recalled > 0.4, f"only {recalled:.0%} of heads covered by ROIs"

    def test_hirise_beats_baseline_on_detected_rois(self, fitted_detector, test_scenes):
        scene = test_scenes[0]
        cfg = HiRISEConfig(pool_k=2, max_rois=24)
        hirise = HiRISEPipeline(
            detector=fitted_detector.detect, config=cfg, noise=NoiseModel()
        ).run(scene.image)
        baseline = ConventionalPipeline(noise=NoiseModel()).run(scene.image)
        cmp = compare(hirise, baseline)
        assert cmp.transfer_reduction > 2
        assert cmp.energy_reduction > 2
        assert cmp.memory_reduction > 2

    def test_crops_match_scene_content(self, fitted_detector, test_scenes):
        """Selective readout returns the same pixels a digital crop would."""
        scene = test_scenes[1]
        outcome = HiRISEPipeline(
            detector=fitted_detector.detect,
            config=HiRISEConfig(pool_k=2, max_rois=8),
        ).run(scene.image)
        for roi, crop in zip(outcome.rois, outcome.roi_crops):
            digital = scene.image[roi.y : roi.y2, roi.x : roi.x2, :]
            assert np.max(np.abs(crop - digital)) < 2 / 255.0


class TestTwoStageFacePipeline:
    """The paper's end-goal: expression recognition on head ROIs."""

    def test_classifier_runs_on_roi_crops(self):
        from repro.ml.image import resize_bilinear

        xtr, ytr = rafdb_like(84, size=28, seed=0)
        clf = HOGClassifier("mcunetv2-like", n_classes=7, epochs=120).fit(xtr, ytr)

        # Paste two faces into a scene and read them back as ROIs.
        scene = np.full((480, 640, 3), 0.45)
        faces, labels = rafdb_like(2, size=112, seed=5)
        scene[40:152, 60:172] = faces[0]
        scene[240:352, 400:512] = faces[1]
        rois = [ROI(60, 40, 112, 112, 0.9), ROI(400, 240, 112, 112, 0.9)]

        def classify(crop):
            resized = resize_bilinear(crop, (28, 28))
            return int(clf.predict(resized[None])[0])

        outcome = HiRISEPipeline(
            classifier=classify, config=HiRISEConfig(pool_k=2)
        ).run(scene, rois=rois)
        assert len(outcome.predictions) == 2
        for pred in outcome.predictions:
            assert 0 <= pred < len(EXPRESSIONS)

    def test_noise_chain_does_not_break_accuracy(self):
        """Sensor noise + ADC + readout leaves faces classifiable."""
        from repro.sensor import ADCModel, PixelArray, SensorReadout

        xtr, ytr = rafdb_like(140, size=28, seed=0)
        clf = HOGClassifier("mobilenetv2-like", n_classes=7, epochs=200).fit(xtr, ytr)

        from repro.ml.image import downscale_antialiased

        xte, yte = rafdb_like(28, size=112, seed=9)
        correct = 0
        for img, label in zip(xte, yte):
            arr = PixelArray.from_image(img, noise=NoiseModel())
            crop = SensorReadout(arr).read_rois([(0, 0, 112, 112)]).images[0]
            pred = int(clf.predict(downscale_antialiased(crop, 0.25)[None])[0])
            correct += int(pred == label)
        assert correct / len(yte) > 0.4  # well above 1/7 chance


class TestAnalogVsDigitalConsistency:
    def test_insensor_frame_close_to_digital(self, small_scene):
        """The Table 2 premise: analog pooling ~= digital pooling."""
        from repro.sensor import (
            AnalogPoolingModel,
            PixelArray,
            SensorReadout,
            digital_avg_pool,
        )

        arr = PixelArray.from_image(small_scene.image, noise=NoiseModel())
        readout = SensorReadout(arr, pooling=AnalogPoolingModel())
        analog = readout.read_compressed(4).images
        digital = digital_avg_pool(readout.read_full().images, 4)
        rms = float(np.sqrt(np.mean((analog - digital) ** 2)))
        assert rms < 0.01  # < 1% of full scale

    def test_circuit_and_behavioral_model_agree(self):
        """The MNA circuit's static transfer matches the behavioral model."""
        from repro.analog import DC, MNASolver, build_pooling_circuit, AVG_NODE

        levels = np.linspace(0.1, 0.9, 5)
        outputs = []
        for level in levels:
            circuit = build_pooling_circuit([DC(float(level))] * 4)
            outputs.append(MNASolver(circuit).dc()[AVG_NODE])
        # Affine fit of circuit response: gain ~0.5 like the model assumes.
        gain, offset = np.polyfit(levels, outputs, 1)
        assert gain == pytest.approx(0.5, abs=0.05)
        assert offset < 0  # below-zero shared node, per the paper
