"""Integration: video amortization + readout timing on realistic scenes."""

import numpy as np
import pytest

from repro.core import HiRISEConfig, HiRISEPipeline, ROI, VideoHiRISEPipeline
from repro.datasets.shapes import draw_person
from repro.datasets.textures import colorize, value_noise
from repro.ml import Detection
from repro.sensor import ReadoutTimingModel


@pytest.fixture(scope="module")
def walking_clip():
    """Six frames of two pedestrians walking over a textured background."""
    rng = np.random.default_rng(8)
    backdrop = colorize(value_noise((240, 320), rng, octaves=3), (0.5, 0.5, 0.48),
                        (0.65, 0.63, 0.6))
    frames, gt = [], []
    for t in range(6):
        canvas = backdrop.copy()
        boxes = []
        for i, (x0, y, h, v) in enumerate(((40.0, 60.0, 90.0, 6.0),
                                           (220.0, 120.0, 70.0, -5.0))):
            body, _ = draw_person(
                canvas, np.random.default_rng((8, i)), x0 + v * t, y, h, 0.3, 0.55
            )
            boxes.append(body)
        frames.append(np.clip(canvas, 0, 1))
        gt.append(boxes)
    return frames, gt


def gt_detector(gt, state):
    def detect(pooled):
        k = 320 // pooled.shape[1]
        return [
            Detection("person", 0.9, x / k, y / k, w / k, h / k)
            for x, y, w, h in gt[min(state["t"], len(gt) - 1)]
        ]

    return detect


class TestVideoOnScenes:
    def test_amortized_clip_cheaper_than_per_frame(self, walking_clip):
        frames, gt = walking_clip

        def run(interval):
            state = {"t": 0}
            pipeline = HiRISEPipeline(
                detector=gt_detector(gt, state),
                config=HiRISEConfig(pool_k=2, max_rois=4),
            )
            video = VideoHiRISEPipeline(pipeline, keyframe_interval=interval)
            results = video.run(frames, on_frame=lambda i: state.update(t=i))
            return sum(r.energy for r in results)

        every_frame = run(1)
        amortized = run(3)
        assert amortized < every_frame

    def test_tracked_windows_follow_pedestrians(self, walking_clip):
        frames, gt = walking_clip
        state = {"t": 0}
        pipeline = HiRISEPipeline(
            detector=gt_detector(gt, state),
            config=HiRISEConfig(pool_k=2, max_rois=4),
        )
        video = VideoHiRISEPipeline(pipeline, keyframe_interval=3)
        results = video.run(frames, on_frame=lambda i: state.update(t=i))
        for r in results:
            truth = [ROI(int(x), int(y), max(int(w), 1), max(int(h), 1))
                     for x, y, w, h in gt[r.frame_index]]
            for t_box in truth:
                clipped = t_box.clip(320, 240)
                if clipped is None:
                    continue
                best = max((roi.iou(clipped) for roi in r.outcome.rois), default=0.0)
                assert best > 0.25, (
                    f"frame {r.frame_index}: pedestrian lost (IoU {best:.2f})"
                )


class TestTimingIntegration:
    def test_hirise_latency_tracks_energy_savings(self):
        """The latency win has the same driver (fewer conversions)."""
        timing = ReadoutTimingModel()
        rois = [(0, 0, 112, 112)] * 16
        latency_speedup = timing.speedup_vs_baseline(2560, 1920, 8, rois)

        from repro.core import EnergyModel

        model = EnergyModel()
        energy_reduction = (
            model.conventional_frame(2560, 1920).total
            / model.hirise_frame(2560, 1920, 8, [ROI(0, 0, 112, 112)] * 16).total
        )
        # Latency includes row-activation overheads the energy model skips,
        # so the speedup is smaller but must point the same way, firmly.
        assert latency_speedup > 3
        assert energy_reduction > latency_speedup / 4

    def test_per_stage_latency_budget(self):
        timing = ReadoutTimingModel()
        stage1 = timing.pooled_frame_s(2560, 1920, 8)
        stage2 = timing.roi_readout_s([(0, 0, 112, 112)] * 16)
        full = timing.full_frame_s(2560, 1920)
        assert stage1 + stage2 < full
        assert stage1 < full / 4
