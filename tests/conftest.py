"""Shared fixtures: small deterministic scenes, arrays, and datasets.

Everything here is session-scoped and seeded — generating scenes is the
most expensive part of the suite, so tests share them read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SceneGenerator, CROWDHUMAN_LIKE, rafdb_like
from repro.sensor import NoiseModel, PixelArray


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_scene():
    """One CrowdHuman-like scene at a compact resolution (640x480)."""
    return SceneGenerator(CROWDHUMAN_LIKE, resolution=(640, 480), seed=42).scene(0)


@pytest.fixture(scope="session")
def train_scenes():
    """Four training scenes for detector fitting."""
    gen = SceneGenerator(CROWDHUMAN_LIKE, resolution=(640, 480), seed=7)
    return gen.generate(4)


@pytest.fixture(scope="session")
def test_scenes():
    """Two held-out scenes (different seed) for detector evaluation."""
    gen = SceneGenerator(CROWDHUMAN_LIKE, resolution=(640, 480), seed=900)
    return gen.generate(2)


@pytest.fixture(scope="session")
def tiny_faces():
    """A small balanced RAF-DB-like batch at 28 px."""
    return rafdb_like(42, size=28, seed=3)


@pytest.fixture()
def gradient_image() -> np.ndarray:
    """A smooth 32x48 RGB ramp in [0, 1] (handy for pooling/ADC tests)."""
    yy, xx = np.mgrid[0:32, 0:48]
    r = xx / 47.0
    g = yy / 31.0
    b = (xx + yy) / (47.0 + 31.0)
    return np.stack([r, g, b], axis=2)


@pytest.fixture()
def noiseless_array(gradient_image) -> PixelArray:
    return PixelArray.from_image(gradient_image, noise=NoiseModel.noiseless())
