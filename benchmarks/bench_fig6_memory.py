"""Reproduces **Fig. 6**: peak memory of the two-stage system vs pixel-array
size, (a) in-processor scaling vs (b) in-sensor scaling, against the
STM32H743's 512 kB SRAM budget.

Following the paper's setup: the stage-1 model always sees a 320x240 frame;
stage 2 sees one ROI whose side grows with the array (14 px per 320 of
width, the CrowdHuman head statistic).  In-processor scaling must hold the
*full* frame in SRAM to scale it digitally; in-sensor scaling holds only
the 320x240 pooled frame, so its curve stays flat while the ROI/model terms
grow slowly.
"""

from __future__ import annotations

from repro.bench import Table, ascii_line_chart, series_csv
from repro.memory import (
    MCUNETV2_PATCH_OPS,
    STM32H743,
    analyze,
    analyze_patched,
    mcunetv2_classifier,
    mcunetv2_detector,
)

ARRAYS = [
    (320, 240), (640, 480), (960, 720), (1280, 960),
    (1600, 1200), (1920, 1440), (2240, 1680), (2560, 1920),
]
STAGE1_FRAME_BYTES = 320 * 240 * 3


def roi_side(width: int) -> int:
    return max(round(14 * width / 320), 8)


def compute_fig6():
    det_peak = analyze_patched(
        mcunetv2_detector((240, 320)), MCUNETV2_PATCH_OPS
    ).peak_sram_bytes
    rows = []
    for w, h in ARRAYS:
        side = roi_side(w)
        cls_peak = analyze(mcunetv2_classifier((side, side))).peak_sram_bytes
        # Paper Table 3 accounting: total = resident image memory + stage-2
        # peak activations (the stage-1 model's peak is its own dashed line
        # in Fig. 6 and is reported separately here).
        inproc = w * h * 3 + cls_peak
        insensor = max(STAGE1_FRAME_BYTES, side * side * 3) + cls_peak
        rows.append((w, h, side, det_peak, cls_peak, inproc, insensor))
    return rows


def test_fig6_memory(benchmark, emit):
    rows = benchmark.pedantic(compute_fig6, rounds=1, iterations=1)

    table = Table(
        "Fig. 6 (reproduced): two-stage peak memory vs pixel array (kB, decimal)",
        ["array", "ROI", "stage1-det kB", "stage2-cls kB",
         "in-proc total kB", "in-sensor total kB", "512kB ok?"],
        aligns=["l", "r", "r", "r", "r", "r", "l"],
    )
    budget = STM32H743.sram_bytes
    for w, h, side, det, cls_, inproc, insens in rows:
        table.add_row(
            f"{w}x{h}", f"{side}x{side}", det / 1000, cls_ / 1000,
            inproc / 1000, insens / 1000,
            f"in-proc {'yes' if inproc <= budget else 'NO'}, "
            f"in-sensor {'yes' if insens <= budget else 'NO'}",
        )
    emit("\n" + table.render())

    labels = [f"{w}x{h}" for w, h, *_ in rows]
    series = {
        "in-processor": [r[5] / 1000 for r in rows],
        "in-sensor (HiRISE)": [r[6] / 1000 for r in rows],
        "512 kB budget": [budget / 1000] * len(rows),
    }
    emit(ascii_line_chart(series, x_labels=labels, logy=True,
                          title="\nFig. 6: peak memory (kB, log scale)"))
    emit("\nCSV:\n" + series_csv(series, labels))

    # Shape targets (DESIGN.md §7).
    inproc = [r[5] for r in rows]
    insens = [r[6] for r in rows]
    # (1) In-processor fits at 320x240 but runs out by 640x480.
    assert inproc[0] <= budget
    assert inproc[1] > budget
    # (2) In-processor grows ~linearly with pixel count.
    assert inproc[-1] > inproc[0] * 10
    # (3) In-sensor stays within budget across the entire sweep.
    assert all(v <= budget for v in insens)
    # (4) In-sensor grows far slower than in-processor.
    assert (insens[-1] / insens[0]) < (inproc[-1] / inproc[0]) / 5


def test_memory_analyzer_throughput(benchmark):
    """Micro-benchmark: full-graph peak-SRAM analysis of MobileNetV2."""
    from repro.memory import mobilenetv2

    graph = mobilenetv2((112, 112))
    benchmark(lambda: analyze(graph))
