"""Store benchmark: warm restarts and shared-memory clip transport.

PR 7's persistence subsystem (``repro.store``) makes two promises this
bench drives end to end and gates on:

1. **Restart purity** — a daemon or sweep restarted against a populated
   ``ArtifactStore`` recomputes *nothing*: every reply is served through
   the disk tier (``disk_misses == 0``) and is bit-identical to the run
   that populated the store.
2. **Shared-memory dispatch beats pickle dispatch** — shipping a large
   rendered clip to process-pool workers through one
   ``multiprocessing.shared_memory`` segment is faster than pickling a
   copy into every chunk.  The executor-level gate needs real
   parallelism, so it is skipped on single-core runners and under
   ``REPRO_STORE_TINY``; the single-process transport microbenchmark
   (share+attach vs dumps+loads) asserts everywhere.

What it *reports* (to ``BENCH_store.json`` at the repo root): store
write/read throughput, restart speedups, and the transport walls.

Env knobs (CI smoke uses the first):
  ``REPRO_STORE_TINY``    tiny workload, correctness asserts only
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path

import pytest

from conftest import env_flag

from repro.bench import Table
from repro.experiments import SweepSpec, run_sweep
from repro.server import ReproServer, ServerClient
from repro.service import Engine, ScenarioSpec, SystemSpec
from repro.service.executor import ProcessExecutor
from repro.store import ArtifactStore, MISS, attach_clip, share_clip

TINY = env_flag("REPRO_STORE_TINY")
RESOLUTION = (96, 72) if TINY else (160, 120)
N_FRAMES = 3 if TINY else 10
N_SCENARIOS = 3 if TINY else 5

#: The transport race uses big clips (the payload under test) with heavy
#: temporal reuse so per-frame compute stays small relative to transport.
BIG_RESOLUTION = (128, 96) if TINY else (640, 480)
BIG_FRAMES = 3 if TINY else 8
TRANSPORT_ROUNDS = 1 if TINY else 4
TRANSPORT_VARIANTS = 2  # distinct scenarios per clip per round

SYSTEM = {"system": {"system": "hirise"}}
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def update_payload(section: str, data: dict) -> None:
    """Merge one section into ``BENCH_store.json`` (tests run in order)."""
    payload = {}
    if OUTPUT.exists():
        try:
            payload = json.loads(OUTPUT.read_text())
        except ValueError:
            payload = {}
    payload["experiment"] = "store"
    payload["tiny"] = TINY
    payload[section] = data
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")


def workload() -> list[ScenarioSpec]:
    """Distinct scenarios over both synthetic sources, shared-clip pairs."""
    scenarios = []
    for index in range(N_SCENARIOS):
        source = ("pedestrian", "drone")[index % 2]
        spec = {
            "source": {"name": source, "params": {"resolution": list(RESOLUTION)}},
            "n_frames": N_FRAMES,
            "seed": 300 + index // 2,
            "name": f"store-{source}-{index}",
        }
        if index % 3 == 2:
            spec["policy"] = {"name": "temporal-reuse", "params": {"max_reuse": 2}}
        scenarios.append(ScenarioSpec.from_dict(spec))
    return scenarios


# -- 1. raw store throughput -------------------------------------------------------


def test_store_write_read_throughput(emit, tmp_path):
    """Round-trip clips through the store; report MB/s, assert integrity."""
    engine = Engine(SystemSpec())
    clips = {
        f"clip-{seed}": engine._build_clip(
            ScenarioSpec.from_dict(
                {
                    "source": {
                        "name": "pedestrian",
                        "params": {"resolution": list(RESOLUTION)},
                    },
                    "n_frames": N_FRAMES,
                    "seed": seed,
                }
            )
        )
        for seed in range(3)
    }
    store = ArtifactStore(tmp_path / "store")

    start = time.perf_counter()
    written = sum(store.put("clip", key, clip) for key, clip in clips.items())
    write_wall = time.perf_counter() - start
    assert written > 0
    # Dedup: a second put of the same content writes nothing.
    assert store.put("clip", "clip-0", clips["clip-0"]) == 0

    start = time.perf_counter()
    for key, clip in clips.items():
        loaded = store.load("clip", key)
        assert loaded is not MISS
        for original, restored in zip(clip.frames, loaded.frames):
            assert (original == restored).all()
    read_wall = time.perf_counter() - start

    # A truncated file degrades to a quarantined miss, never an error.
    path = store._path("clip", "clip-1")
    path.write_bytes(path.read_bytes()[:-64])
    assert store.load("clip", "clip-1") is MISS
    assert store.snapshot().errors == 1

    mb = written / 1e6
    table = Table(
        f"artifact store: {len(clips)} clip(s), {mb:.1f} MB",
        ["op", "wall ms", "MB/s"],
        aligns=["l", "r", "r"],
    )
    table.add_row("put (write-through)", f"{write_wall * 1e3:.1f}",
                  f"{mb / write_wall:.0f}")
    table.add_row("load (verified read)", f"{read_wall * 1e3:.1f}",
                  f"{mb / read_wall:.0f}")
    emit("\n" + table.render())
    update_payload(
        "throughput",
        {
            "payload_mb": mb,
            "write_mb_s": mb / write_wall,
            "read_mb_s": mb / read_wall,
        },
    )


# -- 2. daemon restart purity ------------------------------------------------------


def test_daemon_restart_is_pure_disk_hits(emit, tmp_path):
    """A restarted ``serve --store-dir`` daemon replays from disk, bit-identical."""
    scenarios = workload()
    store_dir = tmp_path / "store"

    # Populating run: a cold daemon computes everything and writes through.
    with ReproServer(
        SYSTEM, workers=2, executor="thread", store=ArtifactStore(store_dir)
    ) as server:
        with ServerClient(*server.address) as client:
            start = time.perf_counter()
            first = [client.run(spec) for spec in scenarios]
            populate_wall = time.perf_counter() - start
            populate_stats = client.stats()
    assert populate_stats.cache["results"]["disk_misses"] == len(scenarios)
    assert populate_stats.cache["store"]["writes"] > 0

    # Restarted run: a NEW daemon + NEW store handle on the same root.
    with ReproServer(
        SYSTEM, workers=2, executor="thread", store=ArtifactStore(store_dir)
    ) as server:
        with ServerClient(*server.address) as client:
            start = time.perf_counter()
            second = [client.run(spec) for spec in scenarios]
            restart_wall = time.perf_counter() - start
            restart_stats = client.stats()

    # Gate (a): pure disk hits, nothing recomputed, bit-identical replies.
    results = restart_stats.cache["results"]
    assert results["disk_misses"] == 0, results
    assert results["disk_hits"] == len(scenarios)
    assert restart_stats.cache["store"]["writes"] == 0
    for a, b in zip(second, first):
        assert a.scenario == b.scenario
        assert a.outcome.frames == b.outcome.frames
        assert a.outcome.total_bytes == b.outcome.total_bytes
    speedup = populate_wall / restart_wall if restart_wall > 0 else float("inf")
    emit(
        f"\ndaemon restart: {len(scenarios)} request(s) replayed from disk "
        f"in {restart_wall * 1e3:.0f} ms vs {populate_wall * 1e3:.0f} ms cold "
        f"({speedup:.1f}x), 0 disk misses, bit-identical"
    )
    update_payload(
        "daemon_restart",
        {
            "requests": len(scenarios),
            "populate_wall_s": populate_wall,
            "restart_wall_s": restart_wall,
            "speedup": speedup,
            "disk_misses": results["disk_misses"],
            "bit_identical": True,
        },
    )


# -- 3. sweep restart purity -------------------------------------------------------


def test_sweep_restart_resumes_from_store(emit, tmp_path):
    """A re-run sweep against a populated store recomputes nothing."""
    spec = SweepSpec.from_dict(
        {
            "name": "store-resume",
            "system": {"system": "hirise"},
            "scenario": {
                "source": {
                    "name": "pedestrian",
                    "params": {"resolution": list(RESOLUTION)},
                },
                "n_frames": N_FRAMES,
                "seed": 7,
            },
            "axes": [{"path": "system.config.pool_k", "values": [2, 4]}],
            "executor": "serial",
            "workers": 1,
        }
    )
    store_dir = tmp_path / "store"

    start = time.perf_counter()
    first = run_sweep(spec, store=ArtifactStore(store_dir))
    populate_wall = time.perf_counter() - start

    start = time.perf_counter()
    second = run_sweep(spec, store=ArtifactStore(store_dir))
    restart_wall = time.perf_counter() - start

    # Gate (a), sweep flavor: identical artifact, zero disk misses.
    assert second.to_dict() == first.to_dict()
    assert second.cache.results.disk_misses == 0, second.cache.describe()
    assert second.cache.results.disk_hits == second.cache.results.misses
    speedup = populate_wall / restart_wall if restart_wall > 0 else float("inf")
    emit(
        f"\nsweep restart: {len(second)} cell(s) resumed from disk in "
        f"{restart_wall * 1e3:.0f} ms vs {populate_wall * 1e3:.0f} ms cold "
        f"({speedup:.1f}x), 0 disk misses, identical artifact"
    )
    update_payload(
        "sweep_restart",
        {
            "cells": len(second),
            "populate_wall_s": populate_wall,
            "restart_wall_s": restart_wall,
            "speedup": speedup,
            "disk_misses": second.cache.results.disk_misses,
            "identical_artifact": True,
        },
    )


# -- 4. shared-memory clip transport -----------------------------------------------


def big_clip_scenarios(round_index: int) -> list[ScenarioSpec]:
    """Fresh result keys every round (names differ), same two big clips."""
    scenarios = []
    for clip_index, source in enumerate(("pedestrian", "drone")):
        for variant in range(TRANSPORT_VARIANTS):
            scenarios.append(
                ScenarioSpec.from_dict(
                    {
                        "source": {
                            "name": source,
                            "params": {"resolution": list(BIG_RESOLUTION)},
                        },
                        "n_frames": BIG_FRAMES,
                        "seed": 900 + clip_index,
                        "name": f"xport-r{round_index}-c{clip_index}-v{variant}",
                        "policy": {
                            "name": "temporal-reuse",
                            "params": {"max_reuse": 1000},
                        },
                    }
                )
            )
    return scenarios


def test_shm_transport_microbench(emit):
    """share+attach must beat a pickle round-trip on one big clip."""
    engine = Engine(SystemSpec())
    clip = engine._build_clip(big_clip_scenarios(0)[0])

    def shm_roundtrip():
        lease = share_clip(clip)
        assert lease is not None
        try:
            restored = attach_clip(lease.handle)
            # Touch one frame so lazily-mapped pages are actually read.
            assert restored.frames[0][0, 0, 0] == clip.frames[0][0, 0, 0]
        finally:
            lease.destroy()

    def pickle_roundtrip():
        restored = pickle.loads(pickle.dumps(clip, protocol=pickle.HIGHEST_PROTOCOL))
        assert restored.frames[0][0, 0, 0] == clip.frames[0][0, 0, 0]

    def best_of(fn, reps=3):
        walls = []
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            walls.append(time.perf_counter() - start)
        return min(walls)

    shm_wall = best_of(shm_roundtrip)
    pickle_wall = best_of(pickle_roundtrip)
    emit(
        f"\ntransport microbench ({clip.nbytes / 1e6:.1f} MB clip): "
        f"shm {shm_wall * 1e3:.2f} ms vs pickle {pickle_wall * 1e3:.2f} ms "
        f"({pickle_wall / shm_wall:.1f}x)"
    )
    update_payload(
        "transport_microbench",
        {
            "clip_mb": clip.nbytes / 1e6,
            "shm_ms": shm_wall * 1e3,
            "pickle_ms": pickle_wall * 1e3,
        },
    )
    if not TINY:
        # One segment memcpy + one mapping vs serialize + copy + rebuild.
        assert shm_wall < pickle_wall


@pytest.mark.skipif(TINY, reason="REPRO_STORE_TINY: timing gates disabled")
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="transport race needs >= 2 cores"
)
def test_shm_dispatch_beats_pickle(emit):
    """Executor-level gate (b): shm dispatch beats pickle on large clips."""
    walls = {}
    reference: list | None = None
    for transport in ("pickle", "shm"):
        engine = Engine(SystemSpec())
        with ProcessExecutor(workers=2, clip_transport=transport) as pool:
            # Untimed warmup: spawn the pool, render the clips into the
            # parent tier (workers render this round; the timed rounds
            # ship those rendered clips).
            warm = pool.execute(engine, big_clip_scenarios(99))
            for scenario in big_clip_scenarios(98):
                engine.run(scenario)  # parent memory tier now holds both clips
            start = time.perf_counter()
            outputs = []
            for round_index in range(TRANSPORT_ROUNDS):
                outputs.append(
                    pool.execute(engine, big_clip_scenarios(round_index))
                )
            walls[transport] = time.perf_counter() - start
        frames = [
            result.outcome.frames for batch in outputs for result in batch
        ]
        if reference is None:
            reference = frames
        else:
            assert frames == reference  # transports are bit-identical
        del warm

    dispatched = TRANSPORT_ROUNDS * 2 * TRANSPORT_VARIANTS
    table = Table(
        f"clip transport: {dispatched} dispatches of 2 big clips "
        f"({BIG_RESOLUTION[0]}x{BIG_RESOLUTION[1]} x {BIG_FRAMES} frames), "
        "2 workers",
        ["transport", "wall ms", "vs pickle"],
        aligns=["l", "r", "r"],
    )
    for transport in ("pickle", "shm"):
        table.add_row(
            transport,
            f"{walls[transport] * 1e3:.0f}",
            f"{walls['pickle'] / walls[transport]:.2f}x",
        )
    emit("\n" + table.render())
    update_payload(
        "transport_dispatch",
        {
            "dispatches": dispatched,
            "pickle_wall_s": walls["pickle"],
            "shm_wall_s": walls["shm"],
            "speedup": walls["pickle"] / walls["shm"],
        },
    )
    # Gate (b): one shared segment per clip beats per-chunk pickled copies.
    assert walls["shm"] < walls["pickle"], walls
