"""Reproduces **Fig. 7**: median data-transfer requirements for different
pixel-array sizes under 2x2 / 4x4 / 8x8 pooling, vs the full-frame baseline,
broken down into the stage-1 (D1 S->P) and stage-2 (D2 S->P) flows.

Workload: CrowdHuman-like scenes — the paper's worst case ("the largest
total data transfer size") — with *person* (body) boxes as the stage-2
ROIs.  The paper's reduction factors back-solve to a body-ROI load of
ΣWH ≈ 27% of the frame, which our profile matches by construction, and a
stage-1 frame kept in RGB (see DESIGN.md calibration notes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table, ascii_line_chart
from repro.core import ROI, hirise_costs
from repro.datasets import crowdhuman_like

#: Arrays swept (paper sweeps up to 2560x1920; ROI stats are relative so
#: scenes are generated at a compact size and scaled analytically).
ARRAYS = [(640, 480), (1280, 960), (1920, 1440), (2560, 1920)]
POOLINGS = [2, 4, 8]
SCENE_RESOLUTION = (640, 480)
N_SCENES = 6


def body_rois(scene) -> list[ROI]:
    out = []
    for b in scene.boxes_for("person"):
        clipped = ROI(
            int(b.x), int(b.y), max(int(b.w), 1), max(int(b.h), 1)
        ).clip(*scene.resolution)
        if clipped:
            out.append(clipped)
    return out


def compute_fig7():
    scenes = crowdhuman_like(N_SCENES, resolution=SCENE_RESOLUTION, seed=77)
    per_scene_rois = [body_rois(s) for s in scenes]

    results = {}
    for w, h in ARRAYS:
        scale = w / SCENE_RESOLUTION[0]
        for k in POOLINGS:
            totals, d1s, d2s, base = [], [], [], []
            for rois in per_scene_rois:
                scaled = [r.scaled(scale) for r in rois]
                cb = hirise_costs(w, h, k, scaled, grayscale=False)
                totals.append(cb.hirise_transfer_bits / 8)
                d1s.append(cb.stage1.data_transfer_bits / 8)
                d2s.append(cb.stage2.data_transfer_bits / 8)
                base.append(cb.conventional.data_transfer_bits / 8)
            results[(w, h, k)] = {
                "total": float(np.median(totals)),
                "d1": float(np.median(d1s)),
                "d2": float(np.median(d2s)),
                "baseline": float(np.median(base)),
            }
    return results


def test_fig7_data_transfer(benchmark, emit):
    results = benchmark.pedantic(compute_fig7, rounds=1, iterations=1)

    table = Table(
        "Fig. 7 (reproduced): median data transfer, CrowdHuman-like bodies (kB)",
        ["array", "k", "baseline kB", "HiRISE kB", "D1 kB", "D2 kB",
         "D1 share", "reduction"],
        aligns=["l", "r", "r", "r", "r", "r", "r", "r"],
    )
    for (w, h, k), r in results.items():
        share = r["d1"] / r["total"]
        table.add_row(
            f"{w}x{h}", k, r["baseline"] / 1000, r["total"] / 1000,
            r["d1"] / 1000, r["d2"] / 1000,
            f"{share * 100:.0f}%", f"{r['baseline'] / r['total']:.1f}x",
        )
    emit("\n" + table.render())

    labels = [f"{w}x{h}" for w, h in ARRAYS]
    series = {"baseline": [results[(w, h, 2)]["baseline"] / 1000 for w, h in ARRAYS]}
    for k in POOLINGS:
        series[f"HiRISE k={k}"] = [results[(w, h, k)]["total"] / 1000 for w, h in ARRAYS]
    emit(ascii_line_chart(series, x_labels=labels, logy=True,
                          title="\nFig. 7: median data transfer (kB, log)"))

    # Shape targets (paper: 1.9x / 3.0x / 3.5x with D1 shares 48/19/5 %).
    paper_reduction = {2: 1.9, 4: 3.0, 8: 3.5}
    paper_share = {2: 0.48, 4: 0.19, 8: 0.05}
    for w, h in ARRAYS:
        prev = 0.0
        for k in POOLINGS:
            r = results[(w, h, k)]
            reduction = r["baseline"] / r["total"]
            share = r["d1"] / r["total"]
            # HiRISE wins everywhere; reductions ordered by k and near paper.
            assert reduction > 1.0
            assert reduction > prev
            prev = reduction
            assert reduction == pytest.approx(paper_reduction[k], rel=0.35)
            assert share == pytest.approx(paper_share[k], abs=0.12)
    emit(
        "\nshape check: reductions ~= {1.9, 3.0, 3.5}x and D1 shares ~= "
        "{48, 19, 5}% reproduced at every array size"
    )
