"""Resilience benchmark: serving under injected crashes and drops.

The robustness promise is that a daemon under a deterministic chaos plan
— a worker process hard-killed mid-batch plus reply sockets dropped on
schedule — still completes **every** request, and every reply carries
exactly the bytes a fault-free run would have produced.  This bench
drives a live :class:`~repro.server.ReproServer` armed with such a
:class:`~repro.faults.FaultPlan` through retrying clients and enforces:

1. **100% completion**: every request issued against the faulted daemon
   returns a result — no client sees an unhandled failure;
2. **byte-identical replies**: each result matches a fresh, cache-free,
   fault-free serial ``Engine.run`` bit for bit;
3. **determinism**: the same plan (same seed) previews the same fault
   schedule every time, and a live injector fires exactly that schedule;
4. the recovery machinery actually engaged: the executor respawned its
   pool after the injected crash, and the clients reconnected once per
   scheduled socket drop.

What it *reports* (never gates on — CI runners cannot assert timings):
faulted-phase latency percentiles, recovery counters, all written to
``BENCH_resilience.json`` at the repo root for artifact upload.

Env knobs (CI chaos-smoke uses the first):
  ``REPRO_RESILIENCE_TINY``      tiny workload, correctness asserts only
  ``REPRO_RESILIENCE_REQUESTS``  total retried-phase requests
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from conftest import env_flag, env_int

from repro.bench import Table
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.server import ReproServer, ServerClient
from repro.service import Engine, EngineCache, ScenarioSpec
from repro.service.spec import coerce_service_spec

TINY = env_flag("REPRO_RESILIENCE_TINY")
RESOLUTION = (64, 48) if TINY else (128, 96)
N_FRAMES = 3 if TINY else 8
N_SCENARIOS = 3 if TINY else 6
CLIENTS = 2 if TINY else 3
REQUESTS = env_int("REPRO_RESILIENCE_REQUESTS", 8 if TINY else 36)
WORKERS = 2

SYSTEM = {"system": {"system": "hirise"}}
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

#: server.reply hits at which the daemon drops the socket instead of
#: answering.  Each drop costs one extra hit for the retried replay, so
#: these land one mid-cold-phase and one mid-sustained-phase.
DROP_HITS = (1, 4)


def chaos_plan(fuse_dir: Path) -> FaultPlan:
    """One hard worker kill (process-wide fuse) plus scheduled drops."""
    return FaultPlan(
        name="chaos-smoke",
        seed=23,
        faults=(
            FaultSpec(
                site="worker.run",
                kind="worker-crash",
                at=(0,),
                scope="global",
            ),
            FaultSpec(site="server.reply", kind="socket-drop", at=DROP_HITS),
        ),
        fuse_dir=str(fuse_dir),
    )


def workload() -> list[ScenarioSpec]:
    scenarios = []
    for index in range(N_SCENARIOS):
        source = ("pedestrian", "drone")[index % 2]
        spec = {
            "source": {"name": source, "params": {"resolution": list(RESOLUTION)}},
            "n_frames": N_FRAMES,
            "seed": 300 + index,
            "name": f"resilience-{source}-{index}",
        }
        if index % 3 == 2:
            spec["policy"] = {"name": "temporal-reuse", "params": {"max_reuse": 2}}
        scenarios.append(ScenarioSpec.from_dict(spec))
    return scenarios


def drive(address, scenarios, n_requests, n_clients):
    """Concurrent retrying clients; returns (latencies, results, reconnects).

    Every client is armed with a retry budget, so a scheduled socket
    drop surfaces as a transparent reconnect-and-replay — the benchmark
    then *proves* the replayed bytes match the fault-free reference.
    """
    latencies = [[] for _ in range(n_clients)]
    results = [[] for _ in range(n_clients)]
    reconnects = [0] * n_clients
    per_client = n_requests // n_clients
    errors = []

    def client_loop(client_index):
        try:
            client = ServerClient(*address, timeout_s=120.0, max_retries=3)
            with client:
                for step in range(per_client):
                    spec = scenarios[(client_index + step) % len(scenarios)]
                    start = time.perf_counter()
                    result = client.run(spec)
                    latencies[client_index].append(time.perf_counter() - start)
                    results[client_index].append(result)
                reconnects[client_index] = client.retry_stats["reconnect"]
        except Exception as exc:  # noqa: BLE001 - collected and re-raised in the main thread after join
            errors.append((client_index, exc))

    threads = [
        threading.Thread(target=client_loop, args=(i,)) for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    assert not errors, f"client failures under chaos plan: {errors}"
    return (
        [lat for per in latencies for lat in per],
        results,
        sum(reconnects),
    )


def percentiles(latencies_s):
    lat_ms = np.asarray(latencies_s) * 1e3
    return float(np.percentile(lat_ms, 50)), float(np.percentile(lat_ms, 99))


def test_resilience_under_chaos(emit, tmp_path):
    plan = chaos_plan(tmp_path / "fuses")
    scenarios = workload()

    # -- check 3 first: the schedule is a pure function of the seed ------
    preview = plan.schedule("server.reply", 64)
    replayed = FaultPlan.from_dict(plan.to_dict()).schedule("server.reply", 64)
    assert preview == replayed
    live_injector = FaultInjector(FaultPlan.from_dict(plan.to_dict()))
    live = [
        spec.kind if (spec := live_injector.fire("server.reply")) else None
        for _ in range(64)
    ]
    assert live == preview
    assert [hit for hit, kind in enumerate(preview) if kind] == list(DROP_HITS)
    emit("check 3: same seed -> identical fault schedule (preview == live)")

    # -- fault-free reference: what every reply must match ---------------
    reference = Engine(
        coerce_service_spec(SYSTEM).system, cache=EngineCache.disabled()
    )
    expected = {spec.label: reference.run(spec) for spec in scenarios}

    with ReproServer(
        SYSTEM,
        workers=WORKERS,
        executor="process",
        queue_size=max(16, REQUESTS),
        faults=plan,
    ) as server:
        with ServerClient(*server.address, max_retries=3) as probe:
            # -- cold phase: each scenario once; the injected worker
            # crash lands on the very first dispatched chunk and one
            # scheduled socket-drop interrupts a cold reply ------------
            cold_start = time.perf_counter()
            for spec in scenarios:
                result = probe.run(spec)
                assert result.outcome.frames == expected[spec.label].outcome.frames
            cold_wall = time.perf_counter() - cold_start

            # -- sustained phase: concurrent retrying clients ----------
            latencies, results, client_reconnects = drive(
                server.address, scenarios, REQUESTS, CLIENTS
            )
            stats = probe.stats()
            probe_reconnects = probe.retry_stats["reconnect"]

    # 1. 100% completion: every issued request came back with a result.
    n_sustained = CLIENTS * (REQUESTS // CLIENTS)
    completed = sum(len(per) for per in results)
    assert completed == n_sustained
    emit(
        f"check 1: 100% completion — {len(scenarios)} cold + "
        f"{completed} sustained requests, zero failures"
    )

    # 2. Every reply is bit-identical to the fault-free serial run.
    checked = 0
    for per_client in results:
        for result in per_client:
            want = expected[result.scenario.label]
            assert result.scenario == want.scenario
            assert result.outcome.frames == want.outcome.frames
            checked += 1
    assert checked == n_sustained
    emit(f"check 2: {checked} replies byte-identical to the fault-free run")

    # 4. The chaos actually happened and the machinery engaged: the pool
    # respawned after the hard kill, the daemon dropped exactly the
    # scheduled sockets, and clients reconnected once per drop.
    resilience = stats.resilience
    assert resilience["executor"]["respawns"] >= 1
    assert resilience["faults"]["server.reply:socket-drop"] == len(DROP_HITS)
    total_reconnects = client_reconnects + probe_reconnects
    assert total_reconnects == len(DROP_HITS)
    emit(
        f"check 4: recovery engaged — "
        f"{resilience['executor']['respawns']} pool respawn(s), "
        f"{resilience['executor']['redispatched_units']} re-dispatched "
        f"unit(s), {total_reconnects} client reconnect(s)"
    )

    p50, p99 = percentiles(latencies)
    table = Table(
        f"resilience: {completed} sustained requests over {CLIENTS} retrying "
        f"connection(s), {N_SCENARIOS} scenarios x {N_FRAMES} frames at "
        f"{RESOLUTION[0]}x{RESOLUTION[1]}, chaos plan {plan.name!r}",
        ["phase", "requests", "p50 ms", "p99 ms", "reconnects"],
        aligns=["l", "r", "r", "r", "r"],
    )
    table.add_row(
        "cold+crash", str(len(scenarios)),
        f"{cold_wall / len(scenarios) * 1e3:.1f}", "-", str(probe_reconnects)
    )
    table.add_row(
        "sustained", str(completed), f"{p50:.2f}", f"{p99:.2f}",
        str(client_reconnects)
    )
    emit("\n" + table.render())

    payload = {
        "experiment": "resilience",
        "tiny": TINY,
        "config": {
            "n_scenarios": N_SCENARIOS,
            "n_frames": N_FRAMES,
            "resolution": list(RESOLUTION),
            "clients": CLIENTS,
            "sustained_requests": n_sustained,
            "workers": WORKERS,
            "plan": plan.to_dict(),
            "plan_fingerprint": plan.fingerprint(),
        },
        "results": {
            "completed": len(scenarios) + completed,
            "failed": 0,
            "bit_identical": True,
            "schedule_deterministic": True,
            "pool_respawns": resilience["executor"]["respawns"],
            "redispatched_units": resilience["executor"]["redispatched_units"],
            "socket_drops": resilience["faults"]["server.reply:socket-drop"],
            "client_reconnects": total_reconnects,
            "cold_wall_s": cold_wall,
            "sustained_p50_ms": p50,
            "sustained_p99_ms": p99,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    emit(f"wrote {OUTPUT.name}")
