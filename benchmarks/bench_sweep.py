"""Experiment-sweep benchmark: regenerates the paper's figure/table
reports from the shipped ``examples/sweeps/paper_*.json`` specs and gates
the two properties the subsystem promises:

* **paper trends** — every report's trend checks pass (transfer, energy,
  and peak memory monotone in the pooling factor k, reductions monotone
  and > 1x vs the conventional baseline, stage-2 prediction parity across
  compute dtypes);
* **bit-identity** — process-executor cells and warm-cache repeats are
  byte-for-byte identical to fresh serial runs with caching disabled
  (the determinism contract that makes a sweep a reproducible artifact,
  not a measurement session).

``REPRO_SWEEP_TINY=1`` shrinks every sweep via ``SweepSpec.tiny()`` (the
CI smoke setting); the full-size run is identical in structure.  Trend
checks are exact in both modes — nothing here gates on wall-clock.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from conftest import env_flag

from repro.experiments import (
    PAPER_SWEEPS,
    SweepRunner,
    assert_trends,
    build_report,
    load_sweep,
)
from repro.service import EngineCache

SWEEPS_DIR = Path(__file__).resolve().parents[1] / "examples" / "sweeps"
TINY = env_flag("REPRO_SWEEP_TINY")


def _load(name: str):
    spec = load_sweep(SWEEPS_DIR / f"{name}.json")
    return spec.tiny() if TINY else spec


@pytest.mark.parametrize("name", sorted(PAPER_SWEEPS))
def test_paper_sweep_trends(name, benchmark, emit):
    """Each shipped sweep regenerates its figure/table with passing trends."""
    spec = _load(name)

    def run():
        result = SweepRunner(spec, executor="serial", workers=1).run()
        return result, build_report(result)

    result, report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"\n{report.markdown}\n")
    emit(result.describe())
    assert len(result.records) == spec.grid_size
    assert_trends(report)


def test_sweep_bit_identity_across_executors_and_cache(emit):
    """Process-pool + warm-cache sweeps == fresh serial uncached, bit for bit."""
    spec = _load("paper_fig7_transfer")

    cache = EngineCache()
    process = SweepRunner(spec, executor="process", workers=2, cache=cache).run()
    cached = SweepRunner(spec, executor="process", workers=2, cache=cache).run()
    fresh = SweepRunner(
        spec, executor="serial", workers=1, cache=EngineCache.disabled()
    ).run()

    assert [r.metrics for r in process] == [r.metrics for r in fresh]
    assert [r.baseline for r in process] == [r.baseline for r in fresh]
    assert [r.metrics for r in cached] == [r.metrics for r in fresh]
    # Worker processes share one clip cache across systems: each distinct
    # clip renders at most once per worker (chunk placement is scheduler-
    # dependent), never once per system/k.
    from repro.service.cache import clip_key

    distinct_clips = len({clip_key(c.scenario) for c in spec.cells()})
    assert process.cache.clips.misses <= distinct_clips * process.workers
    # The warm repeat is pure result-tier hits: nothing recomputed.
    assert cached.cache.results.misses == 0
    assert cached.cache.results.hits > 0

    # The emitted artifacts are byte-identical too, whatever served them.
    payloads = [
        json.dumps(build_report(run).payload, sort_keys=True)
        for run in (process, cached, fresh)
    ]
    assert payloads[0] == payloads[1] == payloads[2]
    emit(
        f"\n[sweep] bit-identity: {len(fresh.records)} cell(s) identical under "
        f"process/warm-cache/serial; warm repeat was "
        f"{cached.cache.results.hits} result hit(s), 0 misses"
    )
