"""Reproduces **Table 1**: analytical relations for data transfer, memory
capacity and signal conversion, HiRISE vs the conventional system.

The paper's table is symbolic; this bench evaluates it over the pixel-array
sizes and pooling levels of the evaluation section and checks the three
governing conditions (Eqs. 1-3) hold everywhere.
"""

from __future__ import annotations

import pytest

from repro.bench import Table
from repro.core import conventional_costs, hirise_costs

ARRAYS = [(320, 240), (640, 480), (1280, 960), (2560, 1920)]
POOLINGS = [2, 4, 8]

#: Paper Table 3 ROI statistics: 16 head boxes whose side scales with the
#: array width (112 px at 2560).
def paper_rois(width: int) -> list[tuple[int, int]]:
    side = max(round(14 * width / 320), 1)
    return [(side, side)] * 16


def evaluate_table1() -> Table:
    table = Table(
        "Table 1 (evaluated): data transfer / peak memory / ADC conversions",
        ["array", "k", "D_old kB", "D_new kB", "D red",
         "Mem_old kB", "Mem_new kB", "Mem red", "C_old", "C_new", "C red"],
    )
    for (w, h) in ARRAYS:
        for k in POOLINGS:
            breakdown = hirise_costs(w, h, k, paper_rois(w), grayscale=False)
            conv = breakdown.conventional
            table.add_row(
                f"{w}x{h}", k,
                conv.data_transfer_bytes / 1000,
                breakdown.hirise_transfer_bits / 8 / 1000,
                f"{breakdown.transfer_reduction:.1f}x",
                conv.memory_bytes / 1000,
                breakdown.hirise_peak_memory_bits / 8 / 1000,
                f"{breakdown.memory_reduction:.1f}x",
                conv.adc_conversions,
                breakdown.hirise_conversions,
                f"{breakdown.conversion_reduction:.1f}x",
            )
    return table


def test_table1_analytical(benchmark, emit):
    table = benchmark.pedantic(evaluate_table1, rounds=1, iterations=1)
    emit("\n" + table.render())

    # Shape targets: every configuration satisfies Eqs. 1-3.
    for (w, h) in ARRAYS:
        for k in POOLINGS:
            breakdown = hirise_costs(w, h, k, paper_rois(w), grayscale=False)
            assert breakdown.satisfies_paper_conditions(), (w, h, k)

    # Anchor: the paper's headline cell (2560x1920, k=8) reproduces the
    # 17.7x conversion/energy reduction and 833 kB HiRISE transfer.
    headline = hirise_costs(2560, 1920, 8, paper_rois(2560), grayscale=False)
    assert headline.conversion_reduction == pytest.approx(17.7, abs=0.2)
    assert headline.hirise_transfer_bits / 8 / 1000 == pytest.approx(833, abs=5)
    emit(
        f"\nheadline: 2560x1920 k=8 -> transfer reduction "
        f"{headline.transfer_reduction:.1f}x, conversions {headline.conversion_reduction:.1f}x "
        f"(paper: 17.7x)"
    )


def test_cost_model_throughput(benchmark):
    """Micro-benchmark: Table 1 evaluation is cheap enough to embed anywhere."""
    benchmark(lambda: hirise_costs(2560, 1920, 8, paper_rois(2560)))
