"""Serving benchmark: sustained RPS and latency through the daemon.

The serving layer's promise is that a long-lived daemon with ONE warm
:class:`~repro.service.Engine` turns repeat scenario requests into pure
cache lookups — same bits as a fresh serial run, a fraction of the cost.
This bench drives a live :class:`~repro.server.ReproServer` over its real
socket with concurrent keep-alive clients and enforces:

1. every daemon response — cold or warm, whole or streamed — is
   **bit-identical** to a fresh, cache-free serial ``Engine.run``;
2. the warm sustained phase is **pure cache hits**: the daemon's result
   tier reports exactly one hit per request and zero new misses;
3. a streamed request reassembles to the same outcome the whole-result
   mode returns.

What it *reports* (never gates on — CI runners cannot assert timings):
sustained requests-per-second and p50/p99 request latency for the warm
phase, cold-phase latency for contrast, all written to
``BENCH_serving.json`` at the repo root for artifact upload.

Env knobs (CI smoke uses the first):
  ``REPRO_SERVING_TINY``      tiny workload, correctness asserts only
  ``REPRO_SERVING_CLIENTS``   concurrent load-generator connections
  ``REPRO_SERVING_REQUESTS``  total warm-phase requests
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from conftest import env_flag, env_int

from repro.bench import Table
from repro.server import ReproServer, ServerClient
from repro.service import Engine, EngineCache, ScenarioSpec
from repro.service.spec import coerce_service_spec

TINY = env_flag("REPRO_SERVING_TINY")
RESOLUTION = (64, 48) if TINY else (160, 120)
N_FRAMES = 3 if TINY else 12
N_SCENARIOS = 3 if TINY else 6
CLIENTS = env_int("REPRO_SERVING_CLIENTS", 2 if TINY else 4)
REQUESTS = env_int("REPRO_SERVING_REQUESTS", 12 if TINY else 120)
WORKERS = 2 if TINY else 4

SYSTEM = {"system": {"system": "hirise"}}
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def workload() -> list[ScenarioSpec]:
    """Distinct scenarios across both clip sources and two policies."""
    scenarios = []
    for index in range(N_SCENARIOS):
        source = ("pedestrian", "drone")[index % 2]
        spec = {
            "source": {"name": source, "params": {"resolution": list(RESOLUTION)}},
            "n_frames": N_FRAMES,
            "seed": 100 + index,
            "name": f"serving-{source}-{index}",
        }
        if index % 3 == 2:
            spec["policy"] = {"name": "temporal-reuse", "params": {"max_reuse": 2}}
        scenarios.append(ScenarioSpec.from_dict(spec))
    return scenarios


def drive(address, scenarios, n_requests, n_clients):
    """Concurrent keep-alive clients; returns (latencies_s, wall_s, results).

    Each client owns one connection and walks the workload round-robin
    from its own offset, so every scenario stays in rotation and the
    daemon sees interleaved, overlapping requests — serving conditions,
    not a lockstep sweep.
    """
    latencies = [[] for _ in range(n_clients)]
    results = [[] for _ in range(n_clients)]
    per_client = n_requests // n_clients
    errors = []

    def client_loop(client_index):
        try:
            with ServerClient(*address, timeout_s=120.0) as client:
                for step in range(per_client):
                    spec = scenarios[(client_index + step) % len(scenarios)]
                    start = time.perf_counter()
                    result = client.run(spec)
                    latencies[client_index].append(time.perf_counter() - start)
                    results[client_index].append(result)
        except Exception as exc:  # noqa: BLE001 - collected and re-raised in the main thread after join
            errors.append((client_index, exc))

    threads = [
        threading.Thread(target=client_loop, args=(i,)) for i in range(n_clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - start
    assert not errors, f"client failures: {errors}"
    return [lat for per in latencies for lat in per], wall, results


def percentiles(latencies_s):
    lat_ms = np.asarray(latencies_s) * 1e3
    return float(np.percentile(lat_ms, 50)), float(np.percentile(lat_ms, 99))


def test_serving_sustained_rps(emit):
    scenarios = workload()
    reference = Engine(
        coerce_service_spec(SYSTEM).system, cache=EngineCache.disabled()
    )
    expected = {spec.label: reference.run(spec) for spec in scenarios}

    with ReproServer(
        SYSTEM, workers=WORKERS, executor="thread", queue_size=max(16, REQUESTS)
    ) as server:
        with ServerClient(*server.address) as probe:
            # -- cold phase: every distinct scenario once, serially -------
            cold_latencies = []
            for spec in scenarios:
                start = time.perf_counter()
                result = probe.run(spec)
                cold_latencies.append(time.perf_counter() - start)
                assert result.outcome.frames == expected[spec.label].outcome.frames
            cold_stats = probe.stats()

            # -- warm sustained phase: concurrent keep-alive clients ------
            latencies, wall, results = drive(
                server.address, scenarios, REQUESTS, CLIENTS
            )
            warm_stats = probe.stats()

            # -- streaming parity on the warm cache -----------------------
            streamed = probe.run_streaming(scenarios[0])

    n_warm = CLIENTS * (REQUESTS // CLIENTS)
    rps = n_warm / wall
    p50, p99 = percentiles(latencies)
    cold_p50, cold_p99 = percentiles(cold_latencies)
    # The cold phase runs serially on one connection, so its wall clock is
    # the sum of its latencies.
    cold_wall = sum(cold_latencies)
    cold_rps = len(scenarios) / cold_wall if cold_wall > 0 else 0.0

    table = Table(
        f"serving: {n_warm} warm requests over {CLIENTS} connection(s), "
        f"{N_SCENARIOS} scenarios x {N_FRAMES} frames at "
        f"{RESOLUTION[0]}x{RESOLUTION[1]}, {WORKERS} worker(s)",
        ["phase", "requests", "RPS", "p50 ms", "p99 ms"],
        aligns=["l", "r", "r", "r", "r"],
    )
    table.add_row(
        "cold (miss)", str(len(scenarios)), f"{cold_rps:.1f}",
        f"{cold_p50:.1f}", f"{cold_p99:.1f}"
    )
    table.add_row(
        "warm (hits)", str(n_warm), f"{rps:.0f}", f"{p50:.2f}", f"{p99:.2f}"
    )
    emit("\n" + table.render())

    # 1. Every warm response is bit-identical to the fresh serial run.
    checked = 0
    for per_client in results:
        for result in per_client:
            want = expected[result.scenario.label]
            assert result.scenario == want.scenario
            assert result.outcome.frames == want.outcome.frames
            checked += 1
    assert checked == n_warm
    emit(f"check 1: {checked} warm responses bit-identical to serial run()")

    # 2. The sustained phase never computed: one result-tier hit per
    # request, not a single new miss.
    cold = cold_stats.cache["results"]
    warm = warm_stats.cache["results"]
    assert cold["misses"] == len(scenarios)
    assert warm["misses"] == cold["misses"]
    assert warm["hits"] == cold["hits"] + n_warm
    emit(
        f"check 2: warm phase is pure cache hits "
        f"(+{n_warm} hits, +0 misses on the daemon's result tier)"
    )

    # 3. Streaming mode replays the same memoized outcome (frame rows and
    # totals; wall time legitimately differs from the reference run).
    want = expected[scenarios[0].label].outcome
    assert streamed.outcome.frames == want.frames
    assert streamed.outcome.system == want.system
    assert streamed.outcome.total_bytes == want.total_bytes
    emit("check 3: streamed request reassembles bit-identical frames")

    payload = {
        "experiment": "serving",
        "tiny": TINY,
        "config": {
            "n_scenarios": N_SCENARIOS,
            "n_frames": N_FRAMES,
            "resolution": list(RESOLUTION),
            "clients": CLIENTS,
            "warm_requests": n_warm,
            "workers": WORKERS,
        },
        "cold": {
            "requests": len(scenarios),
            "wall_s": cold_wall,
            "rps": cold_rps,
            "p50_ms": cold_p50,
            "p99_ms": cold_p99,
        },
        "warm": {
            "requests": n_warm,
            "wall_s": wall,
            "rps": rps,
            "p50_ms": p50,
            "p99_ms": p99,
            "pure_cache_hits": True,
            "bit_identical": True,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    emit(f"wrote {OUTPUT.name}")
