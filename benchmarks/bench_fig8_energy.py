"""Reproduces **Fig. 8**: median sensor energy under different pooling
levels, for RGB (left) and grayscale (right) stage-1 frames, across the
three detection datasets at a 2560x1920 pixel array.

Two ROI-load variants are reported:

* **measured** — each synthetic dataset's own ground-truth boxes (union
  area, since the encoder reads overlapping pixels once);
* **paper load** — CrowdHuman stage-2 fixed at the paper's back-solved
  0.45 Mpx (9.2% of the frame), which reproduces the 3x / 6.5x / 9.4x
  reductions exactly.

Note the paper's Figs. 7 and 8 imply different CrowdHuman ROI loads (27%
vs 9.2% of the frame); see EXPERIMENTS.md for the discussion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table, ascii_bar_chart
from repro.core import ROI, EnergyModel, union_area
from repro.datasets import crowdhuman_like, dhdcampus_like, visdrone_like

ARRAY = (2560, 1920)
POOLINGS = [2, 4, 8]
SCENE_RESOLUTION = (640, 480)
N_SCENES = 5

DATASETS = {
    "crowdhuman-like": (crowdhuman_like, ("person",)),
    "dhdcampus-like": (dhdcampus_like, ("person", "cyclist")),
    "visdrone-like": (visdrone_like, None),  # all classes
}


def scene_rois(scene, labels) -> list[ROI]:
    rois = []
    for b in scene.boxes:
        if labels is not None and b.label not in labels:
            continue
        clipped = ROI(int(b.x), int(b.y), max(int(b.w), 1), max(int(b.h), 1)).clip(
            *scene.resolution
        )
        if clipped:
            rois.append(clipped)
    return rois


def compute_fig8():
    model = EnergyModel()
    w, h = ARRAY
    scale = w / SCENE_RESOLUTION[0]
    baseline = model.conventional_frame(w, h).total

    results = {}
    for name, (gen, labels) in DATASETS.items():
        scenes = gen(N_SCENES, resolution=SCENE_RESOLUTION, seed=31)
        per_scene = [scene_rois(s, labels) for s in scenes]
        for k in POOLINGS:
            for gray in (False, True):
                energies = []
                for rois in per_scene:
                    scaled = [r.scaled(scale) for r in rois]
                    # Union load: the encoder converts overlapped pixels once.
                    side = int(np.sqrt(max(union_area(scaled), 1)))
                    breakdown = model.hirise_frame(
                        w, h, k, [ROI(0, 0, side, side)], grayscale=gray
                    )
                    energies.append(breakdown.total)
                results[(name, k, gray)] = float(np.median(energies))
    return baseline, results


def test_fig8_energy(benchmark, emit):
    baseline, results = benchmark.pedantic(compute_fig8, rounds=1, iterations=1)
    model = EnergyModel()

    table = Table(
        "Fig. 8 (reproduced): median sensor energy @2560x1920 (mJ)",
        ["dataset", "k", "RGB mJ", "RGB red", "gray mJ", "gray red"],
        aligns=["l", "r", "r", "r", "r", "r"],
    )
    for name in DATASETS:
        for k in POOLINGS:
            rgb = results[(name, k, False)]
            gray = results[(name, k, True)]
            table.add_row(
                name, k, rgb * 1e3, f"{baseline / rgb:.1f}x",
                gray * 1e3, f"{baseline / gray:.1f}x",
            )
    emit(f"\nbaseline (full conversion): {baseline * 1e3:.3f} mJ (paper: 1.85 mJ)")
    emit(table.render())

    bars = {
        f"{name.split('-')[0]} k={k}": results[(name, k, False)] * 1e3
        for name in DATASETS
        for k in POOLINGS
    }
    emit(ascii_bar_chart(bars, unit=" mJ", title="\nFig. 8 left (RGB):"))

    # Paper-load variant: CrowdHuman stage-2 fixed at 0.45 Mpx.
    paper_table = Table(
        "Fig. 8 with the paper's back-solved CrowdHuman stage-2 load (0.45 Mpx)",
        ["k", "total mJ", "stage1 share", "reduction (paper: 3.0/6.5/9.4)"],
    )
    paper_expected = {2: 3.0, 4: 6.5, 8: 9.4}
    for k in POOLINGS:
        breakdown = model.hirise_frame(*ARRAY, k, [ROI(0, 0, 672, 672)])
        reduction = baseline / breakdown.total
        paper_table.add_row(
            k, breakdown.total_mj, f"{breakdown.share('stage1_adc') * 100:.0f}%",
            f"{reduction:.1f}x",
        )
        assert reduction == pytest.approx(paper_expected[k], rel=0.12)
    emit("\n" + paper_table.render())

    # Shape targets on the measured variant.
    assert baseline == pytest.approx(1.843e-3, rel=0.01)
    for name in DATASETS:
        reductions = [baseline / results[(name, k, False)] for k in POOLINGS]
        assert reductions == sorted(reductions), name  # larger k -> larger win
        assert all(r > 1.0 for r in reductions)
    for k in POOLINGS:
        # CrowdHuman-like is the most expensive dataset (most/biggest ROIs).
        others = [results[(n, k, False)] for n in DATASETS if n != "crowdhuman-like"]
        assert results[("crowdhuman-like", k, False)] >= max(others) * 0.95
        # Grayscale stage-1 costs no more than RGB.
        for name in DATASETS:
            assert results[(name, k, True)] <= results[(name, k, False)] + 1e-9

    # Pooling-circuit energy is orders of magnitude below ADC energy.
    breakdown = model.hirise_frame(*ARRAY, 2, [ROI(0, 0, 672, 672)])
    assert breakdown.pooling < breakdown.total / 1000
