"""Streaming extension benchmark: frames/sec and data transfer over video.

The paper (Tables 1/3, Figs. 6-8) costs single exposures; this bench runs
the system over a ≥30-frame synthetic pedestrian clip and compares five
policies, all declared as :mod:`repro.service` specs and served through
the :class:`~repro.service.Engine` (the unified front door this repo's
consumers use):

* **conventional** — ship every full frame (the Fig. 2a baseline, streamed);
* **hirise/frame** — the full two-stage HiRISE flow, one frame per Python
  iteration (``window=1``, the reference loop);
* **hirise/window** — same flow, but stage-1 exposure + analog pooling +
  ADC for a window of frames vectorized into one NumPy pass over a
  preallocated exposure buffer (bit-identical by contract);
* **hirise/reuse** — temporal ROI reuse: IoU-gated skipping of the pooled
  conversion *and* the stage-1 detector on stable frames;
* **hirise/window+reuse** — the composition: the sensor exposes whole
  windows ahead while the policy still skips stage 1 per frame.

Checks enforced here (the streaming acceptance bar):

1. **bit-identity matrix** — window sizes {1, 4, full clip} x executors
   {serial, thread, process} x reuse {off, on} all reproduce the
   per-frame serial oracle exactly (every ledger row, plus images and
   crops on the kept-outcome audit);
2. **windowed throughput gate** — windowed stage-1 is strictly faster
   than per-frame on end-to-end frames/sec (best-of-N wall clock);
3. ROI reuse moves **strictly fewer bytes** and finishes **strictly
   faster** than per-frame HiRISE;
4. every HiRISE policy moves far fewer bytes than the conventional stream.

Everything measured lands in ``BENCH_stream.json`` at the repo root.
Knobs:

  ``REPRO_STREAM_TINY``  tiny workload, correctness asserts only
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from conftest import env_flag
from repro.bench import Table
from repro.core import HiRISEConfig
from repro.service import ComponentRef, Engine, ScenarioSpec, SystemSpec

TINY = env_flag("REPRO_STREAM_TINY")
N_FRAMES = 8 if TINY else 36
RESOLUTION = (128, 96) if TINY else (256, 192)
POOL_K = 4
WINDOW = 4 if TINY else 12           # the headline windowed policy
ROUNDS = 2 if TINY else 5            # best-of for wall-clock numbers

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

HIRISE_SYSTEM = SystemSpec(
    system="hirise",
    config=HiRISEConfig(pool_k=POOL_K, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth", {"label": "person"}),
)
CONVENTIONAL_SYSTEM = SystemSpec(
    system="conventional",
    detector=ComponentRef("ground-truth", {"label": "person"}),
)

REUSE = ComponentRef("temporal-reuse", {"max_reuse": 3})


def _scenario(name: str, **kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        source=ComponentRef("pedestrian", {"resolution": list(RESOLUTION)}),
        n_frames=N_FRAMES,
        seed=4,
        **kwargs,
    )


def _timed_run(engine: Engine, scenario: ScenarioSpec, clip) -> float:
    """One fresh wall-clock sample of a policy (for the speed gates).

    ``wall_time_s`` covers only the stream processing, so handing every
    sample the same pre-rendered clip changes nothing but the bench's own
    run time.
    """
    return engine.run(scenario, clip=clip).outcome.wall_time_s


def run_policies():
    hirise = Engine(HIRISE_SYSTEM)
    conventional = Engine(CONVENTIONAL_SYSTEM)
    # One batch call: the hirise scenarios share a (source, n_frames,
    # seed) triple, so the clip renders once.
    batch = hirise.run_batch(
        [
            _scenario("hirise/frame", keep_outcomes=True),
            _scenario("hirise/window", window=WINDOW, keep_outcomes=True),
            _scenario("hirise/reuse", policy=REUSE),
            _scenario("hirise/window+reuse", window=WINDOW, policy=REUSE),
        ],
        workers=1,
    )
    results = {r.label: r.outcome for r in batch}
    results["conventional"] = conventional.run(_scenario("conventional")).outcome
    return results


def check_identity_matrix(emit) -> dict:
    """Acceptance grid: {1, 4, full} x {serial, thread, process} x reuse."""
    oracle_engine = Engine(HIRISE_SYSTEM)
    oracles = {
        policy: oracle_engine.run(
            _scenario(f"oracle/{policy.name}", policy=policy)
        ).outcome
        for policy in (ComponentRef("none"), REUSE)
    }
    windows = sorted({1, 4, N_FRAMES})
    grid = [
        _scenario(f"id/{policy.name}/w{window}", window=window, policy=policy)
        for policy in (ComponentRef("none"), REUSE)
        for window in windows
    ]
    cells = 0
    for executor in ("serial", "thread", "process"):
        engine = Engine(HIRISE_SYSTEM)
        for request, result in zip(grid, engine.run_batch(
            grid, workers=2, executor=executor
        )):
            want = oracles[request.policy]
            assert result.outcome.frames == want.frames, (
                f"{request.label} on {executor} diverged from the "
                "per-frame serial oracle"
            )
            assert result.outcome.system == want.system
            cells += 1
    emit(
        f"check 1: bit-identity across windows {windows} x 3 executors "
        f"x reuse on/off ({cells} cells)"
    )
    return {"windows": windows, "executors": 3, "cells": cells}


def test_stream_throughput(benchmark, emit):
    if not TINY:
        assert N_FRAMES >= 30

    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)

    table = Table(
        f"streaming: {N_FRAMES} frames at {RESOLUTION[0]}x{RESOLUTION[1]}, "
        f"k={POOL_K}, window={WINDOW}",
        ["policy", "stage-1 runs", "kB/frame", "uJ/frame", "frames/s", "vs conv"],
        aligns=["l", "r", "r", "r", "r", "r"],
    )
    policies = (
        "conventional",
        "hirise/frame",
        "hirise/window",
        "hirise/reuse",
        "hirise/window+reuse",
    )
    conv_bytes = results["conventional"].total_bytes
    for name in policies:
        r = results[name]
        table.add_row(
            name,
            r.stage1_frames if r.system == "hirise" else "-",
            f"{r.mean_bytes_per_frame / 1024:.1f}",
            f"{r.mean_energy_per_frame_j * 1e6:.2f}",
            f"{r.frames_per_second:.0f}",
            f"{conv_bytes / r.total_bytes:.1f}x",
        )
    emit("\n" + table.render())

    per, win, reuse = (
        results["hirise/frame"],
        results["hirise/window"],
        results["hirise/reuse"],
    )
    win_reuse = results["hirise/window+reuse"]

    # 1. The bit-identity matrix (windows x executors x reuse), plus the
    # deep kept-outcome audit on the headline windowed run.
    matrix = check_identity_matrix(emit)
    assert len(win.outcomes) == len(per.outcomes) == N_FRAMES
    for a, b in zip(per.outcomes, win.outcomes):
        assert np.array_equal(a.stage1_image, b.stage1_image)
        assert len(a.roi_crops) == len(b.roi_crops)
        for ca, cb in zip(a.roi_crops, b.roi_crops):
            assert np.array_equal(ca, cb)
        assert a.ledger.breakdown() == b.ledger.breakdown()
        assert a.stage1_conversions == b.stage1_conversions
        assert a.stage2_conversions == b.stage2_conversions
    assert win.frames == per.frames
    assert win.total_bytes == per.total_bytes
    assert win_reuse.frames == reuse.frames

    # 2. The windowed throughput gate: windowed stage-1 strictly beats the
    # per-frame loop on end-to-end frames/sec.  Wall-clock samples on a
    # shared CI runner can be stalled by the scheduler, so compare the
    # best of ROUNDS fresh runs per policy — the minimum estimates each
    # policy's intrinsic cost.  (Skipped under TINY: an 8-frame clip's
    # wall time is dominated by fixed overhead, not the windowed loop.)
    hirise = Engine(HIRISE_SYSTEM)
    from repro.stream import pedestrian_clip

    clip = pedestrian_clip(n_frames=N_FRAMES, resolution=RESOLUTION, seed=4)
    per_time = min(
        per.wall_time_s,
        *(_timed_run(hirise, _scenario("t"), clip) for _ in range(ROUNDS)),
    )
    win_time = min(
        win.wall_time_s,
        *(
            _timed_run(hirise, _scenario("t", window=WINDOW), clip)
            for _ in range(ROUNDS)
        ),
    )
    per_fps, win_fps = N_FRAMES / per_time, N_FRAMES / win_time
    if not TINY:
        assert win_fps > per_fps, (
            f"windowed {win_fps:.0f} fps must strictly beat "
            f"per-frame {per_fps:.0f} fps"
        )
    emit(
        f"check 2: windowed stage-1 {win_fps:.0f} fps vs per-frame "
        f"{per_fps:.0f} fps ({win_fps / per_fps:.2f}x, best of {ROUNDS + 1})"
    )

    # 3. Temporal ROI reuse strictly beats per-frame HiRISE on both axes.
    assert reuse.reused_frames > 0
    assert reuse.total_bytes < per.total_bytes
    assert reuse.total_energy_j < per.total_energy_j
    for frame in reuse.frames:
        if frame.reused_rois:
            assert frame.stage1_bytes == 0 and frame.stage1_conversions == 0
    reuse_time = min(
        reuse.wall_time_s,
        *(
            _timed_run(hirise, _scenario("t", policy=REUSE), clip)
            for _ in range(ROUNDS)
        ),
    )
    if not TINY:
        assert reuse_time < per_time
    emit(
        f"check 3: reuse skipped stage 1 on {reuse.reused_frames}/{reuse.n_frames} "
        f"frames -> {per.total_bytes / reuse.total_bytes:.2f}x fewer bytes, "
        f"{per_time / reuse_time:.2f}x faster (best of {ROUNDS + 1})"
    )

    # 4. Every HiRISE policy transfers far less than the conventional stream.
    for name in policies[1:]:
        assert results[name].total_bytes * 2 < conv_bytes
    emit("check 4: every HiRISE policy moves <50% of the conventional bytes")

    payload = {
        "tiny": TINY,
        "n_frames": N_FRAMES,
        "resolution": list(RESOLUTION),
        "pool_k": POOL_K,
        "window": WINDOW,
        "identity_matrix": matrix,
        "policies": {
            name: {
                "stage1_frames": results[name].stage1_frames,
                "reused_frames": results[name].reused_frames,
                "total_bytes": results[name].total_bytes,
                "total_energy_j": results[name].total_energy_j,
                "frames_per_second": results[name].frames_per_second,
                "bytes_vs_conventional": conv_bytes / results[name].total_bytes,
            }
            for name in policies
        },
        "gate": {
            "per_frame_fps": per_fps,
            "windowed_fps": win_fps,
            "windowed_speedup": win_fps / per_fps,
            "reuse_speedup": per_time / reuse_time,
            "rounds": ROUNDS + 1,
            "enforced": not TINY,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    emit(f"wrote {OUTPUT.name}")
