"""Streaming extension benchmark: frames/sec and data transfer over video.

The paper (Tables 1/3, Figs. 6-8) costs single exposures; this bench runs
the system over a ≥30-frame synthetic pedestrian clip and compares four
policies, all declared as :mod:`repro.service` specs and served through
the :class:`~repro.service.Engine` (the unified front door this repo's
consumers use):

* **conventional** — ship every full frame (the Fig. 2a baseline, streamed);
* **hirise/frame** — the full two-stage HiRISE flow on every frame;
* **hirise/batch**  — same flow, but stage-1 exposure + analog pooling for
  the whole clip vectorized into NumPy passes (bit-identical by design);
* **hirise/reuse**  — temporal ROI reuse: IoU-gated skipping of the pooled
  conversion *and* the stage-1 detector on stable frames.

Checks enforced here (the streaming acceptance bar):

1. batched stage-1 is **bit-identical** to the per-frame loop (images,
   crops, and every ledger row);
2. ROI reuse moves **strictly fewer bytes** and finishes **strictly
   faster** than per-frame HiRISE;
3. every HiRISE policy moves far fewer bytes than the conventional stream.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table
from repro.core import HiRISEConfig
from repro.service import ComponentRef, Engine, ScenarioSpec, SystemSpec

N_FRAMES = 36
RESOLUTION = (256, 192)
POOL_K = 4
BATCH = 12

HIRISE_SYSTEM = SystemSpec(
    system="hirise",
    config=HiRISEConfig(pool_k=POOL_K, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth", {"label": "person"}),
)
CONVENTIONAL_SYSTEM = SystemSpec(
    system="conventional",
    detector=ComponentRef("ground-truth", {"label": "person"}),
)


def _scenario(name: str, **kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        source=ComponentRef("pedestrian", {"resolution": list(RESOLUTION)}),
        n_frames=N_FRAMES,
        seed=4,
        **kwargs,
    )


REUSE = ComponentRef("temporal-reuse", {"max_reuse": 3})


def _timed_run(engine: Engine, scenario: ScenarioSpec, clip) -> float:
    """One fresh wall-clock sample of a policy (for the speed comparison).

    ``wall_time_s`` covers only the stream processing, so handing every
    sample the same pre-rendered clip changes nothing but the bench's own
    run time.
    """
    return engine.run(scenario, clip=clip).outcome.wall_time_s


def run_policies():
    hirise = Engine(HIRISE_SYSTEM)
    conventional = Engine(CONVENTIONAL_SYSTEM)
    # One batch call: the three hirise scenarios share a (source, n_frames,
    # seed) triple, so the clip renders once.
    batch = hirise.run_batch(
        [
            _scenario("hirise/frame", keep_outcomes=True),
            _scenario("hirise/batch", batch_size=BATCH, keep_outcomes=True),
            _scenario("hirise/reuse", policy=REUSE),
        ],
        workers=1,
    )
    results = {r.label: r.outcome for r in batch}
    results["conventional"] = conventional.run(_scenario("conventional")).outcome
    return results


def test_stream_throughput(benchmark, emit):
    assert N_FRAMES >= 30

    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)

    table = Table(
        f"streaming: {N_FRAMES} frames at {RESOLUTION[0]}x{RESOLUTION[1]}, k={POOL_K}",
        ["policy", "stage-1 runs", "kB/frame", "uJ/frame", "frames/s", "vs conv"],
        aligns=["l", "r", "r", "r", "r", "r"],
    )
    conv_bytes = results["conventional"].total_bytes
    for name in ("conventional", "hirise/frame", "hirise/batch", "hirise/reuse"):
        r = results[name]
        table.add_row(
            name,
            r.stage1_frames if r.system == "hirise" else "-",
            f"{r.mean_bytes_per_frame / 1024:.1f}",
            f"{r.mean_energy_per_frame_j * 1e6:.2f}",
            f"{r.frames_per_second:.0f}",
            f"{conv_bytes / r.total_bytes:.1f}x",
        )
    emit("\n" + table.render())

    per, bat, reuse = (
        results["hirise/frame"], results["hirise/batch"], results["hirise/reuse"]
    )

    # 1. Batched stage-1 is bit-identical to the per-frame loop.
    assert len(bat.outcomes) == len(per.outcomes) == N_FRAMES
    for a, b in zip(per.outcomes, bat.outcomes):
        assert np.array_equal(a.stage1_image, b.stage1_image)
        assert len(a.roi_crops) == len(b.roi_crops)
        for ca, cb in zip(a.roi_crops, b.roi_crops):
            assert np.array_equal(ca, cb)
        assert a.ledger.breakdown() == b.ledger.breakdown()
        assert a.stage1_conversions == b.stage1_conversions
        assert a.stage2_conversions == b.stage2_conversions
    assert bat.total_bytes == per.total_bytes
    emit("check 1: batched stage-1 bit-identical to the per-frame loop")

    # 2. Temporal ROI reuse strictly beats per-frame HiRISE on both axes.
    assert reuse.reused_frames > 0
    assert reuse.total_bytes < per.total_bytes
    assert reuse.total_energy_j < per.total_energy_j
    for frame in reuse.frames:
        if frame.reused_rois:
            assert frame.stage1_bytes == 0 and frame.stage1_conversions == 0
    # The speed claim is wall-clock; samples on a shared CI runner can be
    # stalled by the scheduler, so compare the best of five timed runs per
    # policy — the minimum estimates each policy's intrinsic cost, and the
    # intrinsic gap is large (reuse skips the detector and the pooled
    # conversion on most frames).  The deterministic work skipped is
    # already asserted above, independent of timing.
    hirise = Engine(HIRISE_SYSTEM)
    from repro.stream import pedestrian_clip

    clip = pedestrian_clip(n_frames=N_FRAMES, resolution=RESOLUTION, seed=4)
    per_time = min(
        per.wall_time_s,
        *(_timed_run(hirise, _scenario("t"), clip) for _ in range(4)),
    )
    reuse_time = min(
        reuse.wall_time_s,
        *(_timed_run(hirise, _scenario("t", policy=REUSE), clip) for _ in range(4)),
    )
    assert reuse_time < per_time
    emit(
        f"check 2: reuse skipped stage 1 on {reuse.reused_frames}/{reuse.n_frames} "
        f"frames -> {per.total_bytes / reuse.total_bytes:.2f}x fewer bytes, "
        f"{per_time / reuse_time:.2f}x faster (best of 5)"
    )

    # 3. Every HiRISE policy transfers far less than the conventional stream.
    for name in ("hirise/frame", "hirise/batch", "hirise/reuse"):
        assert results[name].total_bytes * 2 < conv_bytes
    emit("check 3: every HiRISE policy moves <50% of the conventional bytes")
