"""Design-choice ablations called out in DESIGN.md (beyond the paper).

Three knobs the paper fixes are swept here:

1. **ADC precision** — the paper uses P_ADC = 8 everywhere; energy and
   transfer scale with precision, so a deployment might trade bits for
   savings.
2. **ROI overlap policy** — Table 1 sums ΣWᵢHᵢ (overlapping pixels
   converted twice), while the encoder could dedup to the *union*; crowded
   scenes make the difference material.
3. **Grayscale stage 1** — the optional 3x compression circuit: how much
   of the total HiRISE cost does it actually remove once stage 2
   dominates?
"""

from __future__ import annotations

import pytest

from repro.bench import Table
from repro.core import ROI, EnergyModel, hirise_costs, total_area, union_area
from repro.datasets import crowdhuman_like

ARRAY = (2560, 1920)


def crowded_rois(scale: float = 4.0) -> list[ROI]:
    scene = crowdhuman_like(1, resolution=(640, 480), seed=5)[0]
    rois = []
    for b in scene.boxes_for("person"):
        clipped = ROI(int(b.x), int(b.y), max(int(b.w), 1), max(int(b.h), 1)).clip(
            640, 480
        )
        if clipped:
            rois.append(clipped.scaled(scale))
    return rois


def test_ablation_adc_precision(benchmark, emit):
    """P_ADC sweep: transfer and energy scale linearly with bits."""

    def sweep():
        rois = [(112, 112)] * 16
        return {
            bits: hirise_costs(*ARRAY, 8, rois, p_adc=bits, grayscale=False)
            for bits in (4, 6, 8, 10, 12)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "ablation: ADC precision (2560x1920, k=8, 16x112^2 ROIs)",
        ["P_ADC", "HiRISE transfer kB", "reduction vs 8-bit baseline"],
    )
    base8 = results[8]
    for bits, cb in results.items():
        table.add_row(
            bits, cb.hirise_transfer_bits / 8 / 1000,
            f"{base8.conventional.data_transfer_bits / cb.hirise_transfer_bits:.1f}x",
        )
    emit("\n" + table.render())

    transfers = [results[b].hirise_transfer_bits for b in (4, 6, 8, 10, 12)]
    assert transfers == sorted(transfers)
    # Conversions do not depend on precision, only bits moved do.
    assert results[4].hirise_conversions == results[12].hirise_conversions


def test_ablation_roi_overlap_policy(benchmark, emit):
    """Sum vs union readout on a crowded scene."""
    rois = benchmark.pedantic(crowded_rois, rounds=1, iterations=1)
    summed = total_area(rois)
    union = union_area(rois)
    savings = 1.0 - union / summed
    emit(
        f"\nablation: ROI overlap policy on a crowded frame "
        f"({len(rois)} person boxes)\n"
        f"  summed readout : {summed:,} px\n"
        f"  union readout  : {union:,} px  ({savings:.0%} fewer conversions)"
    )
    assert union <= summed
    assert savings > 0.02  # crowds overlap; dedup must buy something

    cost_sum = hirise_costs(*ARRAY, 8, rois, dedup_overlaps=False)
    cost_union = hirise_costs(*ARRAY, 8, rois, dedup_overlaps=True)
    assert cost_union.hirise_conversions < cost_sum.hirise_conversions
    assert cost_union.transfer_reduction > cost_sum.transfer_reduction


def test_ablation_grayscale_stage1(benchmark, emit):
    """Grayscale stage-1: large relative stage-1 saving, bounded total one."""

    def sweep():
        model = EnergyModel()
        rois = [(112, 112)] * 16
        out = {}
        for k in (2, 4, 8):
            rgb = model.hirise_frame(*ARRAY, k, rois, grayscale=False)
            gray = model.hirise_frame(*ARRAY, k, rois, grayscale=True)
            out[k] = (rgb, gray)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "ablation: grayscale stage-1 (energy, mJ)",
        ["k", "RGB total", "gray total", "total saving", "stage-1 saving"],
    )
    for k, (rgb, gray) in results.items():
        table.add_row(
            k, rgb.total_mj, gray.total_mj,
            f"{(1 - gray.total / rgb.total) * 100:.0f}%",
            f"{(1 - gray.stage1_adc / rgb.stage1_adc) * 100:.0f}%",
        )
    emit("\n" + table.render())

    for k, (rgb, gray) in results.items():
        # The circuit removes exactly 2/3 of stage-1 conversions...
        assert gray.stage1_adc == pytest.approx(rgb.stage1_adc / 3)
        # ...but total savings shrink as stage 2 dominates at large k.
        assert gray.total < rgb.total
    saving_k2 = 1 - results[2][1].total / results[2][0].total
    saving_k8 = 1 - results[8][1].total / results[8][0].total
    assert saving_k2 > saving_k8
