"""Shared helpers for the benchmark harnesses.

Each benchmark regenerates one paper table/figure: it computes the result
once inside ``benchmark.pedantic`` (so pytest-benchmark reports its cost),
prints the paper-style rows through ``emit`` (bypassing capture so the
output lands in ``bench_output.txt``), and asserts the shape targets from
DESIGN.md §7.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture()
def emit(capsys):
    """Print straight to the terminal, bypassing pytest's capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit


def env_flag(name: str, default: bool = False) -> bool:
    """Read a boolean environment flag (1/true/yes)."""
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip().lower() in ("1", "true", "yes")


def env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default
