"""Reproduces **Fig. 5**: SPICE-style transients of the analog averaging
circuit — (a) two analog inputs, (b) four digital inputs, plus the paper's
192-input extension.

The paper validates three behaviors: the shared node follows a lone ramping
input at half slope (region 1), opposing slopes cancel (region 2), and with
digital inputs the node steps through the quantized mean levels, peaking
when all inputs are high and bottoming when all are low.  The 192-input
bench must remain "flawless" (clean affine tracking of the mean).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog import four_input_bench, many_input_bench, two_input_bench
from repro.bench import Table, ascii_line_chart


def run_all():
    fig5a = two_input_bench()
    fig5b = four_input_bench()
    ext = many_input_bench(n_inputs=192, t_stop=2e-4, dt=5e-6)
    return fig5a, fig5b, ext


def test_fig5_circuit_benches(benchmark, emit):
    fig5a, fig5b, ext = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Fig. 5 (reproduced): tracking fits of the shared averaging node",
        ["bench", "inputs", "gain (ideal 0.5)", "offset V", "rmse mV", "rel rmse"],
        aligns=["l", "r", "r", "r", "r", "r"],
    )
    for bench, n in ((fig5a, 2), (fig5b, 4), (ext, 192)):
        fit = bench.fit
        table.add_row(
            bench.name, n, fit.gain, fit.offset, fit.rmse * 1e3,
            f"{fit.relative_rmse * 100:.2f}%",
        )
    emit("\n" + table.render())

    # Fig. 5(a) waveform chart: inputs and the shared node.
    inputs = fig5a.input_matrix()
    stride = max(len(fig5a.time) // 64, 1)
    emit(ascii_line_chart(
        {
            "Inp1": inputs[0][::stride],
            "Inp2": inputs[1][::stride],
            "Avg": fig5a.avg[::stride],
        },
        x_labels=[f"{fig5a.time[0] * 1e3:.1f}ms", f"{fig5a.time[-1] * 1e3:.1f}ms"],
        title="\nFig. 5(a): two analog inputs and the Avg node",
    ))
    emit(ascii_line_chart(
        {"Avg": fig5b.avg[:: max(len(fig5b.time) // 64, 1)]},
        x_labels=["0", f"{fig5b.time[-1] * 1e3:.1f}ms"],
        title="\nFig. 5(b): four digital inputs -> quantized average levels",
    ))

    # Shape targets (DESIGN.md §7).
    for bench in (fig5a, fig5b):
        assert bench.fit.gain == pytest.approx(0.5, abs=0.06)
        assert bench.fit.relative_rmse < 0.02
    assert ext.fit.relative_rmse < 0.05  # "flawless" at 192 inputs

    # Region 2 of Fig. 5(a): opposing slopes -> flat Avg.
    t = fig5a.time
    mask = (t > t[-1] / 3 * 1.1) & (t < 2 * t[-1] / 3 * 0.9)
    assert np.ptp(fig5a.avg[mask]) < 0.05 * np.ptp(fig5a.avg)

    # Fig. 5(b) annotations: peak when all inputs high, trough when all low.
    means = fig5b.input_matrix().mean(axis=0)
    assert means[np.argmax(fig5b.avg)] == pytest.approx(means.max(), abs=0.05)
    assert means[np.argmin(fig5b.avg)] == pytest.approx(means.min(), abs=0.05)


def test_dc_operating_point_throughput(benchmark):
    """Micro-benchmark: DC solve of a 12-pixel (2x2 RGB) pooling group."""
    from repro.analog import DC, MNASolver, build_pooling_circuit

    circuit = build_pooling_circuit([DC(0.5)] * 12)
    solver = MNASolver(circuit)
    benchmark(solver.dc)
