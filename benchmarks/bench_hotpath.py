"""Hot-path benchmark: phase breakdown + batched stage-2 vs per-crop loop.

PR 3 made *batches of requests* fast; this bench measures the single
request itself.  It enforces the hot-path contract introduced with
batched stage-2 inference:

1. **bit-identity** — in float64 compute mode, batched classification
   (``classify_crops``: bucket by post-resize shape, one forward per
   bucket) is bit-identical to the per-crop loop, on raw crops and
   through a full served scenario;
2. **parity** — float32 compute mode produces identical argmax and
   logits within the documented tolerances
   (``repro.ml.classifier.crop.FLOAT32_LOGIT_ATOL/RTOL``);
3. **speed** — with >= 8 ROIs per frame, the batched path is strictly
   faster than the per-crop loop (skipped in tiny smoke mode, where
   only the correctness gates run);
4. **observability** — a profiled engine run yields the per-phase
   wall-clock breakdown (expose / stage1.read / detect / condition /
   stage2.read / stage2.classify).

Everything measured lands in ``BENCH_hotpath.json`` at the repo root —
the first entry of the ROADMAP's perf trajectory.

Env knobs:
  ``REPRO_HOTPATH_TINY``  tiny workload, correctness asserts only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from conftest import env_flag

from repro.bench import Table
from repro.core import HiRISEConfig, classify_crops
from repro.ml import CropClassifier, tiny_cnn
from repro.ml.classifier.crop import FLOAT32_LOGIT_ATOL, FLOAT32_LOGIT_RTOL
from repro.service import ComponentRef, Engine, EngineCache, ScenarioSpec, SystemSpec

TINY = env_flag("REPRO_HOTPATH_TINY")
N_CROPS = 8 if TINY else 24          # ROIs per "frame" for the speed claim
INPUT_SIZE = 16 if TINY else 32      # classifier input side
ROUNDS = 2 if TINY else 5            # best-of for wall-clock numbers
N_FRAMES = 3 if TINY else 8
RESOLUTION = (128, 96) if TINY else (256, 192)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

CLASSES = ("pedestrian", "cyclist", "vehicle", "background")


def make_classifier(dtype: str = "float64") -> CropClassifier:
    clf = CropClassifier(
        tiny_cnn(INPUT_SIZE, len(CLASSES), width=8, seed=0),
        (INPUT_SIZE, INPUT_SIZE),
        CLASSES,
    )
    return clf.set_compute_dtype(dtype)


def make_crops(n: int) -> list[np.ndarray]:
    """Deterministic variable-size RGB crops (what stage 2 hands over)."""
    rng = np.random.default_rng(7)
    sizes = [(int(rng.integers(12, 64)), int(rng.integers(12, 64))) for _ in range(n)]
    return [rng.random((h, w, 3)) for h, w in sizes]


def best_of(fn, rounds: int = ROUNDS) -> float:
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def profiled_scenario() -> tuple[SystemSpec, ScenarioSpec]:
    system = SystemSpec(
        config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05),
        detector=ComponentRef("ground-truth"),
        classifier=ComponentRef(
            "tiny-cnn", {"input_size": INPUT_SIZE, "classes": list(CLASSES)}
        ),
    )
    scenario = ScenarioSpec(
        name="hotpath",
        source=ComponentRef(
            "pedestrian", {"resolution": list(RESOLUTION), "n_walkers": 10}
        ),
        n_frames=N_FRAMES,
        seed=4,
        keep_outcomes=True,
    )
    return system, scenario


def test_hotpath(benchmark, emit):
    classifier = make_classifier()
    crops = make_crops(N_CROPS)
    assert len(crops) >= 8, "the speed claim is defined at >= 8 ROIs/frame"

    # -- 1. bit-identity on raw crops (always gated, tiny mode included) -----
    batched = benchmark.pedantic(
        classify_crops, args=(classifier, crops), rounds=1, iterations=1
    )
    looped = [classifier(crop) for crop in crops]
    for a, b in zip(batched, looped):
        assert a.label == b.label and a.index == b.index
        assert np.array_equal(a.logits, b.logits), "float64 batched != per-crop"
    emit(f"\ncheck 1: batched == per-crop bit-identical ({len(crops)} crops)")

    # -- 2. float32 parity within the documented tolerances ------------------
    f32 = classify_crops(make_classifier("float32"), crops)
    max_diff = 0.0
    for a, b in zip(batched, f32):
        assert b.logits.dtype == np.float32
        assert a.index == b.index, "float32 argmax must match float64"
        assert np.allclose(
            b.logits, a.logits, atol=FLOAT32_LOGIT_ATOL, rtol=FLOAT32_LOGIT_RTOL
        )
        max_diff = max(max_diff, float(np.abs(b.logits - a.logits).max()))
    emit(
        f"check 2: float32 parity — identical argmax, max |dlogit| "
        f"{max_diff:.2e} (atol {FLOAT32_LOGIT_ATOL:g})"
    )

    # -- 3. wall-clock: batched must beat the loop (skipped in tiny mode) ----
    looped_s = best_of(lambda: [classifier(crop) for crop in crops])
    batched_s = best_of(lambda: classify_crops(classifier, crops))
    f32_clf = make_classifier("float32")
    batched_f32_s = best_of(lambda: classify_crops(f32_clf, crops))
    speedup = looped_s / batched_s if batched_s > 0 else float("inf")
    table = Table(
        f"stage-2 classification of {len(crops)} crops "
        f"(resize to {INPUT_SIZE}x{INPUT_SIZE}, best of {ROUNDS})",
        ["path", "best ms", "speedup"],
        aligns=["l", "r", "r"],
    )
    table.add_row("per-crop loop (f64)", f"{looped_s * 1e3:.2f}", "1.00x")
    table.add_row("batched (f64)", f"{batched_s * 1e3:.2f}", f"{speedup:.2f}x")
    table.add_row(
        "batched (f32)",
        f"{batched_f32_s * 1e3:.2f}",
        f"{looped_s / batched_f32_s:.2f}x",
    )
    emit("\n" + table.render())
    if TINY:
        emit("check 3: skipped (tiny smoke mode gates on bit-identity only)")
    else:
        assert batched_s < looped_s, (
            f"batched stage-2 ({batched_s * 1e3:.2f} ms) must beat the "
            f"per-crop loop ({looped_s * 1e3:.2f} ms) at {len(crops)} ROIs/frame"
        )
        emit(f"check 3: batched beats per-crop loop ({speedup:.2f}x)")

    # -- 4. served scenario: phase breakdown + end-to-end bit-identity -------
    system, scenario = profiled_scenario()
    engine = Engine(system, cache=EngineCache.disabled(), profile=True)
    result = engine.run(scenario)
    profile = result.profile
    assert profile is not None
    for path in ("expose", "stage1.read", "detect", "condition",
                 "stage2.read", "stage2.classify"):
        assert profile.get(path) is not None, f"missing phase {path}"
    emit("\nphase breakdown (one served request):")
    emit(profile.report())

    # The served predictions equal a per-crop loop over the served crops:
    # batching changed execution, not results.
    served = [
        (outcome.roi_crops, outcome.predictions)
        for outcome in result.outcome.outcomes
    ]
    reference = make_classifier()
    n_rois = 0
    for roi_crops, predictions in served:
        n_rois += len(roi_crops)
        for crop, prediction in zip(roi_crops, predictions):
            expected = reference(crop)
            assert prediction.label == expected.label
            assert np.array_equal(prediction.logits, expected.logits)
    emit(
        f"check 4: served scenario bit-identical to per-crop reference "
        f"({n_rois} ROIs over {N_FRAMES} frames)"
    )

    payload = {
        "experiment": "hotpath",
        "tiny": TINY,
        "config": {
            "n_crops": len(crops),
            "input_size": INPUT_SIZE,
            "rounds": ROUNDS,
            "n_frames": N_FRAMES,
            "resolution": list(RESOLUTION),
        },
        "batched_vs_looped": {
            "looped_ms": looped_s * 1e3,
            "batched_ms": batched_s * 1e3,
            "batched_float32_ms": batched_f32_s * 1e3,
            "speedup": speedup,
            "bit_identical_float64": True,
        },
        "float32_parity": {
            "argmax_identical": True,
            "max_abs_logit_diff": max_diff,
            "atol": FLOAT32_LOGIT_ATOL,
            "rtol": FLOAT32_LOGIT_RTOL,
        },
        "phases": profile.to_dict(),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    emit(f"wrote {OUTPUT.name}")
