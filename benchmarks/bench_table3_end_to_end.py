"""Reproduces **Table 3**: end-to-end system analysis across pixel-array
sizes — detected ROI size, stage-2 accuracy, peak SRAM, data transfer, and
sensor energy, for an MCUNetV2-like and a MobileNetV2-like stage-2 model.

Protocol (mirrors the paper):

* stage-1 resolution fixed at 320x240 (pooling k = width/320);
* the stage-2 ROI statistic comes from CrowdHuman heads: j = 16 boxes of
  side 14 * (width/320) px (the paper's 100k-ROI median, see DESIGN.md);
* an expression-recognition model is trained per ROI resolution on the
  RAF-DB-like dataset (faces rendered once at 224 px, then downsampled to
  the ROI size — resolution is the only variable);
* SRAM/transfer/energy columns are computed from the memory analyzer and
  the cost/energy models.

Environment knobs: ``REPRO_T3_TRAIN`` / ``REPRO_T3_EVAL`` (faces per
split), ``REPRO_T3_ROWS`` (number of array sizes, default all 8).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import env_int
from repro.bench import Table
from repro.core import EnergyModel, hirise_costs, roi_feedback_bits
from repro.datasets import EXPRESSIONS, rafdb_like, render_face
from repro.memory import analyze, mcunetv2_classifier, mobilenetv2
from repro.ml import HOGClassifier
from repro.ml.image import resize_bilinear

ARRAYS = [
    (320, 240), (640, 480), (960, 720), (1280, 960),
    (1600, 1200), (1920, 1440), (2240, 1680), (2560, 1920),
]
N_ROIS = 16
STAGE1_BYTES = 320 * 240 * 3

MODELS = {
    "MCUNetV2": ("mcunetv2-like", mcunetv2_classifier),
    "MobileNetV2": ("mobilenetv2-like", mobilenetv2),
}


def roi_side(width: int) -> int:
    return round(14 * width / 320)


def render_face_bank(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Canonical 224px faces rendered once and reused for every ROI size."""
    images = np.empty((n, 224, 224, 3))
    labels = np.empty(n, dtype=np.int64)
    for i in range(n):
        rng = np.random.default_rng((seed, i))
        label = i % len(EXPRESSIONS)
        images[i] = render_face(EXPRESSIONS[label], rng, 224)
        labels[i] = label
    return images, labels


def downsample_bank(bank: np.ndarray, size: int) -> np.ndarray:
    """Area-downsample when the factor divides, else bilinear (42/70/84/98)."""
    if 224 % size == 0:
        f = 224 // size
        return bank.reshape(len(bank), size, f, size, f, 3).mean(axis=(2, 4))
    return np.stack([resize_bilinear(img, (size, size)) for img in bank])


def compute_table3():
    n_rows = env_int("REPRO_T3_ROWS", len(ARRAYS))
    n_train = env_int("REPRO_T3_TRAIN", 252)
    n_eval = env_int("REPRO_T3_EVAL", 84)
    arrays = ARRAYS[:n_rows]

    train_bank, train_labels = render_face_bank(n_train, seed=0)
    eval_bank, eval_labels = render_face_bank(n_eval, seed=1)

    energy_model = EnergyModel()
    rows = {name: [] for name in MODELS}
    for w, h in arrays:
        side = roi_side(w)
        k = w // 320
        rois = [(side, side)] * N_ROIS
        costs = hirise_costs(w, h, k, rois, grayscale=False)

        baseline_bytes = costs.conventional.data_transfer_bits // 8
        hirise_bytes = costs.hirise_transfer_bits // 8
        base_energy = energy_model.conventional_frame(w, h).total
        hirise_energy = energy_model.hirise_frame(w, h, k, rois).total

        xtr = downsample_bank(train_bank, side)
        xte = downsample_bank(eval_bank, side)
        for name, (preset, graph_fn) in MODELS.items():
            clf = HOGClassifier(preset, n_classes=len(EXPRESSIONS), epochs=300)
            clf.fit(xtr, train_labels)
            acc = clf.accuracy(xte, eval_labels)

            peak_act = analyze(graph_fn((side, side))).peak_sram_bytes
            rows[name].append({
                "array": f"{w}x{h}",
                "roi": f"{side}x{side}",
                "acc": acc,
                "peak_act_kb": peak_act / 1000,
                "img_base_kb": w * h * 3 / 1000,
                "img_hirise_kb": STAGE1_BYTES / 1000,
                "total_base_kb": (w * h * 3 + peak_act) / 1000,
                "total_hirise_kb": (STAGE1_BYTES + peak_act) / 1000,
                "dt_base_kb": baseline_bytes / 1000,
                "dt_hirise_kb": hirise_bytes / 1000,
                "e_base_mj": base_energy * 1e3,
                "e_hirise_mj": hirise_energy * 1e3,
            })
    return rows


def test_table3_end_to_end(benchmark, emit):
    rows = benchmark.pedantic(compute_table3, rounds=1, iterations=1)

    for name, model_rows in rows.items():
        table = Table(
            f"Table 3 (reproduced) — {name}-like stage-2 model "
            f"(stage-1 fixed at 320x240, j=16 head ROIs)",
            ["pixel array", "ROI", "acc %", "peak act kB",
             "SRAM base kB", "SRAM HiRISE kB",
             "DT base kB", "DT HiRISE kB", "E base mJ", "E HiRISE mJ"],
            aligns=["l", "l", "r", "r", "r", "r", "r", "r", "r", "r"],
        )
        for r in model_rows:
            table.add_row(
                r["array"], r["roi"], f"{r['acc'] * 100:.1f}",
                r["peak_act_kb"], r["total_base_kb"], r["total_hirise_kb"],
                r["dt_base_kb"], r["dt_hirise_kb"],
                f"{r['e_base_mj']:.3f}", f"{r['e_hirise_mj']:.3f}",
            )
        emit("\n" + table.render())

    # -- Shape targets -----------------------------------------------------------
    for name, model_rows in rows.items():
        accs = [r["acc"] for r in model_rows]
        # (1) Accuracy at the largest array beats the smallest clearly, and
        # the curve is near-monotone (small dips tolerated, as in the paper
        # where 1600x1200 -> 1920x1440 dips 80.8 -> 80.3).
        assert accs[-1] > accs[0] + 0.1, f"{name}: {accs}"
        dips = sum(1 for a, b in zip(accs, accs[1:]) if b < a - 0.03)
        assert dips <= 2, f"{name}: too many accuracy dips: {accs}"

        if len(model_rows) == len(ARRAYS):
            last = model_rows[-1]
            # (2) Energy reduction at 2560x1920 ~= 17.7x (paper headline).
            reduction = last["e_base_mj"] / last["e_hirise_mj"]
            assert reduction == pytest.approx(17.7, rel=0.1), name
            # (3) SRAM reduction is large (paper: 37.5x for MCUNetV2).
            sram_ratio = last["total_base_kb"] / last["total_hirise_kb"]
            assert sram_ratio > 10, name
            # (4) Baseline energy is the paper's 1.843 mJ.
            assert last["e_base_mj"] == pytest.approx(1.843, abs=0.01)

    # (5) The larger model is at least as accurate as the smaller one at
    # high resolution (paper: 84.7% vs 81.2% at 2560x1920).
    final_small = rows["MCUNetV2"][-1]["acc"]
    final_large = rows["MobileNetV2"][-1]["acc"]
    emit(
        f"\nfinal-row accuracy: MCUNetV2-like {final_small * 100:.1f}% vs "
        f"MobileNetV2-like {final_large * 100:.1f}% (paper: 81.2 vs 84.7)"
    )
    assert final_large >= final_small - 0.02

    # (6) MobileNetV2 peak activations exceed MCUNetV2's at every size.
    for small_row, large_row in zip(rows["MCUNetV2"], rows["MobileNetV2"]):
        assert large_row["peak_act_kb"] > small_row["peak_act_kb"]
