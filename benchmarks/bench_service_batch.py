"""Service batch benchmark: executor sweep + result-cache acceptance.

The service layer's promise is that one :class:`Engine` can serve a
*fleet* of declarative scenarios faster than running them one by one,
without changing a single bit of any result.  This bench serves a
six-scenario workload (pedestrian and drone clips under per-frame,
batched-stage-1, and temporal-reuse policies) through every executor and
enforces:

1. every executor — serial, thread, and the spawn-safe process pool — is
   **bit-identical** to sequential, cache-free ``engine.run`` calls;
2. on multi-core hardware the **process executor beats the thread
   executor** wall-clock on this CPU-bound fleet (best-of-N, warm pools;
   the pipeline work is GIL-bound NumPy+Python, which threads cannot
   overlap).  Skipped on single-core runners, where no executor can
   physically win, and in tiny smoke mode;
3. the **result cache** serves a repeated batch entirely from hits —
   reported on ``BatchResult.cache`` — bit-identically and faster than
   the cold batch;
4. the aggregate ledger equals the sum of its per-request parts.

Env knobs (the CI smoke uses both):
  ``REPRO_SERVICE_EXECUTORS``  comma list to sweep (default: all three)
  ``REPRO_SERVICE_TINY``       tiny workload, correctness asserts only
"""

from __future__ import annotations

import os
import time

from conftest import env_flag

from repro.bench import Table
from repro.core import HiRISEConfig
from repro.service import (
    ComponentRef,
    Engine,
    EngineCache,
    ScenarioSpec,
    SystemSpec,
    make_executor,
)

TINY = env_flag("REPRO_SERVICE_TINY")
RESOLUTION = (128, 96) if TINY else (320, 240)
N_FRAMES = 4 if TINY else 24
WORKERS = 2 if TINY else 4
ROUNDS = 1 if TINY else 3
SWEEP = [
    name.strip()
    for name in os.environ.get(
        "REPRO_SERVICE_EXECUTORS", "serial,thread,process"
    ).split(",")
    if name.strip()
]

SYSTEM = SystemSpec(
    system="hirise",
    config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth"),
)


def workload() -> list[ScenarioSpec]:
    """Six requests over two clips: every policy, both workloads."""
    scenarios = []
    for source, seed in (("pedestrian", 4), ("drone", 11)):
        ref = ComponentRef(source, {"resolution": list(RESOLUTION)})
        common = dict(source=ref, n_frames=N_FRAMES, seed=seed)
        scenarios += [
            ScenarioSpec(name=f"{source}/per-frame", **common),
            ScenarioSpec(name=f"{source}/batched", batch_size=8, **common),
            ScenarioSpec(
                name=f"{source}/reuse",
                policy=ComponentRef("temporal-reuse", {"max_reuse": 3}),
                **common,
            ),
        ]
    return scenarios


def compute_engine() -> Engine:
    """An engine that always recomputes results (clip sharing stays on —
    it is structural to batch serving — but nothing is memoized, so
    timings measure executor compute, not cache lookups)."""
    return Engine(SYSTEM, cache=EngineCache(clip_capacity=8, result_capacity=0))


def sweep_executors(requests):
    """Best-of-ROUNDS wall time per executor, plus each one's results."""
    timings, results = {}, {}
    for name in SWEEP:
        engine = compute_engine()
        with make_executor(name, WORKERS) as pool:
            best = None
            for _ in range(ROUNDS):
                batch = engine.run_batch(requests, executor=pool)
                best = batch.wall_time_s if best is None else min(best, batch.wall_time_s)
            timings[name] = best
            results[name] = batch
    return timings, results


def test_service_executors(benchmark, emit):
    requests = workload()
    reference = Engine(SYSTEM, cache=EngineCache.disabled())

    start = time.perf_counter()
    sequential = [reference.run(r) for r in requests]
    seq_time = time.perf_counter() - start

    timings, results = benchmark.pedantic(
        sweep_executors, args=(requests,), rounds=1, iterations=1
    )

    table = Table(
        f"service batch: {len(requests)} scenarios, {N_FRAMES} frames each "
        f"at {RESOLUTION[0]}x{RESOLUTION[1]}, {WORKERS} workers",
        ["executor", "best ms", "vs sequential"],
        aligns=["l", "r", "r"],
    )
    table.add_row("(sequential)", f"{seq_time * 1e3:.0f}", "1.00x")
    for name, best in timings.items():
        table.add_row(name, f"{best * 1e3:.0f}", f"{seq_time / best:.2f}x")
    emit("\n" + table.render())

    # 1. Every executor is bit-identical to sequential, cache-free runs.
    for name, batch in results.items():
        assert batch.executor == name
        assert len(batch) == len(sequential)
        for seq_result, batch_result in zip(sequential, batch):
            assert batch_result.scenario == seq_result.scenario
            assert batch_result.outcome.frames == seq_result.outcome.frames
    emit(f"check 1: {', '.join(results)} bit-identical to sequential run()")

    # 2. True parallelism wins where the hardware allows it: the process
    # pool must beat the GIL-bound thread pool on this CPU-bound fleet.
    # Best-of-N with persistent pools estimates each path's intrinsic
    # steady-state cost (spawn startup is amortized away, as in serving).
    cores = os.cpu_count() or 1
    if TINY or "process" not in timings or "thread" not in timings:
        emit("check 2: skipped (tiny smoke mode or partial sweep)")
    elif cores < 2:
        emit(f"check 2: skipped ({cores} core: no executor can win wall-clock)")
    else:
        assert timings["process"] < timings["thread"], (
            f"process executor ({timings['process'] * 1e3:.0f} ms) must beat "
            f"threads ({timings['thread'] * 1e3:.0f} ms) on {cores} cores"
        )
        emit(
            f"check 2: process {timings['process'] * 1e3:.0f} ms < thread "
            f"{timings['thread'] * 1e3:.0f} ms on {cores} cores "
            f"(best of {ROUNDS})"
        )

    # 3. The aggregate ledger is exactly the sum of its parts.
    some = next(iter(results.values()))
    assert some.total_bytes == sum(r.outcome.total_bytes for r in sequential)
    assert some.total_frames == len(requests) * N_FRAMES
    assert some.total_conversions == sum(
        r.outcome.total_conversions for r in sequential
    )
    emit("check 3: batch aggregate equals the sum of per-request ledgers")


def test_service_result_cache(emit):
    """Cross-request memoization: a repeated fleet costs lookups, not compute."""
    requests = workload()
    engine = Engine(SYSTEM)  # default cache: both tiers on

    cold = engine.run_batch(requests, workers=WORKERS)
    warm = engine.run_batch(requests, workers=WORKERS)

    # Hit/miss/eviction stats are surfaced per batch on BatchResult.
    assert cold.cache is not None
    assert cold.cache.results.misses == len(requests)
    assert cold.cache.clips.misses == 2  # one render per distinct clip
    assert cold.cache.clips.hits == len(requests) - 2
    assert warm.cache.results.hits == len(requests)
    assert warm.cache.results.misses == 0
    assert "cache:" in warm.report()

    # Cached results are bit-identical to the computed ones, and the warm
    # batch never touches the pipeline, so it is strictly faster (a
    # wall-clock claim — not asserted in tiny smoke mode, like check 2).
    for a, b in zip(cold, warm):
        assert a.outcome.frames == b.outcome.frames
    if not TINY:
        assert warm.wall_time_s < cold.wall_time_s
    emit(
        f"\ncheck 4: result cache — cold {cold.wall_time_s * 1e3:.0f} ms "
        f"({cold.cache.results.misses} misses) vs warm "
        f"{warm.wall_time_s * 1e3:.0f} ms ({warm.cache.results.hits} hits), "
        f"bit-identical"
    )
