"""Service batch benchmark: concurrent Engine serving vs sequential runs.

The service layer's promise is that one stateless :class:`Engine` can
serve a *fleet* of declarative scenarios — different clips, different
policies — faster than running them one by one, without changing a single
bit of any result.  This bench serves a six-scenario workload (pedestrian
and drone clips under per-frame, batched-stage-1, and temporal-reuse
policies) both ways and enforces:

1. ``run_batch(requests, workers=4)`` is **bit-identical** to sequential
   ``engine.run`` per request — every per-frame ledger row matches;
2. the batch path is **strictly faster** wall-clock (best-of-3 per path).
   Two mechanisms stack: requests over the same ``(source, n_frames,
   seed)`` share one rendered clip (clip synthesis is ~40% of a request),
   and the thread pool overlaps requests across cores where available;
3. the aggregate ledger equals the sum of its per-request parts.
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import HiRISEConfig
from repro.service import ComponentRef, Engine, ScenarioSpec, SystemSpec

RESOLUTION = (320, 240)
N_FRAMES = 24
WORKERS = 4
ROUNDS = 3

SYSTEM = SystemSpec(
    system="hirise",
    config=HiRISEConfig(pool_k=4, roi_pad_fraction=0.05, max_rois=8),
    detector=ComponentRef("ground-truth"),
)


def workload() -> list[ScenarioSpec]:
    """Six requests over two clips: every policy, both workloads."""
    scenarios = []
    for source, seed in (("pedestrian", 4), ("drone", 11)):
        ref = ComponentRef(source, {"resolution": list(RESOLUTION)})
        common = dict(source=ref, n_frames=N_FRAMES, seed=seed)
        scenarios += [
            ScenarioSpec(name=f"{source}/per-frame", **common),
            ScenarioSpec(name=f"{source}/batched", batch_size=8, **common),
            ScenarioSpec(
                name=f"{source}/reuse",
                policy=ComponentRef("temporal-reuse", {"max_reuse": 3}),
                **common,
            ),
        ]
    return scenarios


def serve_both(engine: Engine, requests: list[ScenarioSpec]):
    """One timed sample of each path: (sequential results, batch result)."""
    import time

    start = time.perf_counter()
    sequential = [engine.run(r) for r in requests]
    seq_time = time.perf_counter() - start
    batch = engine.run_batch(requests, workers=WORKERS)
    return sequential, seq_time, batch


def test_service_batch(benchmark, emit):
    engine = Engine(SYSTEM)
    requests = workload()

    sequential, seq_time, batch = benchmark.pedantic(
        serve_both, args=(engine, requests), rounds=1, iterations=1
    )

    table = Table(
        f"service batch: {len(requests)} scenarios, {N_FRAMES} frames each "
        f"at {RESOLUTION[0]}x{RESOLUTION[1]}",
        ["scenario", "stage-1", "reused", "kB", "uJ"],
        aligns=["l", "r", "r", "r", "r"],
    )
    for result in batch:
        o = result.outcome
        table.add_row(
            result.label, o.stage1_frames, o.reused_frames,
            f"{o.total_bytes / 1024:.1f}", f"{o.total_energy_j * 1e6:.1f}",
        )
    emit("\n" + table.render())

    # 1. Concurrent batch execution is bit-identical to sequential runs.
    assert len(batch) == len(sequential) == len(requests)
    for seq_result, batch_result in zip(sequential, batch):
        assert batch_result.scenario == seq_result.scenario
        assert batch_result.outcome.frames == seq_result.outcome.frames
    emit(f"check 1: run_batch(workers={WORKERS}) bit-identical to sequential run()")

    # 2. The batch path wins wall-clock.  Timing on a shared runner is
    # noisy, so compare the best of three fresh samples per path — the
    # minimum estimates each path's intrinsic cost.  The batch path's edge
    # is structural (shared clip synthesis + thread overlap), not a race.
    seq_best, batch_best = seq_time, batch.wall_time_s
    for _ in range(ROUNDS - 1):
        _, seq_t, more = serve_both(engine, requests)
        seq_best = min(seq_best, seq_t)
        batch_best = min(batch_best, more.wall_time_s)
    assert batch_best < seq_best
    emit(
        f"check 2: batch {batch_best * 1e3:.0f} ms vs sequential "
        f"{seq_best * 1e3:.0f} ms -> {seq_best / batch_best:.2f}x faster "
        f"(best of {ROUNDS})"
    )

    # 3. The aggregate ledger is exactly the sum of its parts.
    assert batch.total_bytes == sum(r.outcome.total_bytes for r in sequential)
    assert batch.total_frames == len(requests) * N_FRAMES
    assert batch.total_conversions == sum(
        r.outcome.total_conversions for r in sequential
    )
    emit("check 3: batch aggregate equals the sum of per-request ledgers")
