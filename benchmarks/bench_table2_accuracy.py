"""Reproduces **Table 2**: stage-1 detection mAP with in-processor vs
in-sensor scaling, RGB vs grayscale, at three pooled resolutions, on the
three detection datasets.

Protocol (mirrors the paper):

* one pixel array per dataset; pooling 8x/4x/2x yields the three stage-1
  resolutions;
* **in-processor** scaling converts the *full* frame through the ADC and
  then pools/grayscales digitally (luma weights);
* **in-sensor** scaling pools (and optionally channel-merges) in the analog
  domain with the non-ideal :class:`AnalogPoolingModel`, then converts only
  the pooled outputs;
* the detector is retrained per (resolution, colorspace, scaling) cell,
  like the paper retrains YOLOv8 per configuration, and scored at mAP@0.5.

Environment knobs: ``REPRO_T2_WIDTH`` (array width, default 1280; the paper
uses 2560 — halved by default so the bench completes in minutes),
``REPRO_T2_TRAIN`` / ``REPRO_T2_EVAL`` (scenes per split).

Shape targets (paper): in-sensor ~= in-processor everywhere; accuracy
strictly improves with resolution; the VisDrone-like dataset is the most
resolution-sensitive; grayscale trails RGB by a small gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import env_int
from repro.bench import Table
from repro.datasets import (
    CROWDHUMAN_LIKE,
    DHDCAMPUS_LIKE,
    SceneGenerator,
    VISDRONE_LIKE,
)
from repro.ml import CorrelationDetector, evaluate_detections
from repro.sensor import (
    ADCModel,
    AnalogPoolingModel,
    NoiseModel,
    PixelArray,
    SensorReadout,
    digital_avg_pool,
)
from repro.ml.image import to_gray

POOLINGS = [8, 4, 2]
PROFILES = {
    "crowdhuman-like": CROWDHUMAN_LIKE,
    "dhdcampus-like": DHDCAMPUS_LIKE,
    "visdrone-like": VISDRONE_LIKE,
}


def make_frames(scene, k: int, color: str, scaling: str) -> np.ndarray:
    """Produce the stage-1 frame one cell of Table 2 sees."""
    import zlib

    array = PixelArray.from_image(scene.image, noise=NoiseModel())
    readout = SensorReadout(array, pooling=AnalogPoolingModel(),
                            frame_seed=zlib.crc32(scene.name.encode()) & 0xFFFF)
    if scaling == "in-sen":
        return readout.read_compressed(k, grayscale=(color == "gray")).images
    full = readout.read_full().images
    pooled = digital_avg_pool(full, k)
    return to_gray(pooled) if color == "gray" else pooled


def scaled_boxes(scene, k: int):
    return [b.scaled(1.0 / k, 1.0 / k) for b in scene.boxes]


def evaluate_cell(train_scenes, eval_scenes, profile, k, color, scaling) -> float:
    train_frames = [make_frames(s, k, color, scaling) for s in train_scenes]
    eval_frames = [make_frames(s, k, color, scaling) for s in eval_scenes]
    detector = CorrelationDetector(
        classes=profile.eval_classes,
        colorspace="rgb" if color == "rgb" else "gray",
    )
    detector.fit(train_frames, [scaled_boxes(s, k) for s in train_scenes])
    preds = detector.detect_batch(eval_frames)
    result = evaluate_detections(
        preds, [scaled_boxes(s, k) for s in eval_scenes], profile.eval_classes
    )
    return result.map


def compute_table2():
    width = env_int("REPRO_T2_WIDTH", 1280)
    height = width * 3 // 4
    n_train = env_int("REPRO_T2_TRAIN", 5)
    n_eval = env_int("REPRO_T2_EVAL", 3)

    results: dict[tuple, float] = {}
    for name, profile in PROFILES.items():
        train = SceneGenerator(profile, (width, height), seed=100).generate(n_train)
        evals = SceneGenerator(profile, (width, height), seed=555).generate(n_eval)
        for k in POOLINGS:
            for color in ("rgb", "gray"):
                for scaling in ("in-proc", "in-sen"):
                    results[(name, k, color, scaling)] = evaluate_cell(
                        train, evals, profile, k, color, scaling
                    )
    return (width, height), results


def test_table2_accuracy(benchmark, emit):
    (width, height), results = benchmark.pedantic(compute_table2, rounds=1, iterations=1)

    resolutions = [f"{width // k}x{height // k}" for k in POOLINGS]
    table = Table(
        f"Table 2 (reproduced): stage-1 mAP@0.5, {width}x{height} array "
        f"(paper used 2560x1920)",
        ["dataset", "resolution", "RGB In-Proc", "RGB In-Sen",
         "Gray In-Proc", "Gray In-Sen"],
        aligns=["l", "l", "r", "r", "r", "r"],
    )
    for name in PROFILES:
        for k, res in zip(POOLINGS, resolutions):
            table.add_row(
                name, res,
                f"{results[(name, k, 'rgb', 'in-proc')] * 100:.1f}%",
                f"{results[(name, k, 'rgb', 'in-sen')] * 100:.1f}%",
                f"{results[(name, k, 'gray', 'in-proc')] * 100:.1f}%",
                f"{results[(name, k, 'gray', 'in-sen')] * 100:.1f}%",
            )
    emit("\n" + table.render())

    # -- Shape target 1: in-sensor tracks in-processor ------------------------
    gaps = [
        abs(results[(n, k, c, "in-sen")] - results[(n, k, c, "in-proc")])
        for n in PROFILES for k in POOLINGS for c in ("rgb", "gray")
    ]
    emit(
        f"\nin-sensor vs in-processor: mean |gap| = {np.mean(gaps) * 100:.2f} "
        f"mAP points, max = {np.max(gaps) * 100:.2f} (paper: no significant drop)"
    )
    assert float(np.mean(gaps)) < 0.06
    assert float(np.max(gaps)) < 0.15

    # -- Shape target 2: resolution monotonicity ---------------------------------
    for name in PROFILES:
        for color in ("rgb", "gray"):
            curve = [results[(name, k, color, "in-sen")] for k in POOLINGS]
            assert curve[-1] > curve[0], (
                f"{name}/{color}: highest resolution should beat lowest: {curve}"
            )

    # -- Shape target 3: VisDrone-like most resolution-sensitive ----------------
    def sensitivity(name):
        low = results[(name, POOLINGS[0], "rgb", "in-sen")]
        high = results[(name, POOLINGS[-1], "rgb", "in-sen")]
        return (high + 1e-9) / (low + 1e-9)

    vis = sensitivity("visdrone-like")
    emit(f"visdrone-like high/low resolution mAP ratio: {vis:.1f}x (paper: >2x)")
    assert vis > 1.8
    assert vis >= max(sensitivity(n) for n in PROFILES) - 1e-9

    # -- Shape target 4: grayscale trails RGB (retrained, small gap) -----------
    rgb_mean = np.mean([results[(n, k, "rgb", "in-sen")] for n in PROFILES for k in POOLINGS])
    gray_mean = np.mean([results[(n, k, "gray", "in-sen")] for n in PROFILES for k in POOLINGS])
    emit(
        f"mean mAP: RGB {rgb_mean * 100:.1f}% vs gray {gray_mean * 100:.1f}% "
        f"(paper gap: 0.4-3.2 points)"
    )
    assert gray_mean <= rgb_mean + 0.02
