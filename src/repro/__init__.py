"""repro — a full reproduction of HiRISE (DAC 2024).

HiRISE: High-Resolution Image Scaling for Edge ML via In-Sensor Compression
and Selective ROI.  The package provides:

* :mod:`repro.analog` — MNA circuit simulator + the paper's Fig. 4/5 analog
  averaging circuit and test benches.
* :mod:`repro.sensor` — behavioral image-sensor model: pixel array, analog
  grayscale and k x k pooling, ADC, full-frame and selective-ROI readout.
* :mod:`repro.datasets` — procedural stand-ins for CrowdHuman, DHDCampus,
  VisDrone and RAF-DB with ground truth.
* :mod:`repro.ml` — NumPy ML stack: layers/training, detectors, classifiers
  and mAP evaluation.
* :mod:`repro.memory` — TFLite-Micro-style peak-SRAM/flash analyzer and a
  model zoo (MCUNetV2-like, MobileNetV2).
* :mod:`repro.transfer` — sensor<->processor link accounting.
* :mod:`repro.core` — the HiRISE system: ROI algebra, the Table 1 cost
  model, the energy model, and end-to-end pipelines.
* :mod:`repro.stream` — the video layer: stream runner, temporal ROI
  reuse, batched stage-1 readout, and cumulative stream accounting.
* :mod:`repro.service` — the unified service API: component registries,
  serializable :class:`SystemSpec`/:class:`ScenarioSpec` specs, and the
  :class:`Engine` façade with concurrent batch execution.
* :mod:`repro.server` — the serving layer: a long-lived daemon
  (:class:`ReproServer`) owning one warm executor + cache behind a
  newline-delimited JSON socket protocol, and its blocking
  :class:`ServerClient`.
* :mod:`repro.experiments` — declarative experiment sweeps
  (:class:`SweepSpec`/:class:`SweepRunner`) that regenerate the paper's
  figures/tables as deterministic JSON + markdown reports.
* :mod:`repro.store` — the persistence subsystem: a crash-safe
  content-addressed :class:`ArtifactStore` backing the engine cache's
  disk tier (warm restarts), plus shared-memory clip transport for the
  process executor.
* :mod:`repro.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan`/:class:`FaultInjector`) driving the self-healing
  executor, the retrying client, and the resilience benchmark.

The most commonly used names are re-exported lazily at the top level so that
``import repro.analog`` does not pay for the ML stack and vice versa.
"""

__version__ = "1.1.0"

#: Top-level name -> providing submodule, resolved lazily (PEP 562).
_EXPORTS = {
    "ROI": "repro.core",
    "HiRISEConfig": "repro.core",
    "HiRISEPipeline": "repro.core",
    "ConventionalPipeline": "repro.core",
    "PipelineOutcome": "repro.core",
    "PhaseProfile": "repro.core",
    "PhaseProfiler": "repro.core",
    "classify_crops": "repro.core",
    "CropClassifier": "repro.ml",
    "CropPrediction": "repro.ml",
    "CostBreakdown": "repro.core",
    "EnergyModel": "repro.core",
    "conventional_costs": "repro.core",
    "hirise_costs": "repro.core",
    "StreamRunner": "repro.stream",
    "StreamOutcome": "repro.stream",
    "TemporalROIReuse": "repro.stream",
    "Engine": "repro.service",
    "EngineCache": "repro.service",
    "Executor": "repro.service",
    "make_executor": "repro.service",
    "BatchResult": "repro.service",
    "RunResult": "repro.service",
    "SystemSpec": "repro.service",
    "ScenarioSpec": "repro.service",
    "ServiceSpec": "repro.service",
    "ComponentRef": "repro.service",
    "list_components": "repro.service",
    "ReproServer": "repro.server",
    "ServerClient": "repro.server",
    "ServerClosedError": "repro.server",
    "ServerError": "repro.server",
    "wait_for_server": "repro.server",
    "WorkUnitRetryError": "repro.service",
    "FaultPlan": "repro.faults",
    "FaultSpec": "repro.faults",
    "FaultInjector": "repro.faults",
    "InjectedFault": "repro.faults",
    "load_fault_plan": "repro.faults",
    "SweepSpec": "repro.experiments",
    "SweepAxis": "repro.experiments",
    "SweepRunner": "repro.experiments",
    "SweepResult": "repro.experiments",
    "load_sweep": "repro.experiments",
    "run_sweep": "repro.experiments",
    "build_report": "repro.experiments",
    "ArtifactStore": "repro.store",
    "StoreStats": "repro.store",
    "Finding": "repro.lint",
    "lint_paths": "repro.lint",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return __all__
