"""Declarative experiment sweeps that regenerate the paper's artifacts.

The paper's headline results are parameter sweeps; this package makes
each one a declarative, cacheable batch workload on top of the service
layer:

* :mod:`~repro.experiments.sweep` — :class:`SweepSpec`: a frozen,
  JSON-round-tripping grid declaration (base system/scenario, dotted
  override axes, replicates, optional conventional baseline);
* :mod:`~repro.experiments.runner` — :class:`SweepRunner`: expands the
  grid, serves it through :class:`~repro.service.Engine` batches on one
  warm executor + shared :class:`~repro.service.EngineCache`, and
  distills every cell into a tidy :class:`CellRecord`;
* :mod:`~repro.experiments.report` — paper-style reports
  (``fig6_memory`` / ``fig7_transfer`` / ``fig8_energy`` /
  ``table2_accuracy``) as deterministic JSON + markdown artifacts with
  explicit :class:`TrendCheck`\\ s;
* :mod:`~repro.experiments.presets` — the shipped
  ``examples/sweeps/paper_*.json`` specs as factories.

Command line: ``repro sweep examples/sweeps/paper_fig7_transfer.json
--tiny --out sweep_reports``; see ``docs/paper_mapping.md`` for the
figure-by-figure map.
"""

from .presets import PAPER_SWEEPS
from .report import (
    PAPER_REPORTS,
    SweepReport,
    TrendCheck,
    assert_trends,
    build_report,
    write_report,
)
from .runner import (
    METRIC_NAMES,
    CellRecord,
    SweepResult,
    SweepRunner,
    outcome_metrics,
    run_sweep,
)
from .sweep import (
    REPORT_KEYS,
    SweepAxis,
    SweepCell,
    SweepSpec,
    load_sweep,
)

__all__ = [
    "CellRecord",
    "METRIC_NAMES",
    "PAPER_REPORTS",
    "PAPER_SWEEPS",
    "REPORT_KEYS",
    "SweepAxis",
    "SweepCell",
    "SweepReport",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "TrendCheck",
    "assert_trends",
    "build_report",
    "load_sweep",
    "outcome_metrics",
    "run_sweep",
    "write_report",
]
