"""Paper-style reporting over sweep results: JSON + markdown artifacts.

Each report builder turns a :class:`~repro.experiments.SweepResult` into a
:class:`SweepReport` — a deterministic plain-data ``payload`` (what the
``.json`` artifact holds), a ``markdown`` rendering built on
:class:`repro.bench.Table` / :func:`repro.bench.ascii_bar_chart`, and a
list of :class:`TrendCheck`\\ s asserting the paper's qualitative claims:

* ``fig7_transfer`` — median data transfer monotone *decreasing* in the
  pooling factor k, reductions vs the conventional baseline monotone
  *increasing* (paper Fig. 7: ~1.9x/3.0x/3.5x for k = 2/4/8);
* ``fig8_energy`` — median sensor energy and ADC conversions monotone
  decreasing in k, grayscale stage 1 cheaper than RGB when swept
  (Fig. 8 / Table 3);
* ``fig6_memory`` — median peak image memory monotone decreasing in k,
  baseline peak >= every HiRISE cell (Fig. 6);
* ``table2_accuracy`` — stage-2 predicted labels identical across the
  ``compute_dtype`` axis, per clip (Table 2: accuracy parity).

Trend checks are *reported*, not silently asserted: the payload carries
every check's pass/fail + detail, :func:`assert_trends` raises for tests
and benchmarks, and ``repro sweep`` exits non-zero when one fails.

Everything in the payload and the markdown is a deterministic function of
the sweep spec — wall-clock, cache stats, and profiles never enter the
artifacts — so regenerated reports are byte-identical across machines,
executors, and cache states.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import median

from ..bench.figures import ascii_bar_chart
from ..bench.tables import Table
from .runner import CellRecord, SweepResult
from .sweep import REPORT_KEYS

#: Axis paths the paper builders key on.
POOL_K_PATH = "system.config.pool_k"
GRAYSCALE_PATH = "system.config.grayscale_stage1"
DTYPE_PATH = "system.compute_dtype"


@dataclass(frozen=True)
class TrendCheck:
    """One qualitative paper claim, verified against the sweep.

    Attributes:
        name: stable identifier (``"transfer_monotone_in_k"``).
        passed: whether the sweep satisfied the claim.
        detail: the evidence, human-readable ("430.1 > 187.3 > 121.9 kB").
    """

    name: str
    passed: bool
    detail: str

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "TrendCheck":
        """Rebuild a check from a report payload (exact round-trip)."""
        return cls(
            name=data["name"], passed=data["passed"], detail=data["detail"]
        )


@dataclass(frozen=True)
class SweepReport:
    """A finished report: deterministic payload + markdown + trend checks."""

    name: str
    title: str
    payload: dict
    markdown: str
    trends: tuple[TrendCheck, ...] = ()

    @property
    def failed_trends(self) -> tuple[TrendCheck, ...]:
        return tuple(t for t in self.trends if not t.passed)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.payload, indent=indent)


def assert_trends(report: SweepReport) -> None:
    """Raise ``AssertionError`` listing every failed trend check."""
    failed = report.failed_trends
    if failed:
        lines = "\n".join(f"  {t.name}: {t.detail}" for t in failed)
        raise AssertionError(
            f"report {report.name!r}: {len(failed)} trend check(s) failed:\n{lines}"
        )


def write_report(report: SweepReport, out_dir: str | Path) -> tuple[Path, Path]:
    """Write ``<name>.json`` + ``<name>.md`` under ``out_dir``; return paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / f"{report.name}.json"
    md_path = out / f"{report.name}.md"
    json_path.write_text(report.to_json() + "\n")
    md_path.write_text(report.markdown + "\n")
    return json_path, md_path


# -- shared helpers ----------------------------------------------------------------


def _coords_excluding(record: CellRecord, *paths: str) -> tuple:
    """The cell's grid coordinates with ``paths`` (and replicate) removed.

    Canonicalized to JSON text so list-valued coordinates (resolutions)
    group reliably.
    """
    return tuple(
        (path, json.dumps(value, sort_keys=True))
        for path, value in record.cell.overrides
        if path not in paths
    )


def _group_median(records, path: str, metric: str) -> dict:
    """``coordinate value -> median(metric)`` over all matching records."""
    buckets: dict = {}
    for record in records:
        key = record.cell.coordinate(path)
        buckets.setdefault(key, []).append(record.metrics[metric])
    return {key: median(values) for key, values in buckets.items()}


def _median_reduction(records, path: str, metric: str) -> dict:
    buckets: dict = {}
    for record in records:
        if record.baseline is None or not record.metrics[metric]:
            continue
        key = record.cell.coordinate(path)
        buckets.setdefault(key, []).append(
            record.baseline[metric] / record.metrics[metric]
        )
    return {key: median(values) for key, values in buckets.items()}


def _monotone(series: dict, decreasing: bool, unit: str, scale: float = 1.0) -> tuple[bool, str]:
    """Strict-monotonicity check over a ``coordinate -> value`` series.

    A single-point series compares nothing, so it fails — a trend that
    was never tested must never read as verified.
    """
    keys = sorted(series)
    values = [series[k] for k in keys]
    if len(values) < 2:
        return False, (
            f"only one swept value (k={keys[0] if keys else '?'}) — "
            "nothing to compare"
        )
    ok = all(
        (a > b if decreasing else a < b) for a, b in zip(values, values[1:])
    )
    arrow = " > " if decreasing else " < "
    detail = arrow.join(f"{v * scale:.4g}" for v in values)
    keys_text = ", ".join(str(k) for k in keys)
    return ok, f"k={keys_text}: {detail} {unit}".rstrip()


def _require_axis(result: SweepResult, path: str, report: str) -> None:
    if not any(axis.path == path for axis in result.spec.axes):
        raise ValueError(
            f"report {report!r} needs an axis over {path!r}; "
            f"sweep {result.spec.name!r} sweeps "
            f"{[axis.path for axis in result.spec.axes]}"
        )


def _records_table(result: SweepResult) -> Table:
    """The tidy per-cell table every report embeds."""
    has_baseline = any(r.baseline is not None for r in result.records)
    columns = [
        "cell", "frames", "stage-1", "reused", "transfer kB",
        "energy uJ", "conversions", "peak mem kB",
    ]
    if has_baseline:
        columns += ["transfer red.", "energy red.", "memory red."]
    table = Table(
        f"sweep {result.spec.name}: per-cell records",
        columns,
        aligns=["l"] + ["r"] * (len(columns) - 1),
    )
    for record in result.records:
        m = record.metrics
        row = [
            record.cell.label,
            m["n_frames"],
            m["stage1_frames"],
            m["reused_frames"],
            f"{m['total_bytes'] / 1024:.1f}",
            f"{m['total_energy_j'] * 1e6:.2f}",
            f"{m['total_conversions']:,}",
            f"{m['peak_image_memory_bytes'] / 1024:.1f}",
        ]
        if has_baseline:
            reductions = record.reductions
            row += [
                f"{reductions.get('transfer_reduction', 0):.2f}x",
                f"{reductions.get('energy_reduction', 0):.2f}x",
                f"{reductions.get('memory_reduction', 0):.2f}x",
            ]
        table.add_row(*row)
    return table


def _markdown(
    title: str,
    result: SweepResult,
    sections: list[tuple[str, str]],
    trends: tuple[TrendCheck, ...],
) -> str:
    """Assemble the report markdown: title, sections, trends, records."""
    spec = result.spec
    lines = [
        f"# {title}",
        "",
        f"Sweep `{spec.name}` — {spec.grid_size} cell(s): "
        + "; ".join(
            f"`{axis.path}` over {list(axis.values)}" for axis in spec.axes
        )
        + (f"; {spec.replicates} replicate(s)." if spec.replicates > 1 else "."),
        "",
        "Generated by `repro sweep`.  The full sweep spec is embedded in "
        "the JSON artifact next to this file; every number below is an "
        "exact, machine-independent function of that spec.",
        "",
    ]
    for heading, body in sections:
        lines += [f"## {heading}", "", body, ""]
    if trends:
        lines += ["## Trend checks", ""]
        for trend in trends:
            mark = "x" if trend.passed else " "
            lines.append(f"- [{mark}] `{trend.name}` — {trend.detail}")
        lines.append("")
    lines += ["## Per-cell records", "", _records_table(result).to_markdown()]
    return "\n".join(lines)


def _payload(
    result: SweepResult,
    title: str,
    aggregates: dict,
    trends: tuple[TrendCheck, ...],
) -> dict:
    return {
        "name": result.spec.name,
        "title": title,
        "report": result.spec.report,
        "sweep": result.spec.to_dict(),
        "aggregates": aggregates,
        "trends": [t.to_dict() for t in trends],
        "records": [r.to_dict() for r in result.records],
    }


# -- builders ----------------------------------------------------------------------


def _build_generic(result: SweepResult) -> SweepReport:
    title = f"Sweep report: {result.spec.name}"
    markdown = _markdown(title, result, [], ())
    return SweepReport(
        name=result.spec.name,
        title=title,
        payload=_payload(result, title, {}, ()),
        markdown=markdown,
    )


def _k_table(series: dict, reductions: dict, value_label: str, scale: float) -> Table:
    columns = ["pool k", value_label] + (["reduction"] if reductions else [])
    table = Table("per-k medians", columns, aligns=["r"] * len(columns))
    for k in sorted(series):
        row = [k, f"{series[k] * scale:.4g}"]
        if reductions:
            row.append(f"{reductions.get(k, 0):.2f}x")
        table.add_row(*row)
    return table


def _k_chart(series: dict, unit: str, scale: float, title: str) -> str:
    values = {f"k={k}": series[k] * scale for k in sorted(series)}
    return "```\n" + ascii_bar_chart(values, unit=f" {unit}", title=title) + "\n```"


def _build_fig7_transfer(result: SweepResult) -> SweepReport:
    _require_axis(result, POOL_K_PATH, "fig7_transfer")
    records = result.records
    transfer = _group_median(records, POOL_K_PATH, "total_bytes")
    reductions = _median_reduction(records, POOL_K_PATH, "total_bytes")

    trends = []
    ok, detail = _monotone(transfer, decreasing=True, unit="kB", scale=1 / 1024)
    trends.append(TrendCheck("transfer_monotone_in_k", ok, detail))
    if reductions:
        ok, detail = _monotone(reductions, decreasing=False, unit="x")
        trends.append(TrendCheck("reduction_monotone_in_k", ok, detail))
        beats = min(reductions.values())
        trends.append(
            TrendCheck(
                "hirise_beats_baseline",
                beats > 1.0,
                f"minimum median transfer reduction {beats:.2f}x",
            )
        )
    trends = tuple(trends)

    title = "Fig. 7 (sweep): median data transfer vs pooling factor"
    aggregates = {
        "median_transfer_bytes_by_k": {str(k): transfer[k] for k in sorted(transfer)},
        "median_transfer_reduction_by_k": {
            str(k): reductions[k] for k in sorted(reductions)
        },
    }
    sections = [
        (
            "Median transfer by pooling factor",
            _k_table(transfer, reductions, "transfer kB", 1 / 1024).to_markdown(),
        ),
        (
            "Shape",
            _k_chart(transfer, "kB", 1 / 1024, "median data transfer"),
        ),
    ]
    return SweepReport(
        name=result.spec.name,
        title=title,
        payload=_payload(result, title, aggregates, trends),
        markdown=_markdown(title, result, sections, trends),
        trends=trends,
    )


def _build_fig8_energy(result: SweepResult) -> SweepReport:
    _require_axis(result, POOL_K_PATH, "fig8_energy")
    records = result.records
    energy = _group_median(records, POOL_K_PATH, "total_energy_j")
    conversions = _group_median(records, POOL_K_PATH, "total_conversions")
    reductions = _median_reduction(records, POOL_K_PATH, "total_energy_j")

    trends = []
    ok, detail = _monotone(energy, decreasing=True, unit="uJ", scale=1e6)
    trends.append(TrendCheck("energy_monotone_in_k", ok, detail))
    ok, detail = _monotone(conversions, decreasing=True, unit="conversions")
    trends.append(TrendCheck("conversions_monotone_in_k", ok, detail))
    if reductions:
        ok, detail = _monotone(reductions, decreasing=False, unit="x")
        trends.append(TrendCheck("reduction_monotone_in_k", ok, detail))

    has_gray = any(axis.path == GRAYSCALE_PATH for axis in result.spec.axes)
    if has_gray:
        per_mode: dict[bool, dict] = {}
        for record in records:
            gray = bool(record.cell.coordinate(GRAYSCALE_PATH))
            k = record.cell.coordinate(POOL_K_PATH)
            per_mode.setdefault(gray, {}).setdefault(k, []).append(
                record.metrics["total_energy_j"]
            )
        shared_ks = sorted(
            set(per_mode.get(True, {})) & set(per_mode.get(False, {}))
        )
        # No (gray, rgb) pair at a common k means nothing was compared —
        # that must read as a failed check, never a vacuous pass.
        gray_cheaper = bool(shared_ks) and all(
            median(per_mode[True][k]) < median(per_mode[False][k])
            for k in shared_ks
        )
        pairs = ", ".join(
            f"k={k}: {median(per_mode[True][k]) * 1e6:.3g} < "
            f"{median(per_mode[False][k]) * 1e6:.3g} uJ"
            for k in shared_ks
        ) or "no grayscale/RGB pair at a common pooling factor"
        trends.append(TrendCheck("grayscale_cheaper_than_rgb", gray_cheaper, pairs))
    trends = tuple(trends)

    title = "Fig. 8 (sweep): median sensor energy vs pooling factor"
    aggregates = {
        "median_energy_j_by_k": {str(k): energy[k] for k in sorted(energy)},
        "median_conversions_by_k": {
            str(k): conversions[k] for k in sorted(conversions)
        },
        "median_energy_reduction_by_k": {
            str(k): reductions[k] for k in sorted(reductions)
        },
    }
    sections = [
        (
            "Median sensor energy by pooling factor",
            _k_table(energy, reductions, "energy uJ", 1e6).to_markdown(),
        ),
        ("Shape", _k_chart(energy, "uJ", 1e6, "median sensor energy")),
    ]
    return SweepReport(
        name=result.spec.name,
        title=title,
        payload=_payload(result, title, aggregates, trends),
        markdown=_markdown(title, result, sections, trends),
        trends=trends,
    )


def _build_fig6_memory(result: SweepResult) -> SweepReport:
    _require_axis(result, POOL_K_PATH, "fig6_memory")
    records = result.records
    memory = _group_median(records, POOL_K_PATH, "peak_image_memory_bytes")
    reductions = _median_reduction(records, POOL_K_PATH, "peak_image_memory_bytes")

    trends = []
    ok, detail = _monotone(memory, decreasing=True, unit="kB", scale=1 / 1024)
    trends.append(TrendCheck("memory_monotone_in_k", ok, detail))
    if reductions:
        ok, detail = _monotone(reductions, decreasing=False, unit="x")
        trends.append(TrendCheck("reduction_monotone_in_k", ok, detail))
        with_baseline = [r for r in records if r.baseline is not None]
        dominated = all(
            r.baseline["peak_image_memory_bytes"] >= r.metrics["peak_image_memory_bytes"]
            for r in with_baseline
        )
        trends.append(
            TrendCheck(
                "baseline_dominates_every_cell",
                dominated,
                f"baseline peak >= HiRISE peak in {len(with_baseline)} cell(s)",
            )
        )
    trends = tuple(trends)

    title = "Fig. 6 (sweep): peak image memory vs pooling factor"
    aggregates = {
        "median_peak_memory_bytes_by_k": {
            str(k): memory[k] for k in sorted(memory)
        },
        "median_memory_reduction_by_k": {
            str(k): reductions[k] for k in sorted(reductions)
        },
    }
    sections = [
        (
            "Median peak image memory by pooling factor",
            _k_table(memory, reductions, "peak mem kB", 1 / 1024).to_markdown(),
        ),
        ("Shape", _k_chart(memory, "kB", 1 / 1024, "median peak image memory")),
    ]
    return SweepReport(
        name=result.spec.name,
        title=title,
        payload=_payload(result, title, aggregates, trends),
        markdown=_markdown(title, result, sections, trends),
        trends=trends,
    )


def _build_table2_accuracy(result: SweepResult) -> SweepReport:
    _require_axis(result, DTYPE_PATH, "table2_accuracy")
    dtype_axis = next(a for a in result.spec.axes if a.path == DTYPE_PATH)
    if "float64" not in dtype_axis.values:
        raise ValueError(
            "report 'table2_accuracy' compares predictions against the "
            f"float64 reference: the {DTYPE_PATH!r} axis must include "
            f"'float64', got {list(dtype_axis.values)}"
        )
    records = result.records
    if any(record.labels is None for record in records):
        raise ValueError(
            "report 'table2_accuracy' needs stage-2 predictions: set "
            '"keep_outcomes": true on the sweep scenario and use a real '
            "classifier component"
        )

    # Group cells that differ only in compute_dtype (same other coords,
    # same replicate => same clip, same ROIs) and compare label streams
    # against the float64 reference.
    groups: dict[tuple, dict[str, CellRecord]] = {}
    for record in records:
        key = (_coords_excluding(record, DTYPE_PATH), record.cell.replicate)
        groups.setdefault(key, {})[str(record.cell.coordinate(DTYPE_PATH))] = record

    comparisons = []
    total = matched = 0
    for (coords, replicate), by_dtype in sorted(
        groups.items(), key=lambda item: str(item[0])
    ):
        reference = by_dtype.get("float64")
        if reference is None:
            continue
        for dtype, record in sorted(by_dtype.items()):
            if dtype == "float64":
                continue
            # A length mismatch is a parity failure in itself (a crop was
            # classified under one dtype but not the other): the whole
            # cell counts as disagreement, in the row and the verdict.
            if len(reference.labels) == len(record.labels):
                agree = sum(
                    a == b for a, b in zip(reference.labels, record.labels)
                )
            else:
                agree = 0
            count = max(len(reference.labels), len(record.labels))
            total += count
            matched += agree
            comparisons.append(
                {
                    "cell": record.cell.label,
                    "dtype": dtype,
                    "predictions": count,
                    # null, not 100%: zero compared predictions is absence
                    # of evidence, never agreement
                    "agreement": (agree / count) if count else None,
                }
            )

    parity = (matched == total) and total > 0
    trends = (
        TrendCheck(
            "dtype_argmax_parity",
            parity,
            f"{matched}/{total} stage-2 predictions identical across "
            f"compute_dtype cells",
        ),
        TrendCheck(
            "predictions_nonempty",
            total > 0,
            f"{total} prediction pair(s) compared",
        ),
    )

    table = Table(
        "dtype parity", ["cell", "dtype", "predictions", "agreement"],
        aligns=["l", "l", "r", "r"],
    )
    for row in comparisons:
        table.add_row(
            row["cell"], row["dtype"], row["predictions"],
            "n/a" if row["agreement"] is None
            else f"{row['agreement'] * 100:.1f}%",
        )

    title = "Table 2 (sweep): stage-2 prediction parity across compute dtypes"
    aggregates = {
        "compared_predictions": total,
        "matching_predictions": matched,
        "comparisons": comparisons,
    }
    sections = [("Prediction agreement vs float64", table.to_markdown())]
    return SweepReport(
        name=result.spec.name,
        title=title,
        payload=_payload(result, title, aggregates, trends),
        markdown=_markdown(title, result, sections, trends),
        trends=trends,
    )


#: report key -> builder; keys mirror ``repro.experiments.REPORT_KEYS``.
PAPER_REPORTS = {
    "fig6_memory": _build_fig6_memory,
    "fig7_transfer": _build_fig7_transfer,
    "fig8_energy": _build_fig8_energy,
    "table2_accuracy": _build_table2_accuracy,
}

assert set(PAPER_REPORTS) == set(REPORT_KEYS)


def build_report(result: SweepResult) -> SweepReport:
    """Build the report the sweep spec declared (generic when unset)."""
    builder = PAPER_REPORTS.get(result.spec.report, _build_generic)
    return builder(result)
