"""The sweep runner: expand a grid, serve it, keep tidy per-cell records.

:class:`SweepRunner` turns a :class:`~repro.experiments.SweepSpec` into
Engine work: cells are grouped by their (distinct) system spec, each group
becomes one :meth:`Engine.run_batch` on a **shared executor** (one warm
pool across every group, process by default) and a **shared
:class:`~repro.service.EngineCache`** — the clip tier is system-agnostic,
so a pooling sweep over one workload renders each clip once no matter how
many systems read it (in-process executors share the cache directly;
process-pool workers share one cache per worker process, so a clip is
rendered at most once per worker rather than once per system).  Baseline
runs (when the sweep declares one) are deduplicated per distinct clip and
served through the same cache.

Determinism is inherited wholesale from the engine: per-cell results are
bit-identical to fresh serial runs whatever executor or cache served them
(test- and bench-asserted), which is what makes a sweep a reproducible
paper artifact rather than a measurement session.

Each cell yields a :class:`CellRecord`: the exact specs served, a flat
``metrics`` dict distilled from the :class:`~repro.stream.StreamOutcome`,
optional stage-2 prediction labels (when the scenario keeps outcomes),
optional baseline metrics + reduction factors, and the cell's
:class:`~repro.core.PhaseProfile` when the runner profiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.profiling import PhaseProfile
from ..service.cache import CacheStats, EngineCache, spec_fingerprint
from ..service.engine import Engine, RunResult
from ..service.executor import Executor, make_executor
from ..stream.ledger import StreamOutcome
from .sweep import SweepCell, SweepSpec

#: StreamOutcome attributes distilled into ``CellRecord.metrics``, in
#: report-column order.  All are deterministic functions of the specs.
METRIC_NAMES = (
    "n_frames",
    "stage1_frames",
    "reused_frames",
    "total_bytes",
    "stage1_bytes",
    "roi_feedback_bytes",
    "stage2_bytes",
    "total_energy_j",
    "total_conversions",
    "peak_image_memory_bytes",
    "mean_bytes_per_frame",
    "mean_energy_per_frame_j",
)

#: metric -> baseline/cell reduction name surfaced on ``CellRecord``.
REDUCTION_METRICS = {
    "total_bytes": "transfer_reduction",
    "total_energy_j": "energy_reduction",
    "total_conversions": "conversion_reduction",
    "peak_image_memory_bytes": "memory_reduction",
}


def outcome_metrics(outcome: StreamOutcome) -> dict:
    """Flatten a stream ledger into the tidy per-cell metric dict."""
    return {name: getattr(outcome, name) for name in METRIC_NAMES}


def _prediction_labels(outcome: StreamOutcome) -> tuple[str, ...] | None:
    """Stage-2 predictions as comparable strings (``None`` = not kept)."""
    if not outcome.outcomes:
        return None
    labels = []
    for frame_outcome in outcome.outcomes:
        for prediction in frame_outcome.predictions:
            label = getattr(prediction, "label", None)
            if label is None:
                label = (
                    f"{prediction:.12g}"
                    if isinstance(prediction, float)
                    else str(prediction)
                )
            labels.append(str(label))
    return tuple(labels)


@dataclass(frozen=True)
class CellRecord:
    """One served grid cell, distilled for reporting.

    Attributes:
        cell: the grid point (specs, overrides, label, replicate).
        metrics: flat outcome numbers (see :data:`METRIC_NAMES`).
        labels: stage-2 prediction labels in stream order, when the
            scenario kept outcomes (the Table 2 parity signal).
        baseline: the reference system's metrics on the same clip, when
            the sweep declared a baseline.
        profile: per-phase wall-clock breakdown (profiled runs only).
    """

    cell: SweepCell
    metrics: dict
    labels: tuple[str, ...] | None = None
    baseline: dict | None = None
    profile: PhaseProfile | None = None

    def __hash__(self) -> int:
        return hash(self.cell)

    @property
    def reductions(self) -> dict:
        """Paper-style baseline/cell factors (empty without a baseline)."""
        if self.baseline is None:
            return {}
        out = {}
        for metric, name in REDUCTION_METRICS.items():
            cell_value = self.metrics[metric]
            if cell_value:
                out[name] = self.baseline[metric] / cell_value
        return out

    # The row deliberately flattens the cell (specs live in the sweep
    # header) and drops the profile (run metadata), and nothing parses
    # a report row back into a CellRecord.
    # repro: lint-ok[spec-roundtrip] one-way report row, never parsed back
    def to_dict(self) -> dict:
        """Deterministic plain-data row (no wall-clock, no profile)."""
        data = {
            "label": self.cell.label,
            "replicate": self.cell.replicate,
            "overrides": {path: value for path, value in self.cell.overrides},
            "metrics": dict(self.metrics),
        }
        if self.labels is not None:
            data["labels"] = list(self.labels)
        if self.baseline is not None:
            data["baseline"] = dict(self.baseline)
            data["reductions"] = self.reductions
        return data


@dataclass
class SweepResult:
    """A whole sweep's output: records in grid order plus run metadata.

    ``records`` and everything reachable from them are deterministic
    functions of the sweep spec; ``wall_time_s``, ``cache``, and
    ``profile`` describe *this* run and are deliberately excluded from
    :meth:`to_dict` so emitted artifacts are byte-stable.
    """

    spec: SweepSpec
    records: tuple[CellRecord, ...] = ()
    executor: str = "serial"
    workers: int = 1
    wall_time_s: float = 0.0
    cache: CacheStats | None = None
    profile: PhaseProfile | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def to_dict(self) -> dict:
        """Deterministic plain-data form (spec + per-cell records)."""
        return {
            "sweep": self.spec.to_dict(),
            "records": [record.to_dict() for record in self.records],
        }

    def describe(self) -> str:
        """One-line run summary (wall clock, cache) for logs — not artifacts."""
        pool = (
            # the serial executor runs in the calling thread regardless
            # of the requested pool size — don't report phantom workers
            f"{self.executor} executor"
            if self.executor == "serial"
            else f"{self.executor} executor x {self.workers} worker(s)"
        )
        text = (
            f"[sweep {self.spec.name}] {len(self.records)} cell(s), "
            f"{pool}, {self.wall_time_s * 1e3:.0f} ms wall"
        )
        if self.cache is not None:
            text += f"\n  cache: {self.cache.describe()}"
        return text


class SweepRunner:
    """Executes a :class:`SweepSpec` and aggregates tidy records.

    Attributes:
        spec: the sweep to run.
        executor: executor name, or a constructed
            :class:`~repro.service.Executor` to reuse a warm pool the
            caller owns (borrowed pools are not closed).  Defaults to the
            spec's executor.
        workers: pool size (defaults to the spec's).
        cache: shared :class:`~repro.service.EngineCache` for every
            engine the sweep builds; pass
            :meth:`EngineCache.disabled() <repro.service.EngineCache.disabled>`
            to force every cell to recompute.
        store: optional :class:`~repro.store.ArtifactStore` backing the
            shared cache's persistent tier — re-running a sweep against
            a populated store resumes from disk instead of recomputing
            (ignored when an explicit ``cache`` is passed).
        profile: attach per-phase profiles to every record (profiled
            requests always recompute; see the engine contract).
    """

    def __init__(
        self,
        spec: SweepSpec,
        executor: str | Executor | None = None,
        workers: int | None = None,
        cache: EngineCache | None = None,
        profile: bool = False,
        store=None,
    ):
        self.spec = spec
        self.executor = executor if executor is not None else spec.executor
        self.workers = workers if workers is not None else spec.workers
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.cache = cache if cache is not None else EngineCache(store=store)
        self.profile = profile

    def run(self) -> SweepResult:
        """Serve the whole grid (plus baselines) and return the records."""
        spec = self.spec
        cells = spec.cells()

        if isinstance(self.executor, Executor):
            pool, owned = self.executor, False
        else:
            pool, owned = make_executor(self.executor, self.workers), True

        start = time.perf_counter()
        stats_before = self.cache.stats()
        try:
            results = self._serve_cells(cells, pool)
            baselines = self._serve_baselines(cells, pool)
        finally:
            if owned:
                pool.close()
        wall = time.perf_counter() - start

        records = []
        for cell in cells:
            result = results[cell.index]
            baseline_result = baselines.get(cell.index)
            records.append(
                CellRecord(
                    cell=cell,
                    metrics=outcome_metrics(result.outcome),
                    labels=_prediction_labels(result.outcome),
                    baseline=(
                        None
                        if baseline_result is None
                        else outcome_metrics(baseline_result.outcome)
                    ),
                    profile=result.profile,
                )
            )
        profiles = [r.profile for r in records if r.profile is not None]
        return SweepResult(
            spec=spec,
            records=tuple(records),
            executor=pool.name,
            workers=pool.workers,
            wall_time_s=wall,
            cache=self.cache.stats() - stats_before,
            profile=PhaseProfile.merge(profiles) if profiles else None,
        )

    # -- internals ---------------------------------------------------------------

    def _serve_cells(
        self, cells: tuple[SweepCell, ...], pool: Executor
    ) -> dict[int, RunResult]:
        """Run every cell, one engine batch per distinct system spec."""
        groups: dict[str, list[SweepCell]] = {}
        for cell in cells:
            key = spec_fingerprint(cell.system.to_dict()) or repr(cell.system)
            groups.setdefault(key, []).append(cell)
        results: dict[int, RunResult] = {}
        for group in groups.values():
            engine = Engine(
                group[0].system, cache=self.cache, profile=self.profile
            )
            batch = engine.run_batch(
                [cell.scenario for cell in group],
                workers=self.workers,
                executor=pool,
            )
            for cell, result in zip(group, batch.results):
                results[cell.index] = result
        return results

    def _serve_baselines(
        self, cells: tuple[SweepCell, ...], pool: Executor
    ) -> dict[int, RunResult]:
        """Run the baseline system once per distinct clip, map to cells."""
        if self.spec.baseline is None:
            return {}
        by_clip: dict[str, list[int]] = {}
        scenarios = {}
        for cell in cells:
            scenario = self.spec.baseline_scenario(cell.scenario)
            key = spec_fingerprint(scenario.to_dict()) or f"cell-{cell.index}"
            by_clip.setdefault(key, []).append(cell.index)
            scenarios[key] = scenario
        engine = Engine(self.spec.baseline, cache=self.cache, profile=False)
        keys = list(by_clip)
        batch = engine.run_batch(
            [scenarios[key] for key in keys], workers=self.workers, executor=pool
        )
        results: dict[int, RunResult] = {}
        for key, result in zip(keys, batch.results):
            for index in by_clip[key]:
                results[index] = result
        return results


def run_sweep(
    spec: SweepSpec,
    executor: str | Executor | None = None,
    workers: int | None = None,
    cache: EngineCache | None = None,
    profile: bool = False,
    store=None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        spec,
        executor=executor,
        workers=workers,
        cache=cache,
        profile=profile,
        store=store,
    ).run()
