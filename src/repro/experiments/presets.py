"""The paper's figure/table sweeps as ready-made :class:`SweepSpec`\\ s.

One factory per reproducible paper artifact; the JSON files shipped under
``examples/sweeps/`` are these specs serialized (a test asserts they stay
in sync).  Regenerate the files after editing a factory::

    PYTHONPATH=src python -m repro.experiments.presets examples/sweeps

Workload choices mirror the single-point benchmarks: CrowdHuman-like
scenes with *person* (body) ROIs are the paper's worst-case transfer load
(Fig. 7's own workload), the animated pedestrian clip drives the
memory/accuracy sweeps, and every sweep crosses the paper's pooling
factors k = 2/4/8 where pooling is the swept quantity.
"""

from __future__ import annotations

from ..service.spec import ComponentRef, ScenarioSpec, SystemSpec
from ..core.config import HiRISEConfig
from .sweep import SweepAxis, SweepSpec

#: Shared pooling axis: the paper's k = 2/4/8 (Figs. 6-8).
_POOL_AXIS = SweepAxis("system.config.pool_k", (2, 4, 8))


def _crowd_scenario(n_frames: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        source=ComponentRef(
            "crowdhuman-scenes",
            {"resolution": [320, 240], "label": "person"},
        ),
        n_frames=n_frames,
        seed=seed,
    )


def _conventional_baseline() -> SystemSpec:
    return SystemSpec(
        system="conventional",
        detector=ComponentRef("ground-truth", {"label": "person"}),
    )


def paper_fig7_transfer() -> SweepSpec:
    """Fig. 7: median data transfer vs pooling factor, vs baseline."""
    return SweepSpec(
        name="paper_fig7_transfer",
        system=SystemSpec(
            config=HiRISEConfig(pool_k=2),
            detector=ComponentRef("ground-truth", {"label": "person"}),
        ),
        scenario=_crowd_scenario(n_frames=6, seed=77),
        axes=(_POOL_AXIS,),
        baseline=_conventional_baseline(),
        replicates=2,
        report="fig7_transfer",
    )


def paper_fig8_energy() -> SweepSpec:
    """Fig. 8: median sensor energy vs pooling, RGB and grayscale stage 1."""
    return SweepSpec(
        name="paper_fig8_energy",
        system=SystemSpec(
            config=HiRISEConfig(pool_k=2),
            detector=ComponentRef("ground-truth", {"label": "person"}),
        ),
        scenario=_crowd_scenario(n_frames=4, seed=77),
        axes=(
            _POOL_AXIS,
            SweepAxis("system.config.grayscale_stage1", (False, True)),
        ),
        baseline=_conventional_baseline(),
        replicates=2,
        report="fig8_energy",
    )


def paper_fig6_memory() -> SweepSpec:
    """Fig. 6: peak image memory vs pooling factor across array sizes."""
    return SweepSpec(
        name="paper_fig6_memory",
        system=SystemSpec(
            config=HiRISEConfig(pool_k=2),
            detector=ComponentRef("ground-truth"),
        ),
        scenario=ScenarioSpec(
            source=ComponentRef("pedestrian", {"resolution": [256, 192]}),
            n_frames=4,
            seed=9,
        ),
        axes=(
            _POOL_AXIS,
            SweepAxis(
                "scenario.source.params.resolution",
                ([160, 120], [256, 192], [320, 240]),
            ),
        ),
        baseline=SystemSpec(
            system="conventional", detector=ComponentRef("ground-truth")
        ),
        replicates=1,
        report="fig6_memory",
    )


def paper_table2_accuracy() -> SweepSpec:
    """Table 2 parity: stage-2 predictions identical across compute dtypes."""
    return SweepSpec(
        name="paper_table2_accuracy",
        system=SystemSpec(
            config=HiRISEConfig(pool_k=4),
            detector=ComponentRef("ground-truth"),
            classifier=ComponentRef("tiny-cnn", {"input_size": 32}),
        ),
        scenario=ScenarioSpec(
            source=ComponentRef("pedestrian", {"resolution": [256, 192]}),
            n_frames=6,
            seed=4,
            keep_outcomes=True,
        ),
        axes=(SweepAxis("system.compute_dtype", ("float64", "float32")),),
        replicates=2,
        report="table2_accuracy",
    )


#: sweep name -> factory, in paper order (the shipped example files).
PAPER_SWEEPS = {
    "paper_fig6_memory": paper_fig6_memory,
    "paper_fig7_transfer": paper_fig7_transfer,
    "paper_fig8_energy": paper_fig8_energy,
    "paper_table2_accuracy": paper_table2_accuracy,
}


def write_examples(out_dir) -> list:
    """Serialize every preset into ``out_dir`` (returns written paths)."""
    from pathlib import Path

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, factory in PAPER_SWEEPS.items():
        path = out / f"{name}.json"
        path.write_text(factory().to_json() + "\n")
        paths.append(path)
    return paths


if __name__ == "__main__":  # pragma: no cover - maintenance entry point
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "examples/sweeps"
    for written in write_examples(target):
        print(written)
