"""Declarative experiment sweeps: a grid over system/scenario axes.

The paper's headline results are parameter *sweeps* — transfer vs pooling
factor k (Fig. 7), ADC energy (Fig. 8), peak memory (Fig. 6), accuracy
parity (Table 2) — but a :class:`~repro.service.SystemSpec` describes one
point.  :class:`SweepSpec` declares the whole grid as plain data:

* a **base** system + scenario (the same frozen specs the Engine serves);
* **axes** — each a dotted override path into the base spec
  (``"system.config.pool_k"``, ``"scenario.source.params.resolution"``)
  plus the values to sweep; the grid is the cross-product in axis order;
* a **replicate count** — each grid cell runs ``replicates`` times with
  the scenario seed offset by the replicate index, so aggregates are
  medians over genuinely different clips;
* an optional **baseline** system (typically ``"conventional"``) run once
  per distinct clip, providing the denominators for the paper's
  reduction factors.

Like every spec in :mod:`repro.service`, a sweep round-trips exactly
(``from_dict(to_dict(s)) == s``) and every validation error names the
offending field.  :meth:`SweepSpec.cells` expands the grid eagerly into
fully-validated :class:`SweepCell`\\ s, so a broken axis value surfaces as
one named error, never mid-run.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from ..service.executor import EXECUTOR_NAMES
from ..service.spec import ScenarioSpec, SpecError, SystemSpec, _require

#: Paper-report keys a sweep may declare via ``SweepSpec.report`` ("" =
#: generic report).  ``repro.experiments.report`` registers one builder per
#: key (test-asserted to stay in sync).
REPORT_KEYS = ("fig6_memory", "fig7_transfer", "fig8_energy", "table2_accuracy")

#: Tiny-mode caps: ``SweepSpec.tiny()`` shrinks clips to this footprint.
TINY_FRAMES = 4
TINY_RESOLUTION = (160, 120)

_AXIS_ROOTS = ("system", "scenario")

#: Filename-safe sweep names (the report artifact stem).
_NAME_RE = re.compile(r"[A-Za-z0-9._-]+")


def _canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=repr)


def _json_copy(value):
    """A defensive deep copy of a JSON-shaped value (cells must not alias)."""
    return json.loads(json.dumps(value)) if isinstance(value, (dict, list)) else value


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: an override path and the values it takes.

    Attributes:
        path: dotted path into the base spec, rooted at ``system`` or
            ``scenario`` (e.g. ``"system.config.pool_k"``).  The final
            segment is set on the nested dict of the base spec's
            ``to_dict`` form, so anything a spec file can say, an axis
            can sweep — including whole component slots
            (``"scenario.policy"`` with dict or name-string values).
        values: the plain-data values the axis takes, in sweep order.
    """

    path: str
    values: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.path, str) or "." not in self.path:
            raise SpecError(
                f"axis.path: expected a dotted override path, got {self.path!r}"
            )
        root = self.path.split(".", 1)[0]
        if root not in _AXIS_ROOTS:
            raise SpecError(
                f"axis.path: {self.path!r} must be rooted at one of "
                f"{list(_AXIS_ROOTS)}"
            )
        if self.path == "scenario.name":
            raise SpecError(
                "axis.path: 'scenario.name' is derived from the cell label; "
                "it cannot be swept"
            )
        if not self.values:
            raise SpecError(f"axis {self.path!r}: values must be non-empty")

    def __hash__(self) -> int:
        # values may hold lists (e.g. resolutions); canonicalize like
        # ComponentRef does so the frozen dataclass stays hashable.
        return hash((self.path, _canonical(list(self.values))))

    @property
    def label(self) -> str:
        """Short axis name for cell labels: the last path segment."""
        return self.path.rsplit(".", 1)[-1]

    def to_dict(self) -> dict:
        return {"path": self.path, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data, fieldname: str = "axis") -> "SweepAxis":
        _require(data, fieldname, dict, "dict")
        unknown = sorted(set(data) - {"path", "values"})
        if unknown:
            raise SpecError(
                f"{fieldname}: unknown field(s) {unknown}; "
                f"known fields: ['path', 'values']"
            )
        if "path" not in data:
            raise SpecError(f"{fieldname}.path: required field is missing")
        path = _require(data["path"], f"{fieldname}.path", str, "str")
        values = _require(
            data.get("values", []), f"{fieldname}.values", list, "a list"
        )
        return cls(path, tuple(values))


@dataclass(frozen=True)
class SweepCell:
    """One fully-expanded grid point, ready to serve.

    Attributes:
        index: position in grid order (axes cross-product, replicates
            innermost).
        label: human/report label, e.g. ``"pool_k=4,grayscale=true/r1"``.
        overrides: the ``(path, value)`` pairs this cell applied.
        replicate: replicate index in ``range(spec.replicates)``.
        system: the cell's validated system spec.
        scenario: the cell's validated scenario spec (seed offset by the
            replicate index, ``name`` set to the cell label).
    """

    index: int
    label: str
    overrides: tuple[tuple[str, object], ...]
    replicate: int
    system: SystemSpec
    scenario: ScenarioSpec

    def __hash__(self) -> int:
        return hash((self.index, self.label, self.system, self.scenario))

    def coordinate(self, path: str, default=None):
        """The value this cell's grid coordinate took for ``path``."""
        for override_path, value in self.overrides:
            if override_path == path:
                return value
        return default


def _format_value(value) -> str:
    if isinstance(value, str):
        return value
    return json.dumps(value, separators=(",", ":"))


def _apply_override(data: dict, path: str, value) -> None:
    """Set ``path``'s final segment on the nested spec dict, in place."""
    segments = path.split(".")[1:]
    node = data
    for segment in segments[:-1]:
        child = node.get(segment)
        if not isinstance(child, dict):
            raise SpecError(
                f"axis path {path!r}: {segment!r} is not a nested object "
                f"in the base spec"
            )
        node = child
    node[segments[-1]] = _json_copy(value)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment sweep: base specs, axes, replicates.

    Attributes:
        name: sweep identifier; also the report artifact stem
            (``<name>.json`` / ``<name>.md``).
        system: base system spec every cell starts from.
        scenario: base scenario spec every cell starts from.
        axes: swept dimensions; the grid is their cross-product in order.
        baseline: optional reference system (e.g. ``"conventional"``) run
            once per distinct clip; enables the per-cell reduction
            factors the paper reports.  Baseline runs always use policy
            ``"none"``, ``batch_size=1``, and no kept outcomes — the
            full-frame per-frame reference.
        replicates: runs per grid cell; replicate ``r`` offsets the
            scenario seed by ``r`` (after axis overrides).
        executor: default executor name for :class:`SweepRunner`.
        workers: default worker count.
        report: paper-report key from :data:`REPORT_KEYS`, or ``""`` for
            the generic tidy report.
    """

    name: str = "sweep"
    system: SystemSpec = field(default_factory=SystemSpec)
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    axes: tuple[SweepAxis, ...] = ()
    baseline: SystemSpec | None = None
    replicates: int = 1
    executor: str = "process"
    workers: int = 2
    report: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SpecError(f"sweep.name: expected a non-empty str, got {self.name!r}")
        # The name becomes the artifact filename stem (<name>.json/.md):
        # a path separator or dot-name must never escape the --out dir.
        if not _NAME_RE.fullmatch(self.name) or set(self.name) == {"."}:
            raise SpecError(
                f"sweep.name: {self.name!r} must be a filename-safe slug "
                "(letters, digits, '.', '_', '-')"
            )
        if self.replicates < 1:
            raise SpecError(
                f"sweep.replicates: must be >= 1, got {self.replicates}"
            )
        if self.workers < 1:
            raise SpecError(f"sweep.workers: must be >= 1, got {self.workers}")
        if self.executor not in EXECUTOR_NAMES:
            raise SpecError(
                f"sweep.executor: unknown executor {self.executor!r}; "
                f"known executors: {list(EXECUTOR_NAMES)}"
            )
        if self.report and self.report not in REPORT_KEYS:
            raise SpecError(
                f"sweep.report: unknown report {self.report!r}; "
                f"known reports: {list(REPORT_KEYS)}"
            )
        seen = set()
        for axis in self.axes:
            if axis.path in seen:
                raise SpecError(f"sweep.axes: duplicate axis path {axis.path!r}")
            seen.add(axis.path)

    def __hash__(self) -> int:
        return hash((self.name, self.system, self.scenario, self.axes,
                     self.baseline, self.replicates, self.report))

    # -- grid expansion ----------------------------------------------------------

    @property
    def grid_size(self) -> int:
        """Total cell count: axis cross-product times replicates."""
        size = self.replicates
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def cells(self) -> tuple[SweepCell, ...]:
        """Expand the grid into validated cells, in grid order.

        Raises:
            SpecError: an axis value produced an invalid spec; the message
                names the axis path and value plus the underlying field
                error.
        """
        base_system = self.system.to_dict()
        base_scenario = self.scenario.to_dict()
        cells = []
        combos = itertools.product(*(axis.values for axis in self.axes))
        index = 0
        for combo in combos:
            overrides = tuple(
                (axis.path, value) for axis, value in zip(self.axes, combo)
            )
            context = ", ".join(
                f"{path}={_format_value(value)}" for path, value in overrides
            )
            base_label = ",".join(
                f"{path.rsplit('.', 1)[-1]}={_format_value(value)}"
                for path, value in overrides
            ) or "base"
            # The system is replicate-independent: build and validate it
            # once per combo; only the scenario varies per replicate.
            system_data = _json_copy(base_system)
            scenario_template = _json_copy(base_scenario)
            for path, value in overrides:
                target = (
                    system_data if path.startswith("system.") else scenario_template
                )
                _apply_override(target, path, value)
            try:
                system = SystemSpec.from_dict(system_data)
            except SpecError as exc:
                raise SpecError(f"sweep cell [{context}]: {exc}") from None
            for replicate in range(self.replicates):
                label = base_label
                if self.replicates > 1:
                    label = f"{label}/r{replicate}"
                scenario_data = _json_copy(scenario_template)
                scenario_data["name"] = label
                try:
                    scenario = ScenarioSpec.from_dict(scenario_data)
                except SpecError as exc:
                    raise SpecError(f"sweep cell [{context}]: {exc}") from None
                if replicate:
                    # Replicates re-seed the clip — applied after from_dict
                    # so axis values get the spec layer's strict validation;
                    # derived frame seeds must move with the clip seed or
                    # every replicate shares one noise draw.
                    scenario = dataclasses.replace(
                        scenario,
                        seed=scenario.seed + replicate,
                        frame_seeds=(
                            None
                            if scenario.frame_seeds is None
                            else tuple(s + replicate for s in scenario.frame_seeds)
                        ),
                    )
                cells.append(
                    SweepCell(index, label, overrides, replicate, system, scenario)
                )
                index += 1
        return tuple(cells)

    def baseline_scenario(self, scenario: ScenarioSpec) -> ScenarioSpec:
        """The full-frame reference request for one cell's clip.

        Same source/frames/seeds — the identical rendered clip — but no
        reuse policy, no batching, no kept outcomes, so the conventional
        baseline (which supports none of them) can serve it.
        """
        return dataclasses.replace(
            scenario,
            name="",
            policy=type(scenario.policy)("none"),
            batch_size=1,
            keep_outcomes=False,
            window=1,
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "system": self.system.to_dict(),
            "scenario": self.scenario.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
            "baseline": None if self.baseline is None else self.baseline.to_dict(),
            "replicates": self.replicates,
            "executor": self.executor,
            "workers": self.workers,
            "report": self.report,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        _require(data, "sweep", dict, "dict")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"sweep: unknown field(s) {unknown}; known fields: {sorted(known)}"
            )
        kwargs = {}
        if "name" in data:
            kwargs["name"] = _require(data["name"], "sweep.name", str, "str")
        if "system" in data:
            kwargs["system"] = SystemSpec.from_dict(
                _require(data["system"], "sweep.system", dict, "dict")
            )
        if "scenario" in data:
            kwargs["scenario"] = ScenarioSpec.from_dict(
                _require(data["scenario"], "sweep.scenario", dict, "dict")
            )
        if "axes" in data:
            axes = _require(data["axes"], "sweep.axes", list, "a list of axis dicts")
            kwargs["axes"] = tuple(
                SweepAxis.from_dict(a, f"sweep.axes[{i}]") for i, a in enumerate(axes)
            )
        if data.get("baseline") is not None:
            kwargs["baseline"] = SystemSpec.from_dict(
                _require(data["baseline"], "sweep.baseline", dict, "dict")
            )
        for intfield in ("replicates", "workers"):
            if intfield in data:
                kwargs[intfield] = _require(
                    data[intfield], f"sweep.{intfield}", int, "int"
                )
        for strfield in ("executor", "report"):
            if strfield in data:
                kwargs[strfield] = _require(
                    data[strfield], f"sweep.{strfield}", str, "str"
                )
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    # -- tiny mode ---------------------------------------------------------------

    def tiny(self) -> "SweepSpec":
        """A smoke-test-sized copy of this sweep (``repro sweep --tiny``).

        Caps clip length at :data:`TINY_FRAMES` frames and any *explicit*
        source ``resolution`` param (base or axis values) at
        :data:`TINY_RESOLUTION`, drops replicates to 1, and suffixes the
        name with ``-tiny`` so smoke artifacts never overwrite (or pass
        for) full-size ones.  Axis values
        that collapse to the same capped value are deduplicated, so a
        resolution axis may shrink to a single point.  Sources without an
        explicit resolution param are left untouched.  Deterministic: the
        tiny sweep is itself a plain :class:`SweepSpec`.
        """
        data = self.to_dict()
        if not data["name"].endswith("-tiny"):
            # Distinct artifact stem: a smoke report must never overwrite
            # (or pass for) the full-size one.
            data["name"] += "-tiny"
        data["replicates"] = 1
        scenario = data["scenario"]
        scenario["n_frames"] = min(scenario["n_frames"], TINY_FRAMES)
        if scenario.get("frame_seeds") is not None:
            scenario["frame_seeds"] = scenario["frame_seeds"][: scenario["n_frames"]]
        params = scenario["source"].setdefault("params", {})
        if "resolution" in params:
            params["resolution"] = _cap_resolution(params["resolution"])
        axes = []
        for axis in data["axes"]:
            values = axis["values"]
            if axis["path"].endswith(".resolution"):
                values = _dedupe(_cap_resolution(v) for v in values)
            elif axis["path"] == "scenario.n_frames":
                values = _dedupe(min(int(v), TINY_FRAMES) for v in values)
            elif axis["path"] == "scenario.frame_seeds":
                # Seed lists must shrink with the frame cap or every tiny
                # cell fails the seeds-vs-frames length validation.
                values = _dedupe(
                    v[: scenario["n_frames"]] if isinstance(v, list) else v
                    for v in values
                )
            axes.append({"path": axis["path"], "values": list(values)})
        data["axes"] = axes
        return SweepSpec.from_dict(data)


def _cap_resolution(value) -> list:
    if not (isinstance(value, (list, tuple)) and len(value) == 2):
        raise SpecError(
            f"sweep: resolution must be a (width, height) pair, got {value!r}"
        )
    return [min(int(value[0]), TINY_RESOLUTION[0]), min(int(value[1]), TINY_RESOLUTION[1])]


def _dedupe(values) -> list:
    out = []
    for value in values:
        if value not in out:
            out.append(value)
    return out


def load_sweep(path: str | Path) -> SweepSpec:
    """Read a JSON sweep file into a :class:`SweepSpec`.

    Raises:
        SpecError: unreadable/invalid JSON or a failing spec field, with
            the file path in the message.
    """
    try:
        text = Path(path).read_text()
    except UnicodeDecodeError as exc:
        raise SpecError(f"{path}: not valid UTF-8 ({exc})") from None
    except OSError as exc:
        raise SpecError(f"{path}: cannot read sweep file ({exc})") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: not valid JSON ({exc})") from None
    return SweepSpec.from_dict(data)
