"""The persistent tier: a crash-safe, content-addressed artifact store.

:class:`ArtifactStore` holds serialized cache values — rendered clips and
memoized :class:`~repro.service.RunResult`\\ s — as fingerprint-named
files under one configurable root.  The cache keys it receives are
already content addresses (SHA-256 of canonical spec JSON, see
:func:`~repro.service.spec_fingerprint`), which is what makes a disk
store correct at all: equal specs hash to equal keys in every process,
on every machine, across restarts, so a file written by one daemon run
*is* the answer for the next one.

Design rules, in decreasing order of importance:

* **a corrupted store is a slow store, never a broken one** — every read
  re-verifies a versioned header (magic, version, kind, key, payload
  length, payload SHA-256); any mismatch, truncation, or unreadable file
  counts as a miss, quarantines the file, and lets the caller rebuild;
* **crash-safe writes** — payloads land in a same-directory temp file,
  are flushed + fsynced, then atomically renamed into place; readers
  only ever observe whole files.  Concurrent writers of one key (two
  daemons sharing a store root) are harmless: content addressing means
  both wrote the same bytes, and rename picks one winner atomically;
* **single-flight per key** — within a process, concurrent ``put`` calls
  for one key serialize the value once;
* **bounded by bytes, not entries** — ``max_bytes`` triggers LRU garbage
  collection (least-recently-*used* by a logical clock persisted in the
  index file, so recency survives restarts and never depends on wall
  time).  :meth:`gc` can also be invoked explicitly (``repro cache gc``).

The index file (``index.json``) is an *accelerator*, not a source of
truth: it caches per-entry byte sizes and use-ordering for fast
``stats``/GC.  A missing or corrupt index is rebuilt by scanning the
object tree; files unknown to the index are adopted on scan.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock

from ..faults.runtime import as_injector, default_injector

#: Returned by :meth:`ArtifactStore.load` when the key is absent (or its
#: file failed verification).  A dedicated sentinel, not ``None``: the
#: store must be able to hold any picklable value.
MISS = object()

#: First line of every object file.  The version is part of the line so a
#: future layout change invalidates old files wholesale (they degrade to
#: misses and are rewritten) instead of being misparsed.
MAGIC_LINE = b"repro-store v1\n"

#: Longest header (magic + meta) a reader will accept, to bound reads on
#: garbage files.
_MAX_META_BYTES = 4096

#: Characters allowed verbatim in a key-derived filename.  Engine cache
#: keys are ``<sha256 hex>:<registry epoch>``; anything else is hashed.
_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")


def _filename(key: str) -> str:
    """A filesystem-safe, collision-free name for a cache key."""
    translated = key.replace(":", "_")
    if translated and all(ch in _SAFE for ch in translated):
        return translated
    return "h_" + hashlib.sha256(key.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Point-in-time store gauges plus this handle's cumulative counters.

    Attributes:
        entries: objects currently on disk (per the reconciled index).
        bytes: their total on-disk size (headers included).
        hits / misses: this process's :meth:`ArtifactStore.load` outcomes.
        writes: objects actually written (deduplicated puts count 0).
        evictions: objects removed by byte-budget GC.
        errors: reads that failed verification (each also counts a miss).
        by_kind: per-kind ``{"entries": n, "bytes": b}`` breakdown.
    """

    entries: int = 0
    bytes: int = 0
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    errors: int = 0
    by_kind: dict = field(default_factory=dict)

    def describe(self) -> str:
        kinds = ", ".join(
            f"{kind}: {info['entries']} entr{'y' if info['entries'] == 1 else 'ies'}"
            f" ({info['bytes'] / 1024:.1f} kB)"
            for kind, info in sorted(self.by_kind.items())
        ) or "empty"
        return (
            f"{self.entries} object(s), {self.bytes / 1024:.1f} kB on disk "
            f"[{kinds}]; {self.hits} hit(s) / {self.misses} miss(es), "
            f"{self.writes} write(s), {self.evictions} evicted"
        )


class ArtifactStore:
    """A content-addressed object store rooted at one directory.

    Args:
        root: store directory (created on first use).  Layout::

            <root>/index.json                  LRU/size accelerator
            <root>/objects/<kind>/<aa>/<name>  one object per file

        where ``<aa>`` is the first two filename characters (fan-out so
        huge stores never put 10^5 files in one directory).
        max_bytes: byte budget enforced after every write (``None`` = no
            budget; GC only when :meth:`gc` is called with one).  The
            entry just written is never evicted by its own put, so a
            single oversized object still round-trips.
        faults: a :class:`~repro.faults.FaultPlan` (or injector, dict, or
            plan path) scheduling ``store.load``/``store.put`` faults;
            ``None`` inherits the ambient ``REPRO_FAULT_PLAN`` plan.
            Injected faults are :class:`~repro.faults.InjectedFault`
            (an ``OSError``) raised exactly where a real disk error
            would surface, so they exercise the quarantine and
            failed-write paths below — never new test-only ones.

    Thread-safe; safe to open the same root from many processes (atomic
    renames + read-time verification), though LRU recency is then
    per-process best-effort.
    """

    def __init__(
        self,
        root: str | Path,
        max_bytes: int | None = None,
        faults=None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"store.max_bytes: must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.faults = (
            as_injector(faults) if faults is not None else default_injector()
        )
        self.stats = StoreStats()
        self._lock = Lock()
        self._inflight: dict[tuple[str, str], Lock] = {}
        self._clock = 0
        #: "<kind>/<filename>" -> {"bytes": int, "used": int}
        self._index: dict[str, dict] = {}
        self._load_index()

    # -- public API ----------------------------------------------------------------

    def load(self, kind: str, key: str):
        """Deserialize one object, or :data:`MISS`.

        Never raises for store-side problems: an absent, truncated,
        corrupted, or wrong-version file is a miss (and the bad file is
        quarantined so it cannot fail again).
        """
        path = self._path(kind, key)
        try:
            self._maybe_inject("store.load")
            with open(path, "rb") as handle:
                payload = self._read_verified(handle, kind, key)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return MISS
        except (OSError, ValueError):
            self._quarantine(kind, key, path)
            return MISS
        try:
            value = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any unpickling failure = corrupt
            self._quarantine(kind, key, path)
            return MISS
        with self._lock:
            self.stats.hits += 1
            entry = self._index.get(self._entry_id(kind, key))
            if entry is not None:
                self._clock += 1
                entry["used"] = self._clock
        return value

    def put(self, kind: str, key: str, value) -> int:
        """Serialize and persist one object; returns bytes written.

        Content-addressed: a key already present is *not* rewritten
        (same key means same bytes) and returns 0.  An unpicklable value
        returns 0 — uncacheable, never an error, mirroring the in-memory
        tiers' contract.
        """
        entry_id = self._entry_id(kind, key)
        with self._lock:
            if entry_id in self._index and self._path(kind, key).exists():
                return 0
            gate = self._inflight.setdefault((kind, key), Lock())
        with gate:
            with self._lock:
                if entry_id in self._index and self._path(kind, key).exists():
                    return 0
            try:
                payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:  # noqa: BLE001 - unpicklable = uncacheable
                return 0
            blob = self._frame(kind, key, payload)
            path = self._path(kind, key)
            try:
                self._maybe_inject("store.put")
                self._atomic_write(path, blob)
            except OSError:
                # Disk full, permissions, or an injected store.put
                # fault: the store is a cache, so a failed write is a
                # lost optimization — count it and keep serving.
                with self._lock:
                    self.stats.errors += 1
                return 0
            with self._lock:
                self.stats.writes += 1
                self._clock += 1
                self._index[entry_id] = {"bytes": len(blob), "used": self._clock}
                if self.max_bytes is not None:
                    self._gc_locked(self.max_bytes, protect=entry_id)
                self._flush_index_locked()
            return len(blob)
        # (the per-key gate stays in self._inflight: keys repeat, locks are tiny)

    def contains(self, kind: str, key: str) -> bool:
        """Whether a verified-shaped file for ``key`` exists (no read)."""
        return self._path(kind, key).exists()

    def gc(self, max_bytes: int | None = None) -> tuple[int, int]:
        """Evict least-recently-used objects down to a byte budget.

        Args:
            max_bytes: target (defaults to the store's own budget; a
                store with neither configured is a no-op).

        Returns:
            ``(objects_removed, bytes_removed)``.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        with self._lock:
            self._reconcile_locked()
            if budget is None:
                return (0, 0)
            removed = self._gc_locked(budget)
            self._flush_index_locked()
            return removed

    def clear(self) -> tuple[int, int]:
        """Remove every object; returns ``(objects_removed, bytes_removed)``."""
        with self._lock:
            self._reconcile_locked()
            removed = self._gc_locked(-1)
            self._flush_index_locked()
            return removed

    def snapshot(self) -> StoreStats:
        """Current gauges + counters (reconciled against the disk tree)."""
        with self._lock:
            self._reconcile_locked()
            by_kind: dict[str, dict] = {}
            for entry_id, entry in self._index.items():
                kind = entry_id.split("/", 1)[0]
                info = by_kind.setdefault(kind, {"entries": 0, "bytes": 0})
                info["entries"] += 1
                info["bytes"] += entry["bytes"]
            return StoreStats(
                entries=len(self._index),
                bytes=sum(e["bytes"] for e in self._index.values()),
                hits=self.stats.hits,
                misses=self.stats.misses,
                writes=self.stats.writes,
                evictions=self.stats.evictions,
                errors=self.stats.errors,
                by_kind=by_kind,
            )

    def flush(self) -> None:
        """Persist in-memory recency to the index file (put/gc already do)."""
        with self._lock:
            self._flush_index_locked()

    def __repr__(self) -> str:
        budget = "unbounded" if self.max_bytes is None else f"{self.max_bytes}B"
        return f"ArtifactStore(root={str(self.root)!r}, {budget})"

    def _maybe_inject(self, site: str) -> None:
        """Raise :class:`~repro.faults.InjectedFault` if ``site`` fires."""
        faults = self.faults
        if faults is None:
            return
        spec = faults.fire(site)
        if spec is not None:
            from ..faults.injector import InjectedFault

            raise InjectedFault(site, spec.kind)

    # -- file layout ---------------------------------------------------------------

    def _entry_id(self, kind: str, key: str) -> str:
        return f"{kind}/{_filename(key)}"

    def _path(self, kind: str, key: str) -> Path:
        name = _filename(key)
        return self.root / "objects" / kind / name[:2] / name

    def _frame(self, kind: str, key: str, payload: bytes) -> bytes:
        meta = {
            "kind": kind,
            "key": key,
            "codec": "pickle",
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        meta_line = json.dumps(meta, sort_keys=True).encode("utf-8") + b"\n"
        return MAGIC_LINE + meta_line + payload

    def _read_verified(self, handle, kind: str, key: str) -> bytes:
        """Read one object file, raising ``ValueError`` on any mismatch."""
        magic = handle.readline(len(MAGIC_LINE) + 1)
        if magic != MAGIC_LINE:
            raise ValueError("bad magic/version line")
        meta_line = handle.readline(_MAX_META_BYTES)
        if not meta_line.endswith(b"\n"):
            raise ValueError("truncated or oversized meta line")
        meta = json.loads(meta_line)
        if not isinstance(meta, dict):
            raise ValueError("meta is not an object")
        if meta.get("kind") != kind or meta.get("key") != key:
            raise ValueError("kind/key mismatch (file moved or renamed?)")
        if meta.get("codec") != "pickle":
            raise ValueError(f"unknown codec {meta.get('codec')!r}")
        length = meta.get("payload_bytes")
        if not isinstance(length, int) or length < 0:
            raise ValueError("bad payload length")
        payload = handle.read(length + 1)
        if len(payload) != length:
            raise ValueError("payload truncated (or trailing garbage)")
        if hashlib.sha256(payload).hexdigest() != meta.get("payload_sha256"):
            raise ValueError("payload checksum mismatch")
        return payload

    def _atomic_write(self, path: Path, blob: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _quarantine(self, kind: str, key: str, path: Path) -> None:
        """A file failed verification: count it and remove it."""
        with self._lock:
            self.stats.misses += 1
            self.stats.errors += 1
            self._index.pop(self._entry_id(kind, key), None)
        try:
            path.unlink()
        except OSError:
            pass

    # -- index ---------------------------------------------------------------------

    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> None:
        try:
            data = json.loads(self._index_path().read_text(encoding="utf-8"))
            entries = data["entries"]
            clock = data["clock"]
            if not isinstance(entries, dict) or not isinstance(clock, int):
                raise ValueError("index shape")
            for entry in entries.values():
                if not isinstance(entry.get("bytes"), int) or not isinstance(
                    entry.get("used"), int
                ):
                    raise ValueError("entry shape")
        except (OSError, ValueError, KeyError, TypeError):
            with self._lock:
                self._index = {}
                self._clock = 0
                self._reconcile_locked()
            return
        with self._lock:
            self._index = entries
            self._clock = clock
            self._reconcile_locked()

    def _flush_index_locked(self) -> None:
        data = {"version": 1, "clock": self._clock, "entries": self._index}
        blob = json.dumps(data, sort_keys=True).encode("utf-8")
        try:
            self._atomic_write(self._index_path(), blob)
        except OSError:
            pass  # the index is an accelerator; losing it costs a rescan

    def _reconcile_locked(self) -> None:
        """Make the index agree with the object tree (adopt/forget files)."""
        objects = self.root / "objects"
        seen: set[str] = set()
        if objects.is_dir():
            for kind_dir in sorted(objects.iterdir()):
                if not kind_dir.is_dir():
                    continue
                for path in sorted(kind_dir.glob("*/*")):
                    if not path.is_file() or path.name.startswith(".tmp-"):
                        continue
                    entry_id = f"{kind_dir.name}/{path.name}"
                    seen.add(entry_id)
                    if entry_id not in self._index:
                        # Adopted files (another process wrote them, or the
                        # index was lost) enter as least-recently-used: age 0.
                        try:
                            size = path.stat().st_size
                        except OSError:
                            continue
                        self._index[entry_id] = {"bytes": size, "used": 0}
        for entry_id in list(self._index):
            if entry_id not in seen:
                del self._index[entry_id]

    def _id_path(self, entry_id: str) -> Path:
        kind, name = entry_id.split("/", 1)
        return self.root / "objects" / kind / name[:2] / name

    def _gc_locked(
        self, budget: int, protect: str | None = None
    ) -> tuple[int, int]:
        """Evict LRU entries until total bytes <= budget (caller holds lock).

        ``budget`` of -1 means "evict everything" (:meth:`clear`).
        ``protect`` names an entry that must survive this pass.
        """
        total = sum(e["bytes"] for e in self._index.values())
        target = max(budget, 0)
        removed = removed_bytes = 0
        if budget >= 0 and total <= target:
            return (0, 0)
        for entry_id in sorted(
            self._index, key=lambda eid: (self._index[eid]["used"], eid)
        ):
            if budget >= 0 and total <= target:
                break
            if entry_id == protect:
                continue
            size = self._index[entry_id]["bytes"]
            try:
                self._id_path(entry_id).unlink()
            except FileNotFoundError:
                pass
            except OSError:
                continue  # cannot remove: leave it indexed, try the next
            del self._index[entry_id]
            self.stats.evictions += 1
            total -= size
            removed += 1
            removed_bytes += size
        return (removed, removed_bytes)
