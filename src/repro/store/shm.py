"""Zero-copy clip transport over ``multiprocessing.shared_memory``.

The process executor's work units are plain specs, so a cold worker
*renders* its clips.  A warm parent often already holds the rendered
frames — in its memory clip tier or its disk store — and shipping them
beats re-rendering, but pickling a clip copies its whole frame block
into every worker's pipe.  This module moves the contiguous block from
:meth:`SyntheticClip.__getstate__ <repro.stream.source.SyntheticClip.__getstate__>`
into one named shared-memory segment instead, so N workers map **one**
copy:

* :func:`share_clip` (parent) — stack the frames into a segment and
  return a tiny picklable :class:`SharedClipHandle` plus a refcounted
  :class:`SharedClipLease` that owns the segment's lifetime;
* :func:`attach_clip` (worker) — map the segment and rebuild a
  bit-identical :class:`~repro.stream.source.SyntheticClip` whose frames
  are **read-only views** into the mapping (the mapping is closed by a
  finalizer when the last view dies, so a worker caching the clip keeps
  it alive for free);
* ragged or empty clips have no contiguous block: :func:`share_clip`
  returns ``None`` and callers fall back to plain pickling, exactly the
  fallback :meth:`__getstate__` itself takes.

Lifetime discipline: the parent acquires one lease reference per chunk a
handle is dispatched with and releases it as each chunk completes; the
last release — or :meth:`SharedClipLease.destroy` on any failure path —
closes and unlinks the segment.  Unlinking only removes the *name*:
workers still attached keep their mapping until their views die, so the
parent never has to wait on worker GC, and a crashed worker's mapping
dies with its process.  Either way nothing is left in ``/dev/shm``.
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..stream.source import SyntheticClip

#: Prefix of every segment this module creates — makes leak checks (and
#: emergency ``rm /dev/shm/repro-clip-*``) trivial.
SEGMENT_PREFIX = "repro-clip-"

_counter_lock = threading.Lock()
_counter = 0


def _segment_name() -> str:
    global _counter
    with _counter_lock:
        _counter += 1
        return f"{SEGMENT_PREFIX}{os.getpid()}-{_counter}"


@dataclass(frozen=True)
class SharedClipHandle:
    """Everything a worker needs to rebuild a clip from shared memory.

    Plain picklable data — this is what actually crosses the process
    boundary (a few hundred bytes, instead of the frame block).

    Attributes:
        name: the shared-memory segment name.
        shape: the stacked ``(n_frames, H, W, C)`` block shape.
        dtype: the block's numpy dtype string.
        ground_truth: the clip's per-frame ground-truth boxes.
        resolution: the clip's ``(width, height)``.
    """

    name: str
    shape: tuple
    dtype: str
    ground_truth: list
    resolution: tuple


class ClipSegmentGoneError(OSError):
    """The shared segment no longer exists (the owner unlinked it).

    A subclass of :class:`OSError` so existing "segment gone or mangled:
    render it ourselves" fallbacks keep catching it; raised instead of a
    raw :class:`FileNotFoundError` so callers can tell "the batch was
    torn down under me" apart from ordinary filesystem errors.
    """

    def __init__(self, name: str):
        super().__init__(
            f"shared clip segment {name!r} is gone "
            "(the owner already closed or unlinked it)"
        )
        self.name = name


class SharedClipLease:
    """Refcounted ownership of one shared segment (parent side).

    The dispatcher acquires one reference per chunk the handle rides in
    and releases as each chunk's future completes; the last release
    closes and unlinks the segment.  :meth:`destroy` (alias
    :meth:`close`) force-releases on failure paths.  All of these are
    idempotent and thread-safe — a double ``close()`` is a no-op.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: SharedClipHandle):
        self.handle = handle
        self._shm: shared_memory.SharedMemory | None = shm
        self._refs = 0
        self._lock = threading.Lock()

    @property
    def alive(self) -> bool:
        """Whether the segment is still held (not yet closed/unlinked).

        A dispatcher re-dispatching a failed chunk must not reuse a lease
        whose refcount already hit zero — that segment is unlinked, and a
        worker attaching it would find nothing.
        """
        with self._lock:
            return self._shm is not None

    def acquire(self) -> "SharedClipLease":
        with self._lock:
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            if self._refs > 0:
                return
            self._close_locked()

    def destroy(self) -> None:
        with self._lock:
            self._close_locked()

    def close(self) -> None:
        """Force-release the segment now; safe to call any number of times."""
        self.destroy()

    def __enter__(self) -> "SharedClipLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _close_locked(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        for step in (shm.close, shm.unlink):
            try:
                step()
            except (OSError, FileNotFoundError):
                pass


def share_clip(clip: SyntheticClip, faults=None) -> SharedClipLease | None:
    """Copy a clip's contiguous frame block into a shared segment.

    Returns ``None`` when the clip has no contiguous block (ragged frame
    shapes/dtypes, or no frames at all) — callers fall back to pickling,
    which handles those layouts already — or when shared memory itself is
    unavailable on the platform.  An injected ``shm.share`` fault
    (``faults=`` is a :class:`~repro.faults.FaultInjector` or ``None``)
    takes the same ``None`` path: sharing failures are designed to
    degrade to pickling, never to break the batch.
    """
    if faults is not None and faults.fire("shm.share") is not None:
        return None
    state = clip.__getstate__()
    block = state.get("frame_stack")
    if block is None:
        return None
    try:
        shm = shared_memory.SharedMemory(
            name=_segment_name(), create=True, size=block.nbytes
        )
    except OSError:
        return None
    mapped = np.ndarray(block.shape, dtype=block.dtype, buffer=shm.buf)
    mapped[...] = block
    handle = SharedClipHandle(
        name=shm.name,
        shape=tuple(block.shape),
        dtype=block.dtype.str,
        ground_truth=clip.ground_truth,
        resolution=clip.resolution,
    )
    return SharedClipLease(shm, handle)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without adopting its lifetime.

    Only the creator owns unlink, so attaching passes ``track=False``
    where it exists (3.13+).  On older Pythons the attach-side
    ``register`` is a set-add in the resource tracker our spawned
    workers *share* with the creating parent, so it deduplicates against
    the creator's own registration — manually unregistering here would
    strip that shared entry and make the parent's eventual unlink
    complain instead (bpo-38119).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def attach_clip(handle: SharedClipHandle, faults=None) -> SyntheticClip:
    """Rebuild a clip from a shared segment (worker side).

    The frames are read-only views into the mapping — bit-identical to
    the originals, zero copies.  The mapping closes itself (a finalizer
    on the block) once the last view is garbage; until then the clip is
    safe to cache and reuse, even after the parent unlinks the name.

    Raises:
        ClipSegmentGoneError: the segment is gone (e.g. the parent
            already tore the batch down), or an injected ``shm.attach``
            fault fired; callers treat both identically — "render it
            yourself".
    """
    if faults is not None and faults.fire("shm.attach") is not None:
        raise ClipSegmentGoneError(handle.name)
    try:
        shm = _attach_segment(handle.name)
    except FileNotFoundError as exc:
        raise ClipSegmentGoneError(handle.name) from exc
    block = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf)
    # Shared pages: a write here would corrupt every other attached
    # worker.  Consumers copy before mutating by contract; enforce it.
    block.flags.writeable = False
    weakref.finalize(block, _close_mapping, shm)
    clip = SyntheticClip.__new__(SyntheticClip)
    clip.__setstate__(
        {
            "frame_stack": block,
            "ground_truth": handle.ground_truth,
            "resolution": handle.resolution,
        }
    )
    return clip


def _close_mapping(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except (OSError, BufferError):
        pass
