"""repro.store — the persistence subsystem behind the engine cache.

Two pieces, both keyed by the same content addresses the in-memory
:class:`~repro.service.EngineCache` already uses (SHA-256 of canonical
spec JSON):

* :class:`ArtifactStore` — a crash-safe, content-addressed on-disk object
  store (atomic writes, verified versioned headers, byte-budget LRU GC)
  that serves as the cache's third tier: warm state survives restarts, a
  ``repro serve --store-dir`` daemon cold-starts into pure cache hits,
  and sweeps resume for free.
* shared-memory clip transport (:func:`share_clip` / :func:`attach_clip`)
  — the process executor's zero-copy dispatch path: one shared segment
  holds a clip's contiguous frame block, N workers map it instead of
  receiving N pickled copies, with refcounted lifetime management
  (:class:`SharedClipLease`) and a pickle fallback for ragged clips.
"""

from .artifact import MISS, ArtifactStore, StoreStats
from .shm import (
    SEGMENT_PREFIX,
    ClipSegmentGoneError,
    SharedClipHandle,
    SharedClipLease,
    attach_clip,
    share_clip,
)

__all__ = [
    "MISS",
    "ArtifactStore",
    "StoreStats",
    "SEGMENT_PREFIX",
    "ClipSegmentGoneError",
    "SharedClipHandle",
    "SharedClipLease",
    "attach_clip",
    "share_clip",
]
