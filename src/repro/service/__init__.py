"""Unified service API: registries, serializable specs, and the Engine.

This package is the system's single front door.  Instead of hand-wiring a
pipeline, a source, and a policy per experiment, a *spec* — plain data,
JSON-serializable — names every component and the :class:`Engine` builds
and runs it:

>>> from repro.service import Engine, ScenarioSpec, ComponentRef
>>> engine = Engine.from_spec({"system": "hirise"})
>>> result = engine.run(ScenarioSpec(source=ComponentRef("pedestrian"),
...                                  n_frames=8, seed=4))
>>> result.outcome.n_frames
8

Three layers:

* :mod:`~repro.service.registry` — component registries (detectors,
  classifiers, stream sources, reuse policies) keyed by string name, with
  ``@register_*`` decorators and :func:`list_components` introspection;
* :mod:`~repro.service.spec` — :class:`SystemSpec` / :class:`ScenarioSpec`
  / :class:`ServiceSpec`, frozen dataclasses with exact ``to_dict`` /
  ``from_dict`` round-trips and field-naming validation errors;
* :mod:`~repro.service.engine` — the stateless :class:`Engine` façade:
  ``from_spec(path_or_dict)``, ``run(request)``, and
  ``run_batch(requests, workers=N, executor=...)`` whose results are
  bit-identical to sequential execution under every executor;
* :mod:`~repro.service.executor` — pluggable batch executors
  (:class:`SerialExecutor`, :class:`ThreadExecutor`, the spawn-safe
  :class:`ProcessExecutor`), selected by name;
* :mod:`~repro.service.cache` — the content-addressed
  :class:`EngineCache`: rendered clips and full :class:`RunResult`
  memoization keyed by canonical spec hashes, with hit/miss/eviction
  stats surfaced on :class:`BatchResult`.

``python -m repro run <spec.json> --executor process`` and ``python -m
repro components`` expose the same surface on the command line;
``examples/specs/`` holds ready-to-run spec files.
"""

from . import components as _components  # noqa: F401  (populates registries)
from .cache import (
    CacheStats,
    EngineCache,
    TierStats,
    spec_fingerprint,
)
from .engine import BatchResult, Engine, RunResult
from .executor import (
    EXECUTOR_NAMES,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkUnitRetryError,
    make_executor,
)
from .registry import (
    CLASSIFIERS,
    DETECTORS,
    POLICIES,
    SOURCES,
    Registry,
    UnknownComponentError,
    list_components,
    register_classifier,
    register_detector,
    register_policy,
    register_source,
)
from .spec import (
    ComponentRef,
    ScenarioSpec,
    ServiceSpec,
    SpecError,
    SystemSpec,
    load_spec,
)

__all__ = [
    "BatchResult",
    "CLASSIFIERS",
    "CacheStats",
    "ComponentRef",
    "DETECTORS",
    "EXECUTOR_NAMES",
    "Engine",
    "EngineCache",
    "Executor",
    "POLICIES",
    "ProcessExecutor",
    "Registry",
    "RunResult",
    "SOURCES",
    "ScenarioSpec",
    "SerialExecutor",
    "ServiceSpec",
    "SpecError",
    "SystemSpec",
    "ThreadExecutor",
    "TierStats",
    "UnknownComponentError",
    "WorkUnitRetryError",
    "list_components",
    "load_spec",
    "make_executor",
    "register_classifier",
    "register_detector",
    "register_policy",
    "register_source",
    "spec_fingerprint",
]
