"""The Engine: one config-driven front door for every scenario.

:class:`Engine` replaces hand-wiring pipelines, runners, sources, and
policies in Python: it holds one :class:`~repro.service.SystemSpec` and
serves any number of :class:`~repro.service.ScenarioSpec` requests against
it — one at a time (:meth:`Engine.run`) or as a batch
(:meth:`Engine.run_batch`) driven by a pluggable
:class:`~repro.service.Executor` (serial, thread pool, or spawn-safe
process pool).

Determinism is the contract that makes all of it safe: every request
builds its *own* source, detector, pipeline, and policy from the
registries, all seeded by the spec, so ``run_batch`` under any executor is
bit-identical to a sequential loop of ``run`` — asserted in tests and in
the ``service`` benchmark.  On top of that contract sits the
content-addressed :class:`~repro.service.EngineCache`: requests whose
``(source, n_frames, seed)`` coincide share one rendered clip, and a
request whose entire ``(system, scenario)`` spec was served before is
answered from the result tier without re-running anything.  Cached results
are shared objects — treat them (like all results) as read-only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..core.pipeline import ConventionalPipeline, HiRISEPipeline
from ..core.profiling import PhaseProfile, PhaseProfiler
from ..faults.runtime import as_injector, default_injector
from ..stream.ledger import StreamOutcome
from ..stream.runner import StreamRunner
from . import components as _components  # noqa: F401  (populates registries)
from .cache import (
    CacheStats,
    EngineCache,
    clip_key,
    result_key,
    spec_fingerprint,
)
from .executor import EXECUTOR_NAMES, Executor, make_executor
from .registry import CLASSIFIERS, DETECTORS, POLICIES, SOURCES, registry_epoch
from .spec import (
    ScenarioSpec,
    SpecError,
    SystemSpec,
    coerce_service_spec,
    load_spec,
)


@dataclass(frozen=True)
class RunResult:
    """One served request: the scenario that asked and the ledger it got.

    Attributes:
        scenario: the request.
        outcome: its stream ledger.
        profile: per-phase wall-clock breakdown, present only when the
            engine ran with ``profile=True`` (profiled requests always
            recompute — a memoized result has no phases to measure).
    """

    scenario: ScenarioSpec
    outcome: StreamOutcome
    profile: PhaseProfile | None = None

    @property
    def label(self) -> str:
        return self.scenario.label

    def report(self) -> str:
        text = f"--- {self.label} ---\n{self.outcome.report()}"
        if self.profile is not None:
            text += f"\n  phase breakdown:\n{self.profile.report()}"
        return text


@dataclass
class BatchResult:
    """A batch of results plus cross-request aggregates.

    The per-request :class:`~repro.stream.StreamOutcome` ledgers stay
    intact (order matches the submitted requests); the properties roll
    them up into whole-batch quantities.

    Attributes:
        results: per-request results, in request order.
        workers: worker count the executor ran with.
        executor: name of the executor that served the batch.
        wall_time_s: measured wall-clock time of the whole batch.
        cache: the engine cache's hit/miss/eviction *delta* over this
            batch (clip and result tiers), including work done inside
            process-executor workers.  Counted per batch — concurrent
            batches sharing one cache (e.g. daemon connections) each
            report only their own traffic.
        profile: the merged per-phase breakdown of every profiled result
            (``None`` unless the engine ran with ``profile=True``).
    """

    results: list[RunResult] = field(default_factory=list)
    workers: int = 1
    executor: str = "serial"
    wall_time_s: float = 0.0
    cache: CacheStats | None = None
    profile: PhaseProfile | None = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def outcomes(self) -> list[StreamOutcome]:
        return [r.outcome for r in self.results]

    @property
    def total_frames(self) -> int:
        return sum(o.n_frames for o in self.outcomes)

    @property
    def total_bytes(self) -> int:
        return sum(o.total_bytes for o in self.outcomes)

    @property
    def total_energy_j(self) -> float:
        return sum(o.total_energy_j for o in self.outcomes)

    @property
    def total_conversions(self) -> int:
        return sum(o.total_conversions for o in self.outcomes)

    @property
    def stage1_frames(self) -> int:
        return sum(o.stage1_frames for o in self.outcomes)

    @property
    def reused_frames(self) -> int:
        return sum(o.reused_frames for o in self.outcomes)

    @property
    def peak_image_memory_bytes(self) -> int:
        return max((o.peak_image_memory_bytes for o in self.outcomes), default=0)

    @property
    def frames_per_second(self) -> float:
        """Aggregate served throughput (0 when untimed)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_frames / self.wall_time_s

    def report(self) -> str:
        """Human-readable whole-batch rollup."""
        lines = [
            f"[batch] {len(self.results)} scenario(s), "
            f"{self.executor} executor x {self.workers} worker(s): "
            f"{self.total_frames} frames "
            f"({self.stage1_frames} stage-1, {self.reused_frames} reused)",
            f"  transfer: {self.total_bytes / 1024:.1f} kB",
            f"  energy: {self.total_energy_j * 1e3:.4f} mJ",
            f"  ADC conversions: {self.total_conversions:,}",
            f"  peak image memory: {self.peak_image_memory_bytes / 1024:.1f} kB",
        ]
        if self.cache is not None:
            lines.append(f"  cache: {self.cache.describe()}")
        if self.profile is not None:
            lines.append("  phase breakdown (all requests):")
            lines.append(self.profile.report())
        if self.wall_time_s > 0:
            lines.append(
                f"  throughput: {self.frames_per_second:.1f} frames/s "
                f"({self.wall_time_s * 1e3:.0f} ms wall)"
            )
        return "\n".join(lines)


class Engine:
    """Stateless façade serving scenario requests against one system spec.

    "Stateless" means no request *changes* what another observes: all
    per-request state (pipelines, trackers, detector frame counters) is
    constructed fresh inside :meth:`run`, so one engine can serve
    concurrent requests and repeated requests always return identical
    results.  The engine's only cross-request state is its
    :class:`~repro.service.EngineCache` — a pure memo over that
    determinism, observable only through wall-clock time and the cache
    stats on :class:`BatchResult`.

    Attributes:
        spec: the system served.
        scenarios: default workload (from the spec file's ``scenarios``
            list); used when :meth:`run_batch` gets no requests.
        workers: default worker count for :meth:`run_batch`.
        executor: default executor name for :meth:`run_batch`
            (one of ``EXECUTOR_NAMES``).
        cache: the clip/result cache (pass
            :meth:`EngineCache.disabled() <repro.service.EngineCache.disabled>`
            for measurement runs that must recompute everything).
        store: optional :class:`~repro.store.ArtifactStore` backing the
            cache's persistent third tier — shorthand for constructing
            ``EngineCache(store=...)`` yourself (ignored when an explicit
            ``cache`` is passed, which keeps its own store setting).
        profile: when true, every served request carries a
            :class:`~repro.core.PhaseProfile` on ``RunResult.profile``
            (and the merged breakdown on ``BatchResult.profile``).
            Profiled requests bypass the result-memo tier — profiling
            measures real work, and a cache hit has no phases.
        faults: optional fault injection — a
            :class:`~repro.faults.FaultPlan` (or injector/dict/JSON
            path); defaults to the ambient ``REPRO_FAULT_PLAN`` plan
            when unset.  The engine itself has no injection sites; it
            carries the injector so the process executor can ship the
            plan to its workers (``worker.run`` faults fire there).
    """

    def __init__(
        self,
        spec: SystemSpec | None = None,
        scenarios: Iterable[ScenarioSpec] = (),
        workers: int = 1,
        executor: str = "thread",
        cache: EngineCache | None = None,
        profile: bool = False,
        store=None,
        faults=None,
    ):
        self.spec = spec if spec is not None else SystemSpec()
        self.scenarios = tuple(scenarios)
        self.workers = workers
        if executor not in EXECUTOR_NAMES:
            raise SpecError(
                f"service.executor: unknown executor {executor!r}; "
                f"known executors: {list(EXECUTOR_NAMES)}"
            )
        self.executor = executor
        self.cache = cache if cache is not None else EngineCache(store=store)
        self.profile = profile
        self.faults = (
            as_injector(faults) if faults is not None else default_injector()
        )
        # The system never changes over the engine's lifetime: hash it once
        # so per-request keys only hash the scenario.
        self._system_key = spec_fingerprint(self.spec.to_dict())
        # Fail at construction, not mid-batch: both model slots must exist.
        self.spec.detector.resolve(DETECTORS, "system.detector")
        self.spec.classifier.resolve(CLASSIFIERS, "system.classifier")

    @classmethod
    def from_spec(cls, spec, faults=None) -> "Engine":
        """Build an engine from a spec in any serialized form.

        Args:
            spec: a JSON file path (``str`` or :class:`~pathlib.Path`), a
                dict (full service layout or a bare system spec), a
                :class:`SystemSpec`, or a :class:`ServiceSpec`.
            faults: optional fault plan/injector (see :meth:`__init__`).
        """
        if isinstance(spec, (str, Path)):
            service = load_spec(spec)
        else:
            service = coerce_service_spec(spec)
        return cls(
            service.system,
            service.scenarios,
            service.workers,
            service.executor,
            faults=faults,
        )

    # -- request construction ----------------------------------------------------

    @staticmethod
    def _as_scenario(request) -> ScenarioSpec:
        if isinstance(request, ScenarioSpec):
            return request
        if isinstance(request, dict):
            return ScenarioSpec.from_dict(request)
        raise SpecError(
            f"request: expected a ScenarioSpec or dict, got {request!r}"
        )

    def _build_clip(self, scenario: ScenarioSpec):
        factory = scenario.source.resolve(SOURCES, "scenario.source")
        try:
            return factory(
                scenario.n_frames, scenario.seed, **dict(scenario.source.params)
            )
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"scenario.source {scenario.source.name!r}: {exc}"
            ) from exc

    def _build_runner(self, scenario: ScenarioSpec, clip):
        """Fresh pipeline + runner + callbacks for one request."""
        spec = self.spec
        detector_factory = spec.detector.resolve(DETECTORS, "system.detector")
        try:
            detector, on_frame = detector_factory(clip, **dict(spec.detector.params))
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"system.detector {spec.detector.name!r}: {exc}"
            ) from exc
        classifier_factory = spec.classifier.resolve(CLASSIFIERS, "system.classifier")
        try:
            classifier = classifier_factory(**dict(spec.classifier.params))
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"system.classifier {spec.classifier.name!r}: {exc}"
            ) from exc
        # The spec's compute dtype is a *system* property: thread it into
        # any classifier that understands dtype casting (float64 is the
        # default, so plain callables are always float64-exact).
        if classifier is not None and hasattr(classifier, "set_compute_dtype"):
            classifier.set_compute_dtype(spec.compute_dtype)

        if spec.system == "conventional":
            pipeline = ConventionalPipeline(
                detector=detector,
                classifier=classifier,
                adc_bits=spec.config.adc_bits,
                noise=spec.noise,
            )
        else:
            pipeline = HiRISEPipeline(
                detector=detector,
                classifier=classifier,
                config=spec.config,
                noise=spec.noise,
            )

        policy_factory = scenario.policy.resolve(POLICIES, "scenario.policy")
        try:
            policy = policy_factory(**dict(scenario.policy.params))
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"scenario.policy {scenario.policy.name!r}: {exc}"
            ) from exc

        try:
            runner = StreamRunner(
                pipeline,
                reuse=policy,
                batch_size=scenario.batch_size,
                keep_outcomes=scenario.keep_outcomes,
                window=scenario.window,
                label=scenario.label,
            )
        except ValueError as exc:
            raise SpecError(f"scenario {scenario.label!r}: {exc}") from exc
        return runner, on_frame

    # -- serving -----------------------------------------------------------------

    @staticmethod
    def _epoch_key(key: str | None) -> str | None:
        # Spec content plus the registry override epoch: deleting a
        # registered name (the documented override hatch) is the one event
        # that can retarget an existing spec, so it must cold-start the
        # caches — stale-epoch entries simply age out of the LRU.
        return None if key is None else f"{key}:{registry_epoch()}"

    def result_key_for(self, scenario: ScenarioSpec) -> str | None:
        """This request's result-tier content address (``None`` = uncacheable)."""
        return self._epoch_key(result_key(self.spec, scenario, self._system_key))

    def _serve(
        self,
        scenario: ScenarioSpec,
        clip=None,
        cache_delta: CacheStats | None = None,
        on_stats=None,
    ) -> RunResult:
        """Run one scenario for real (no result memoization)."""
        if clip is None:
            clip = self.cache.clips.get_or_build(
                self._epoch_key(clip_key(scenario)),
                lambda: self._build_clip(scenario),
                delta=None if cache_delta is None else cache_delta.clips,
            )
        runner, on_frame = self._build_runner(scenario, clip)
        runner.on_stats = on_stats
        profiler = None
        if self.profile:
            profiler = PhaseProfiler()
            runner.pipeline.profiler = profiler
        outcome = runner.run(
            clip.frames, frame_seeds=scenario.frame_seeds, on_frame=on_frame
        )
        return RunResult(
            scenario=scenario,
            outcome=outcome,
            profile=None if profiler is None else profiler.snapshot(),
        )

    def run(self, request, clip=None, cache_delta: CacheStats | None = None) -> RunResult:
        """Serve one request, through the result cache.

        Args:
            request: a :class:`ScenarioSpec` or its dict form.
            clip: pre-built source clip (bypasses both cache tiers; must
                be the clip the request's source spec would build).
            cache_delta: optional per-caller :class:`CacheStats`
                accumulator; every cache lookup this request makes is
                counted into it as well as the global stats, which is how
                concurrent batches sharing one cache each report exactly
                their own traffic.

        Returns:
            :class:`RunResult` with the request's stream ledger.  A
            repeat of an already-served ``(system, scenario)`` spec is
            answered from the cache, bit-identical to a fresh run —
            unless the engine is profiling, which always recomputes (a
            memoized result has no phases to measure) and leaves the
            result tier untouched.
        """
        scenario = self._as_scenario(request)
        if clip is not None:
            return self._serve(scenario, clip, cache_delta=cache_delta)
        if self.profile:
            return self._serve(scenario, cache_delta=cache_delta)
        return self.cache.results.get_or_build(
            self.result_key_for(scenario),
            lambda: self._serve(scenario, cache_delta=cache_delta),
            delta=None if cache_delta is None else cache_delta.results,
        )

    def run_streaming(
        self,
        request,
        on_stats=None,
        cache_delta: CacheStats | None = None,
    ) -> RunResult:
        """Serve one request, streaming each frame's ledger as it lands.

        ``on_stats`` is invoked with every :class:`~repro.stream.FrameStats`
        in stream order — live, while later frames are still computing, when
        the request misses the result cache; as an instant replay of the
        memoized ledger when it hits.  Either way the callback sees exactly
        the rows the returned result carries, so a client reassembling the
        stream gets a ledger bit-identical to the non-streaming response.

        Unlike :meth:`run`, concurrent *misses* of one key do not
        single-flight (each caller must observe its own live stream); the
        winner's result still lands in the cache for later requests.
        """
        scenario = self._as_scenario(request)
        if on_stats is None:
            return self.run(scenario, cache_delta=cache_delta)
        if self.profile:
            return self._serve(scenario, cache_delta=cache_delta, on_stats=on_stats)
        key = self.result_key_for(scenario)
        delta = None if cache_delta is None else cache_delta.results
        hit, value = self.cache.results.peek(key, delta=delta)
        if hit:
            for stats in value.outcome.frames:
                on_stats(stats)
            return value
        result = self._serve(scenario, cache_delta=cache_delta, on_stats=on_stats)
        self.cache.results.put(key, result, delta=delta)
        return result

    def run_batch(
        self,
        requests: Sequence | None = None,
        workers: int | None = None,
        executor: str | Executor | None = None,
    ) -> BatchResult:
        """Serve many requests through an executor; results keep order.

        Executors and caches are purely wall-clock optimizations:
        per-request results are bit-identical to sequential :meth:`run`
        calls whichever executor serves them.

        Args:
            requests: scenario specs (or dicts); defaults to the engine's
                spec-file scenarios.
            workers: pool size (defaults to the engine's ``workers``).
            executor: executor name from ``EXECUTOR_NAMES`` (defaults to
                the engine's ``executor``), or a constructed
                :class:`Executor` instance to reuse a warm pool across
                batches — instance pools are left open for the caller to
                :meth:`~repro.service.Executor.close`, and their own
                worker count wins over ``workers``.

        Returns:
            :class:`BatchResult`; a failed request re-raises its error.
        """
        if requests is None:
            requests = self.scenarios
        scenarios = [self._as_scenario(r) for r in requests]
        if workers is None:
            workers = self.workers
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")

        if isinstance(executor, Executor):
            pool, owned = executor, False
        else:
            name = executor if executor is not None else self.executor
            pool, owned = make_executor(name, workers), True

        # Per-batch collector, not a global before/after snapshot: the
        # cache may be shared with other concurrently-running batches (a
        # serving daemon's whole point), and this batch must report only
        # its own hits/misses/evictions.
        delta = CacheStats.zero()
        start = time.perf_counter()
        try:
            results = pool.execute(self, scenarios, cache_delta=delta)
        finally:
            if owned:
                pool.close()
        wall = time.perf_counter() - start
        profiles = [r.profile for r in results if r.profile is not None]
        return BatchResult(
            results=results,
            workers=pool.workers,
            executor=pool.name,
            wall_time_s=wall,
            cache=delta,
            profile=PhaseProfile.merge(profiles) if profiles else None,
        )
