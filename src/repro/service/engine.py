"""The Engine: one stateless, config-driven front door for every scenario.

:class:`Engine` replaces hand-wiring pipelines, runners, sources, and
policies in Python: it holds one :class:`~repro.service.SystemSpec` and
serves any number of :class:`~repro.service.ScenarioSpec` requests against
it — one at a time (:meth:`Engine.run`) or as a concurrent batch
(:meth:`Engine.run_batch`).

Determinism is the contract that makes batching safe: every request builds
its *own* source, detector, pipeline, and policy from the registries, all
seeded by the spec, so ``run_batch(requests, workers=N)`` is bit-identical
to a sequential loop of ``run`` — asserted in tests and in the ``service``
benchmark.  The only work shared across a batch is the construction of
byte-identical inputs: requests whose ``(source, n_frames, seed)`` coincide
reuse one clip (built once, read-only), which is where the single-core
batch speedup comes from; the thread pool adds multi-core scaling on top.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from typing import Iterable, Sequence

from ..core.pipeline import ConventionalPipeline, HiRISEPipeline
from ..stream.ledger import StreamOutcome
from ..stream.runner import StreamRunner
from . import components as _components  # noqa: F401  (populates registries)
from .registry import CLASSIFIERS, DETECTORS, POLICIES, SOURCES
from .spec import (
    ScenarioSpec,
    SpecError,
    SystemSpec,
    coerce_service_spec,
    load_spec,
)


@dataclass(frozen=True)
class RunResult:
    """One served request: the scenario that asked and the ledger it got."""

    scenario: ScenarioSpec
    outcome: StreamOutcome

    @property
    def label(self) -> str:
        return self.scenario.label

    def report(self) -> str:
        return f"--- {self.label} ---\n{self.outcome.report()}"


@dataclass
class BatchResult:
    """A batch of results plus cross-request aggregates.

    The per-request :class:`~repro.stream.StreamOutcome` ledgers stay
    intact (order matches the submitted requests); the properties roll
    them up into whole-batch quantities.
    """

    results: list[RunResult] = field(default_factory=list)
    workers: int = 1
    wall_time_s: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def outcomes(self) -> list[StreamOutcome]:
        return [r.outcome for r in self.results]

    @property
    def total_frames(self) -> int:
        return sum(o.n_frames for o in self.outcomes)

    @property
    def total_bytes(self) -> int:
        return sum(o.total_bytes for o in self.outcomes)

    @property
    def total_energy_j(self) -> float:
        return sum(o.total_energy_j for o in self.outcomes)

    @property
    def total_conversions(self) -> int:
        return sum(o.total_conversions for o in self.outcomes)

    @property
    def stage1_frames(self) -> int:
        return sum(o.stage1_frames for o in self.outcomes)

    @property
    def reused_frames(self) -> int:
        return sum(o.reused_frames for o in self.outcomes)

    @property
    def peak_image_memory_bytes(self) -> int:
        return max((o.peak_image_memory_bytes for o in self.outcomes), default=0)

    @property
    def frames_per_second(self) -> float:
        """Aggregate served throughput (0 when untimed)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_frames / self.wall_time_s

    def report(self) -> str:
        """Human-readable whole-batch rollup."""
        lines = [
            f"[batch] {len(self.results)} scenario(s), {self.workers} worker(s): "
            f"{self.total_frames} frames "
            f"({self.stage1_frames} stage-1, {self.reused_frames} reused)",
            f"  transfer: {self.total_bytes / 1024:.1f} kB",
            f"  energy: {self.total_energy_j * 1e3:.4f} mJ",
            f"  ADC conversions: {self.total_conversions:,}",
            f"  peak image memory: {self.peak_image_memory_bytes / 1024:.1f} kB",
        ]
        if self.wall_time_s > 0:
            lines.append(
                f"  throughput: {self.frames_per_second:.1f} frames/s "
                f"({self.wall_time_s * 1e3:.0f} ms wall)"
            )
        return "\n".join(lines)


def _source_key(scenario: ScenarioSpec) -> str | None:
    """Cache key: everything that determines the rendered clip, bit for bit.

    ``None`` means "don't share": params that JSON can't canonicalize
    (possible via the Python API — numpy scalars, sets, ...) make the
    request uncacheable rather than making the batch path fail where
    sequential :meth:`Engine.run` would succeed.
    """
    try:
        return json.dumps(
            [scenario.source.to_dict(), scenario.n_frames, scenario.seed],
            sort_keys=True,
        )
    except (TypeError, ValueError):
        return None


class Engine:
    """Stateless façade serving scenario requests against one system spec.

    "Stateless" means no request leaves anything behind: all per-request
    state (pipelines, trackers, detector frame counters) is constructed
    fresh inside :meth:`run`, so one engine can serve concurrent requests
    and repeated requests always return identical results.

    Attributes:
        spec: the system served.
        scenarios: default workload (from the spec file's ``scenarios``
            list); used when :meth:`run_batch` gets no requests.
        workers: default worker count for :meth:`run_batch`.
    """

    def __init__(
        self,
        spec: SystemSpec | None = None,
        scenarios: Iterable[ScenarioSpec] = (),
        workers: int = 1,
    ):
        self.spec = spec if spec is not None else SystemSpec()
        self.scenarios = tuple(scenarios)
        self.workers = workers
        # Fail at construction, not mid-batch: both model slots must exist.
        self.spec.detector.resolve(DETECTORS, "system.detector")
        self.spec.classifier.resolve(CLASSIFIERS, "system.classifier")

    @classmethod
    def from_spec(cls, spec) -> "Engine":
        """Build an engine from a spec in any serialized form.

        Args:
            spec: a JSON file path (``str`` or :class:`~pathlib.Path`), a
                dict (full service layout or a bare system spec), a
                :class:`SystemSpec`, or a :class:`ServiceSpec`.
        """
        if isinstance(spec, (str, Path)):
            service = load_spec(spec)
        else:
            service = coerce_service_spec(spec)
        return cls(service.system, service.scenarios, service.workers)

    # -- request construction ----------------------------------------------------

    @staticmethod
    def _as_scenario(request) -> ScenarioSpec:
        if isinstance(request, ScenarioSpec):
            return request
        if isinstance(request, dict):
            return ScenarioSpec.from_dict(request)
        raise SpecError(
            f"request: expected a ScenarioSpec or dict, got {request!r}"
        )

    def _build_clip(self, scenario: ScenarioSpec):
        factory = scenario.source.resolve(SOURCES, "scenario.source")
        try:
            return factory(
                scenario.n_frames, scenario.seed, **dict(scenario.source.params)
            )
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"scenario.source {scenario.source.name!r}: {exc}"
            ) from exc

    def _build_runner(self, scenario: ScenarioSpec, clip):
        """Fresh pipeline + runner + callbacks for one request."""
        spec = self.spec
        detector_factory = spec.detector.resolve(DETECTORS, "system.detector")
        try:
            detector, on_frame = detector_factory(clip, **dict(spec.detector.params))
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"system.detector {spec.detector.name!r}: {exc}"
            ) from exc
        classifier_factory = spec.classifier.resolve(CLASSIFIERS, "system.classifier")
        try:
            classifier = classifier_factory(**dict(spec.classifier.params))
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"system.classifier {spec.classifier.name!r}: {exc}"
            ) from exc

        if spec.system == "conventional":
            pipeline = ConventionalPipeline(
                detector=detector,
                classifier=classifier,
                adc_bits=spec.config.adc_bits,
                noise=spec.noise,
            )
        else:
            pipeline = HiRISEPipeline(
                detector=detector,
                classifier=classifier,
                config=spec.config,
                noise=spec.noise,
            )

        policy_factory = scenario.policy.resolve(POLICIES, "scenario.policy")
        try:
            policy = policy_factory(**dict(scenario.policy.params))
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"scenario.policy {scenario.policy.name!r}: {exc}"
            ) from exc

        try:
            runner = StreamRunner(
                pipeline,
                reuse=policy,
                batch_size=scenario.batch_size,
                keep_outcomes=scenario.keep_outcomes,
            )
        except ValueError as exc:
            raise SpecError(f"scenario {scenario.label!r}: {exc}") from exc
        return runner, on_frame

    # -- serving -----------------------------------------------------------------

    def run(self, request, clip=None) -> RunResult:
        """Serve one request.

        Args:
            request: a :class:`ScenarioSpec` or its dict form.
            clip: pre-built source clip (internal batch path; must be the
                clip the request's source spec would build).

        Returns:
            :class:`RunResult` with the request's stream ledger.
        """
        scenario = self._as_scenario(request)
        if clip is None:
            clip = self._build_clip(scenario)
        runner, on_frame = self._build_runner(scenario, clip)
        outcome = runner.run(
            clip.frames, frame_seeds=scenario.frame_seeds, on_frame=on_frame
        )
        return RunResult(scenario=scenario, outcome=outcome)

    def run_batch(
        self,
        requests: Sequence | None = None,
        workers: int | None = None,
    ) -> BatchResult:
        """Serve many requests concurrently; results keep request order.

        Identical ``(source, n_frames, seed)`` triples share one rendered
        clip (read-only), and requests run on a thread pool.  Both are
        purely wall-clock optimizations: per-request results are
        bit-identical to sequential :meth:`run` calls.

        Args:
            requests: scenario specs (or dicts); defaults to the engine's
                spec-file scenarios.
            workers: thread count (defaults to the spec's ``workers``).

        Returns:
            :class:`BatchResult`; a failed request re-raises its error.
        """
        if requests is None:
            requests = self.scenarios
        scenarios = [self._as_scenario(r) for r in requests]
        if workers is None:
            workers = self.workers
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")

        clips: dict[str, Future] = {}
        clips_lock = Lock()

        def clip_for(scenario: ScenarioSpec):
            key = _source_key(scenario)
            if key is None:
                return self._build_clip(scenario)
            with clips_lock:
                fut = clips.get(key)
                build = fut is None
                if build:
                    fut = clips[key] = Future()
            if build:
                try:
                    fut.set_result(self._build_clip(scenario))
                except BaseException as exc:
                    fut.set_exception(exc)
            return fut.result()

        def serve(scenario: ScenarioSpec) -> RunResult:
            return self.run(scenario, clip=clip_for(scenario))

        start = time.perf_counter()
        if workers == 1 or len(scenarios) <= 1:
            results = [serve(s) for s in scenarios]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(serve, scenarios))
        wall = time.perf_counter() - start
        return BatchResult(results=results, workers=workers, wall_time_s=wall)
