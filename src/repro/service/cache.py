"""Content-addressed caching for the service layer: clips and results.

Serving many near-identical requests re-renders the same clips and re-runs
the same scenarios.  Both are pure functions of their specs, and specs
canonicalize exactly (``to_dict`` -> JSON, sort_keys), so a spec's hash is
a *content address*: equal specs — however they were constructed, round-
tripped, or loaded from disk — hash to the same key, and a key can never
collide across genuinely different workloads.

Two tiers, both capacity-bounded LRU with hit/miss/eviction accounting:

* **clip tier** — rendered :class:`~repro.stream.SyntheticClip` objects
  keyed by ``(source, n_frames, seed)``: everything that determines the
  pixels, bit for bit.  This generalizes the engine's previous ad-hoc
  per-batch clip sharing to *cross*-batch reuse.
* **result tier** — full :class:`~repro.service.RunResult` memoization
  keyed by ``(system, scenario)``: a repeated request is served without
  re-running anything, bit-identical to a fresh run.

Lookups are **single-flight**: concurrent requests for one key build the
value once and share it, which is what makes the cache safe under the
thread executor.  Cached values are shared objects — treat them as
read-only, exactly like the engine's results contract already requires.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from threading import Lock
from typing import Callable


def canonical_json(payload) -> str:
    """Serialize plain data to its one canonical JSON form.

    Raises:
        TypeError/ValueError: the payload contains values JSON cannot
            canonicalize (numpy scalars, sets, ...); callers treat that as
            "uncacheable", never as a hard failure.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_fingerprint(payload) -> str | None:
    """Content address of a spec-shaped payload (``None`` = uncacheable).

    The fingerprint is the SHA-256 of the canonical JSON, so it is stable
    across processes, ``to_dict``/``from_dict`` round-trips, and dict key
    order — the property the result tier's correctness rests on.
    """
    try:
        text = canonical_json(payload)
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class TierStats:
    """One cache tier's counters (also used as immutable-ish snapshots).

    Attributes:
        hits: lookups served from the cache (including waits on an
            in-flight build of the same key).
        misses: lookups that had to build the value (uncacheable keys
            count here too — they always build).
        evictions: entries dropped to stay within capacity.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "TierStats":
        return TierStats(self.hits, self.misses, self.evictions)

    def merge(self, other: "TierStats") -> None:
        """Fold another tier's counters in (e.g. a worker process's)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def __sub__(self, other: "TierStats") -> "TierStats":
        return TierStats(
            self.hits - other.hits,
            self.misses - other.misses,
            self.evictions - other.evictions,
        )

    def describe(self) -> str:
        return f"{self.hits} hit(s) / {self.misses} miss(es), {self.evictions} evicted"


class SpecCache:
    """A thread-safe, single-flight LRU keyed by spec fingerprints.

    Attributes:
        kind: what the entries are ("clip", "result"), for reports.
        capacity: maximum retained entries; 0 disables the tier (every
            lookup builds, nothing is retained).
        stats: cumulative :class:`TierStats` for this tier.
    """

    def __init__(self, kind: str, capacity: int):
        if capacity < 0:
            raise ValueError(f"cache.{kind}_capacity: must be >= 0, got {capacity}")
        self.kind = kind
        self.capacity = capacity
        self.stats = TierStats()
        self._entries: "OrderedDict[str, Future]" = OrderedDict()
        self._lock = Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_build(
        self,
        key: str | None,
        build: Callable[[], object],
        delta: TierStats | None = None,
    ):
        """Return the value for ``key``, building it at most once.

        Concurrent callers for one key share a single in-flight build
        (the losers block on the winner's future).  A failed build is
        dropped from the cache so later calls retry, and its exception
        propagates to every waiter.

        Args:
            key: content address (``None`` = uncacheable, always builds).
            build: zero-argument factory for the value.
            delta: optional per-caller counter, incremented alongside the
                tier's global ``stats`` *under the same lock*.  This is
                what lets concurrent batches sharing one cache each report
                exactly their own hits/misses — a global before/after
                snapshot would attribute every other batch's traffic too.
        """
        if key is None or self.capacity == 0:
            with self._lock:
                self.stats.misses += 1
                if delta is not None:
                    delta.misses += 1
            return build()
        is_owner = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                if delta is not None:
                    delta.hits += 1
                self._entries.move_to_end(key)
            else:
                self.stats.misses += 1
                if delta is not None:
                    delta.misses += 1
                is_owner = True
                entry = Future()
                self._entries[key] = entry
                self._evict_over_capacity(delta)
        if not is_owner:
            return entry.result()
        try:
            entry.set_result(build())
        except BaseException as exc:
            entry.set_exception(exc)
            with self._lock:
                if self._entries.get(key) is entry:
                    del self._entries[key]
            raise
        return entry.result()

    def peek(self, key: str | None, delta: TierStats | None = None):
        """Non-building lookup: ``(hit, value)``; counts a hit or a miss.

        Only *completed* entries count as hits — an in-flight build from
        another thread is treated as a miss so the caller never blocks.
        ``delta`` is the same per-caller counter :meth:`get_or_build`
        takes.
        """
        if key is None or self.capacity == 0:
            with self._lock:
                self.stats.misses += 1
                if delta is not None:
                    delta.misses += 1
            return False, None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.done() and entry.exception() is None:
                self.stats.hits += 1
                if delta is not None:
                    delta.hits += 1
                self._entries.move_to_end(key)
                return True, entry.result()
            self.stats.misses += 1
            if delta is not None:
                delta.misses += 1
            return False, None

    def put(self, key: str | None, value, delta: TierStats | None = None) -> None:
        """Insert a value built elsewhere (e.g. in a worker process)."""
        if key is None or self.capacity == 0:
            return
        entry = Future()
        entry.set_result(value)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._evict_over_capacity(delta)

    def record_shared_hit(self, delta: TierStats | None = None) -> None:
        """Count a lookup served by sharing another request's in-batch build
        (keeps executor paths' accounting consistent with single-flight)."""
        with self._lock:
            self.stats.hits += 1
            if delta is not None:
                delta.hits += 1

    def merge_stats(self, other: TierStats, delta: TierStats | None = None) -> None:
        """Fold external counters in (worker processes), under the lock."""
        with self._lock:
            self.stats.merge(other)
            if delta is not None:
                delta.merge(other)

    def _evict_over_capacity(self, delta: TierStats | None = None) -> None:
        # Caller holds the lock.
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if delta is not None:
                delta.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are history)."""
        with self._lock:
            self._entries.clear()


@dataclass
class CacheStats:
    """Per-tier counters, as surfaced on :class:`~repro.service.BatchResult`.

    ``BatchResult.cache`` holds the *delta* over one batch, so its numbers
    read as "this batch had N clip hits, M result hits, ...".
    """

    clips: TierStats
    results: TierStats

    @classmethod
    def zero(cls) -> "CacheStats":
        """A fresh all-zero counter pair, ready to collect one batch's delta."""
        return cls(clips=TierStats(), results=TierStats())

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            clips=self.clips - other.clips, results=self.results - other.results
        )

    def describe(self) -> str:
        return (
            f"clips {self.clips.describe()}; results {self.results.describe()}"
        )


class EngineCache:
    """The engine's two cache tiers behind one handle.

    Attributes:
        clips: rendered-clip tier (``(source, n_frames, seed)``-keyed).
        results: :class:`RunResult` memoization tier
            (``(system, scenario)``-keyed).

    Capacities bound memory, not correctness: clips are the big entries
    (tens of MB each at video resolutions), results without
    ``keep_outcomes`` are ledger-sized.  Capacity 0 disables a tier.
    """

    def __init__(self, clip_capacity: int = 8, result_capacity: int = 256):
        self.clips = SpecCache("clip", clip_capacity)
        self.results = SpecCache("result", result_capacity)

    @classmethod
    def disabled(cls) -> "EngineCache":
        """A cache that never retains anything (for measurement runs)."""
        return cls(clip_capacity=0, result_capacity=0)

    def stats(self) -> CacheStats:
        """A point-in-time snapshot of both tiers' cumulative counters."""
        return CacheStats(
            clips=self.clips.stats.snapshot(), results=self.results.stats.snapshot()
        )

    def clear(self) -> None:
        self.clips.clear()
        self.results.clear()


def clip_key(scenario) -> str | None:
    """Content address of a scenario's rendered clip.

    Everything that determines the pixels — the source component (name +
    params), the frame count, and the master seed — and nothing more, so
    scenarios differing only in policy/batching/naming share one clip.
    """
    return spec_fingerprint(
        [scenario.source.to_dict(), scenario.n_frames, scenario.seed]
    )


def result_key(system, scenario, system_fingerprint: str | None = ...) -> str | None:
    """Content address of a full run: the system and the whole scenario.

    Args:
        system: the :class:`SystemSpec` served.
        scenario: the request.
        system_fingerprint: precomputed ``spec_fingerprint(system.to_dict())``
            — the system never changes over an engine's lifetime, so
            callers on the per-request path pass it to avoid re-hashing
            the whole system spec every lookup.
    """
    if system_fingerprint is ...:
        system_fingerprint = spec_fingerprint(system.to_dict())
    if system_fingerprint is None:
        return None
    return spec_fingerprint(
        {"system": system_fingerprint, "scenario": scenario.to_dict()}
    )
