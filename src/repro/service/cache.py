"""Content-addressed caching for the service layer: clips and results.

Serving many near-identical requests re-renders the same clips and re-runs
the same scenarios.  Both are pure functions of their specs, and specs
canonicalize exactly (``to_dict`` -> JSON, sort_keys), so a spec's hash is
a *content address*: equal specs — however they were constructed, round-
tripped, or loaded from disk — hash to the same key, and a key can never
collide across genuinely different workloads.

Two in-memory tiers, both capacity-bounded LRU with hit/miss/eviction
accounting:

* **clip tier** — rendered :class:`~repro.stream.SyntheticClip` objects
  keyed by ``(source, n_frames, seed)``: everything that determines the
  pixels, bit for bit.  This generalizes the engine's previous ad-hoc
  per-batch clip sharing to *cross*-batch reuse.
* **result tier** — full :class:`~repro.service.RunResult` memoization
  keyed by ``(system, scenario)``: a repeated request is served without
  re-running anything, bit-identical to a fresh run.

Plus an optional third, persistent tier: hand :class:`EngineCache` an
:class:`~repro.store.ArtifactStore` and every in-memory miss falls
through to disk before building, every disk hit is promoted back into
memory, newly built values are written through, and LRU evictions spill
down instead of vanishing.  The keys are already content addresses, so
the disk tier is restart-safe by construction: a fresh process pointed
at a populated store serves bit-identical values without recomputing
anything (``disk_hits``/``disk_misses`` on :class:`TierStats` make that
observable).

Lookups are **single-flight**: concurrent requests for one key build the
value once and share it, which is what makes the cache safe under the
thread executor.  Cached values are shared objects — treat them as
read-only, exactly like the engine's results contract already requires.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from threading import Lock
from typing import TYPE_CHECKING, Callable

from ..store.artifact import MISS as _STORE_MISS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store.artifact import ArtifactStore


def canonical_json(payload) -> str:
    """Serialize plain data to its one canonical JSON form.

    Raises:
        TypeError/ValueError: the payload contains values JSON cannot
            canonicalize (numpy scalars, sets, ...); callers treat that as
            "uncacheable", never as a hard failure.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_fingerprint(payload) -> str | None:
    """Content address of a spec-shaped payload (``None`` = uncacheable).

    The fingerprint is the SHA-256 of the canonical JSON, so it is stable
    across processes, ``to_dict``/``from_dict`` round-trips, and dict key
    order — the property the result tier's correctness rests on.
    """
    try:
        text = canonical_json(payload)
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class TierStats:
    """One cache tier's counters (also used as immutable-ish snapshots).

    Attributes:
        hits: lookups served from memory (including waits on an
            in-flight build of the same key).
        misses: lookups that left memory empty-handed (uncacheable keys
            count here too — they always build).
        evictions: entries dropped from memory to stay within capacity
            (spilled to the disk tier first when a store is attached).
        disk_hits: memory misses served from the disk tier instead of
            building (always 0 without a store).
        disk_misses: memory misses that fell through the disk tier too
            and really built the value (always 0 without a store — with
            one, ``disk_misses == 0`` over a window proves nothing was
            recomputed, the warm-restart invariant).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "TierStats":
        return TierStats(
            self.hits, self.misses, self.evictions, self.disk_hits, self.disk_misses
        )

    def merge(self, other: "TierStats") -> None:
        """Fold another tier's counters in (e.g. a worker process's)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.disk_hits += other.disk_hits
        self.disk_misses += other.disk_misses

    def __sub__(self, other: "TierStats") -> "TierStats":
        return TierStats(
            self.hits - other.hits,
            self.misses - other.misses,
            self.evictions - other.evictions,
            self.disk_hits - other.disk_hits,
            self.disk_misses - other.disk_misses,
        )

    def describe(self) -> str:
        text = f"{self.hits} hit(s) / {self.misses} miss(es), {self.evictions} evicted"
        if self.disk_hits or self.disk_misses:
            text += f" (disk: {self.disk_hits} hit(s) / {self.disk_misses} miss(es))"
        return text


def clip_nbytes(value) -> int:
    """Size of a cached clip: its frame buffers (``SyntheticClip.nbytes``)."""
    return int(getattr(value, "nbytes", 0))


def pickled_nbytes(value) -> int:
    """Size of a cached result: its serialized form (0 if unpicklable)."""
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - sizes are gauges, never errors
        return 0


class SpecCache:
    """A thread-safe, single-flight LRU keyed by spec fingerprints.

    Attributes:
        kind: what the entries are ("clip", "result"), for reports; also
            the namespace the disk tier files this cache's objects under.
        capacity: maximum retained in-memory entries; 0 disables the
            whole tier — every lookup builds, nothing is retained and the
            disk tier (if any) is neither read nor written, so a disabled
            cache really recomputes (the measurement-run contract).
        stats: cumulative :class:`TierStats` for this tier.
        store: optional :class:`~repro.store.ArtifactStore` third tier —
            misses fall through to it, hits promote from it, builds write
            through to it, and evictions spill down into it.
        sizer: optional ``value -> bytes`` gauge; when set, the tier
            tracks per-entry content sizes (surfaced by :meth:`sizes`).
    """

    def __init__(
        self,
        kind: str,
        capacity: int,
        store: "ArtifactStore | None" = None,
        sizer: Callable[[object], int] | None = None,
    ):
        if capacity < 0:
            raise ValueError(f"cache.{kind}_capacity: must be >= 0, got {capacity}")
        self.kind = kind
        self.capacity = capacity
        self.stats = TierStats()
        self.store = store
        self.sizer = sizer
        self._entries: "OrderedDict[str, Future]" = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._lock = Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def sizes(self) -> tuple[int, int]:
        """``(entries, content_bytes)`` currently held in memory.

        Bytes are per the tier's ``sizer`` (frame-buffer bytes for clips,
        pickled bytes for results); entries still being built count 0
        until they land.
        """
        with self._lock:
            return len(self._entries), sum(self._sizes.values())

    def get_or_build(
        self,
        key: str | None,
        build: Callable[[], object],
        delta: TierStats | None = None,
    ):
        """Return the value for ``key``, building it at most once.

        Concurrent callers for one key share a single in-flight build
        (the losers block on the winner's future).  A failed build is
        dropped from the cache so later calls retry, and its exception
        propagates to every waiter.

        Args:
            key: content address (``None`` = uncacheable, always builds).
            build: zero-argument factory for the value.
            delta: optional per-caller counter, incremented alongside the
                tier's global ``stats`` *under the same lock*.  This is
                what lets concurrent batches sharing one cache each report
                exactly their own hits/misses — a global before/after
                snapshot would attribute every other batch's traffic too.
        """
        if key is None or self.capacity == 0:
            with self._lock:
                self.stats.misses += 1
                if delta is not None:
                    delta.misses += 1
            return build()
        is_owner = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                if delta is not None:
                    delta.hits += 1
                self._entries.move_to_end(key)
            else:
                self.stats.misses += 1
                if delta is not None:
                    delta.misses += 1
                is_owner = True
                entry = Future()
                self._entries[key] = entry
                spilled = self._evict_over_capacity_locked(delta)
        if not is_owner:
            return entry.result()
        self._spill(spilled)
        # Owner path: the disk tier answers before anything recomputes.
        value = self._load_from_store(key, delta)
        built = value is _STORE_MISS
        if built:
            try:
                value = build()
            except BaseException as exc:
                entry.set_exception(exc)
                with self._lock:
                    if self._entries.get(key) is entry:
                        del self._entries[key]
                raise
        entry.set_result(value)
        self._record_size(key, entry, value)
        if built and self.store is not None:
            # Write-through: everything ever built lands on disk, which is
            # what makes the next process's cold start a pure-hit replay
            # (and makes eviction spill a mere dedup check).
            self.store.put(self.kind, key, value)
        return entry.result()

    def peek(self, key: str | None, delta: TierStats | None = None):
        """Non-building lookup: ``(hit, value)``; counts a hit or a miss.

        Only *completed* entries count as memory hits — an in-flight build
        from another thread is treated as a miss so the caller never
        blocks.  A memory miss still falls through to the disk tier (a
        disk hit promotes the value and returns it), so restart-warm
        streaming replays never depend on RAM state.  ``delta`` is the
        same per-caller counter :meth:`get_or_build` takes.
        """
        if key is None or self.capacity == 0:
            with self._lock:
                self.stats.misses += 1
                if delta is not None:
                    delta.misses += 1
            return False, None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.done() and entry.exception() is None:
                self.stats.hits += 1
                if delta is not None:
                    delta.hits += 1
                self._entries.move_to_end(key)
                return True, entry.result()
            self.stats.misses += 1
            if delta is not None:
                delta.misses += 1
        if self.store is not None:
            value = self._load_from_store(key, delta)
            if value is not _STORE_MISS:
                self._insert(key, value, delta, spill=False)
                return True, value
        return False, None

    def put(self, key: str | None, value, delta: TierStats | None = None) -> None:
        """Insert a value built elsewhere (e.g. in a worker process).

        Write-through: with a store attached the value also lands on disk
        (deduplicated by content address if it is already there).
        """
        if key is None or self.capacity == 0:
            return
        self._insert(key, value, delta, spill=True)

    def get_cached(self, key: str | None, promote: bool = False):
        """Quiet lookup: the value if already available, else ``None``.

        Counts nothing — this is for transport/introspection paths (e.g.
        the process executor deciding whether it *can* ship a rendered
        clip) that must not distort per-batch accounting.  ``promote``
        additionally consults the disk tier and promotes a hit into
        memory (the store keeps its own counters either way).
        """
        if key is None or self.capacity == 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.done() and entry.exception() is None:
                return entry.result()
        if promote and self.store is not None:
            value = self.store.load(self.kind, key)
            if value is not _STORE_MISS:
                self._insert(key, value, spill=False)
                return value
        return None

    def _insert(
        self,
        key: str,
        value,
        delta: TierStats | None = None,
        spill: bool = True,
    ) -> None:
        size = self.sizer(value) if self.sizer is not None else None
        entry = Future()
        entry.set_result(value)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if size is not None:
                self._sizes[key] = size
            spilled = self._evict_over_capacity_locked(delta)
        self._spill(spilled)
        if spill and self.store is not None:
            self.store.put(self.kind, key, value)

    def _load_from_store(self, key: str, delta: TierStats | None):
        """Disk-tier lookup with hit/miss accounting (``_STORE_MISS`` = miss)."""
        if self.store is None:
            return _STORE_MISS
        value = self.store.load(self.kind, key)
        with self._lock:
            if value is _STORE_MISS:
                self.stats.disk_misses += 1
                if delta is not None:
                    delta.disk_misses += 1
            else:
                self.stats.disk_hits += 1
                if delta is not None:
                    delta.disk_hits += 1
        return value

    def _record_size(self, key: str, entry: Future, value) -> None:
        if self.sizer is None:
            return
        size = self.sizer(value)
        with self._lock:
            if self._entries.get(key) is entry:
                self._sizes[key] = size

    def record_shared_hit(self, delta: TierStats | None = None) -> None:
        """Count a lookup served by sharing another request's in-batch build
        (keeps executor paths' accounting consistent with single-flight)."""
        with self._lock:
            self.stats.hits += 1
            if delta is not None:
                delta.hits += 1

    def merge_stats(self, other: TierStats, delta: TierStats | None = None) -> None:
        """Fold external counters in (worker processes), under the lock."""
        with self._lock:
            self.stats.merge(other)
            if delta is not None:
                delta.merge(other)

    def _evict_over_capacity_locked(self, delta: TierStats | None = None) -> list:
        # Caller holds the lock (the *_locked suffix is the contract the
        # lock-discipline lint rule keys on).  Returns the evicted
        # (key, value) pairs
        # that must spill to the disk tier — spilling does pickle + file
        # I/O, so it happens only after the lock is released.
        spilled: list = []
        while len(self._entries) > self.capacity:
            key, entry = self._entries.popitem(last=False)
            self._sizes.pop(key, None)
            self.stats.evictions += 1
            if delta is not None:
                delta.evictions += 1
            if (
                self.store is not None
                and entry.done()
                and entry.exception() is None
            ):
                spilled.append((key, entry.result()))
        return spilled

    def _spill(self, spilled: list) -> None:
        # store.put deduplicates by content address, so re-spilling a
        # value that was already written through costs one contains().
        for key, value in spilled:
            self.store.put(self.kind, key, value)

    def clear(self) -> None:
        """Drop every in-memory entry (counters are kept — they are
        history; the disk tier is untouched — ``repro cache clear`` owns
        that)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()


@dataclass
class CacheStats:
    """Per-tier counters, as surfaced on :class:`~repro.service.BatchResult`.

    ``BatchResult.cache`` holds the *delta* over one batch, so its numbers
    read as "this batch had N clip hits, M result hits, ...".
    """

    clips: TierStats
    results: TierStats

    @classmethod
    def zero(cls) -> "CacheStats":
        """A fresh all-zero counter pair, ready to collect one batch's delta."""
        return cls(clips=TierStats(), results=TierStats())

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            clips=self.clips - other.clips, results=self.results - other.results
        )

    def describe(self) -> str:
        return (
            f"clips {self.clips.describe()}; results {self.results.describe()}"
        )


class EngineCache:
    """The engine's two cache tiers behind one handle.

    Attributes:
        clips: rendered-clip tier (``(source, n_frames, seed)``-keyed).
        results: :class:`RunResult` memoization tier
            (``(system, scenario)``-keyed).

    Capacities bound memory, not correctness: clips are the big entries
    (tens of MB each at video resolutions), results without
    ``keep_outcomes`` are ledger-sized.  Capacity 0 disables a tier.

    Pass ``store`` to add the persistent third tier behind both: misses
    fall through to it, disk hits promote into memory, builds write
    through, evictions spill down.  Warm state then survives process
    restarts — the whole point of ``repro serve --store-dir``.
    """

    def __init__(
        self,
        clip_capacity: int = 8,
        result_capacity: int = 256,
        store: "ArtifactStore | None" = None,
    ):
        self.store = store
        self.clips = SpecCache("clip", clip_capacity, store=store, sizer=clip_nbytes)
        self.results = SpecCache(
            "result", result_capacity, store=store, sizer=pickled_nbytes
        )

    @classmethod
    def disabled(cls) -> "EngineCache":
        """A cache that never retains anything (for measurement runs)."""
        return cls(clip_capacity=0, result_capacity=0)

    def stats(self) -> CacheStats:
        """A point-in-time snapshot of both tiers' cumulative counters."""
        return CacheStats(
            clips=self.clips.stats.snapshot(), results=self.results.stats.snapshot()
        )

    def sizes(self) -> dict:
        """Per-tier in-memory occupancy: ``{tier: {"entries", "bytes"}}``.

        Bytes are content sizes (frame buffers for clips, pickled size
        for results), not Python object overhead — the numbers a capacity
        decision actually needs.
        """
        out: dict = {}
        for name, tier in (("clips", self.clips), ("results", self.results)):
            entries, content = tier.sizes()
            out[name] = {"entries": entries, "bytes": content}
        return out

    def clear(self) -> None:
        self.clips.clear()
        self.results.clear()


def clip_key(scenario) -> str | None:
    """Content address of a scenario's rendered clip.

    Everything that determines the pixels — the source component (name +
    params), the frame count, and the master seed — and nothing more, so
    scenarios differing only in policy/batching/naming share one clip.
    """
    return spec_fingerprint(
        [scenario.source.to_dict(), scenario.n_frames, scenario.seed]
    )


def result_key(system, scenario, system_fingerprint: str | None = ...) -> str | None:
    """Content address of a full run: the system and the whole scenario.

    Args:
        system: the :class:`SystemSpec` served.
        scenario: the request.
        system_fingerprint: precomputed ``spec_fingerprint(system.to_dict())``
            — the system never changes over an engine's lifetime, so
            callers on the per-request path pass it to avoid re-hashing
            the whole system spec every lookup.
    """
    if system_fingerprint is ...:
        system_fingerprint = spec_fingerprint(system.to_dict())
    if system_fingerprint is None:
        return None
    return spec_fingerprint(
        {"system": system_fingerprint, "scenario": scenario.to_dict()}
    )
