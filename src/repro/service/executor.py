"""Pluggable batch executors: serial, thread-pool, and process-pool.

:meth:`Engine.run_batch` delegates *how* a batch of scenarios runs to an
:class:`Executor`.  All three implementations produce bit-identical
results — determinism is the engine's contract, seeded entirely by the
specs — and differ only in wall-clock behavior:

* :class:`SerialExecutor` — the reference loop; zero overhead, zero
  concurrency.  What every other executor is asserted against.
* :class:`ThreadExecutor` — one thread pool, shared address space, shared
  engine cache.  Wins when requests overlap I/O or release the GIL;
  NumPy-heavy pipeline work largely does not, which caps its speedup.
* :class:`ProcessExecutor` — a spawn-safe process pool for the CPU-bound
  case.  Scenarios are **chunked by clip key** so each worker renders a
  shared clip once, and the work units it ships are plain picklable specs
  (:class:`~repro.service.SystemSpec` + :class:`~repro.service.ScenarioSpec`),
  rebuilt into a per-process engine on the other side.  Requires every
  component named by the spec to be registered at import time in the
  worker (i.e. registered by :mod:`repro.service.components` or another
  imported module) — spawn does not inherit runtime registrations.

  Clips the parent already holds (memory tier, or promoted from the disk
  store) ride along with the work units so workers skip rendering: by
  default over one ``multiprocessing.shared_memory`` segment per distinct
  clip that every worker maps (:mod:`repro.store.shm`), falling back to
  plain pickling for ragged clips; ``clip_transport`` / the
  ``REPRO_CLIP_TRANSPORT`` env var select ``"shm"``, ``"pickle"``, or
  ``"none"`` (render in the worker, the pre-store behavior).  When the
  engine cache has a disk store attached, workers open the same store
  root, so their renders and results persist too.

Executors are selected by name (``EXECUTOR_NAMES``) via
``ServiceSpec.executor`` or ``repro run --executor``; pass a constructed
instance to :meth:`Engine.run_batch` to reuse a warm pool across batches
(worker spawn costs are paid once per pool, not per batch).
"""

from __future__ import annotations

import os
import sys
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from threading import Lock
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..store.shm import SharedClipLease
    from .cache import CacheStats, EngineCache
    from .engine import Engine, RunResult
    from .spec import ScenarioSpec, SystemSpec

#: Executor names a spec/CLI can select, in documentation order.
EXECUTOR_NAMES = ("serial", "thread", "process")

#: How :class:`ProcessExecutor` ships parent-held clips to its workers.
CLIP_TRANSPORTS = ("shm", "pickle", "none")


class WorkUnitRetryError(RuntimeError):
    """A work unit's retry budget is exhausted: its worker kept dying.

    Raised by :class:`ProcessExecutor` when re-dispatching after pool
    respawns has failed ``attempts`` times for the same chunk of work
    units.  Deterministic failures inside a unit (exceptions) propagate
    as themselves — only hard worker deaths (``BrokenProcessPool``, a
    chunk deadline) are retried, so reaching this error means the
    environment, not the spec, is broken.

    Attributes:
        labels: the affected work units' scenario labels.
        attempts: how many times the chunk was dispatched.
    """

    def __init__(self, labels, attempts: int):
        self.labels = tuple(labels)
        self.attempts = attempts
        units = ", ".join(repr(label) for label in self.labels)
        super().__init__(
            f"work unit(s) {units}: worker died on all {attempts} "
            f"attempt(s); retry budget exhausted"
        )


class Executor:
    """How a batch of scenarios is driven through an engine.

    Subclasses implement :meth:`execute`; pools (if any) persist across
    calls until :meth:`close`, so a long-lived executor amortizes its
    startup cost over every batch it serves.  Executors are context
    managers: ``with ProcessExecutor(4) as pool: engine.run_batch(...)``.
    """

    #: Registry name; also what ``BatchResult.executor`` reports.
    name: str = "?"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def execute(
        self,
        engine: "Engine",
        scenarios: Sequence["ScenarioSpec"],
        cache_delta: "CacheStats | None" = None,
    ) -> list["RunResult"]:
        """Serve every scenario, returning results in request order.

        ``cache_delta`` (when given) collects exactly this call's cache
        traffic — executors must thread it into every lookup they make on
        the engine's cache, so one warm cache can serve concurrent
        ``execute`` calls and still attribute hits/misses per batch.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources; the executor is done serving."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """The reference: one request after another, in the calling thread."""

    name = "serial"

    def execute(self, engine, scenarios, cache_delta=None):
        return [engine.run(s, cache_delta=cache_delta) for s in scenarios]


class ThreadExecutor(Executor):
    """The shared-memory pool: PR 2's ``run_batch`` behavior.

    Threads share the engine's cache directly, so identical in-flight
    requests single-flight through it; the pool persists across
    :meth:`execute` calls, and concurrent ``execute`` calls (a serving
    daemon's worker threads) share it safely.
    """

    name = "thread"

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = Lock()

    def execute(self, engine, scenarios, cache_delta=None):
        if self.workers == 1 or len(scenarios) <= 1:
            return [engine.run(s, cache_delta=cache_delta) for s in scenarios]
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            pool = self._pool
        return list(
            pool.map(lambda s: engine.run(s, cache_delta=cache_delta), scenarios)
        )

    def close(self):
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


def _chunk_by_clip(
    scenarios: Sequence[tuple[int, "ScenarioSpec"]], n_chunks: int
) -> list[list[tuple[int, "ScenarioSpec"]]]:
    """Pack indexed scenarios into ``<= n_chunks`` clip-coherent chunks.

    Scenarios sharing a clip key gravitate into one chunk (their worker
    renders the clip once), but a group larger than an even worker share
    is split — a homogeneous fleet must not serialize onto one worker
    (each worker that gets a piece renders the clip once; its memoized
    engine amortizes that across the piece).  Pieces are distributed
    greedily, largest first, onto the least-loaded chunk.  Uncacheable
    scenarios (``clip_key`` is None) each form their own group — nothing
    can share with them.
    """
    from .cache import clip_key

    groups: dict[object, list[tuple[int, "ScenarioSpec"]]] = {}
    for index, scenario in scenarios:
        key = clip_key(scenario)
        groups.setdefault(key if key is not None else ("solo", index), []).append(
            (index, scenario)
        )
    # An even share per chunk; any group above it splits into share-sized
    # pieces so parallelism never collapses to the distinct-clip count.
    share = -(-len(scenarios) // n_chunks)  # ceil
    pieces: list[list[tuple[int, "ScenarioSpec"]]] = []
    for group in groups.values():
        pieces.extend(group[i : i + share] for i in range(0, len(group), share))
    chunks: list[list[tuple[int, "ScenarioSpec"]]] = [
        [] for _ in range(min(n_chunks, len(pieces)))
    ]
    for piece in sorted(pieces, key=len, reverse=True):
        min(chunks, key=len).extend(piece)
    return [c for c in chunks if c]


#: Worker-side engines, memoized per (system spec, cache policy) so a
#: long-lived worker keeps its result memos warm across the chunks it
#: serves.  LRU-bounded: a worker sweeping many distinct systems must
#: not pin every old engine forever.
_WORKER_ENGINES: "OrderedDict[tuple, Engine]" = OrderedDict()
_WORKER_ENGINE_LIMIT = 4

#: One shared cache per cache policy (capacities + store root), across
#: every engine in this worker process.  Cache keys already fold the
#: system fingerprint (results) or are system-agnostic by design (clips),
#: so sharing is safe — and it is what lets a multi-system sweep over one
#: workload reuse the rendered clip instead of re-rendering it per system
#: (the parent-side engines share one EngineCache the same way).
#: Outlives engine eviction; each tier stays LRU-bounded by its own
#: capacity.
_WORKER_CACHES: dict[tuple, "EngineCache"] = {}


def _run_chunk(
    system: "SystemSpec",
    items: list[tuple[int, "ScenarioSpec"]],
    cache_capacities: tuple[int, int],
    profile: bool = False,
    clips: dict | None = None,
    store_dir: str | None = None,
    fault_plan: dict | None = None,
):
    """Worker entry point: serve one chunk against a per-process engine.

    Module-level (picklable by reference) and lazy-importing, as the
    spawn start method requires.  The worker engine mirrors the parent's
    cache capacities — a parent that disabled caching gets a worker that
    really recomputes — sharing one per-process cache across every
    system it serves (clip reuse spans systems, exactly like the parent
    side), and the parent's ``profile`` flag, so profiled
    batches come back with phase breakdowns (profiles are plain data and
    pickle with the results).  Returns the indexed results plus the
    chunk's clip-tier stats delta, so the parent's accounting covers work
    done here.

    ``clips`` maps raw clip keys to parent-shipped payloads —
    ``("shm", SharedClipHandle)`` or ``("pickle", SyntheticClip)`` —
    seeded into the worker's clip tier before serving, so the worker
    reuses the parent's rendered frames instead of rebuilding them (a
    vanished shared segment just falls back to rendering).  ``store_dir``
    points the worker at the parent's on-disk store so its own renders
    and results persist too.

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan` dict) rebuilds the
    parent's fault injector worker-side; with none shipped, the ambient
    ``REPRO_FAULT_PLAN`` environment (inherited across spawn) still
    applies.  A ``worker-crash`` fault at the ``worker.run`` site exits
    this process hard (``os._exit``) — the parent observes a broken pool
    and re-dispatches.
    """
    from ..faults.injector import FaultInjector
    from ..faults.runtime import default_injector
    from .cache import EngineCache, spec_fingerprint
    from .engine import Engine

    if fault_plan is not None:
        injector = FaultInjector.from_dict(fault_plan)
    else:
        injector = default_injector()

    cache_key = (cache_capacities, store_dir)
    clip_capacity, result_capacity = cache_capacities
    cache = _WORKER_CACHES.get(cache_key)
    if cache is None:
        store = None
        if store_dir is not None:
            from ..store.artifact import ArtifactStore

            store = ArtifactStore(store_dir)
        cache = _WORKER_CACHES[cache_key] = EngineCache(
            clip_capacity=clip_capacity,
            result_capacity=result_capacity,
            store=store,
        )
    key = (spec_fingerprint(system.to_dict()) or repr(system), cache_key)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        engine = _WORKER_ENGINES[key] = Engine(system, cache=cache)
    _WORKER_ENGINES.move_to_end(key)
    while len(_WORKER_ENGINES) > _WORKER_ENGINE_LIMIT:
        _WORKER_ENGINES.popitem(last=False)
    engine.profile = profile
    if clips:
        from ..store.shm import ClipSegmentGoneError, attach_clip

        unit_ids = [scenario.name or f"scenario[{index}]" for index, scenario in items]
        for raw_key, (transport, payload) in clips.items():
            epoch_key = engine._epoch_key(raw_key)
            if engine.cache.clips.get_cached(epoch_key) is not None:
                continue
            if transport == "shm":
                try:
                    payload = attach_clip(payload, faults=injector)
                except ClipSegmentGoneError:
                    # The designed fallback signal: the parent tore the
                    # batch down (or a fault plan said so).  Render it
                    # ourselves; nothing is wrong enough to log.
                    continue
                except (OSError, ValueError) as exc:
                    # Any *other* attach failure is survivable the same
                    # way but unexpected — say so, naming the work units
                    # that will pay the re-render.
                    print(
                        f"[repro-worker pid={os.getpid()}] shm attach of "
                        f"clip for work unit(s) {unit_ids} failed "
                        f"({type(exc).__name__}: {exc}); rendering locally",
                        file=sys.stderr,
                    )
                    continue
            engine.cache.clips.put(epoch_key, payload)
    before = engine.cache.clips.stats.snapshot()
    results = []
    for index, scenario in items:
        if injector is not None:
            spec = injector.fire("worker.run")
            if spec is not None and spec.kind == "worker-crash":
                # A hard death, not an exception: the pool must see a
                # vanished process, exactly like an OOM kill or segfault.
                os._exit(17)
        results.append((index, engine.run(scenario)))
    return results, engine.cache.clips.stats - before


class ProcessExecutor(Executor):
    """The multi-core pool: true parallelism for GIL-bound pipeline work.

    Spawn-safe by construction — work units are picklable specs, the
    worker function is module-level, and each worker rebuilds its engine
    from the spec (memoized per process).  The pool spawns lazily on
    first use and persists until :meth:`close`, so batch N+1 never pays
    interpreter startup again.

    The parent serves result-cache hits locally and dispatches only the
    deduplicated misses; worker clip-tier stats are folded back into the
    engine's cache accounting.

    Clips the parent already holds ship with the work units instead of
    being re-rendered in the worker.  ``clip_transport`` picks how:

    * ``"shm"`` (default) — one shared-memory segment per distinct clip;
      every worker maps the same pages, refcounted by a
      :class:`~repro.store.SharedClipLease` so the segment is unlinked
      exactly when the last dispatched chunk completes (or on any
      failure path).  Ragged clips fall back to pickling per clip.
    * ``"pickle"`` — the clip is pickled into each work unit (one copy
      per chunk); the comparison baseline ``bench_store`` races.
    * ``"none"`` — ship nothing; workers render from specs (the
      pre-store behavior).

    The default comes from ``REPRO_CLIP_TRANSPORT`` when set.

    **Self-healing**: a dead worker (OOM kill, segfault, an injected
    ``worker-crash`` fault) breaks the whole pool —
    :class:`BrokenProcessPool` — and used to kill the whole batch.  Now
    the executor respawns the pool and re-dispatches the affected work
    units, up to ``max_unit_retries`` re-dispatches per unit.  Replay is
    safe by construction: work units are pure picklable specs, so a
    retried unit's result is bit-identical to an undisturbed run.
    Exhausting the budget raises :class:`WorkUnitRetryError` naming the
    units; deterministic in-unit exceptions are never retried (they
    would fail identically).  ``chunk_timeout_s`` (optional) treats a
    chunk exceeding the deadline as a dead worker too — a sentinel
    against wedged (not just dead) processes; the abandoned pool is shut
    down without waiting.  :meth:`resilience_stats` reports respawns and
    re-dispatched units (surfaced by the daemon's ``stats``).
    """

    name = "process"

    def __init__(
        self,
        workers: int = 1,
        clip_transport: str | None = None,
        max_unit_retries: int = 2,
        chunk_timeout_s: float | None = None,
    ):
        super().__init__(workers)
        if clip_transport is None:
            clip_transport = os.environ.get("REPRO_CLIP_TRANSPORT") or "shm"
        if clip_transport not in CLIP_TRANSPORTS:
            raise ValueError(
                f"clip_transport: unknown transport {clip_transport!r}; "
                f"known transports: {list(CLIP_TRANSPORTS)}"
            )
        if max_unit_retries < 0:
            raise ValueError(
                f"max_unit_retries must be >= 0, got {max_unit_retries}"
            )
        if chunk_timeout_s is not None and chunk_timeout_s <= 0:
            raise ValueError(
                f"chunk_timeout_s must be > 0 (or None), got {chunk_timeout_s}"
            )
        self.clip_transport = clip_transport
        self.max_unit_retries = max_unit_retries
        self.chunk_timeout_s = chunk_timeout_s
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = Lock()
        self._resilience = {"respawns": 0, "redispatched_units": 0}

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # Locked: a serving daemon's worker threads may race the first
        # execute() call, and two lazily-created pools would leak one.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=get_context("spawn")
                )
            return self._pool

    def _respawn_pool(self, broken: ProcessPoolExecutor) -> None:
        """Retire a broken pool; the next :meth:`_ensure_pool` respawns.

        Guarded against concurrent ``execute`` calls (daemon worker
        threads share one executor): only the call whose pool is still
        the current one swaps it out — a second caller observing the
        same broken pool must not tear down the replacement.
        """
        with self._pool_lock:
            if self._pool is broken:
                self._pool = None
            self._resilience["respawns"] += 1
        try:
            broken.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - a broken pool may refuse cleanup
            pass

    def resilience_stats(self) -> dict:
        """Cumulative self-healing counters: respawns, re-dispatched units."""
        with self._pool_lock:
            return dict(self._resilience)

    def execute(self, engine, scenarios, cache_delta=None):
        results = [None] * len(scenarios)
        result_delta = None if cache_delta is None else cache_delta.results
        # Parent-side memoization: serve hits here, dispatch each distinct
        # miss exactly once (duplicate requests share one work unit and
        # count as hits, matching the single-flight accounting of the
        # in-process executors).  With the result tier disabled, nothing
        # may be deduplicated either — a disabled cache means "recompute
        # everything", exactly like serial/thread.
        # Profiled runs never memoize (the engine's own contract): every
        # request must really run so its phase breakdown exists.
        memoize = engine.cache.results.capacity > 0 and not engine.profile
        keys = [engine.result_key_for(s) if memoize else None for s in scenarios]
        pending: dict[object, list[int]] = {}
        for index, scenario in enumerate(scenarios):
            key = keys[index] if keys[index] is not None else ("solo", index)
            duplicates = pending.get(key)
            if duplicates is not None:
                engine.cache.results.record_shared_hit(result_delta)
                duplicates.append(index)
                continue
            if engine.profile:
                # Profiled requests leave the result tier untouched (the
                # engine contract): no lookup, no phantom miss accounting —
                # BatchResult.cache must not depend on the executor.
                pending[key] = [index]
                continue
            hit, value = engine.cache.results.peek(keys[index], delta=result_delta)
            if hit:
                results[index] = value
            else:
                pending[key] = [index]

        unique = [(indices[0], scenarios[indices[0]]) for indices in pending.values()]
        if unique:
            capacities = (
                engine.cache.clips.capacity,
                engine.cache.results.capacity,
            )
            store = getattr(engine.cache, "store", None)
            store_dir = None if store is None else str(store.root)
            faults = getattr(engine, "faults", None)
            fault_plan = None if faults is None else faults.plan.to_dict()
            # One lease per distinct shared clip, acquired once per chunk
            # it rides in and released as that chunk's future completes;
            # the finally-destroy covers every failure path, so no
            # /dev/shm segment can outlive this call.
            leases: "dict[str, SharedClipLease]" = {}
            # Self-healing dispatch: each round submits the outstanding
            # chunks, collects results, and turns hard worker deaths
            # (BrokenProcessPool / an expired chunk deadline) into a pool
            # respawn plus re-dispatch of exactly the affected chunks.
            # Attempts are bounded per chunk (== per work unit: a chunk's
            # composition never changes), so a fault that kills every
            # attempt surfaces as a typed WorkUnitRetryError.  In-unit
            # exceptions propagate immediately: deterministic work would
            # fail identically on replay.
            rounds = [(chunk, 1) for chunk in _chunk_by_clip(unique, self.workers)]
            try:
                while rounds:
                    pool = self._ensure_pool()
                    dispatched: list = []
                    failed: list = []
                    pool_broken = False
                    for chunk, attempts in rounds:
                        clips, chunk_leases = self._collect_clips(
                            engine, chunk, leases
                        )
                        try:
                            future = pool.submit(
                                _run_chunk,
                                engine.spec,
                                chunk,
                                capacities,
                                engine.profile,
                                clips,
                                store_dir,
                                fault_plan,
                            )
                        except (BrokenProcessPool, RuntimeError):
                            # The pool died under a previous submit (or
                            # was broken on arrival): everything not yet
                            # dispatched this round retries next round.
                            for lease in chunk_leases:
                                lease.release()
                            pool_broken = True
                            failed.append((chunk, attempts))
                            continue
                        dispatched.append((future, chunk, chunk_leases, attempts))
                    for future, chunk, chunk_leases, attempts in dispatched:
                        try:
                            try:
                                chunk_results, clip_stats = future.result(
                                    timeout=self.chunk_timeout_s
                                )
                            except (BrokenProcessPool, FutureTimeoutError):
                                pool_broken = True
                                failed.append((chunk, attempts))
                                continue
                        finally:
                            for lease in chunk_leases:
                                lease.release()
                        engine.cache.clips.merge_stats(
                            clip_stats,
                            delta=None if cache_delta is None else cache_delta.clips,
                        )
                        for index, result in chunk_results:
                            key = (
                                keys[index]
                                if keys[index] is not None
                                else ("solo", index)
                            )
                            engine.cache.results.put(keys[index], result)
                            for duplicate in pending[key]:
                                results[duplicate] = result
                    if pool_broken:
                        self._respawn_pool(pool)
                    rounds = []
                    for chunk, attempts in failed:
                        if attempts > self.max_unit_retries:
                            raise WorkUnitRetryError(
                                [
                                    scenario.name or f"scenario[{index}]"
                                    for index, scenario in chunk
                                ],
                                attempts,
                            )
                        with self._pool_lock:
                            self._resilience["redispatched_units"] += len(chunk)
                        rounds.append((chunk, attempts + 1))
            finally:
                for lease in leases.values():
                    lease.destroy()
        return results

    def _collect_clips(self, engine, chunk, leases):
        """Gather the clips this chunk needs that the parent already has.

        Returns ``(clips, chunk_leases)``: a raw-clip-key -> payload dict
        for :func:`_run_chunk` (``None`` when there is nothing to ship)
        plus the shared-memory leases acquired on the chunk's behalf.
        Only clips already available to the parent — in the memory tier,
        or promoted from the disk store — are shipped; anything else the
        worker renders itself, exactly as before.
        """
        if self.clip_transport == "none":
            return None, []
        from .cache import clip_key

        clips: dict = {}
        chunk_leases: list = []
        for _, scenario in chunk:
            raw_key = clip_key(scenario)
            if raw_key is None or raw_key in clips:
                continue
            clip = engine.cache.clips.get_cached(
                engine._epoch_key(raw_key), promote=True
            )
            if clip is None:
                continue
            if self.clip_transport == "shm":
                lease = leases.get(raw_key)
                if lease is not None and not lease.alive:
                    # A previous dispatch round drained this lease to
                    # zero when its chunk failed; the segment is already
                    # unlinked, so a re-dispatch needs a fresh one.
                    del leases[raw_key]
                    lease = None
                if lease is None:
                    from ..store.shm import share_clip

                    lease = share_clip(
                        clip, faults=getattr(engine, "faults", None)
                    )
                    if lease is not None:
                        leases[raw_key] = lease
                if lease is not None:
                    clips[raw_key] = ("shm", lease.handle)
                    chunk_leases.append(lease.acquire())
                    continue
                # Ragged/empty clip or no shared memory on this platform:
                # fall through to pickling it into the work unit.
            clips[raw_key] = ("pickle", clip)
        return (clips or None), chunk_leases

    def close(self):
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


_EXECUTORS = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def make_executor(name: str, workers: int = 1) -> Executor:
    """Build an executor by registry name.

    Raises:
        SpecError: unknown name; the message lists what exists.
    """
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        from .spec import SpecError

        raise SpecError(
            f"executor: unknown executor {name!r}; "
            f"known executors: {list(EXECUTOR_NAMES)}"
        ) from None
    return factory(workers)
