"""Built-in components: the names every spec can use out of the box.

Importing this module (which :mod:`repro.service` does) populates the four
registries with the repo's own detectors, classifiers, stream sources, and
reuse policies.  Each factory validates its params and raises naming the
bad value, so spec errors surface at build time, not mid-stream.

User extensions follow the same pattern::

    from repro.service import register_detector

    @register_detector("my-detector")
    def _build(clip, **params):
        return my_detector_fn, None
"""

from __future__ import annotations

import numpy as np

from ..datasets.profiles import (
    CROWDHUMAN_LIKE,
    DHDCAMPUS_LIKE,
    VISDRONE_LIKE,
    DatasetProfile,
)
from ..datasets.scene import SceneGenerator
from ..ml import CropClassifier, GridDetector, GridDetectorConfig, tiny_cnn, to_gray
from ..stream.reuse import TemporalROIReuse
from ..stream.source import (
    SyntheticClip,
    drone_traffic_clip,
    ground_truth_detector,
    pedestrian_clip,
)
from .registry import (
    register_classifier,
    register_detector,
    register_policy,
    register_source,
)

# -- stream sources ----------------------------------------------------------------


def _resolution(params: dict, default: tuple[int, int]) -> tuple[int, int]:
    value = params.pop("resolution", default)
    if not (len(value) == 2 and all(int(v) > 0 for v in value)):
        raise ValueError(f"source.resolution must be a (width, height) pair, got {value!r}")
    return (int(value[0]), int(value[1]))


@register_source("pedestrian")
def _pedestrian(n_frames: int, seed: int, **params) -> SyntheticClip:
    """CrowdHuman-flavored walkers; params: resolution, n_walkers, speed, jitter."""
    return pedestrian_clip(
        n_frames=n_frames, seed=seed,
        resolution=_resolution(params, (256, 192)), **params,
    )


@register_source("drone")
def _drone(n_frames: int, seed: int, **params) -> SyntheticClip:
    """VisDrone-flavored top-down traffic; params: resolution, n_vehicles, speed, jitter."""
    return drone_traffic_clip(
        n_frames=n_frames, seed=seed,
        resolution=_resolution(params, (256, 192)), **params,
    )


def _scene_sweep(
    profile: DatasetProfile, n_frames: int, seed: int, params: dict
) -> SyntheticClip:
    """Independent procedural scenes as a stream (a dataset *sweep*).

    Unlike the animated clips, consecutive frames are unrelated scenes —
    the workload of the paper's single-frame experiments, made streamable
    (and the adversarial case for temporal reuse: nothing is ever stable).
    """
    label = params.pop("label", None)
    generator = SceneGenerator(
        profile, resolution=_resolution(params, (640, 480)), seed=seed
    )
    if params:
        raise ValueError(
            f"unknown scene-sweep param(s) {sorted(params)}; "
            "valid: resolution, label"
        )
    frames, ground_truth = [], []
    for i in range(n_frames):
        scene = generator.scene(i)
        frames.append(scene.image)
        boxes = scene.boxes_for(label) if label else scene.boxes
        ground_truth.append([(b.x, b.y, b.w, b.h) for b in boxes])
    return SyntheticClip(frames, ground_truth, generator.resolution)


@register_source("crowdhuman-scenes")
def _crowdhuman_scenes(n_frames: int, seed: int, **params) -> SyntheticClip:
    """CrowdHuman-like scene sweep; params: resolution, label (e.g. "head")."""
    return _scene_sweep(CROWDHUMAN_LIKE, n_frames, seed, params)


@register_source("dhdcampus-scenes")
def _dhdcampus_scenes(n_frames: int, seed: int, **params) -> SyntheticClip:
    """DHD-Campus-like scene sweep; params: resolution, label."""
    return _scene_sweep(DHDCAMPUS_LIKE, n_frames, seed, params)


@register_source("visdrone-scenes")
def _visdrone_scenes(n_frames: int, seed: int, **params) -> SyntheticClip:
    """VisDrone-like scene sweep; params: resolution, label."""
    return _scene_sweep(VISDRONE_LIKE, n_frames, seed, params)


# -- detectors ---------------------------------------------------------------------


@register_detector("ground-truth")
def _ground_truth(clip: SyntheticClip, **params):
    """Oracle stage-1: reads the clip's ground truth (params: score, label).

    Isolates *system* costs (transfer/energy/reuse behavior) from detector
    quality, exactly like the paper's analytical experiments.
    """
    return ground_truth_detector(clip, **params)


@register_detector("grid")
def _grid(clip: SyntheticClip, **params):
    """Untrained mini-YOLO grid detector (params: classes, score_threshold, seed).

    A *functional* stand-in for a learned stage 1: exercises the real
    CNN forward path.  Train-and-freeze flows should build their own
    :class:`~repro.ml.GridDetector` and register it under a new name.
    """
    seed = int(params.pop("seed", 0))
    config = GridDetectorConfig(
        input_hw=(clip.resolution[1], clip.resolution[0]),
        classes=tuple(params.pop("classes", ("object",))),
        **params,
    )
    return GridDetector(config, seed=seed).detect, None


@register_detector("none")
def _no_detector(clip: SyntheticClip, **params):
    """No stage-1 model (analytical runs that pass ROIs explicitly)."""
    if params:
        raise ValueError(f"detector 'none' takes no params, got {sorted(params)}")
    return None, None


# -- classifiers -------------------------------------------------------------------


@register_classifier("none")
def _no_classifier(**params):
    if params:
        raise ValueError(f"classifier 'none' takes no params, got {sorted(params)}")
    return None


class MeanLumaClassifier:
    """Mean crop luminance in [0, 1], with a vectorized batch path.

    The batch path reduces a whole same-shape stack at once; its row-wise
    reductions use the same pairwise summation as the per-crop
    ``np.mean``, so batched results are bit-identical to the loop
    (test-asserted).
    """

    def __call__(self, crop: np.ndarray) -> float:
        return float(np.mean(to_gray(crop)))

    def classify_batch(self, stack: np.ndarray) -> list[float]:
        stack = np.asarray(stack)
        if stack.ndim == 4 and stack.shape[-1] == 3:
            n, h, w, _ = stack.shape
            gray = to_gray(stack.reshape(n * h, w, 3)).reshape(n, h, w)
        elif stack.ndim == 4 and stack.shape[-1] == 1:
            gray = stack[..., 0]
        else:
            gray = stack
        means = gray.reshape(stack.shape[0], -1).mean(axis=1)
        return [float(v) for v in means]


@register_classifier("mean-luma")
def _mean_luma(**params):
    """Trivial deterministic stage-2 head: mean crop luminance in [0, 1].

    Stands in for a task model when the experiment only measures system
    costs; its output lands in ``PipelineOutcome.predictions`` like any
    classifier's would.
    """
    if params:
        raise ValueError(f"classifier 'mean-luma' takes no params, got {sorted(params)}")
    return MeanLumaClassifier()


@register_classifier("tiny-cnn")
def _tiny_cnn(**params):
    """Untrained tiny-CNN stage-2 head over resized crops.

    Params: ``input_size`` (square resize side, default 32), ``classes``
    (label list, default ``["object", "background"]``), ``width`` (base
    channel count, default 8), ``seed`` (weight init, default 0).

    Deterministic given ``seed`` and exercises the real batched CNN
    forward — the hot path ``benchmarks/bench_hotpath.py`` measures.  The
    engine applies the system spec's ``compute_dtype`` after construction.
    Train-and-freeze flows should build their own
    :class:`~repro.ml.CropClassifier` and register it under a new name.
    """
    input_size = int(params.pop("input_size", 32))
    width = int(params.pop("width", 8))
    seed = int(params.pop("seed", 0))
    classes = [str(c) for c in params.pop("classes", ("object", "background"))]
    if params:
        raise ValueError(
            f"unknown tiny-cnn param(s) {sorted(params)}; "
            "valid: input_size, classes, width, seed"
        )
    net = tiny_cnn(input_size, len(classes), width=width, seed=seed)
    return CropClassifier(net, (input_size, input_size), classes)


# -- reuse policies ----------------------------------------------------------------


@register_policy("none")
def _no_policy(**params):
    if params:
        raise ValueError(f"policy 'none' takes no params, got {sorted(params)}")
    return None


@register_policy("temporal-reuse")
def _temporal_reuse(**params) -> TemporalROIReuse:
    """IoU-gated stage-1 skipping; params mirror TemporalROIReuse's knobs."""
    return TemporalROIReuse(**params)
