"""Component registries: string names -> factories, with introspection.

The service layer wires scenarios from *names*, not imports: a JSON spec
says ``{"detector": {"name": "ground-truth"}}`` and the engine looks the
factory up here.  Four registries cover the slots of a scenario —
detectors, classifiers, stream sources, and reuse policies — each populated
by the decorators in :mod:`repro.service.components` (and extensible by
user code the same way: decorate a factory and the name becomes spec-able).

Factory contracts (enforced by convention, documented per registry):

* **source**: ``factory(n_frames, seed, **params) -> SyntheticClip``;
* **detector**: ``factory(clip, **params) -> (detector | None, on_frame | None)``
  — the optional ``on_frame`` callback is wired into the stream runner so
  stateful detectors can follow the frame index;
* **classifier**: ``factory(**params) -> callable | None``;
* **policy**: ``factory(**params) -> TemporalROIReuse | None``.
"""

from __future__ import annotations

from typing import Callable


class UnknownComponentError(KeyError):
    """Lookup of a name no factory was registered under.

    The message names the registry, the missing name, and every registered
    name, so a typo in a spec file is a one-glance fix.
    """

    def __init__(self, kind: str, name: str, known: list[str]):
        super().__init__(name)
        self.kind = kind
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown {self.kind} {self.name!r}; "
            f"registered {self.kind}s: {self.known}"
        )


#: Bumped whenever a registered name is *deleted* — the override escape
#: hatch is the only way an existing spec can start meaning something
#: else, so engine caches fold this epoch into their keys and go cold
#: exactly then (additive registrations can't retarget existing specs:
#: duplicate names are rejected).
_OVERRIDE_EPOCH = 0


def registry_epoch() -> int:
    """Current override epoch (see :data:`_OVERRIDE_EPOCH`)."""
    return _OVERRIDE_EPOCH


class Registry:
    """One named slot type: an ordered mapping of names to factories.

    Attributes:
        kind: what the entries build ("detector", "source", ...), used in
            error messages and :func:`list_components` keys.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: dict[str, Callable] = {}

    def register(self, name: str) -> Callable[[Callable], Callable]:
        """Decorator: ``@registry.register("grid")`` binds the factory.

        Re-registering a taken name is an error — shadowing a built-in
        silently would make specs mean different things in different
        processes.  Unregister first (``del registry[name]``) to override.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")

        def _bind(factory: Callable) -> Callable:
            if name in self._factories:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered "
                    f"(to {self._factories[name]!r})"
                )
            self._factories[name] = factory
            return factory

        return _bind

    def get(self, name: str) -> Callable:
        """Look a factory up; unknown names raise listing what exists."""
        try:
            return self._factories[name]
        except KeyError:
            raise UnknownComponentError(self.kind, name, self.names()) from None

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __iter__(self):
        return iter(sorted(self._factories))

    def __delitem__(self, name: str) -> None:
        if name not in self._factories:
            raise UnknownComponentError(self.kind, name, self.names())
        del self._factories[name]
        global _OVERRIDE_EPOCH
        _OVERRIDE_EPOCH += 1

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"


#: The four scenario slots.
DETECTORS = Registry("detector")
CLASSIFIERS = Registry("classifier")
SOURCES = Registry("source")
POLICIES = Registry("policy")

#: Decorators user code imports: ``@register_detector("mine")``.
register_detector = DETECTORS.register
register_classifier = CLASSIFIERS.register
register_source = SOURCES.register
register_policy = POLICIES.register


def list_components() -> dict[str, list[str]]:
    """Every registered name, grouped by slot — the introspection surface.

    Returns:
        ``{"detectors": [...], "classifiers": [...], "sources": [...],
        "policies": [...]}``, each list sorted.
    """
    return {
        "detectors": DETECTORS.names(),
        "classifiers": CLASSIFIERS.names(),
        "sources": SOURCES.names(),
        "policies": POLICIES.names(),
    }
