"""Serializable scenario specs: the declarative surface of the service API.

Three frozen dataclasses describe a complete workload with plain data —
strings, numbers, dicts — so it can live in JSON files, travel over RPC,
and be diffed in review:

* :class:`SystemSpec` — *what system*: sensor/pipeline configuration
  (:class:`~repro.core.HiRISEConfig`) plus the detector and classifier
  slots, by registered name;
* :class:`ScenarioSpec` — *one request*: the stream source, frame count,
  seeds, reuse policy, and execution knobs;
* :class:`ServiceSpec` — a whole spec file: one system plus a list of
  scenarios and a default worker count.

Every spec round-trips exactly (``from_dict(to_dict(s)) == s``) and every
validation error names the offending field (``scenario.n_frames: ...``),
so a broken spec file is a one-glance fix.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.config import HiRISEConfig
from ..sensor.noise import NoiseModel
from .executor import EXECUTOR_NAMES
from .registry import CLASSIFIERS, DETECTORS, POLICIES, SOURCES, Registry


class SpecError(ValueError):
    """A spec failed validation; the message names the bad field."""


def _require(data: object, fieldname: str, kind: type, type_name: str):
    if not isinstance(data, kind) or (kind is int and isinstance(data, bool)):
        raise SpecError(
            f"{fieldname}: expected {type_name}, got {data!r}"
        )
    return data


def _reject_unknown(data: dict, known: set[str], fieldname: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"{fieldname}: unknown field(s) {unknown}; known fields: {sorted(known)}"
        )


@dataclass(frozen=True)
class ComponentRef:
    """A registered component, by name, plus its construction params.

    Attributes:
        name: the registry key (e.g. "pedestrian", "temporal-reuse").
        params: keyword arguments handed to the factory.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the params
        # dict; canonicalize it instead so every spec type stays hashable
        # (consistent with __eq__: equal dicts canonicalize identically).
        try:
            params = json.dumps(self.params, sort_keys=True, default=repr)
        except (TypeError, ValueError):
            params = repr(sorted(self.params))
        return hash((self.name, params))

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data, fieldname: str = "component") -> "ComponentRef":
        """Parse ``{"name": ..., "params": {...}}`` (or a bare name string)."""
        if isinstance(data, str):
            return cls(data)
        _require(data, fieldname, dict, "a dict or component-name string")
        _reject_unknown(data, {"name", "params"}, fieldname)
        if "name" not in data:
            raise SpecError(f"{fieldname}.name: required field is missing")
        name = _require(data["name"], f"{fieldname}.name", str, "str")
        params = _require(
            data.get("params", {}), f"{fieldname}.params", dict, "dict"
        )
        return cls(name, dict(params))

    def resolve(self, registry: Registry, fieldname: str):
        """Look the factory up, re-raising with the spec field named."""
        try:
            return registry.get(self.name)
        except KeyError as exc:
            raise SpecError(f"{fieldname}.name: {exc}") from None


def _component_field(name: str):
    return field(default_factory=lambda: ComponentRef(name))


@dataclass(frozen=True)
class SystemSpec:
    """What system serves the requests (shared across a batch).

    Attributes:
        system: "hirise" (two-stage, in-sensor pooling + selective ROI) or
            "conventional" (full-frame baseline; ``config.adc_bits`` is the
            only config knob it reads).
        config: the :class:`~repro.core.HiRISEConfig` knobs.
        detector: stage-1 model slot (``DETECTORS`` registry).
        classifier: stage-2 model slot (``CLASSIFIERS`` registry).
        noise: sensor noise model; ``None`` = ideal sensor.  With noise
            enabled, per-frame temporal noise is drawn from the scenario's
            frame seeds — the knob that makes seeds observable.
        compute_dtype: stage-2 inference dtype, "float64" (default, the
            bit-exact reference) or "float32" (faster/smaller; logits
            track float64 within documented tolerances, argmax parity on
            seeded clips).  Applied by the engine to classifiers exposing
            ``set_compute_dtype``; stage-1 detection always runs float64
            so ROI selection is identical across modes.
    """

    system: str = "hirise"
    config: HiRISEConfig = field(default_factory=HiRISEConfig)
    detector: ComponentRef = _component_field("ground-truth")
    classifier: ComponentRef = _component_field("none")
    noise: NoiseModel | None = None
    compute_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.system not in ("hirise", "conventional"):
            raise SpecError(
                f"system.system: expected 'hirise' or 'conventional', "
                f"got {self.system!r}"
            )
        if self.compute_dtype not in ("float32", "float64"):
            raise SpecError(
                f"system.compute_dtype: expected 'float32' or 'float64', "
                f"got {self.compute_dtype!r}"
            )

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "config": self.config.to_dict(),
            "detector": self.detector.to_dict(),
            "classifier": self.classifier.to_dict(),
            "noise": None if self.noise is None else dataclasses.asdict(self.noise),
            "compute_dtype": self.compute_dtype,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemSpec":
        _require(data, "system", dict, "dict")
        _reject_unknown(
            data,
            {"system", "config", "detector", "classifier", "noise", "compute_dtype"},
            "system",
        )
        kwargs = {}
        if "system" in data:
            kwargs["system"] = _require(data["system"], "system.system", str, "str")
        if "compute_dtype" in data:
            kwargs["compute_dtype"] = _require(
                data["compute_dtype"], "system.compute_dtype", str, "str"
            )
        if "config" in data:
            config = data["config"]
            _require(config, "system.config", dict, "dict")
            try:
                kwargs["config"] = HiRISEConfig.from_dict(config)
            except ValueError as exc:
                raise SpecError(f"system.config: {exc}") from None
        if "detector" in data:
            kwargs["detector"] = ComponentRef.from_dict(
                data["detector"], "system.detector"
            )
        if "classifier" in data:
            kwargs["classifier"] = ComponentRef.from_dict(
                data["classifier"], "system.classifier"
            )
        if data.get("noise") is not None:
            noise = _require(data["noise"], "system.noise", dict, "dict")
            valid = {f.name for f in dataclasses.fields(NoiseModel)}
            _reject_unknown(noise, valid, "system.noise")
            kwargs["noise"] = NoiseModel(**noise)
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ScenarioSpec:
    """One request: a stream to run and how to run it.

    Attributes:
        name: free-form label for reports ("" = unnamed).
        source: stream source slot (``SOURCES`` registry).
        n_frames: clip length handed to the source factory.
        seed: master scenario seed (clip layout/appearance/texture).
        frame_seeds: explicit per-frame temporal-noise seeds; ``None``
            defaults to the frame index (the stream runner's contract).
        policy: reuse policy slot (``POLICIES`` registry); "none" runs
            stage 1 on every frame.
        batch_size: legacy alias for ``window`` (HiRISE only; mutually
            exclusive with a reuse policy and with ``window > 1``).
        keep_outcomes: retain full per-frame outcomes on the result
            (costs memory; needed for bit-identity audits).
        window: stage-1 frames vectorized per NumPy pass (HiRISE only).
            ``window=1`` is the per-frame reference loop; any window is
            bit-identical to it.  Composes with a reuse policy.
    """

    name: str = ""
    source: ComponentRef = _component_field("pedestrian")
    n_frames: int = 32
    seed: int = 0
    frame_seeds: tuple[int, ...] | None = None
    policy: ComponentRef = _component_field("none")
    batch_size: int = 1
    keep_outcomes: bool = False
    window: int = 1

    def __post_init__(self) -> None:
        if self.n_frames < 1:
            raise SpecError(f"scenario.n_frames: must be >= 1, got {self.n_frames}")
        if self.batch_size < 1:
            raise SpecError(
                f"scenario.batch_size: must be >= 1, got {self.batch_size}"
            )
        if self.window < 1:
            raise SpecError(f"scenario.window: must be >= 1, got {self.window}")
        if self.window > 1 and self.batch_size > 1:
            raise SpecError(
                "scenario.window: mutually exclusive with batch_size (its "
                "legacy alias); set only window"
            )
        if self.frame_seeds is not None and len(self.frame_seeds) != self.n_frames:
            raise SpecError(
                f"scenario.frame_seeds: {len(self.frame_seeds)} seeds for "
                f"{self.n_frames} frames"
            )

    @property
    def label(self) -> str:
        return self.name or f"{self.source.name}/{self.policy.name}"

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "source": self.source.to_dict(),
            "n_frames": self.n_frames,
            "seed": self.seed,
            "frame_seeds": (
                None if self.frame_seeds is None else list(self.frame_seeds)
            ),
            "policy": self.policy.to_dict(),
            "batch_size": self.batch_size,
            "keep_outcomes": self.keep_outcomes,
            "window": self.window,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        _require(data, "scenario", dict, "dict")
        known = {f.name for f in dataclasses.fields(cls)}
        _reject_unknown(data, known, "scenario")
        kwargs = {}
        if "name" in data:
            kwargs["name"] = _require(data["name"], "scenario.name", str, "str")
        if "source" in data:
            kwargs["source"] = ComponentRef.from_dict(data["source"], "scenario.source")
        if "policy" in data:
            kwargs["policy"] = ComponentRef.from_dict(data["policy"], "scenario.policy")
        for intfield in ("n_frames", "seed", "batch_size", "window"):
            if intfield in data:
                kwargs[intfield] = _require(
                    data[intfield], f"scenario.{intfield}", int, "int"
                )
        if data.get("frame_seeds") is not None:
            seeds = _require(
                data["frame_seeds"], "scenario.frame_seeds", list, "a list of ints"
            )
            kwargs["frame_seeds"] = tuple(
                _require(s, "scenario.frame_seeds[...]", int, "int") for s in seeds
            )
        if "keep_outcomes" in data:
            kwargs["keep_outcomes"] = _require(
                data["keep_outcomes"], "scenario.keep_outcomes", bool, "bool"
            )
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def validate_components(self) -> None:
        """Resolve both component slots, raising :class:`SpecError` on typos."""
        self.source.resolve(SOURCES, "scenario.source")
        self.policy.resolve(POLICIES, "scenario.policy")


@dataclass(frozen=True)
class ServiceSpec:
    """A complete spec file: one system, scenarios, and execution knobs.

    Attributes:
        system: the served :class:`SystemSpec`.
        scenarios: default workload.
        workers: default pool size for batch serving.
        executor: default batch executor — "serial", "thread", or
            "process" (see :mod:`repro.service.executor`).
    """

    system: SystemSpec = field(default_factory=SystemSpec)
    scenarios: tuple[ScenarioSpec, ...] = ()
    workers: int = 1
    executor: str = "thread"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise SpecError(f"workers: must be >= 1, got {self.workers}")
        if self.executor not in EXECUTOR_NAMES:
            raise SpecError(
                f"spec.executor: unknown executor {self.executor!r}; "
                f"known executors: {list(EXECUTOR_NAMES)}"
            )

    def to_dict(self) -> dict:
        return {
            "system": self.system.to_dict(),
            "scenarios": [s.to_dict() for s in self.scenarios],
            "workers": self.workers,
            "executor": self.executor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceSpec":
        _require(data, "spec", dict, "dict")
        _reject_unknown(data, {"system", "scenarios", "workers", "executor"}, "spec")
        kwargs = {}
        if "system" in data:
            system = data["system"]
            # Accept the bare-string shorthand ({"system": "hirise"}) here
            # too, so adding a "scenarios" list to a bare system spec — the
            # CLI's own fix-it advice — never changes how "system" parses.
            if isinstance(system, str):
                system = {"system": system}
            kwargs["system"] = SystemSpec.from_dict(system)
        if "scenarios" in data:
            scenarios = _require(
                data["scenarios"], "spec.scenarios", list, "a list of scenario dicts"
            )
            kwargs["scenarios"] = tuple(
                ScenarioSpec.from_dict(s) for s in scenarios
            )
        if "workers" in data:
            kwargs["workers"] = _require(data["workers"], "spec.workers", int, "int")
        if "executor" in data:
            kwargs["executor"] = _require(
                data["executor"], "spec.executor", str, "str"
            )
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ServiceSpec":
        return cls.from_dict(json.loads(text))


def load_spec(path: str | Path) -> ServiceSpec:
    """Read a JSON spec file into a :class:`ServiceSpec`.

    Accepts both the full layout (``{"system": {...}, "scenarios": [...]}``)
    and a bare system spec (``{"system": "hirise", "config": {...}}``, i.e.
    ``system`` is a *string*), which loads as a service with no scenarios.
    """
    try:
        text = Path(path).read_text()
    except UnicodeDecodeError as exc:
        raise SpecError(f"{path}: not valid UTF-8 ({exc})") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: not valid JSON ({exc})") from None
    return coerce_service_spec(data)


def coerce_service_spec(data) -> "ServiceSpec":
    """Interpret a dict/spec object as a :class:`ServiceSpec`."""
    if isinstance(data, ServiceSpec):
        return data
    if isinstance(data, SystemSpec):
        return ServiceSpec(system=data)
    _require(data, "spec", dict, "dict")
    if (
        "scenarios" in data
        or "workers" in data
        or "executor" in data
        or isinstance(data.get("system"), dict)
    ):
        return ServiceSpec.from_dict(data)
    return ServiceSpec(system=SystemSpec.from_dict(data))
