"""End-to-end pipelines: HiRISE and the conventional baseline.

:class:`HiRISEPipeline` wires the substrates together exactly as the
paper's Fig. 3 dataflow:

1. expose the scene onto an analog :class:`~repro.sensor.PixelArray`;
2. **stage 1** — analog grayscale/pooling in the sensor, ADC of the pooled
   frame only, transfer to the processor, run the stage-1 detector;
3. feed the ROI descriptors back to the sensor (D1 P->S);
4. **stage 2** — selective full-resolution readout of the ROIs, transfer,
   and (optionally) the stage-2 task model over the crops — batched by
   post-resize shape via :func:`classify_crops`, one forward per bucket.

:class:`ConventionalPipeline` is the baseline: convert and ship the whole
frame, then run the models on the processor.

Both produce a :class:`PipelineOutcome` carrying the images *and* the
measured transfer/energy/memory accounting, so every number in Tables 1/3
and Figs. 6-8 can be read off a single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..sensor import ADCModel, AnalogPoolingModel, NoiseModel, PixelArray, SensorReadout
from ..transfer import TransferLedger, LinkModel
from .config import HiRISEConfig
from .energy import EnergyBreakdown, EnergyModel
from .profiling import PhaseProfiler, profiled
from .roi import ROI, prepare_rois

#: A detector is anything mapping a frame to detection-like objects.
Detector = Callable[[np.ndarray], Sequence]
#: A classifier maps an RGB crop to an arbitrary prediction.  Classifiers
#: may additionally expose the batch protocol of
#: :class:`repro.ml.CropClassifier` (``classify_batch`` + optional
#: ``preprocess``), which :func:`classify_crops` exploits to serve a whole
#: frame's crops in one forward per shape bucket.
Classifier = Callable[[np.ndarray], object]


def classify_crops(classifier: Classifier | None, crops: Sequence[np.ndarray]) -> list[object]:
    """Run the stage-2 task model over a frame's ROI crops, batched.

    Classifiers exposing ``classify_batch(stack)`` (duck-typed; see
    :class:`repro.ml.CropClassifier`) have their crops bucketed by
    post-``preprocess`` shape and served **one forward per bucket**
    instead of one per crop; plain callables keep the per-crop loop.
    Results always come back in crop order, and in float64 compute mode
    the batched path is bit-identical to the per-crop loop (asserted by
    tests and ``benchmarks/bench_hotpath.py``).

    Note this changes *processor-side execution* only: Eq. 2 peak-memory
    accounting keeps its documented per-crop semantics (crops arrive from
    the sensor one window at a time; the largest crop bounds M2).
    """
    crops = list(crops)
    if classifier is None or not crops:
        return []
    classify_batch = getattr(classifier, "classify_batch", None)
    if classify_batch is None:
        return [classifier(crop) for crop in crops]
    preprocess = getattr(classifier, "preprocess", None)
    prepped = [
        np.asarray(crop if preprocess is None else preprocess(crop))
        for crop in crops
    ]
    buckets: dict[tuple, list[int]] = {}
    for index, image in enumerate(prepped):
        buckets.setdefault(image.shape, []).append(index)
    predictions: list[object] = [None] * len(crops)
    for indices in buckets.values():
        outputs = list(classify_batch(np.stack([prepped[i] for i in indices])))
        if len(outputs) != len(indices):
            raise ValueError(
                f"classify_batch returned {len(outputs)} predictions "
                f"for a stack of {len(indices)} crops"
            )
        for index, output in zip(indices, outputs):
            predictions[index] = output
    return predictions


@dataclass
class PipelineOutcome:
    """Everything one pipeline run produced and cost.

    Attributes:
        system: "hirise" or "conventional".
        array_resolution: ``(width, height)`` of the pixel array.
        stage1_image: the frame the stage-1 model saw (pooled for HiRISE,
            full for the baseline).
        rois: conditioned ROIs in array coordinates.
        roi_crops: full-resolution digital crops aligned with ``rois``
            (for the baseline these are digital crops of the full frame).
        predictions: per-crop stage-2 outputs (when a classifier ran).
        detections: raw stage-1 detections in stage-1 frame coordinates.
        ledger: link-transfer accounting.
        energy: sensor energy breakdown.
        stage1_conversions / stage2_conversions: ADC conversion counts.
        peak_image_memory_bytes: max resident image memory on the processor
            (Table 1 Eq. 2 — model activations are accounted separately by
            :mod:`repro.memory`).
    """

    system: str
    array_resolution: tuple[int, int]
    stage1_image: np.ndarray
    rois: list[ROI] = field(default_factory=list)
    roi_crops: list[np.ndarray] = field(default_factory=list)
    predictions: list[object] = field(default_factory=list)
    detections: list[object] = field(default_factory=list)
    ledger: TransferLedger = field(default_factory=TransferLedger)
    energy: EnergyBreakdown = field(default_factory=lambda: EnergyBreakdown(0.0, 0.0))
    stage1_conversions: int = 0
    stage2_conversions: int = 0
    peak_image_memory_bytes: int = 0

    def report(self) -> str:
        """Human-readable one-run summary."""
        w, h = self.array_resolution
        lines = [
            f"[{self.system}] {w}x{h} pixel array",
            f"  stage-1 frame: {self.stage1_image.shape}",
            f"  ROIs read out: {len(self.rois)}"
            + (f" (e.g. {self.rois[0].xywh})" if self.rois else ""),
            f"  data transfer: {self.ledger.total_bytes / 1024:.1f} kB "
            f"(S->P1 {self.ledger.stage1_s2p / 1024:.1f}, "
            f"P->S {self.ledger.stage1_p2s} B, "
            f"S->P2 {self.ledger.stage2_s2p / 1024:.1f})",
            f"  ADC conversions: stage1={self.stage1_conversions:,} "
            f"stage2={self.stage2_conversions:,}",
            f"  sensor energy: {self.energy.total_mj:.4f} mJ",
            f"  peak image memory: {self.peak_image_memory_bytes / 1024:.1f} kB",
        ]
        return "\n".join(lines)


def _build_readout(
    image_or_array: np.ndarray | PixelArray,
    adc_bits: int,
    noise: NoiseModel | None,
    pooling_model: AnalogPoolingModel | None,
    frame_seed: int,
) -> SensorReadout:
    if isinstance(image_or_array, PixelArray):
        array = image_or_array
    else:
        array = PixelArray.from_image(
            image_or_array, noise=noise or NoiseModel.noiseless()
        )
    return SensorReadout(
        array=array,
        adc=ADCModel(bits=adc_bits, v_ref=array.vdd),
        pooling=pooling_model or AnalogPoolingModel(),
        frame_seed=frame_seed,
    )


@dataclass
class HiRISEPipeline:
    """The proposed system (paper Figs. 2b and 3).

    Attributes:
        detector: stage-1 model run on the pooled frame; must return
            detection-like objects (``x/y/w/h/score/label``).  May be
            ``None`` when ``rois`` are passed to :meth:`run` directly
            (analytical experiments).
        classifier: optional stage-2 model applied to each ROI crop.
        config: system configuration.
        energy_model: energy coefficients.
        noise: sensor noise model baked into exposures.
        pooling_model: behavioral analog pooling model.
        link: physical link model for the ledger.
        profiler: optional :class:`~repro.core.PhaseProfiler`; when set,
            every phase method records its wall-clock under the hot-path
            taxonomy (``expose``, ``stage1.read``, ``detect``,
            ``condition``, ``stage2.read``, ``stage2.classify``).
    """

    detector: Detector | None = None
    classifier: Classifier | None = None
    config: HiRISEConfig = field(default_factory=HiRISEConfig)
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    noise: NoiseModel | None = None
    pooling_model: AnalogPoolingModel | None = None
    link: LinkModel = field(default_factory=LinkModel)
    profiler: PhaseProfiler | None = None

    # -- phases ------------------------------------------------------------------
    #
    # ``run()`` composes the methods below; callers that amortize work over
    # many frames (``repro.stream``) re-enter the same code path at phase
    # granularity: batched stage-1 readout feeds ``complete_from_stage1``,
    # and temporal ROI reuse calls ``run_stage2_only``.

    def build_readout(
        self, image: np.ndarray | PixelArray, frame_seed: int = 0
    ) -> SensorReadout:
        """Expose the scene and bind this pipeline's readout chain to it."""
        with profiled(self.profiler, "expose"):
            return _build_readout(
                image, self.config.adc_bits, self.noise, self.pooling_model, frame_seed
            )

    def read_stage1(self, readout: SensorReadout, ledger: TransferLedger):
        """Stage-1 sensor work: pooled conversion, logged on the ledger."""
        with profiled(self.profiler, "stage1"), profiled(self.profiler, "read"):
            stage1 = readout.read_compressed(
                self.config.pool_k, grayscale=self.config.grayscale_stage1
            )
        ledger.add_stage1_frame(stage1.data_bytes)
        return stage1

    def detect(self, stage1_image: np.ndarray) -> tuple[list, list[ROI]]:
        """Run the stage-1 model and lift its boxes to array coordinates.

        Returns:
            ``(detections, candidates)`` — the raw model outputs and the
            score-filtered candidate ROIs scaled by ``pool_k``.
        """
        if self.detector is None:
            raise ValueError("pipeline has no detector; pass rois= explicitly")
        cfg = self.config
        with profiled(self.profiler, "detect"):
            detections = list(self.detector(stage1_image))
        candidates = [
            ROI.from_detection(d, scale=cfg.pool_k)
            for d in detections
            if getattr(d, "score", 1.0) >= cfg.score_threshold
        ]
        return detections, candidates

    def condition_rois(self, candidates: Sequence[ROI], width: int, height: int) -> list[ROI]:
        """Apply the selection encoder's conditioning to candidate ROIs."""
        cfg = self.config
        with profiled(self.profiler, "condition"):
            return prepare_rois(
                candidates,
                width,
                height,
                pad_fraction=cfg.roi_pad_fraction,
                min_side_px=cfg.min_roi_px,
                max_rois=cfg.max_rois,
                drop_contained=cfg.dedup_contained,
                merge_iou=cfg.merge_roi_iou,
            )

    def run_stage2(
        self,
        readout: SensorReadout,
        conditioned: Sequence[ROI],
        ledger: TransferLedger,
        dedup_contained: bool = False,
    ) -> tuple[object, list[object]]:
        """Stage-2 sensor work + task model: ROI readout, logged, classified.

        Crops are served to the classifier through :func:`classify_crops`:
        bucketed by post-resize shape, one forward per bucket.
        """
        with profiled(self.profiler, "stage2"):
            with profiled(self.profiler, "read"):
                stage2 = readout.read_rois(conditioned, dedup_contained=dedup_contained)
            ledger.add_stage2_rois(stage2.data_bytes, len(stage2.boxes))
            with profiled(self.profiler, "classify"):
                predictions = classify_crops(self.classifier, stage2.images)
        return stage2, predictions

    def complete_from_stage1(
        self,
        readout: SensorReadout,
        stage1,
        ledger: TransferLedger,
        rois: Sequence[ROI] | None = None,
    ) -> PipelineOutcome:
        """Everything after the stage-1 readout: detect, feed back, stage 2.

        Args:
            readout: the (possibly batch-produced) sensor readout whose
                stage-1 conversion already happened.
            stage1: the stage-1 :class:`~repro.sensor.ReadoutResult`.
            ledger: ledger the stage-1 transfer was already logged on.
            rois: known ROIs overriding the detector.
        """
        array = readout.array
        detections: list[object] = []
        if rois is None:
            detections, candidates = self.detect(stage1.images)
        else:
            # Explicit ROIs pass through the same confidence gate as
            # detector outputs, so ``score_threshold`` means one thing
            # regardless of where the boxes came from.
            candidates = [
                r for r in rois
                if getattr(r, "score", None) is None
                or r.score >= self.config.score_threshold
            ]

        conditioned = self.condition_rois(candidates, array.width, array.height)
        ledger.add_roi_descriptors(len(conditioned))

        stage2, predictions = self.run_stage2(readout, conditioned, ledger)

        energy = self.energy_model.from_conversions(
            stage1_conversions=stage1.conversions,
            stage2_conversions=stage2.conversions,
            pooled_outputs=stage1.conversions,
        )
        # Eq. 2: the pooled frame is dropped before stage-2 crops arrive;
        # crops are processed one at a time, so the largest crop bounds M2.
        # Crop memory is modeled like every other image buffer: one stored
        # sample per conversion (`.size` is an element count, not bytes).
        sample_bytes = readout.adc.bytes_per_sample()
        largest_crop = max((c.size for c in stage2.images), default=0) * sample_bytes
        peak_memory = max(stage1.data_bytes, largest_crop)

        return PipelineOutcome(
            system="hirise",
            array_resolution=array.resolution,
            stage1_image=stage1.images,
            rois=conditioned,
            roi_crops=list(stage2.images),
            predictions=predictions,
            detections=detections,
            ledger=ledger,
            energy=energy,
            stage1_conversions=stage1.conversions,
            stage2_conversions=stage2.conversions,
            peak_image_memory_bytes=peak_memory,
        )

    def run(
        self,
        image: np.ndarray | PixelArray,
        rois: Sequence[ROI] | None = None,
        frame_seed: int = 0,
    ) -> PipelineOutcome:
        """Process one exposure end to end.

        Args:
            image: scene image (``(H, W, 3)`` uint8/float) or an existing
                :class:`PixelArray`.
            rois: override the stage-1 detector with known ROIs (in array
                coordinates); required when no detector is configured.
            frame_seed: temporal-noise seed for this exposure.

        Returns:
            :class:`PipelineOutcome`.
        """
        readout = self.build_readout(image, frame_seed)
        ledger = TransferLedger(link=self.link)
        stage1 = self.read_stage1(readout, ledger)
        return self.complete_from_stage1(readout, stage1, ledger, rois=rois)

    def run_stage2_only(
        self,
        image: np.ndarray | PixelArray,
        rois: Sequence[ROI],
        frame_seed: int = 0,
    ) -> PipelineOutcome:
        """Selective readout of known windows with *no* stage-1 cost.

        This is the payoff of temporal ROI reuse on video: when recent
        stage-1 results already say where the objects are, the pooled-frame
        conversion and the detector are skipped entirely — the frame costs
        only the descriptor feedback and the ROI pixels.

        Args:
            image: scene image or :class:`PixelArray` for this frame.
            rois: readout windows in array coordinates (e.g. tracker
                predictions); they are clipped and size-filtered but *not*
                padded (predicted windows carry their own safety margin).
            frame_seed: temporal-noise seed for this exposure.

        Returns:
            :class:`PipelineOutcome` with an empty stage-1 image and zero
            stage-1 conversions/bytes.
        """
        cfg = self.config
        readout = self.build_readout(image, frame_seed)
        array = readout.array
        conditioned = [
            clipped
            for roi in rois
            if (clipped := roi.clip(array.width, array.height)) is not None
            and clipped.w >= cfg.min_roi_px
            and clipped.h >= cfg.min_roi_px
        ]
        ledger = TransferLedger(link=self.link)
        ledger.add_roi_descriptors(len(conditioned))
        stage2, predictions = self.run_stage2(
            readout, conditioned, ledger, dedup_contained=cfg.dedup_contained
        )

        energy = self.energy_model.from_conversions(
            stage1_conversions=0,
            stage2_conversions=stage2.conversions,
            pooled_outputs=0,
        )
        largest = max(
            (c.size for c in stage2.images), default=0
        ) * readout.adc.bytes_per_sample()
        return PipelineOutcome(
            system="hirise",
            array_resolution=array.resolution,
            stage1_image=np.zeros((0, 0)),
            rois=conditioned,
            roi_crops=list(stage2.images),
            predictions=predictions,
            ledger=ledger,
            energy=energy,
            stage1_conversions=0,
            stage2_conversions=stage2.conversions,
            peak_image_memory_bytes=largest,
        )


@dataclass
class ConventionalPipeline:
    """The baseline (paper Fig. 2a): convert and ship everything.

    Attributes mirror :class:`HiRISEPipeline` minus the in-sensor knobs.
    """

    detector: Detector | None = None
    classifier: Classifier | None = None
    adc_bits: int = 8
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    noise: NoiseModel | None = None
    link: LinkModel = field(default_factory=LinkModel)
    profiler: PhaseProfiler | None = None

    def run(
        self,
        image: np.ndarray | PixelArray,
        rois: Sequence[ROI] | None = None,
        frame_seed: int = 0,
    ) -> PipelineOutcome:
        """Process one exposure: full-frame conversion, then on-CPU models.

        Args:
            image: scene image or :class:`PixelArray`.
            rois: optional known ROIs; the baseline crops them *digitally*
                from the full frame (no transfer saving — it already moved
                the whole image).
            frame_seed: temporal-noise seed.

        Returns:
            :class:`PipelineOutcome`.
        """
        with profiled(self.profiler, "expose"):
            readout = _build_readout(image, self.adc_bits, self.noise, None, frame_seed)
        array = readout.array
        ledger = TransferLedger(link=self.link)

        with profiled(self.profiler, "stage1"), profiled(self.profiler, "read"):
            full = readout.read_full()
        ledger.add_stage1_frame(full.data_bytes)

        detections: list[object] = []
        if rois is None and self.detector is not None:
            with profiled(self.profiler, "detect"):
                detections = list(self.detector(full.images))
            candidates = [ROI.from_detection(d) for d in detections]
        else:
            candidates = list(rois or [])

        with profiled(self.profiler, "condition"):
            conditioned = prepare_rois(candidates, array.width, array.height)
        with profiled(self.profiler, "stage2"):
            with profiled(self.profiler, "read"):
                crops = [
                    np.ascontiguousarray(
                        full.images[r.y : r.y + r.h, r.x : r.x + r.w, :]
                    )
                    for r in conditioned
                ]
            with profiled(self.profiler, "classify"):
                predictions = classify_crops(self.classifier, crops)

        energy = self.energy_model.conventional_frame(array.width, array.height)
        return PipelineOutcome(
            system="conventional",
            array_resolution=array.resolution,
            stage1_image=full.images,
            rois=conditioned,
            roi_crops=crops,
            predictions=predictions,
            detections=detections,
            ledger=ledger,
            energy=energy,
            stage1_conversions=0,
            stage2_conversions=full.conversions,
            peak_image_memory_bytes=full.data_bytes,
        )
