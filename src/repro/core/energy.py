"""Sensor energy model (paper Sec. 4.4, Fig. 8, Table 3).

The paper's energy accounting has exactly three components:

* **ADC conversions** at 125 pJ each (45 nm 8-bit ADC, ref [3]) — the
  dominant term.  The 2560x1920 RGB baseline is 14.75 M conversions
  -> 1.843 mJ, matching the paper's stated baseline.
* **Analog pooling circuitry** — 1.71-91.4 nJ per frame, "several orders of
  magnitude smaller than ADC conversion"; modeled as 25 fJ per pooled
  output (back-solved from the paper's range).
* **Link energy** — zero in the paper's model (folded into conversions);
  exposed as a knob for users with a physical link model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .costs import hirise_stage1_costs
from .roi import ROI, total_area

#: Paper ref [3]: 250 mW at 2 GS/s -> 125 pJ per conversion.
ADC_ENERGY_PER_CONVERSION = 125e-12

#: Back-solved from the paper's 1.71-91.4 nJ pooling-circuit range.
POOLING_ENERGY_PER_OUTPUT = 25e-15


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-frame sensor energy in joules.

    Attributes:
        stage1_adc: conversions of the pooled frame (0 for the baseline).
        stage2_adc: conversions of the ROI pixels (or the full frame for
            the baseline, stored here).
        pooling: analog pooling circuitry.
        link: optional physical-link energy.
    """

    stage1_adc: float
    stage2_adc: float
    pooling: float = 0.0
    link: float = 0.0

    @property
    def total(self) -> float:
        return self.stage1_adc + self.stage2_adc + self.pooling + self.link

    @property
    def total_mj(self) -> float:
        return self.total * 1e3

    def share(self, component: str) -> float:
        """Fraction of total energy in one component (by attribute name)."""
        value = getattr(self, component)
        return value / self.total if self.total > 0 else 0.0


@dataclass(frozen=True)
class EnergyModel:
    """Energy coefficients of the sensing front end.

    Attributes:
        adc_energy_per_conversion: joules per ADC sample.
        pooling_energy_per_output: joules per analog pooled output.
        link_energy_per_byte: joules per byte moved (0 = paper's model).
    """

    adc_energy_per_conversion: float = ADC_ENERGY_PER_CONVERSION
    pooling_energy_per_output: float = POOLING_ENERGY_PER_OUTPUT
    link_energy_per_byte: float = 0.0

    def conventional_frame(self, n: int, m: int) -> EnergyBreakdown:
        """Baseline: convert and ship the entire RGB frame.

        Args:
            n, m: pixel-array width/height.
        """
        conversions = n * m * 3
        return EnergyBreakdown(
            stage1_adc=0.0,
            stage2_adc=conversions * self.adc_energy_per_conversion,
            link=conversions * self.link_energy_per_byte,
        )

    def hirise_frame(
        self,
        n: int,
        m: int,
        k: int,
        rois: Sequence[ROI] | Sequence[tuple[int, int]],
        grayscale: bool = False,
    ) -> EnergyBreakdown:
        """HiRISE: pooled stage-1 frame plus full-resolution ROIs.

        Args:
            n, m: pixel-array width/height.
            k: pooling size.
            rois: stage-2 ROI set (objects or ``(W, H)`` tuples).
            grayscale: stage-1 channels merged in the analog domain.
        """
        stage1 = hirise_stage1_costs(n, m, k, p_adc=8, grayscale=grayscale)
        roi_list = [
            r if isinstance(r, ROI) else ROI(0, 0, int(r[0]), int(r[1])) for r in rois
        ]
        stage2_conversions = 3 * total_area(roi_list)
        link_bytes = stage1.adc_conversions + stage2_conversions
        return EnergyBreakdown(
            stage1_adc=stage1.adc_conversions * self.adc_energy_per_conversion,
            stage2_adc=stage2_conversions * self.adc_energy_per_conversion,
            pooling=stage1.adc_conversions * self.pooling_energy_per_output,
            link=link_bytes * self.link_energy_per_byte,
        )

    def from_conversions(
        self, stage1_conversions: int, stage2_conversions: int, pooled_outputs: int = 0
    ) -> EnergyBreakdown:
        """Breakdown from measured conversion counts (pipeline accounting)."""
        return EnergyBreakdown(
            stage1_adc=stage1_conversions * self.adc_energy_per_conversion,
            stage2_adc=stage2_conversions * self.adc_energy_per_conversion,
            pooling=pooled_outputs * self.pooling_energy_per_output,
            link=(stage1_conversions + stage2_conversions) * self.link_energy_per_byte,
        )
