"""Temporal ROI tracking: amortizing stage 1 across video frames.

The paper evaluates single exposures; the natural deployment is a video
stream, where running the stage-1 detector on *every* frame wastes the
energy HiRISE just saved.  This module implements the obvious extension:

* run stage 1 (pooled frame + detector) every ``keyframe_interval`` frames;
* on intermediate frames, *predict* the ROIs from recent motion (constant-
  velocity extrapolation of matched boxes) and inflate them by a safety
  margin, so the sensor reads slightly larger windows instead of paying for
  a full stage-1 conversion;
* fall back to a keyframe early when tracking confidence decays (too few
  matched boxes).

The tracker is deliberately simple — greedy IoU matching plus constant-
velocity prediction — because its role is cost amortization, not SOTA MOT.
:class:`VideoHiRISEPipeline` wires it around :class:`HiRISEPipeline` and
accounts energy/transfer per frame, so the amortization is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .config import HiRISEConfig
from .pipeline import HiRISEPipeline, PipelineOutcome
from .roi import ROI


@dataclass
class Track:
    """One tracked object: current box plus a velocity estimate.

    Attributes:
        roi: last confirmed/predicted box.
        vx, vy: estimated center velocity in px/frame.
        age: frames since the track was last confirmed by a detector.
        track_id: stable identifier.
        hits: number of detector confirmations received so far.
        anchor_cx, anchor_cy: box center at the last *confirmation*.  The
            velocity observation must be measured from here — ``roi`` may
            have been advanced by :meth:`ROITracker.predict` in between, and
            measuring displacement from an already-advanced box would
            under-estimate the velocity by exactly the part applied.
    """

    roi: ROI
    vx: float = 0.0
    vy: float = 0.0
    age: int = 0
    track_id: int = 0
    hits: int = 1
    anchor_cx: float = field(default=0.0, init=False, repr=False)
    anchor_cy: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        self.rebase_anchor()

    def rebase_anchor(self) -> None:
        """Pin the velocity-observation anchor to the current box center."""
        self.anchor_cx = self.roi.x + self.roi.w / 2.0
        self.anchor_cy = self.roi.y + self.roi.h / 2.0


@dataclass
class ROITracker:
    """Greedy-IoU multi-object tracker over ROI sets.

    Matching prefers IoU, but a moving object can fully vacate its old box
    between keyframes, so a center-distance gate (scaled by the box size
    and the frames elapsed, i.e. the plausible travel) acts as fallback —
    that is what lets the tracker *learn* velocities at keyframes.

    Attributes:
        match_iou: minimum IoU to associate a detection with a track.
        match_dist: distance-gate factor: a detection within
            ``match_dist * max(w, h) * frames_elapsed`` of the track center
            may match even with zero IoU.
        max_age: drop tracks not confirmed for this many frames.
        inflate_per_frame: safety margin added per predicted frame (each
            side grows by this fraction for every frame of age).
        velocity_smoothing: EMA factor for the velocity estimate.
    """

    match_iou: float = 0.3
    match_dist: float = 0.8
    max_age: int = 4
    inflate_per_frame: float = 0.08
    velocity_smoothing: float = 0.5
    _tracks: list[Track] = field(default_factory=list)
    _next_id: int = 0

    @property
    def tracks(self) -> tuple[Track, ...]:
        return tuple(self._tracks)

    def reset(self) -> None:
        """Drop all tracks and identifiers (e.g. at a new clip boundary)."""
        self._tracks = []
        self._next_id = 0

    def confirm(self, detections: Sequence[ROI]) -> list[Track]:
        """Update tracks with a fresh stage-1 detection set (keyframe).

        Greedy best-IoU matching; unmatched detections start new tracks,
        unmatched old tracks age out.

        Returns:
            The live track list after the update.
        """
        detections = list(detections)
        unmatched = set(range(len(detections)))
        survivors: list[Track] = []
        for track in sorted(self._tracks, key=lambda t: -(t.roi.score or 0.0)):
            best_j, best_iou = -1, self.match_iou
            for j in unmatched:
                iou = track.roi.iou(detections[j])
                if iou > best_iou:
                    best_j, best_iou = j, iou
            if best_j < 0:
                # Distance-gate fallback: closest detection within the
                # plausible travel of this track since its last confirm.
                # Plausible travel spans the frames since the last confirm
                # plus the confirming frame itself (the ``age + 1``
                # convention of the velocity estimate below).
                gate = (
                    self.match_dist
                    * max(track.roi.w, track.roi.h)
                    * (track.age + 1)
                )
                best_d = gate
                cx = track.roi.x + track.roi.w / 2.0
                cy = track.roi.y + track.roi.h / 2.0
                for j in unmatched:
                    det = detections[j]
                    d = float(
                        np.hypot(
                            det.x + det.w / 2.0 - cx, det.y + det.h / 2.0 - cy
                        )
                    )
                    if d < best_d:
                        best_j, best_d = j, d
            if best_j >= 0:
                det = detections[best_j]
                unmatched.discard(best_j)
                new_cx = det.x + det.w / 2.0
                new_cy = det.y + det.h / 2.0
                # Displacement since the last confirmation (the anchor) —
                # not since the possibly prediction-advanced current box.
                # ``age`` counts the frames *between* the two confirmations
                # (predictions and misses); the confirming frame itself is
                # one more step.
                frames = track.age + 1
                raw_vx = (new_cx - track.anchor_cx) / frames
                raw_vy = (new_cy - track.anchor_cy) / frames
                if track.hits == 1:
                    # First re-confirmation: adopt the observed velocity
                    # outright (EMA from the zero prior would halve it).
                    track.vx, track.vy = raw_vx, raw_vy
                else:
                    alpha = self.velocity_smoothing
                    track.vx = alpha * track.vx + (1 - alpha) * raw_vx
                    track.vy = alpha * track.vy + (1 - alpha) * raw_vy
                track.roi = det
                track.rebase_anchor()
                track.age = 0
                track.hits += 1
                survivors.append(track)
            else:
                track.age += 1
                if track.age <= self.max_age:
                    survivors.append(track)
        for j in sorted(unmatched):
            survivors.append(Track(roi=detections[j], track_id=self._next_id))
            self._next_id += 1
        self._tracks = survivors
        return survivors

    def predict(self) -> list[ROI]:
        """Advance every track one frame and return the readout windows."""
        rois: list[ROI] = []
        for track in self._tracks:
            track.age += 1
            track.roi = ROI(
                int(round(track.roi.x + track.vx)),
                int(round(track.roi.y + track.vy)),
                track.roi.w,
                track.roi.h,
                track.roi.score,
                track.roi.label,
            )
            rois.append(track.roi.pad(self.inflate_per_frame * track.age))
        return rois

    def healthy(self, min_tracks: int = 1) -> bool:
        """True while enough recently-confirmed tracks remain."""
        fresh = [t for t in self._tracks if t.age <= self.max_age]
        return len(fresh) >= min_tracks


@dataclass
class VideoFrameResult:
    """Per-frame record of the video pipeline."""

    frame_index: int
    is_keyframe: bool
    outcome: PipelineOutcome

    @property
    def energy(self) -> float:
        return self.outcome.energy.total

    @property
    def transfer_bytes(self) -> int:
        return self.outcome.ledger.total_bytes


@dataclass
class VideoHiRISEPipeline:
    """HiRISE over a frame sequence with keyframe-amortized stage 1.

    Attributes:
        pipeline: the single-frame HiRISE pipeline (must have a detector).
        keyframe_interval: run stage 1 every N frames (1 = every frame).
        tracker: the ROI tracker used between keyframes.
        min_tracks: force an early keyframe when fewer fresh tracks remain.
        warmup_keyframes: number of consecutive keyframes at clip start —
            two are needed before any velocity can be estimated.
    """

    pipeline: HiRISEPipeline
    keyframe_interval: int = 4
    tracker: ROITracker = field(default_factory=ROITracker)
    min_tracks: int = 1
    warmup_keyframes: int = 2

    def __post_init__(self) -> None:
        if self.keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")

    def run(
        self,
        frames: Sequence[np.ndarray],
        on_frame=None,
    ) -> list[VideoFrameResult]:
        """Process a clip; returns per-frame results.

        Keyframes run the full HiRISE two-stage flow; tracked frames skip
        stage 1 entirely (no pooled-frame conversion, no detector) and read
        only the predicted ROI windows.

        Args:
            frames: the clip, one image per frame.
            on_frame: optional ``callable(frame_index)`` invoked before each
                frame is processed — lets stateful detectors (or loggers)
                know which frame a keyframe detection belongs to.
        """
        results: list[VideoFrameResult] = []
        since_key = self.keyframe_interval  # force a keyframe at t=0
        for idx, frame in enumerate(frames):
            if on_frame is not None:
                on_frame(idx)
            need_key = (
                idx < self.warmup_keyframes
                or since_key >= self.keyframe_interval
                or not self.tracker.healthy(self.min_tracks)
            )
            if need_key:
                outcome = self.pipeline.run(frame, frame_seed=idx)
                self.tracker.confirm(outcome.rois)
                since_key = 1
                results.append(VideoFrameResult(idx, True, outcome))
            else:
                predicted = self.tracker.predict()
                outcome = self._tracked_frame(frame, predicted, idx)
                since_key += 1
                results.append(VideoFrameResult(idx, False, outcome))
        return results

    def _tracked_frame(
        self, frame: np.ndarray, rois: Sequence[ROI], frame_seed: int
    ) -> PipelineOutcome:
        """Stage-2-only readout of predicted windows (no stage-1 cost)."""
        return self.pipeline.run_stage2_only(frame, rois, frame_seed=frame_seed)
