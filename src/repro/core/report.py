"""Comparison reports: HiRISE vs conventional, in paper-style units."""

from __future__ import annotations

from dataclasses import dataclass

from .pipeline import PipelineOutcome


def format_bytes(n: float) -> str:
    """Human-readable byte count.

    Uses decimal units (1 kB = 1000 B), matching the paper's tables (their
    2560x1920 baseline of 14,745,600 B is printed as 14,746 kB).
    """
    if n < 1000:
        return f"{n:.0f} B"
    if n < 1000**2:
        return f"{n / 1000:.1f} kB"
    return f"{n / 1000**2:.2f} MB"


def format_energy(joules: float) -> str:
    """Human-readable energy (paper uses mJ and nJ)."""
    if joules >= 1e-3:
        return f"{joules * 1e3:.3f} mJ"
    if joules >= 1e-6:
        return f"{joules * 1e6:.2f} uJ"
    return f"{joules * 1e9:.2f} nJ"


@dataclass(frozen=True)
class Comparison:
    """Reduction factors of HiRISE over the baseline for one scene.

    Attributes:
        transfer_reduction: baseline / HiRISE total link bytes.
        energy_reduction: baseline / HiRISE sensor energy.
        memory_reduction: baseline / HiRISE peak image memory.
        conversion_reduction: baseline / HiRISE ADC conversions.
    """

    transfer_reduction: float
    energy_reduction: float
    memory_reduction: float
    conversion_reduction: float


def compare(hirise: PipelineOutcome, baseline: PipelineOutcome) -> Comparison:
    """Reduction factors between two pipeline outcomes on the same scene.

    Raises:
        ValueError: when the outcomes come from different array sizes or
            the systems are swapped.
    """
    if hirise.system != "hirise" or baseline.system != "conventional":
        raise ValueError("expected (hirise, conventional) outcomes in that order")
    if hirise.array_resolution != baseline.array_resolution:
        raise ValueError("outcomes are from different pixel-array sizes")

    def ratio(old: float, new: float) -> float:
        return old / new if new > 0 else float("inf")

    baseline_conversions = baseline.stage1_conversions + baseline.stage2_conversions
    hirise_conversions = hirise.stage1_conversions + hirise.stage2_conversions
    return Comparison(
        transfer_reduction=ratio(baseline.ledger.total_bytes, hirise.ledger.total_bytes),
        energy_reduction=ratio(baseline.energy.total, hirise.energy.total),
        memory_reduction=ratio(
            baseline.peak_image_memory_bytes, hirise.peak_image_memory_bytes
        ),
        conversion_reduction=ratio(baseline_conversions, hirise_conversions),
    )


def comparison_report(hirise: PipelineOutcome, baseline: PipelineOutcome) -> str:
    """Side-by-side text report for one scene."""
    cmp = compare(hirise, baseline)
    rows = [
        ("data transfer", format_bytes(baseline.ledger.total_bytes),
         format_bytes(hirise.ledger.total_bytes), cmp.transfer_reduction),
        ("sensor energy", format_energy(baseline.energy.total),
         format_energy(hirise.energy.total), cmp.energy_reduction),
        ("peak image memory", format_bytes(baseline.peak_image_memory_bytes),
         format_bytes(hirise.peak_image_memory_bytes), cmp.memory_reduction),
        ("ADC conversions",
         f"{baseline.stage1_conversions + baseline.stage2_conversions:,}",
         f"{hirise.stage1_conversions + hirise.stage2_conversions:,}",
         cmp.conversion_reduction),
    ]
    w, h = hirise.array_resolution
    lines = [
        f"HiRISE vs conventional @ {w}x{h} "
        f"({len(hirise.rois)} ROIs read out)",
        f"  {'metric':<20}{'baseline':>14}{'hirise':>14}{'reduction':>12}",
    ]
    for name, old, new, red in rows:
        lines.append(f"  {name:<20}{old:>14}{new:>14}{red:>10.1f}x")
    return "\n".join(lines)
