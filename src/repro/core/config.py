"""HiRISE system configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields


@dataclass(frozen=True)
class HiRISEConfig:
    """Knobs of the end-to-end HiRISE system.

    Attributes:
        pool_k: analog pooling size for the stage-1 frame (the paper sweeps
            2, 4, 8; for Table 3 it picks k so the pooled frame is 320x240).
        grayscale_stage1: merge color channels in the analog domain for the
            stage-1 frame (the optional 3x compression circuit).
        adc_bits: ADC precision (paper: 8).
        roi_pad_fraction: context margin added to each ROI before readout.
        min_roi_px: discard conditioned ROIs smaller than this per side.
        max_rois: cap on ROIs sent back to the sensor (None = unlimited).
        dedup_contained: drop ROIs fully inside another before readout.
        merge_roi_iou: if set, merge ROI pairs overlapping above this IoU
            into a single readout window.
        score_threshold: minimum stage-1 confidence for an ROI to be used.
    """

    pool_k: int = 8
    grayscale_stage1: bool = False
    adc_bits: int = 8
    roi_pad_fraction: float = 0.0
    min_roi_px: int = 2
    max_rois: int | None = None
    dedup_contained: bool = True
    merge_roi_iou: float | None = None
    score_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.pool_k < 1:
            raise ValueError("pool_k must be >= 1")
        if not 1 <= self.adc_bits <= 16:
            raise ValueError("adc_bits must be in [1, 16]")
        if self.roi_pad_fraction < 0:
            raise ValueError("roi_pad_fraction must be non-negative")
        if self.min_roi_px < 1:
            raise ValueError("min_roi_px must be >= 1")
        if self.max_rois is not None and self.max_rois < 1:
            raise ValueError("max_rois must be >= 1 when set")

    def to_dict(self) -> dict:
        """Plain-data form of the config (JSON-safe; see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HiRISEConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Raises:
            ValueError: on unknown fields (named, with the valid set) or on
                values the constructor rejects.
        """
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"HiRISEConfig: unknown field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        return cls(**data)

    @classmethod
    def for_stage1_resolution(
        cls,
        array_resolution: tuple[int, int],
        stage1_resolution: tuple[int, int] = (320, 240),
        **kwargs,
    ) -> "HiRISEConfig":
        """Pick ``pool_k`` so the pooled frame hits a target resolution.

        This is the paper's Table 3 setting: "we use pooling such that the
        output resolution for the stage-1 model is 320x240".

        Args:
            array_resolution: ``(width, height)`` of the pixel array.
            stage1_resolution: desired pooled ``(width, height)``.
            **kwargs: forwarded to the constructor (any field but ``pool_k``,
                which this method derives).

        Raises:
            TypeError: on ``pool_k`` or unknown config fields in ``kwargs``,
                naming the offending keys.
            ValueError: when the array is not the same integer multiple of
                the stage-1 resolution on both axes, naming the values.
        """
        if "pool_k" in kwargs:
            raise TypeError(
                "for_stage1_resolution() derives pool_k from the resolutions; "
                f"got explicit pool_k={kwargs['pool_k']!r}"
            )
        valid = {f.name for f in fields(cls)} - {"pool_k"}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise TypeError(
                f"for_stage1_resolution() got unknown config field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        aw, ah = array_resolution
        sw, sh = stage1_resolution
        if aw % sw or ah % sh:
            raise ValueError(
                f"array {aw}x{ah} is not an integer multiple of stage-1 "
                f"{sw}x{sh} (width remainder {aw % sw}, height remainder {ah % sh})"
            )
        if aw // sw != ah // sh:
            raise ValueError(
                f"array {aw}x{ah} needs one pooling factor for both axes to "
                f"reach stage-1 {sw}x{sh}: width gives k={aw // sw} but height "
                f"gives k={ah // sh}"
            )
        return cls(pool_k=aw // sw, **kwargs)
