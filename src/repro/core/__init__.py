"""HiRISE core: ROI algebra, analytical cost model, energy model, pipelines."""

from .config import HiRISEConfig
from .costs import (
    CostBreakdown,
    StageCosts,
    WORD_BITS,
    WORDS_PER_ROI,
    conventional_costs,
    hirise_costs,
    hirise_stage1_costs,
    hirise_stage2_costs,
    roi_feedback_bits,
)
from .energy import (
    ADC_ENERGY_PER_CONVERSION,
    EnergyBreakdown,
    EnergyModel,
    POOLING_ENERGY_PER_OUTPUT,
)
from .pipeline import (
    ConventionalPipeline,
    HiRISEPipeline,
    PipelineOutcome,
    classify_crops,
)
from .profiling import PhaseProfile, PhaseProfiler, PhaseStats, profiled
from .tracking import ROITracker, Track, VideoFrameResult, VideoHiRISEPipeline
from .report import Comparison, compare, comparison_report, format_bytes, format_energy
from .roi import (
    ROI,
    dedup_contained,
    merge_overlapping,
    prepare_rois,
    total_area,
    union_area,
)

__all__ = [
    "ADC_ENERGY_PER_CONVERSION",
    "Comparison",
    "ConventionalPipeline",
    "CostBreakdown",
    "EnergyBreakdown",
    "EnergyModel",
    "HiRISEConfig",
    "HiRISEPipeline",
    "POOLING_ENERGY_PER_OUTPUT",
    "PhaseProfile",
    "PhaseProfiler",
    "PhaseStats",
    "PipelineOutcome",
    "ROI",
    "ROITracker",
    "Track",
    "VideoFrameResult",
    "VideoHiRISEPipeline",
    "StageCosts",
    "WORD_BITS",
    "WORDS_PER_ROI",
    "classify_crops",
    "compare",
    "comparison_report",
    "conventional_costs",
    "dedup_contained",
    "format_bytes",
    "format_energy",
    "hirise_costs",
    "hirise_stage1_costs",
    "hirise_stage2_costs",
    "merge_overlapping",
    "prepare_rois",
    "profiled",
    "roi_feedback_bits",
    "total_area",
    "union_area",
]
