"""ROI algebra: the region-of-interest type and its geometric operations.

An :class:`ROI` is what flows backwards over the link in HiRISE: the stage-1
model's box, expressed in *pixel-array* coordinates, that the sensor's
selection encoder will read out at full resolution.  The operations here are
the ones the end-to-end system needs:

* scaling between the pooled stage-1 frame and the full-resolution array;
* clipping to the array and padding (context margins for stage 2);
* containment dedup and IoU-based merging (what the encoder does to avoid
  converting the same pixels twice);
* exact union area of a set of ROIs — the paper's "intersection over the
  union of all the ROI boxes" quantity governing stage-2 transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class ROI:
    """An axis-aligned region of interest in integer pixel coordinates.

    Attributes:
        x, y: top-left corner.
        w, h: width and height (must be positive).
        score: optional stage-1 confidence.
        label: optional stage-1 class.
    """

    x: int
    y: int
    w: int
    h: int
    score: float | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError(f"ROI must have positive size, got {self.w}x{self.h}")

    # -- conversions ------------------------------------------------------------

    @classmethod
    def from_detection(cls, det, scale: float = 1.0) -> "ROI":
        """Build from a detection-like object (``x/y/w/h/score/label``).

        Args:
            det: object with box attributes (e.g. ``repro.ml.Detection``).
            scale: multiply coordinates by this (stage-1 frames are pooled
                by ``k``, so boxes scale by ``k`` back to array space).
        """
        x = int(np.floor(det.x * scale))
        y = int(np.floor(det.y * scale))
        w = max(int(np.ceil(det.w * scale)), 1)
        h = max(int(np.ceil(det.h * scale)), 1)
        return cls(x, y, w, h, getattr(det, "score", None), getattr(det, "label", None))

    @property
    def xywh(self) -> tuple[int, int, int, int]:
        return (self.x, self.y, self.w, self.h)

    @property
    def area(self) -> int:
        return self.w * self.h

    @property
    def x2(self) -> int:
        return self.x + self.w

    @property
    def y2(self) -> int:
        return self.y + self.h

    # -- geometry ---------------------------------------------------------------

    def clip(self, width: int, height: int) -> "ROI | None":
        """Clip to a ``width x height`` array; ``None`` if nothing remains."""
        x0, y0 = max(self.x, 0), max(self.y, 0)
        x1, y1 = min(self.x2, width), min(self.y2, height)
        if x1 <= x0 or y1 <= y0:
            return None
        return replace(self, x=x0, y=y0, w=x1 - x0, h=y1 - y0)

    def pad(self, fraction: float) -> "ROI":
        """Grow symmetrically by ``fraction`` of each side (context margin)."""
        if fraction < 0:
            raise ValueError("pad fraction must be non-negative")
        dx = int(round(self.w * fraction))
        dy = int(round(self.h * fraction))
        return replace(self, x=self.x - dx, y=self.y - dy, w=self.w + 2 * dx, h=self.h + 2 * dy)

    def scaled(self, factor: float) -> "ROI":
        """Scale the box by ``factor`` (pooled frame -> array coordinates)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ROI(
            int(np.floor(self.x * factor)),
            int(np.floor(self.y * factor)),
            max(int(np.ceil(self.w * factor)), 1),
            max(int(np.ceil(self.h * factor)), 1),
            self.score,
            self.label,
        )

    def iou(self, other: "ROI") -> float:
        """Intersection over union with another ROI."""
        ix = max(0, min(self.x2, other.x2) - max(self.x, other.x))
        iy = max(0, min(self.y2, other.y2) - max(self.y, other.y))
        inter = ix * iy
        union = self.area + other.area - inter
        return inter / union if union > 0 else 0.0

    def contains(self, other: "ROI") -> bool:
        """True when ``other`` lies entirely inside this ROI."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def union_with(self, other: "ROI") -> "ROI":
        """Smallest ROI covering both (label/score from the higher score)."""
        x0, y0 = min(self.x, other.x), min(self.y, other.y)
        x1, y1 = max(self.x2, other.x2), max(self.y2, other.y2)
        a, b = (self, other)
        if (b.score or 0.0) > (a.score or 0.0):
            a = other
        return ROI(x0, y0, x1 - x0, y1 - y0, a.score, a.label)


def total_area(rois: Sequence[ROI]) -> int:
    """Sum of ROI areas (double-counts overlaps): the paper's ΣWᵢHᵢ."""
    return int(sum(r.area for r in rois))


def union_area(rois: Sequence[ROI]) -> int:
    """Exact area of the union of the ROIs (no double counting).

    Sweep over compressed x-intervals, unioning y-intervals in each strip —
    O(n^2 log n), plenty for per-frame box counts.
    """
    if not rois:
        return 0
    xs = sorted({r.x for r in rois} | {r.x2 for r in rois})
    area = 0
    for x0, x1 in zip(xs, xs[1:]):
        strip_w = x1 - x0
        if strip_w <= 0:
            continue
        intervals = sorted(
            (r.y, r.y2) for r in rois if r.x <= x0 and r.x2 >= x1
        )
        covered = 0
        cur_start: int | None = None
        cur_end = 0
        for y0, y1 in intervals:
            if cur_start is None:
                cur_start, cur_end = y0, y1
            elif y0 <= cur_end:
                cur_end = max(cur_end, y1)
            else:
                covered += cur_end - cur_start
                cur_start, cur_end = y0, y1
        if cur_start is not None:
            covered += cur_end - cur_start
        area += strip_w * covered
    return int(area)


def dedup_contained(rois: Sequence[ROI]) -> list[ROI]:
    """Drop ROIs fully contained in another (largest-first scan)."""
    kept: list[ROI] = []
    for roi in sorted(rois, key=lambda r: r.area, reverse=True):
        if not any(k.contains(roi) for k in kept):
            kept.append(roi)
    return kept


def merge_overlapping(rois: Sequence[ROI], iou_threshold: float = 0.5) -> list[ROI]:
    """Iteratively merge ROI pairs with IoU above the threshold.

    Used by the selection encoder to coalesce heavily-overlapping boxes
    into a single readout window (trading a little extra area for fewer
    transactions).
    """
    if iou_threshold <= 0:
        raise ValueError("iou_threshold must be positive")
    pool = list(rois)
    merged = True
    while merged:
        merged = False
        out: list[ROI] = []
        while pool:
            roi = pool.pop()
            for i, other in enumerate(out):
                if roi.iou(other) >= iou_threshold:
                    out[i] = roi.union_with(other)
                    merged = True
                    break
            else:
                out.append(roi)
        pool = out
    return pool


def prepare_rois(
    rois: Iterable[ROI],
    array_width: int,
    array_height: int,
    pad_fraction: float = 0.0,
    min_side_px: int = 2,
    max_rois: int | None = None,
    drop_contained: bool = True,
    merge_iou: float | None = None,
) -> list[ROI]:
    """The selection encoder's full ROI conditioning pipeline.

    Order: pad -> clip -> size filter -> (score sort + cap) -> containment
    dedup -> optional IoU merge.

    Args:
        rois: raw stage-1 ROIs in array coordinates.
        array_width, array_height: sensor dimensions.
        pad_fraction: context margin added before clipping.
        min_side_px: discard ROIs smaller than this on either side.
        max_rois: keep only the top-scoring boxes (None = no cap).
        drop_contained: remove fully-contained duplicates.
        merge_iou: if set, merge pairs overlapping above this IoU.

    Returns:
        Conditioned ROI list, ready for :meth:`SensorReadout.read_rois`.
    """
    conditioned: list[ROI] = []
    for roi in rois:
        if pad_fraction > 0:
            roi = roi.pad(pad_fraction)
        clipped = roi.clip(array_width, array_height)
        if clipped is None:
            continue
        if clipped.w < min_side_px or clipped.h < min_side_px:
            continue
        conditioned.append(clipped)
    conditioned.sort(key=lambda r: -(r.score or 0.0))
    if max_rois is not None:
        conditioned = conditioned[:max_rois]
    if drop_contained:
        conditioned = dedup_contained(conditioned)
    if merge_iou is not None:
        conditioned = merge_overlapping(conditioned, merge_iou)
    return conditioned
