"""The paper's Table 1: analytical data-transfer / memory / ADC relations.

All quantities are derived from five parameters: the pixel array ``n x m``
(width x height), the ADC precision ``P_ADC``, the pooling size ``k``, the
ROI set ``{(W_i, H_i)}``, and the stage-1 colorspace.  The three governing
conditions (paper Eqs. 1-3) fall out as properties of
:class:`CostBreakdown`:

* ``D_new = D1(S->P) + D1(P->S) + D2(S->P)  <<  D_old``
* ``Mem_new = max(M1(S->P), M2(S->P))       <<  Mem_old``
* ``C_new = C1(S->P) + C2(S->P)             <<  C_old``

A note on the stage-1 colorspace: Table 1 writes the stage-1 row as
``(n x m)/k^2`` (grayscale — the 3x channel merge is folded into the analog
compression), while the Fig. 7/8 measurements use RGB pooled frames
(``3(n x m)/k^2``); back-solving their reported reduction factors confirms
it.  The ``grayscale`` flag selects between the two conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .roi import ROI, total_area, union_area

#: Bits per ROI descriptor word in D1(P->S) (16-bit coordinates).
WORD_BITS = 16

#: Words per ROI descriptor (x, y, W, H).
WORDS_PER_ROI = 4


def _check_frame(n: int, m: int, p_adc: int) -> None:
    if n < 1 or m < 1:
        raise ValueError(f"invalid pixel array {n}x{m}")
    if not 1 <= p_adc <= 16:
        raise ValueError("P_ADC must be in [1, 16]")


@dataclass(frozen=True)
class StageCosts:
    """One row of Table 1.

    Attributes:
        data_transfer_bits: bits moved over the link.
        memory_bits: bits that must be resident in processor memory.
        adc_conversions: analog-to-digital conversions performed.
    """

    data_transfer_bits: int
    memory_bits: int
    adc_conversions: int

    @property
    def data_transfer_bytes(self) -> float:
        return self.data_transfer_bits / 8.0

    @property
    def memory_bytes(self) -> float:
        return self.memory_bits / 8.0


def conventional_costs(n: int, m: int, p_adc: int = 8) -> StageCosts:
    """Table 1, "Conventional" row: ship the full RGB frame.

    Args:
        n: array width in pixels.
        m: array height in pixels.
        p_adc: ADC precision in bits.
    """
    _check_frame(n, m, p_adc)
    sites = n * m * 3
    return StageCosts(
        data_transfer_bits=sites * p_adc,
        memory_bits=sites * p_adc,
        adc_conversions=sites,
    )


def hirise_stage1_costs(
    n: int,
    m: int,
    k: int,
    p_adc: int = 8,
    grayscale: bool = True,
) -> StageCosts:
    """Table 1, "HiRISE Stage-1" S->P row: the pooled frame.

    Args:
        n, m: array width/height.
        k: pooling size.
        p_adc: ADC precision in bits.
        grayscale: merge channels in the analog domain (Table 1's
            convention); False gives the RGB pooled frame of Figs. 7/8.
    """
    _check_frame(n, m, p_adc)
    if k < 1 or k > min(n, m):
        raise ValueError(f"pooling size {k} invalid for {n}x{m}")
    channels = 1 if grayscale else 3
    pixels = (n // k) * (m // k) * channels
    return StageCosts(
        data_transfer_bits=pixels * p_adc,
        memory_bits=pixels * p_adc,
        adc_conversions=pixels,
    )


def roi_feedback_bits(n_rois: int, word_bits: int = WORD_BITS) -> int:
    """Table 1's ``D1(P->S) = j * (4 * Words)`` in bits."""
    if n_rois < 0:
        raise ValueError("n_rois must be non-negative")
    return n_rois * WORDS_PER_ROI * word_bits

def hirise_stage2_costs(
    rois: Sequence[ROI] | Sequence[tuple[int, int]],
    p_adc: int = 8,
    dedup_overlaps: bool = False,
) -> StageCosts:
    """Table 1, "HiRISE Stage-2" row: full-resolution ROI pixels.

    Args:
        rois: ROI objects, or bare ``(W, H)`` tuples.
        p_adc: ADC precision in bits.
        dedup_overlaps: if True and full ROIs are given, count the *union*
            of the boxes (overlapping pixels converted once); otherwise the
            paper's ΣWᵢHᵢ.
    """
    if not 1 <= p_adc <= 16:
        raise ValueError("P_ADC must be in [1, 16]")
    roi_list = [r if isinstance(r, ROI) else ROI(0, 0, int(r[0]), int(r[1])) for r in rois]
    if dedup_overlaps:
        if not all(isinstance(r, ROI) for r in rois):
            raise ValueError("dedup_overlaps requires positioned ROI objects")
        area = union_area(list(rois))
    else:
        area = total_area(roi_list)
    sites = 3 * area
    return StageCosts(
        data_transfer_bits=sites * p_adc,
        memory_bits=sites * p_adc,
        adc_conversions=sites,
    )


@dataclass(frozen=True)
class CostBreakdown:
    """Full Table 1 evaluation for one configuration.

    Attributes:
        conventional: the baseline row.
        stage1: HiRISE stage-1 S->P row.
        feedback_bits: D1(P->S) descriptor bits.
        stage2: HiRISE stage-2 row.
    """

    conventional: StageCosts
    stage1: StageCosts
    feedback_bits: int
    stage2: StageCosts

    # -- Eq. 1: data transfer ------------------------------------------------------

    @property
    def hirise_transfer_bits(self) -> int:
        return (
            self.stage1.data_transfer_bits
            + self.feedback_bits
            + self.stage2.data_transfer_bits
        )

    @property
    def transfer_reduction(self) -> float:
        """``D_old / D_new`` — how many times less data HiRISE moves."""
        new = self.hirise_transfer_bits
        return self.conventional.data_transfer_bits / new if new else float("inf")

    # -- Eq. 2: memory ------------------------------------------------------------

    @property
    def hirise_peak_memory_bits(self) -> int:
        """``max(M1, M2)`` — stage-1 frame is dropped before stage 2."""
        return max(self.stage1.memory_bits, self.stage2.memory_bits)

    @property
    def memory_reduction(self) -> float:
        new = self.hirise_peak_memory_bits
        return self.conventional.memory_bits / new if new else float("inf")

    # -- Eq. 3: conversions ----------------------------------------------------------

    @property
    def hirise_conversions(self) -> int:
        return self.stage1.adc_conversions + self.stage2.adc_conversions

    @property
    def conversion_reduction(self) -> float:
        new = self.hirise_conversions
        return self.conventional.adc_conversions / new if new else float("inf")

    def satisfies_paper_conditions(self) -> bool:
        """All three << conditions hold (interpreted as strictly better)."""
        return (
            self.transfer_reduction > 1.0
            and self.memory_reduction > 1.0
            and self.conversion_reduction > 1.0
        )


def hirise_costs(
    n: int,
    m: int,
    k: int,
    rois: Sequence[ROI] | Sequence[tuple[int, int]],
    p_adc: int = 8,
    grayscale: bool = True,
    dedup_overlaps: bool = False,
) -> CostBreakdown:
    """Evaluate all of Table 1 for one configuration.

    Args:
        n, m: pixel-array width/height.
        k: pooling size.
        rois: stage-2 ROI set.
        p_adc: ADC precision.
        grayscale: stage-1 colorspace convention (see module docstring).
        dedup_overlaps: count overlapping ROI pixels once in stage 2.

    Returns:
        :class:`CostBreakdown`.
    """
    roi_count = len(list(rois))
    return CostBreakdown(
        conventional=conventional_costs(n, m, p_adc),
        stage1=hirise_stage1_costs(n, m, k, p_adc, grayscale),
        feedback_bits=roi_feedback_bits(roi_count),
        stage2=hirise_stage2_costs(rois, p_adc, dedup_overlaps),
    )
