"""Phase-level wall-clock profiling for the serving hot path.

The perf trajectory the ROADMAP asks for needs *observability* before
optimization claims mean anything: where does one request actually spend
its time?  :class:`PhaseProfiler` is a tiny nested phase timer the
pipelines thread through their phase methods:

* a **phase** is a named ``with profiler.phase("detect"):`` span;
* phases **nest** — opening a phase inside another records the inner span
  under the dotted path of the stack (``"stage2" -> "stage2.classify"``);
  dotted names are also accepted directly (``"stage1.read"``) when the
  parent span has no useful time of its own;
* repeated spans **accumulate** (calls + total seconds per path), so one
  profiler carries a whole stream's per-frame phases.

:meth:`PhaseProfiler.snapshot` freezes the counters into a
:class:`PhaseProfile` — plain data (picklable, JSON-ready via
:meth:`PhaseProfile.to_dict`) that rides on
:class:`~repro.service.RunResult` and merges across a batch.  The
canonical taxonomy the pipelines emit (see ``docs/architecture.md``):
``expose`` (scene -> pixel array), ``stage1.read`` (pool + ADC),
``detect``, ``condition``, ``stage2.read``, ``stage2.classify``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Callable, Iterable


@dataclass(frozen=True)
class PhaseStats:
    """Accumulated wall-clock for one phase path.

    Attributes:
        path: dotted phase path (``"stage2.classify"``).
        calls: how many spans were recorded under this path.
        total_s: summed wall-clock seconds across those spans.
    """

    path: str
    calls: int
    total_s: float

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a top-level phase)."""
        return self.path.count(".")

    def to_dict(self) -> dict:
        return {"path": self.path, "calls": self.calls, "total_s": self.total_s}

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseStats":
        """Rebuild a row from its :meth:`to_dict` form (exact round-trip)."""
        return cls(
            path=data["path"], calls=data["calls"], total_s=data["total_s"]
        )


@dataclass(frozen=True)
class PhaseProfile:
    """A frozen snapshot of a profiler: one row per phase path.

    Rows are in hierarchical order: parents before their children,
    siblings in first-recorded order — for the pipelines, dataflow order
    (expose -> stage1 -> detect -> ...).
    """

    phases: tuple[PhaseStats, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.phases)

    def __iter__(self):
        return iter(self.phases)

    def get(self, path: str) -> PhaseStats | None:
        """The row for ``path``, or ``None`` if it never ran."""
        for stats in self.phases:
            if stats.path == path:
                return stats
        return None

    @property
    def total_s(self) -> float:
        """Summed top-level wall-clock (nested rows are already inside)."""
        return sum(p.total_s for p in self.phases if p.depth == 0)

    def to_dict(self) -> dict:
        """JSON-ready form (what ``BENCH_hotpath.json`` embeds)."""
        return {
            "total_s": self.total_s,
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseProfile":
        """Rebuild a profile from its :meth:`to_dict` form.

        ``total_s`` is derived (a property), so only ``phases`` is read;
        the derived value is re-checked to catch hand-edited payloads.
        """
        profile = cls(
            tuple(PhaseStats.from_dict(row) for row in data.get("phases", ()))
        )
        if "total_s" in data and abs(profile.total_s - data["total_s"]) > 1e-9:
            raise ValueError(
                f"total_s {data['total_s']!r} does not match the phase rows "
                f"(derived {profile.total_s!r})"
            )
        return profile

    @classmethod
    def merge(cls, profiles: Iterable["PhaseProfile"]) -> "PhaseProfile":
        """Fold many profiles into one (calls and seconds add per path)."""
        order: list[str] = []
        acc: dict[str, list] = {}
        for profile in profiles:
            for stats in profile.phases:
                entry = acc.get(stats.path)
                if entry is None:
                    order.append(stats.path)
                    acc[stats.path] = [stats.calls, stats.total_s]
                else:
                    entry[0] += stats.calls
                    entry[1] += stats.total_s
        return cls(
            tuple(PhaseStats(path, acc[path][0], acc[path][1]) for path in order)
        )

    def report(self) -> str:
        """Human-readable breakdown, nested rows indented under parents."""
        if not self.phases:
            return "  (no phases recorded)"
        total = self.total_s or 1.0
        width = max(len(p.path) for p in self.phases) + 4
        lines = [f"  {'phase':<{width}}{'calls':>7}{'ms':>10}{'share':>8}"]
        for stats in self.phases:
            name = "  " * stats.depth + stats.path.rsplit(".", 1)[-1]
            lines.append(
                f"  {name:<{width}}{stats.calls:>7}"
                f"{stats.total_s * 1e3:>10.2f}"
                f"{stats.total_s / total:>7.0%}"
            )
        lines.append(f"  {'total (top-level)':<{width}}{'':>7}{self.total_s * 1e3:>10.2f}")
        return "\n".join(lines)


class PhaseProfiler:
    """Accumulating nested phase timer (see module docstring).

    Not thread-safe by design: one profiler belongs to one request, which
    the engine serves on one thread.  ``clock`` is injectable for tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stack: list[str] = []
        self._order: list[str] = []
        self._acc: dict[str, list] = {}

    @contextmanager
    def phase(self, name: str):
        """Time a span under ``name``, nested inside any open phases."""
        if not name:
            raise ValueError("phase name must be non-empty")
        self._stack.append(name)
        path = ".".join(self._stack)
        start = self._clock()
        try:
            yield self
        finally:
            elapsed = self._clock() - start
            entry = self._acc.get(path)
            if entry is None:
                self._order.append(path)
                self._acc[path] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed
            self._stack.pop()

    def snapshot(self) -> PhaseProfile:
        """Freeze the counters recorded so far into a :class:`PhaseProfile`.

        Rows come out in hierarchical order.  Nested spans *complete*
        (and are first recorded) before their parents, so raw recording
        order would list ``stage2.read`` above ``stage2``; sorting each
        path by the first-appearance indices of its prefixes puts parents
        first while keeping siblings in dataflow order.
        """
        index = {path: i for i, path in enumerate(self._order)}

        def sort_key(path: str) -> tuple:
            parts = path.split(".")
            return tuple(
                index.get(".".join(parts[: i + 1]), index[path])
                for i in range(len(parts))
            )

        return PhaseProfile(
            tuple(
                PhaseStats(path, self._acc[path][0], self._acc[path][1])
                for path in sorted(self._order, key=sort_key)
            )
        )


def profiled(profiler: PhaseProfiler | None, name: str):
    """A phase span on ``profiler``, or a no-op when profiling is off.

    The pipelines call this on every frame; the ``None`` fast path keeps
    the unprofiled hot path free of profiler overhead.
    """
    if profiler is None:
        return nullcontext()
    return profiler.phase(name)
