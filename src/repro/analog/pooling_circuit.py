"""Netlist builders for the HiRISE analog averaging circuit (paper Fig. 4).

The paper's compression idea: connect the source-follower (SF) outputs of a
group of pixels together through per-pixel resistors of value ``N * R`` (for
``N`` connected pixels) into a shared node, and tie that shared node to
``-VDD`` through a single resistor ``R``.  Kirchhoff's current law at the
shared node then gives

    sum_i (V_i - V_avg) / (N R) = (V_avg + VDD) / R
    =>  V_avg = (mean(V_i) - VDD) / 2

so the shared node tracks the *mean* of the pixel outputs with gain 1/2 and
offset ``-VDD/2``.  The negative offset keeps the node below zero, which the
paper uses to guarantee the SF/row-select transistors satisfy the
``V_DS < V_GS - V_TH`` activation condition (their Eq. 4).

Two builders are provided:

* :func:`build_resistive_average` — the passive resistor core only (inputs
  drive the resistors directly).  Its exact solution is the affine map above
  and is used to validate the MNA solver analytically.
* :func:`build_pooling_circuit` — the full Fig. 4 arrangement with a level-1
  NMOS source follower (and optional row-select switch) per pixel, which is
  what the Fig. 5 test benches simulate.

A pooling size of ``k x k`` over RGB uses ``k * k * 3`` connected pixels;
:func:`pixels_per_pool` encodes that relationship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .components import MOSFET, MOSFETParams, Capacitor, Resistor, VoltageSource
from .netlist import Circuit

#: Shared averaging node name used by all builders.
AVG_NODE = "avg"


def pixels_per_pool(k: int, channels: int = 3) -> int:
    """Number of pixels merged by one ``k x k`` pool over ``channels``.

    The paper's example: 2x2 pooling of RGB merges ``2*2*3 = 12`` pixels.
    """
    if k < 1:
        raise ValueError("pooling size k must be >= 1")
    if channels < 1:
        raise ValueError("channels must be >= 1")
    return k * k * channels


def ideal_shared_node_voltage(mean_input: float, vdd: float) -> float:
    """Analytic shared-node voltage of the passive resistor core.

    ``V_avg = (mean - VDD) / 2``; see the module docstring derivation.
    """
    return 0.5 * (mean_input - vdd)


def invert_shared_node_voltage(v_avg: float, vdd: float) -> float:
    """Recover the mean input from the shared-node voltage (readout inverse)."""
    return 2.0 * v_avg + vdd


@dataclass(frozen=True)
class PoolingCircuitSpec:
    """Electrical parameters of the averaging circuit.

    Attributes:
        vdd: supply voltage (V); the pulldown rail sits at ``-vdd``.
        r_unit: the unit resistance ``R`` (ohms).  Each of the ``N`` input
            legs uses ``N * r_unit`` and the pulldown uses ``r_unit``.
        sf_params: level-1 parameters for the source followers.
        sf_w_over_l: SF aspect ratio; large values reduce the input-dependent
            overdrive (i.e. the compression nonlinearity) of the follower.
        row_select: insert the Fig. 4 row-select transistor (T4) in series
            with each follower, gate tied to VDD (switched on).
        load_capacitance: optional capacitance at the shared node, modeling
            the column-line parasitic; gives the RC settling visible in the
            paper's transient plots.
    """

    vdd: float = 1.0
    r_unit: float = 100e3
    sf_params: MOSFETParams = MOSFETParams(vth=0.45, kp=200e-6, lam=0.02)
    sf_w_over_l: float = 10.0
    row_select: bool = True
    load_capacitance: float | None = None


def build_resistive_average(
    inputs: Sequence[object],
    spec: PoolingCircuitSpec | None = None,
    title: str = "resistive-average",
) -> Circuit:
    """Passive averaging core: inputs drive the ``N*R`` legs directly.

    Args:
        inputs: one DC value or waveform callable per pixel.
        spec: electrical parameters (defaults to :class:`PoolingCircuitSpec`).
        title: netlist title.

    Returns:
        A circuit whose shared node is :data:`AVG_NODE`; input ``i`` is
        driven at node ``in{i}``.
    """
    spec = spec or PoolingCircuitSpec()
    n = len(inputs)
    if n < 1:
        raise ValueError("need at least one input")
    circuit = Circuit(title)
    for i, value in enumerate(inputs):
        circuit.add(VoltageSource(f"Vin{i}", f"in{i}", "0", value))
        circuit.add(Resistor(f"Rleg{i}", f"in{i}", AVG_NODE, n * spec.r_unit))
    _add_pulldown(circuit, spec)
    return circuit


def build_pooling_circuit(
    inputs: Sequence[object],
    spec: PoolingCircuitSpec | None = None,
    title: str = "hirise-pooling",
) -> Circuit:
    """Full Fig. 4 circuit: per-pixel SF (+ optional row select) into the core.

    Each pixel output voltage drives the gate of an NMOS source follower
    whose drain ties to VDD.  With row select enabled, an NMOS switch whose
    gate is at VDD sits between the follower source and the resistor leg.

    Args:
        inputs: one DC value or waveform callable per pixel (the pixel
            voltages, in ``[0, vdd]``).
        spec: electrical parameters.
        title: netlist title.

    Returns:
        Circuit with nodes ``in{i}`` (pixel voltages), ``sf{i}`` (follower
        outputs), and :data:`AVG_NODE` (the pooled output).
    """
    spec = spec or PoolingCircuitSpec()
    n = len(inputs)
    if n < 1:
        raise ValueError("need at least one input")
    circuit = Circuit(title)
    circuit.add(VoltageSource("Vdd", "vdd", "0", spec.vdd))
    for i, value in enumerate(inputs):
        circuit.add(VoltageSource(f"Vin{i}", f"in{i}", "0", value))
        circuit.add(
            MOSFET(
                f"Tsf{i}",
                drain="vdd",
                gate=f"in{i}",
                source=f"sf{i}",
                params=spec.sf_params,
                polarity="nmos",
                w_over_l=spec.sf_w_over_l,
            )
        )
        leg_from = f"sf{i}"
        if spec.row_select:
            circuit.add(
                MOSFET(
                    f"Trs{i}",
                    drain=f"sf{i}",
                    gate="vdd",
                    source=f"rs{i}",
                    params=spec.sf_params,
                    polarity="nmos",
                    w_over_l=4.0 * spec.sf_w_over_l,
                )
            )
            leg_from = f"rs{i}"
        circuit.add(Resistor(f"Rleg{i}", leg_from, AVG_NODE, n * spec.r_unit))
    _add_pulldown(circuit, spec)
    return circuit


def _add_pulldown(circuit: Circuit, spec: PoolingCircuitSpec) -> None:
    """Shared-node pulldown: ``R`` to the ``-VDD`` rail (+ optional load C)."""
    circuit.add(VoltageSource("Vneg", "vneg", "0", -spec.vdd))
    circuit.add(Resistor("Rpull", AVG_NODE, "vneg", spec.r_unit))
    if spec.load_capacitance:
        circuit.add(Capacitor("Cload", AVG_NODE, "0", spec.load_capacitance))


@dataclass(frozen=True)
class PoolingEnergyModel:
    """First-order energy of the analog pooling operation.

    The paper reports the analog pooling circuitry consumes 1.71-91.4 nJ
    per frame depending on pooling level and colorspace — several orders of
    magnitude below the ADC energy.  Back-solving their range against the
    number of pooled outputs per frame gives ≈25 fJ per pooled output,
    which this model adopts as the default.

    Attributes:
        energy_per_output: joules consumed to settle one pooled output.
    """

    energy_per_output: float = 25e-15

    def frame_energy(self, pooled_outputs: int) -> float:
        """Energy (J) to produce ``pooled_outputs`` pooled samples."""
        if pooled_outputs < 0:
            raise ValueError("pooled_outputs must be non-negative")
        return self.energy_per_output * pooled_outputs
