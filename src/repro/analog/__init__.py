"""Analog circuit simulation substrate (the project's HSPICE substitute).

Public surface:

* :class:`Circuit` plus components (:class:`Resistor`, :class:`Capacitor`,
  :class:`VoltageSource`, :class:`CurrentSource`, :class:`MOSFET`).
* :class:`MNASolver` with DC operating point and backward-Euler transient.
* Waveforms (:class:`DC`, :class:`PWL`, :class:`Pulse`, :class:`Sine`,
  :class:`Triangle`).
* HiRISE pooling-circuit builders and the Fig. 5 test benches.
"""

from .components import (
    GMIN,
    GROUND,
    Capacitor,
    Component,
    CurrentSource,
    MOSFET,
    MOSFETParams,
    Resistor,
    VoltageSource,
)
from .mna import ConvergenceError, MNASolver, TransientResult, dc_operating_point, transient
from .netlist import Circuit, NetlistError
from .pooling_circuit import (
    AVG_NODE,
    PoolingCircuitSpec,
    PoolingEnergyModel,
    build_pooling_circuit,
    build_resistive_average,
    ideal_shared_node_voltage,
    invert_shared_node_voltage,
    pixels_per_pool,
)
from .testbench import (
    BenchResult,
    TrackingFit,
    dc_sweep_bench,
    fit_tracking,
    four_input_bench,
    many_input_bench,
    two_input_bench,
)
from .waveforms import DC, PWL, Pulse, Sine, Triangle, as_waveform

__all__ = [
    "AVG_NODE",
    "BenchResult",
    "Capacitor",
    "Circuit",
    "Component",
    "ConvergenceError",
    "CurrentSource",
    "DC",
    "GMIN",
    "GROUND",
    "MNASolver",
    "MOSFET",
    "MOSFETParams",
    "NetlistError",
    "PoolingCircuitSpec",
    "PoolingEnergyModel",
    "PWL",
    "Pulse",
    "Resistor",
    "Sine",
    "TrackingFit",
    "TransientResult",
    "Triangle",
    "VoltageSource",
    "as_waveform",
    "build_pooling_circuit",
    "build_resistive_average",
    "dc_operating_point",
    "dc_sweep_bench",
    "fit_tracking",
    "four_input_bench",
    "ideal_shared_node_voltage",
    "invert_shared_node_voltage",
    "many_input_bench",
    "pixels_per_pool",
    "transient",
    "two_input_bench",
]
