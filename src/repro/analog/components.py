"""Circuit components for the modified-nodal-analysis (MNA) simulator.

The component set is the minimum needed to simulate the HiRISE in-sensor
compression circuit (paper Fig. 4) and its test benches (Fig. 5): resistors,
capacitors, independent voltage/current sources, and level-1 (square-law)
MOSFETs used as source followers and row selectors.

Each component knows how to *stamp* itself into the MNA matrix ``A`` and
right-hand side ``z``.  The solver (:mod:`repro.analog.mna`) owns the node
and branch index maps and calls back into the components with a
:class:`StampContext`.  Linear components ignore the Newton iterate;
nonlinear components stamp a linearized companion model around it.

Sign conventions follow standard MNA: for every node row, currents *leaving*
the node through a device appear on the left-hand side with positive sign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from .waveforms import as_waveform

GROUND = "0"

#: Small conductance added in parallel with nonlinear devices to keep the
#: Jacobian well conditioned (same role as SPICE's GMIN).
GMIN = 1e-12

#: Finite-difference step used to linearize nonlinear devices.  The level-1
#: MOSFET equations are piecewise smooth, so a symmetric difference at this
#: scale gives Newton-quality derivatives for the voltage ranges (<= a few
#: volts) used in sensor circuits.
_FD_STEP = 1e-7


class Component:
    """Base class: a named device attached to a tuple of node names."""

    name: str
    nodes: tuple[str, ...]

    def branch_count(self) -> int:
        """Number of extra MNA current unknowns this device introduces."""
        return 0

    def is_nonlinear(self) -> bool:
        return False

    def stamp(self, ctx: "StampContext") -> None:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class StampContext:
    """Everything a component needs to write its MNA contribution.

    Attributes:
        A: dense MNA matrix being assembled, shape ``(n, n)``.
        z: right-hand side vector, shape ``(n,)``.
        node_index: node name -> row index (ground maps to ``None``).
        branch_index: component name -> extra-branch row index.
        v: current Newton iterate as a node-voltage lookup.
        t: current simulation time in seconds.
        dt: time step (``None`` during DC analysis).
        state: previous time-step node voltages (for dynamic companions).
    """

    A: np.ndarray
    z: np.ndarray
    node_index: Mapping[str, int | None]
    branch_index: Mapping[str, int]
    v: Callable[[str], float]
    t: float
    dt: float | None
    state: Mapping[str, float]

    def idx(self, node: str) -> int | None:
        return self.node_index[node]

    def add_A(self, i: int | None, j: int | None, value: float) -> None:
        if i is not None and j is not None:
            self.A[i, j] += value

    def add_z(self, i: int | None, value: float) -> None:
        if i is not None:
            self.z[i] += value

    def stamp_conductance(self, a: str, b: str, g: float) -> None:
        """Two-terminal conductance ``g`` between nodes ``a`` and ``b``."""
        ia, ib = self.idx(a), self.idx(b)
        self.add_A(ia, ia, g)
        self.add_A(ib, ib, g)
        self.add_A(ia, ib, -g)
        self.add_A(ib, ia, -g)

    def stamp_current(self, a: str, b: str, i: float) -> None:
        """Independent current ``i`` flowing from node ``a`` to node ``b``."""
        self.add_z(self.idx(a), -i)
        self.add_z(self.idx(b), +i)


@dataclass
class Resistor(Component):
    """Ideal linear resistor of ``resistance`` ohms between two nodes."""

    name: str
    a: str
    b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"{self.name}: resistance must be positive")
        self.nodes = (self.a, self.b)

    def stamp(self, ctx: StampContext) -> None:
        ctx.stamp_conductance(self.a, self.b, 1.0 / self.resistance)


@dataclass
class Capacitor(Component):
    """Linear capacitor, simulated with a backward-Euler companion model.

    During DC analysis the capacitor is an open circuit (only ``GMIN`` is
    stamped to avoid floating nodes).
    """

    name: str
    a: str
    b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(f"{self.name}: capacitance must be positive")
        self.nodes = (self.a, self.b)

    def stamp(self, ctx: StampContext) -> None:
        if ctx.dt is None:
            ctx.stamp_conductance(self.a, self.b, GMIN)
            return
        geq = self.capacitance / ctx.dt
        v_prev = ctx.state.get(self.a, 0.0) - ctx.state.get(self.b, 0.0)
        ctx.stamp_conductance(self.a, self.b, geq)
        # Companion current source recreates the charge stored at t - dt.
        ctx.stamp_current(self.b, self.a, geq * v_prev)


@dataclass
class VoltageSource(Component):
    """Independent voltage source from ``plus`` to ``minus``.

    ``value`` may be a number (DC) or any callable of time (see
    :mod:`repro.analog.waveforms`).  Adds one branch-current unknown.
    """

    name: str
    plus: str
    minus: str
    value: object = 0.0

    def __post_init__(self) -> None:
        self.nodes = (self.plus, self.minus)
        self.waveform = as_waveform(self.value)

    def branch_count(self) -> int:
        return 1

    def stamp(self, ctx: StampContext) -> None:
        k = ctx.branch_index[self.name]
        ip, im = ctx.idx(self.plus), ctx.idx(self.minus)
        ctx.add_A(ip, k, 1.0)
        ctx.add_A(im, k, -1.0)
        ctx.add_A(k, ip, 1.0)
        ctx.add_A(k, im, -1.0)
        ctx.add_z(k, float(self.waveform(ctx.t)))


@dataclass
class CurrentSource(Component):
    """Independent current source pushing current from ``plus`` to ``minus``."""

    name: str
    plus: str
    minus: str
    value: object = 0.0

    def __post_init__(self) -> None:
        self.nodes = (self.plus, self.minus)
        self.waveform = as_waveform(self.value)

    def stamp(self, ctx: StampContext) -> None:
        ctx.stamp_current(self.plus, self.minus, float(self.waveform(ctx.t)))


@dataclass(frozen=True)
class MOSFETParams:
    """Level-1 square-law parameters (45 nm-flavored defaults).

    Attributes:
        vth: threshold voltage magnitude in volts.
        kp: process transconductance ``mu * Cox`` in A/V^2.
        lam: channel-length modulation in 1/V.
    """

    vth: float = 0.45
    kp: float = 200e-6
    lam: float = 0.02


@dataclass
class MOSFET(Component):
    """Level-1 MOSFET with terminals (drain, gate, source); body tied to source.

    The device is symmetric: when the applied drain-source voltage is
    negative the terminals are swapped for evaluation and the current is
    negated, which keeps the model physical and Newton iterations stable.

    The MNA stamp linearizes the drain current around the current Newton
    iterate using symmetric finite differences on :meth:`drain_current`,
    producing the full 3-terminal Jacobian (the gate draws no DC current, so
    its column only appears through the transconductance terms of the drain
    and source rows).
    """

    name: str
    drain: str
    gate: str
    source: str
    params: MOSFETParams = field(default_factory=MOSFETParams)
    polarity: str = "nmos"
    w_over_l: float = 2.0

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"{self.name}: polarity must be 'nmos' or 'pmos'")
        if self.w_over_l <= 0:
            raise ValueError(f"{self.name}: W/L must be positive")
        self.nodes = (self.drain, self.gate, self.source)

    def is_nonlinear(self) -> bool:
        return True

    def _ids_forward(self, vgs: float, vds: float) -> float:
        """Square-law drain current for the NMOS orientation, ``vds >= 0``."""
        p = self.params
        k = p.kp * self.w_over_l
        vov = vgs - p.vth
        if vov <= 0.0:
            return 0.0
        if vds < vov:  # triode
            return k * (vov * vds - 0.5 * vds * vds)
        return 0.5 * k * vov * vov * (1.0 + p.lam * vds)

    def drain_current(self, vd: float, vg: float, vs: float) -> float:
        """Current entering the drain terminal at the given node voltages."""
        if self.polarity == "pmos":
            # A PMOS is an NMOS with every terminal voltage negated and the
            # resulting current direction reversed.
            return -self._nmos_current(-vd, -vg, -vs)
        return self._nmos_current(vd, vg, vs)

    def _nmos_current(self, vd: float, vg: float, vs: float) -> float:
        if vd >= vs:
            return self._ids_forward(vg - vs, vd - vs)
        # Symmetric operation: the physical source is the drain terminal.
        return -self._ids_forward(vg - vd, vs - vd)

    def stamp(self, ctx: StampContext) -> None:
        vd, vg, vs = ctx.v(self.drain), ctx.v(self.gate), ctx.v(self.source)
        i0 = self.drain_current(vd, vg, vs)
        h = _FD_STEP
        g_d = (self.drain_current(vd + h, vg, vs) - self.drain_current(vd - h, vg, vs)) / (2 * h)
        g_g = (self.drain_current(vd, vg + h, vs) - self.drain_current(vd, vg - h, vs)) / (2 * h)
        g_s = (self.drain_current(vd, vg, vs + h) - self.drain_current(vd, vg, vs - h)) / (2 * h)

        i_d, i_g, i_s = ctx.idx(self.drain), ctx.idx(self.gate), ctx.idx(self.source)
        # Current i0 leaves the drain node and enters the source node.
        # Linearized: i = i0 + g_d*dVd + g_g*dVg + g_s*dVs.
        const = i0 - g_d * vd - g_g * vg - g_s * vs
        for col, g in ((i_d, g_d), (i_g, g_g), (i_s, g_s)):
            ctx.add_A(i_d, col, +g)
            ctx.add_A(i_s, col, -g)
        ctx.add_z(i_d, -const)
        ctx.add_z(i_s, +const)
        # GMIN keeps isolated drain/source nodes solvable in cutoff.
        ctx.stamp_conductance(self.drain, self.source, GMIN)
