"""Reproductions of the paper's SPICE test benches (Fig. 5).

The paper validates the analog averaging circuit with three benches:

1. **Fig. 5(a)** — two *analog* inputs.  Three annotated regions:
   region 1: one input constant, the other ramping -> Avg follows the
   ramp with half the slope; region 2: opposing slopes -> Avg flat;
   region 3: the first input ramps alone -> its influence is visible.
2. **Fig. 5(b)** — four *digital* inputs stepping through combinations ->
   Avg takes the quantized levels 0, 1/4, 1/2, 3/4, 1 (affinely mapped).
3. An extension to **192 inputs** (8x8 pooling of RGB = 192 pixels), which
   the paper reports as "flawless".

Each bench returns a :class:`BenchResult` carrying the raw waveforms plus
the affine-tracking fit of the shared node against the instantaneous input
mean, so tests and benchmarks can assert quantitative tracking quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .mna import MNASolver, TransientResult
from .pooling_circuit import AVG_NODE, PoolingCircuitSpec, build_pooling_circuit
from .waveforms import PWL, DC, Pulse

#: Default transient horizon (seconds) for the benches.
T_STOP = 1.0e-3
#: Default step size.
DT = 5.0e-6


@dataclass
class TrackingFit:
    """Least-squares affine fit ``avg ≈ gain * mean(inputs) + offset``.

    Attributes:
        gain: fitted gain (ideal passive core: 0.5).
        offset: fitted offset in volts (ideal passive core: -VDD/2).
        rmse: root-mean-square residual of the fit (V).
        max_abs_error: worst-case residual (V).
        swing: peak-to-peak range of the avg waveform (V), for normalizing.
    """

    gain: float
    offset: float
    rmse: float
    max_abs_error: float
    swing: float

    @property
    def relative_rmse(self) -> float:
        """RMSE normalized by output swing; small values mean clean tracking."""
        return self.rmse / self.swing if self.swing > 0 else 0.0


@dataclass
class BenchResult:
    """Everything produced by one test bench run."""

    name: str
    result: TransientResult
    input_waveforms: tuple[Callable[[float], float], ...]
    fit: TrackingFit

    @property
    def time(self) -> np.ndarray:
        return self.result.time

    @property
    def avg(self) -> np.ndarray:
        return self.result.voltage(AVG_NODE)

    def input_matrix(self) -> np.ndarray:
        """Inputs sampled on the transient time grid, shape (n_inputs, T)."""
        return np.array(
            [[w(float(t)) for t in self.time] for w in self.input_waveforms]
        )


def fit_tracking(
    result: TransientResult,
    input_waveforms: Sequence[Callable[[float], float]],
    settle_fraction: float = 0.05,
) -> TrackingFit:
    """Fit the shared node against the instantaneous input mean.

    Args:
        result: transient waveforms.
        input_waveforms: the stimulus callables, sampled on the result grid.
        settle_fraction: fraction of the initial samples discarded to let
            the (possibly capacitive) node settle.

    Returns:
        The affine :class:`TrackingFit`.
    """
    time = result.time
    avg = result.voltage(AVG_NODE)
    start = int(len(time) * settle_fraction)
    t_used = time[start:]
    avg_used = avg[start:]
    means = np.mean(
        [[w(float(t)) for t in t_used] for w in input_waveforms], axis=0
    )
    design = np.stack([means, np.ones_like(means)], axis=1)
    coef, *_ = np.linalg.lstsq(design, avg_used, rcond=None)
    residual = avg_used - design @ coef
    swing = float(np.ptp(avg_used))
    return TrackingFit(
        gain=float(coef[0]),
        offset=float(coef[1]),
        rmse=float(np.sqrt(np.mean(residual**2))),
        max_abs_error=float(np.max(np.abs(residual))),
        swing=swing,
    )


def _run(
    name: str,
    waveforms: Sequence[Callable[[float], float]],
    spec: PoolingCircuitSpec | None,
    t_stop: float,
    dt: float,
) -> BenchResult:
    circuit = build_pooling_circuit(list(waveforms), spec=spec, title=name)
    result = MNASolver(circuit).transient(t_stop, dt)
    fit = fit_tracking(result, waveforms)
    return BenchResult(
        name=name, result=result, input_waveforms=tuple(waveforms), fit=fit
    )


def two_input_bench(
    vdd: float = 1.0,
    spec: PoolingCircuitSpec | None = None,
    t_stop: float = T_STOP,
    dt: float = DT,
) -> BenchResult:
    """Fig. 5(a): two analog inputs with the paper's three regions.

    Timeline (fractions of ``t_stop``):
      * [0.0, 0.33) — region 1: Inp1 constant at mid-rail, Inp2 ramps up.
      * [0.33, 0.66) — region 2: opposing slopes (Inp1 down, Inp2 up) ->
        the average is approximately flat.
      * [0.66, 1.0] — region 3: Inp1 ramps up alone; its influence on Avg
        is directly visible.
    """
    t1, t2 = t_stop / 3.0, 2.0 * t_stop / 3.0
    hi, mid, lo = 0.9 * vdd, 0.5 * vdd, 0.1 * vdd
    # Region 1: Inp1 holds at mid while Inp2 ramps lo->hi (Avg follows at
    #           half slope).  Region 2: opposing slopes, constant sum ->
    #           flat Avg.  Region 3: Inp1 ramps alone -> its influence is
    #           directly visible.
    inp1 = PWL([(0.0, mid), (t1, mid), (t2, hi), (t_stop, lo)])
    inp2 = PWL([(0.0, lo), (t1, hi), (t2, mid), (t_stop, mid)])
    waveforms = (inp1, inp2)
    if spec is None:
        spec = PoolingCircuitSpec(vdd=vdd)
    return _run("fig5a-two-analog-inputs", waveforms, spec, t_stop, dt)


def four_input_bench(
    vdd: float = 1.0,
    spec: PoolingCircuitSpec | None = None,
    t_stop: float = T_STOP,
    dt: float = DT,
) -> BenchResult:
    """Fig. 5(b): four digital inputs; Avg steps through quantized levels.

    The four pulse trains have periods T, T/2, T/4, T/8 so the input vector
    counts through all 16 binary combinations; the shared node must visit
    the five levels {0, 1/4, 1/2, 3/4, 1} * VDD (affinely mapped).  All
    inputs are simultaneously high at the start of the cycle (paper's
    annotation 1) and simultaneously low mid-cycle (annotation 2).
    """
    period = t_stop / 2.0
    rise = period / 200.0
    waveforms = tuple(
        Pulse(
            v1=0.0,
            v2=vdd,
            delay=0.0,
            rise=rise,
            fall=rise,
            width=period / (2.0**k) / 2.0 - rise,
            period=period / (2.0**k),
        )
        for k in range(4)
    )
    if spec is None:
        spec = PoolingCircuitSpec(vdd=vdd)
    return _run("fig5b-four-digital-inputs", waveforms, spec, t_stop, dt)


def many_input_bench(
    n_inputs: int = 192,
    vdd: float = 1.0,
    seed: int = 2024,
    spec: PoolingCircuitSpec | None = None,
    t_stop: float = T_STOP,
    dt: float = DT,
) -> BenchResult:
    """The paper's 192-input extension (8x8 pooling of an RGB group).

    Each input is a random digital PWL waveform (deterministic per
    ``seed``); the bench checks the shared node still tracks the mean.
    """
    rng = np.random.default_rng(seed)
    n_segments = 8
    seg = t_stop / n_segments
    waveforms = []
    for i in range(n_inputs):
        levels = rng.integers(0, 2, size=n_segments).astype(float) * vdd
        points: list[tuple[float, float]] = []
        for s, level in enumerate(levels):
            t0 = s * seg
            points.append((t0, level))
            points.append(((s + 0.98) * seg, level))
        points.append((t_stop, float(levels[-1])))
        waveforms.append(PWL(points))
    if spec is None:
        spec = PoolingCircuitSpec(vdd=vdd)
    return _run(f"fig5-ext-{n_inputs}-inputs", tuple(waveforms), spec, t_stop, dt)


def dc_sweep_bench(
    n_inputs: int,
    n_points: int = 11,
    vdd: float = 1.0,
    spec: PoolingCircuitSpec | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """DC transfer curve: all inputs tied together and swept 0..VDD.

    Returns:
        ``(input_levels, avg_voltages)`` arrays — useful for extracting the
        circuit's static gain/offset used by the behavioral sensor model.
    """
    if spec is None:
        spec = PoolingCircuitSpec(vdd=vdd)
    levels = np.linspace(0.0, vdd, n_points)
    outputs = np.zeros(n_points)
    for idx, level in enumerate(levels):
        circuit = build_pooling_circuit(
            [DC(float(level))] * n_inputs, spec=spec, title="dc-sweep"
        )
        solution = MNASolver(circuit).dc()
        outputs[idx] = solution[AVG_NODE]
    return levels, outputs
