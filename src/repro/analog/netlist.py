"""Circuit container: a named bag of components plus node bookkeeping.

A :class:`Circuit` is a purely structural object — it validates connectivity
and assigns MNA indices, while the numerical work lives in
:mod:`repro.analog.mna`.  The API mirrors a minimal SPICE netlist:

>>> from repro.analog import Circuit, Resistor, VoltageSource
>>> c = Circuit("divider")
>>> _ = c.add(VoltageSource("Vin", "in", "0", 1.0))
>>> _ = c.add(Resistor("R1", "in", "mid", 1e3))
>>> _ = c.add(Resistor("R2", "mid", "0", 1e3))
>>> sorted(c.nodes)
['in', 'mid']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .components import GROUND, Component


class NetlistError(ValueError):
    """Raised for structural problems: duplicate names, missing ground, ..."""


@dataclass
class Circuit:
    """An ordered collection of components sharing a node namespace.

    Node names are arbitrary strings; ``"0"`` is ground.  Component names
    must be unique within the circuit (SPICE convention).
    """

    title: str = "circuit"
    _components: dict[str, Component] = field(default_factory=dict)

    def add(self, component: Component) -> Component:
        """Add a component; returns it so construction can be chained."""
        if component.name in self._components:
            raise NetlistError(f"duplicate component name: {component.name!r}")
        self._components[component.name] = component
        return component

    def add_all(self, components: Iterable[Component]) -> None:
        for comp in components:
            self.add(comp)

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components.values())

    def __len__(self) -> int:
        return len(self._components)

    def __getitem__(self, name: str) -> Component:
        return self._components[name]

    def __contains__(self, name: str) -> bool:
        return name in self._components

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components.values())

    @property
    def nodes(self) -> set[str]:
        """All non-ground node names referenced by any component."""
        found: set[str] = set()
        for comp in self:
            found.update(comp.nodes)
        found.discard(GROUND)
        return found

    def node_index(self) -> dict[str, int | None]:
        """Deterministic node -> MNA row mapping; ground maps to ``None``.

        Nodes are indexed in first-appearance order, which makes solver
        results reproducible regardless of dict/set iteration details.
        """
        index: dict[str, int | None] = {GROUND: None}
        counter = 0
        for comp in self:
            for node in comp.nodes:
                if node not in index:
                    index[node] = counter
                    counter += 1
        return index

    def branch_index(self, first_row: int) -> dict[str, int]:
        """Extra-branch (source current) rows starting at ``first_row``."""
        index: dict[str, int] = {}
        row = first_row
        for comp in self:
            if comp.branch_count():
                index[comp.name] = row
                row += comp.branch_count()
        return index

    def validate(self) -> None:
        """Check basic well-formedness before simulation.

        Raises:
            NetlistError: if the circuit is empty or no component touches
                ground (an all-floating circuit has a singular MNA matrix).
        """
        if not self._components:
            raise NetlistError(f"{self.title}: circuit has no components")
        touches_ground = any(GROUND in comp.nodes for comp in self)
        if not touches_ground:
            raise NetlistError(f"{self.title}: no component is connected to ground ('0')")

    def is_nonlinear(self) -> bool:
        return any(comp.is_nonlinear() for comp in self)

    def summary(self) -> str:
        """One-line-per-component human-readable netlist."""
        lines = [f"* {self.title}: {len(self)} components, {len(self.nodes)} nodes"]
        for comp in self:
            lines.append(f"{comp.name} {' '.join(comp.nodes)} [{type(comp).__name__}]")
        return "\n".join(lines)
