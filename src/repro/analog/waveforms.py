"""Time-domain stimulus waveforms for the analog simulator.

These mirror the standard SPICE source functions (``DC``, ``PWL``, ``PULSE``,
``SIN``) that the paper's HSPICE test benches use to drive the in-sensor
compression circuit (Fig. 5).  A waveform is simply a callable mapping time
in seconds to a voltage (or current) value; the classes below are small,
picklable, and deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class DC:
    """Constant source: ``value`` at every time point."""

    value: float

    def __call__(self, t: float) -> float:
        return self.value


@dataclass(frozen=True)
class PWL:
    """Piece-wise-linear source defined by ``(time, value)`` breakpoints.

    Before the first breakpoint the first value is held; after the last
    breakpoint the last value is held.  Breakpoints must be sorted by time.
    """

    points: tuple[tuple[float, float], ...]

    def __init__(self, points: Sequence[tuple[float, float]]):
        if len(points) < 1:
            raise ValueError("PWL needs at least one (time, value) point")
        times = [p[0] for p in points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("PWL breakpoints must be sorted by time")
        object.__setattr__(self, "points", tuple((float(t), float(v)) for t, v in points))

    def __call__(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t <= t1:
                if t1 == t0:
                    return v1
                frac = (t - t0) / (t1 - t0)
                return v0 + frac * (v1 - v0)
        return pts[-1][1]


@dataclass(frozen=True)
class Pulse:
    """SPICE-style periodic pulse.

    Parameters follow ``PULSE(v1 v2 delay rise fall width period)``:
    the source sits at ``v1``, ramps to ``v2`` over ``rise`` seconds after
    ``delay``, holds for ``width``, ramps back over ``fall``, and repeats
    every ``period`` seconds.
    """

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-9
    fall: float = 1e-9
    width: float = 1e-6
    period: float = 2e-6

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tau = (t - self.delay) % self.period
        if tau < self.rise:
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1


@dataclass(frozen=True)
class Sine:
    """Sinusoidal source ``offset + amplitude * sin(2*pi*freq*t + phase)``."""

    offset: float
    amplitude: float
    freq: float
    phase: float = 0.0

    def __call__(self, t: float) -> float:
        return self.offset + self.amplitude * math.sin(2.0 * math.pi * self.freq * t + self.phase)


@dataclass(frozen=True)
class Triangle:
    """Symmetric triangle wave between ``low`` and ``high``.

    Used for the Fig. 5(a) bench where the two analog inputs ramp with
    opposing slopes.  ``phase`` is expressed as a fraction of the period.
    """

    low: float
    high: float
    period: float
    phase: float = 0.0

    def __call__(self, t: float) -> float:
        tau = (t / self.period + self.phase) % 1.0
        if tau < 0.5:
            frac = tau * 2.0
        else:
            frac = 2.0 - tau * 2.0
        return self.low + (self.high - self.low) * frac


def as_waveform(value) -> "DC | PWL | Pulse | Sine | Triangle":
    """Coerce a plain number into a :class:`DC` waveform.

    Callables are returned unchanged so users may pass any ``f(t)``.
    """
    if callable(value):
        return value
    return DC(float(value))
