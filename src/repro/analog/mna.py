"""Modified nodal analysis: DC operating point and backward-Euler transient.

This is the numerical core of the project's HSPICE substitute.  It solves

* **DC**: ``f(v) = 0`` by damped Newton-Raphson, where each iteration
  assembles the linearized MNA system from the component stamps.
* **Transient**: backward Euler — at each time step the dynamic components
  (capacitors) stamp their companion models around the previous solution
  and the resulting (possibly nonlinear) system is solved by the same
  Newton loop, warm-started from the previous time point.

Dense ``numpy.linalg.solve`` is used: HiRISE circuits are at most a few
hundred nodes (the 192-input pooling bench), far below the point where
sparse methods pay off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .components import StampContext
from .netlist import Circuit


class ConvergenceError(RuntimeError):
    """Newton-Raphson failed to converge within the iteration budget."""


@dataclass
class TransientResult:
    """Waveforms from a transient run.

    Attributes:
        time: 1-D array of time points, including t=0.
        voltages: node name -> 1-D array aligned with ``time``.
    """

    time: np.ndarray
    voltages: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of one node (ground returns zeros)."""
        if node == "0":
            return np.zeros_like(self.time)
        return self.voltages[node]

    def final(self, node: str) -> float:
        return float(self.voltage(node)[-1])

    def sample(self, node: str, t: float) -> float:
        """Linear interpolation of a node waveform at time ``t``."""
        return float(np.interp(t, self.time, self.voltage(node)))


@dataclass
class MNASolver:
    """Solver bound to one circuit.

    Attributes:
        circuit: the netlist to simulate (validated on construction).
        max_newton_iter: Newton iteration budget per solve.
        abstol: absolute voltage convergence tolerance (V).
        reltol: relative convergence tolerance.
        damping: maximum per-iteration voltage change (V); updates larger
            than this are scaled down, which tames the square-law devices.
    """

    circuit: Circuit
    max_newton_iter: int = 200
    abstol: float = 1e-9
    reltol: float = 1e-6
    damping: float = 0.5

    def __post_init__(self) -> None:
        self.circuit.validate()
        self._node_index = self.circuit.node_index()
        self._n_nodes = sum(1 for v in self._node_index.values() if v is not None)
        self._branch_index = self.circuit.branch_index(self._n_nodes)
        self._n_unknowns = self._n_nodes + sum(
            comp.branch_count() for comp in self.circuit
        )

    # -- assembly ------------------------------------------------------------

    def _assemble(
        self,
        x: np.ndarray,
        t: float,
        dt: float | None,
        state: dict[str, float],
    ) -> tuple[np.ndarray, np.ndarray]:
        A = np.zeros((self._n_unknowns, self._n_unknowns))
        z = np.zeros(self._n_unknowns)

        def lookup(node: str) -> float:
            idx = self._node_index[node]
            return 0.0 if idx is None else float(x[idx])

        ctx = StampContext(
            A=A,
            z=z,
            node_index=self._node_index,
            branch_index=self._branch_index,
            v=lookup,
            t=t,
            dt=dt,
            state=state,
        )
        for comp in self.circuit:
            comp.stamp(ctx)
        return A, z

    def _solution_dict(self, x: np.ndarray) -> dict[str, float]:
        out: dict[str, float] = {}
        for node, idx in self._node_index.items():
            if idx is not None:
                out[node] = float(x[idx])
        return out

    # -- Newton loop -----------------------------------------------------------

    def _solve_point(
        self,
        t: float,
        dt: float | None,
        state: dict[str, float],
        x0: np.ndarray | None,
    ) -> np.ndarray:
        x = np.zeros(self._n_unknowns) if x0 is None else x0.copy()
        if not self.circuit.is_nonlinear():
            A, z = self._assemble(x, t, dt, state)
            return np.linalg.solve(A, z)

        for _ in range(self.max_newton_iter):
            A, z = self._assemble(x, t, dt, state)
            x_new = np.linalg.solve(A, z)
            delta = x_new - x
            max_step = float(np.max(np.abs(delta))) if delta.size else 0.0
            if max_step > self.damping:
                x_new = x + delta * (self.damping / max_step)
            if max_step <= self.abstol + self.reltol * float(np.max(np.abs(x_new))):
                return x_new
            x = x_new
        raise ConvergenceError(
            f"{self.circuit.title}: Newton did not converge at t={t:g}s "
            f"after {self.max_newton_iter} iterations"
        )

    # -- public API ------------------------------------------------------------

    def dc(self, t: float = 0.0, x0: np.ndarray | None = None) -> dict[str, float]:
        """DC operating point with sources evaluated at time ``t``.

        Returns:
            Node name -> voltage mapping (ground omitted).
        """
        x = self._solve_point(t, dt=None, state={}, x0=x0)
        return self._solution_dict(x)

    def transient(
        self,
        t_stop: float,
        dt: float,
        t_start: float = 0.0,
        from_dc: bool = True,
    ) -> TransientResult:
        """Fixed-step backward-Euler transient from ``t_start`` to ``t_stop``.

        Args:
            t_stop: end time (seconds), exclusive of rounding slop.
            dt: time step (seconds); must be positive.
            t_start: initial time; the first output sample.
            from_dc: if True, initialize from the DC operating point at
                ``t_start``; otherwise start from all-zeros.

        Returns:
            :class:`TransientResult` with every node waveform.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if t_stop <= t_start:
            raise ValueError("t_stop must exceed t_start")

        n_steps = int(round((t_stop - t_start) / dt))
        times = t_start + dt * np.arange(n_steps + 1)

        x = np.zeros(self._n_unknowns)
        if from_dc:
            x = self._solve_point(t_start, dt=None, state={}, x0=None)
        state = self._solution_dict(x)

        history = np.zeros((n_steps + 1, self._n_nodes))
        history[0] = x[: self._n_nodes]

        for step in range(1, n_steps + 1):
            t = float(times[step])
            x = self._solve_point(t, dt=dt, state=state, x0=x)
            state = self._solution_dict(x)
            history[step] = x[: self._n_nodes]

        voltages = {
            node: history[:, idx]
            for node, idx in self._node_index.items()
            if idx is not None
        }
        return TransientResult(time=times, voltages=voltages)


def dc_operating_point(circuit: Circuit, t: float = 0.0) -> dict[str, float]:
    """Convenience wrapper: one-shot DC solve of ``circuit``."""
    return MNASolver(circuit).dc(t)


def transient(circuit: Circuit, t_stop: float, dt: float) -> TransientResult:
    """Convenience wrapper: one-shot transient run of ``circuit``."""
    return MNASolver(circuit).transient(t_stop, dt)
