"""Minibatch training loops for classifiers and the grid detector."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .losses import softmax_cross_entropy
from .model import Sequential
from .optim import Optimizer


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


def iterate_minibatches(
    n: int, batch_size: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Shuffled index batches covering ``range(n)`` once."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = rng.permutation(n)
    return [order[i : i + batch_size] for i in range(0, n, batch_size)]


def fit_classifier(
    model: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    optimizer: Optimizer,
    epochs: int = 10,
    batch_size: int = 32,
    seed: int = 0,
    log_fn: Callable[[str], None] | None = None,
) -> TrainHistory:
    """Train a classifier with softmax cross-entropy.

    Args:
        model: NHWC-input :class:`~repro.ml.model.Sequential` ending in
            ``(N, n_classes)`` logits.
        images: ``(N, H, W, C)`` float inputs.
        labels: ``(N,)`` integer labels.
        optimizer: bound to ``model.params()``.
        epochs: passes over the data.
        batch_size: minibatch size.
        seed: shuffling seed.
        log_fn: optional per-epoch logger.

    Returns:
        :class:`TrainHistory` with per-epoch loss/accuracy.
    """
    if images.shape[0] != labels.shape[0]:
        raise ValueError("images and labels must align")
    rng = np.random.default_rng(seed)
    history = TrainHistory()
    for epoch in range(epochs):
        epoch_loss = 0.0
        correct = 0
        for batch in iterate_minibatches(images.shape[0], batch_size, rng):
            x, y = images[batch], labels[batch]
            logits = model.forward(x, training=True)
            loss, grad = softmax_cross_entropy(logits, y)
            model.zero_grad()
            model.backward(grad)
            optimizer.step()
            epoch_loss += loss * len(batch)
            correct += int(np.sum(np.argmax(logits, axis=1) == y))
        history.losses.append(epoch_loss / images.shape[0])
        history.accuracies.append(correct / images.shape[0])
        if log_fn:
            log_fn(
                f"epoch {epoch + 1}/{epochs}: loss={history.losses[-1]:.4f} "
                f"acc={history.accuracies[-1]:.3f}"
            )
    return history


def predict_classifier(
    model: Sequential, images: np.ndarray, batch_size: int = 64
) -> np.ndarray:
    """Predicted class indices, batched to bound memory."""
    preds = []
    for i in range(0, images.shape[0], batch_size):
        logits = model.forward(images[i : i + batch_size], training=False)
        preds.append(np.argmax(logits, axis=1))
    return np.concatenate(preds) if preds else np.zeros(0, dtype=np.int64)
