"""Loss functions returning ``(loss_value, gradient_wrt_input)`` pairs."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy of integer ``labels`` against ``(N, C)`` logits.

    Returns:
        ``(loss, grad)`` where grad has the shape of ``logits`` and already
        includes the 1/N normalization.
    """
    n = logits.shape[0]
    probs = softmax(logits)
    labels = np.asarray(labels).reshape(-1)
    if labels.shape[0] != n:
        raise ValueError("labels must align with the logits batch")
    eps = 1e-12
    loss = -float(np.mean(np.log(probs[np.arange(n), labels] + eps)))
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def mse(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``."""
    if pred.shape != target.shape:
        raise ValueError("pred and target shapes must match")
    diff = pred - target
    loss = float(np.mean(diff**2))
    return loss, 2.0 * diff / diff.size


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic function, numerically stable."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def binary_cross_entropy_with_logits(
    logits: np.ndarray, targets: np.ndarray, weight: np.ndarray | float = 1.0
) -> tuple[float, np.ndarray]:
    """Elementwise weighted BCE on logits; mean-reduced.

    Returns:
        ``(loss, grad)`` with grad already mean-normalized.
    """
    if logits.shape != targets.shape:
        raise ValueError("logits and targets shapes must match")
    p = sigmoid(logits)
    eps = 1e-12
    per_elem = -(targets * np.log(p + eps) + (1 - targets) * np.log(1 - p + eps))
    per_elem = per_elem * weight
    loss = float(np.mean(per_elem))
    grad = weight * (p - targets) / logits.size
    return loss, grad
