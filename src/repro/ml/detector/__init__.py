"""Stage-1 detectors: deterministic correlation matching and a trainable grid CNN."""

from .classical import ClassTemplate, CorrelationDetector, featurize
from .grid import GridDetector, GridDetectorConfig

__all__ = [
    "ClassTemplate",
    "CorrelationDetector",
    "GridDetector",
    "GridDetectorConfig",
    "featurize",
]
